# Empty dependencies file for bench_table11_partition_lk24.
# This may be replaced when dependencies are built.
