file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_partition_lk24.dir/bench_table11_partition_lk24.cc.o"
  "CMakeFiles/bench_table11_partition_lk24.dir/bench_table11_partition_lk24.cc.o.d"
  "bench_table11_partition_lk24"
  "bench_table11_partition_lk24.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_partition_lk24.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
