# Empty dependencies file for bench_fig1_testing_time.
# This may be replaced when dependencies are built.
