# Empty compiler generated dependencies file for bench_ablation_partitioner.
# This may be replaced when dependencies are built.
