file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_partitioner.dir/bench_ablation_partitioner.cc.o"
  "CMakeFiles/bench_ablation_partitioner.dir/bench_ablation_partitioner.cc.o.d"
  "bench_ablation_partitioner"
  "bench_ablation_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
