file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cbit_area.dir/bench_table1_cbit_area.cc.o"
  "CMakeFiles/bench_table1_cbit_area.dir/bench_table1_cbit_area.cc.o.d"
  "bench_table1_cbit_area"
  "bench_table1_cbit_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cbit_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
