# Empty compiler generated dependencies file for bench_table1_cbit_area.
# This may be replaced when dependencies are built.
