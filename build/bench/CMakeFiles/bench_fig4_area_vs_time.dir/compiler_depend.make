# Empty compiler generated dependencies file for bench_fig4_area_vs_time.
# This may be replaced when dependencies are built.
