file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_area_vs_time.dir/bench_fig4_area_vs_time.cc.o"
  "CMakeFiles/bench_fig4_area_vs_time.dir/bench_fig4_area_vs_time.cc.o.d"
  "bench_fig4_area_vs_time"
  "bench_fig4_area_vs_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_area_vs_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
