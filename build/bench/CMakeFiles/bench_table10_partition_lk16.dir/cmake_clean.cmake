file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_partition_lk16.dir/bench_table10_partition_lk16.cc.o"
  "CMakeFiles/bench_table10_partition_lk16.dir/bench_table10_partition_lk16.cc.o.d"
  "bench_table10_partition_lk16"
  "bench_table10_partition_lk16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_partition_lk16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
