# Empty dependencies file for bench_table10_partition_lk16.
# This may be replaced when dependencies are built.
