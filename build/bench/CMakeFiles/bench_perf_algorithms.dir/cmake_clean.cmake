file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_algorithms.dir/bench_perf_algorithms.cc.o"
  "CMakeFiles/bench_perf_algorithms.dir/bench_perf_algorithms.cc.o.d"
  "bench_perf_algorithms"
  "bench_perf_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
