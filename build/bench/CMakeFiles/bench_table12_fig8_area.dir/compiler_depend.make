# Empty compiler generated dependencies file for bench_table12_fig8_area.
# This may be replaced when dependencies are built.
