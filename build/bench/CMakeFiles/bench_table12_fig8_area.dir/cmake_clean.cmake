file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_fig8_area.dir/bench_table12_fig8_area.cc.o"
  "CMakeFiles/bench_table12_fig8_area.dir/bench_table12_fig8_area.cc.o.d"
  "bench_table12_fig8_area"
  "bench_table12_fig8_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_fig8_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
