# Empty compiler generated dependencies file for bench_table9_circuit_info.
# This may be replaced when dependencies are built.
