file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_circuit_info.dir/bench_table9_circuit_info.cc.o"
  "CMakeFiles/bench_table9_circuit_info.dir/bench_table9_circuit_info.cc.o.d"
  "bench_table9_circuit_info"
  "bench_table9_circuit_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_circuit_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
