# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/retiming_test[1]_include.cmake")
include("/root/repo/build/tests/bist_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/emit_bist_test[1]_include.cmake")
