
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/merced_core.dir/DependInfo.cmake"
  "/root/repo/build/src/retiming/CMakeFiles/merced_retiming.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/merced_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/merced_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/merced_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/merced_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/merced_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/merced_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/merced_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
