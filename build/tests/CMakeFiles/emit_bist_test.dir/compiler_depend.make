# Empty compiler generated dependencies file for emit_bist_test.
# This may be replaced when dependencies are built.
