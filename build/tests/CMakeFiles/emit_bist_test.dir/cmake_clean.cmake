file(REMOVE_RECURSE
  "CMakeFiles/emit_bist_test.dir/emit_bist_test.cc.o"
  "CMakeFiles/emit_bist_test.dir/emit_bist_test.cc.o.d"
  "emit_bist_test"
  "emit_bist_test.pdb"
  "emit_bist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_bist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
