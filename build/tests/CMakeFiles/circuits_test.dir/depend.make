# Empty dependencies file for circuits_test.
# This may be replaced when dependencies are built.
