file(REMOVE_RECURSE
  "CMakeFiles/retiming_test.dir/retiming_test.cc.o"
  "CMakeFiles/retiming_test.dir/retiming_test.cc.o.d"
  "retiming_test"
  "retiming_test.pdb"
  "retiming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retiming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
