# Empty compiler generated dependencies file for retiming_test.
# This may be replaced when dependencies are built.
