# Empty compiler generated dependencies file for bist_test.
# This may be replaced when dependencies are built.
