file(REMOVE_RECURSE
  "CMakeFiles/bist_test.dir/bist_test.cc.o"
  "CMakeFiles/bist_test.dir/bist_test.cc.o.d"
  "bist_test"
  "bist_test.pdb"
  "bist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
