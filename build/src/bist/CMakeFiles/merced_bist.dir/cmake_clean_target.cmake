file(REMOVE_RECURSE
  "libmerced_bist.a"
)
