
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bist/cbit.cc" "src/bist/CMakeFiles/merced_bist.dir/cbit.cc.o" "gcc" "src/bist/CMakeFiles/merced_bist.dir/cbit.cc.o.d"
  "/root/repo/src/bist/cbit_area.cc" "src/bist/CMakeFiles/merced_bist.dir/cbit_area.cc.o" "gcc" "src/bist/CMakeFiles/merced_bist.dir/cbit_area.cc.o.d"
  "/root/repo/src/bist/lfsr.cc" "src/bist/CMakeFiles/merced_bist.dir/lfsr.cc.o" "gcc" "src/bist/CMakeFiles/merced_bist.dir/lfsr.cc.o.d"
  "/root/repo/src/bist/misr.cc" "src/bist/CMakeFiles/merced_bist.dir/misr.cc.o" "gcc" "src/bist/CMakeFiles/merced_bist.dir/misr.cc.o.d"
  "/root/repo/src/bist/polynomials.cc" "src/bist/CMakeFiles/merced_bist.dir/polynomials.cc.o" "gcc" "src/bist/CMakeFiles/merced_bist.dir/polynomials.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/merced_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
