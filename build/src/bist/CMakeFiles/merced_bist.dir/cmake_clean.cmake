file(REMOVE_RECURSE
  "CMakeFiles/merced_bist.dir/cbit.cc.o"
  "CMakeFiles/merced_bist.dir/cbit.cc.o.d"
  "CMakeFiles/merced_bist.dir/cbit_area.cc.o"
  "CMakeFiles/merced_bist.dir/cbit_area.cc.o.d"
  "CMakeFiles/merced_bist.dir/lfsr.cc.o"
  "CMakeFiles/merced_bist.dir/lfsr.cc.o.d"
  "CMakeFiles/merced_bist.dir/misr.cc.o"
  "CMakeFiles/merced_bist.dir/misr.cc.o.d"
  "CMakeFiles/merced_bist.dir/polynomials.cc.o"
  "CMakeFiles/merced_bist.dir/polynomials.cc.o.d"
  "libmerced_bist.a"
  "libmerced_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
