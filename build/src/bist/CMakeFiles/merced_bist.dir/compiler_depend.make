# Empty compiler generated dependencies file for merced_bist.
# This may be replaced when dependencies are built.
