# Empty dependencies file for merced_flow.
# This may be replaced when dependencies are built.
