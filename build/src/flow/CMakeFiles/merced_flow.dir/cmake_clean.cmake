file(REMOVE_RECURSE
  "CMakeFiles/merced_flow.dir/saturate_network.cc.o"
  "CMakeFiles/merced_flow.dir/saturate_network.cc.o.d"
  "libmerced_flow.a"
  "libmerced_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
