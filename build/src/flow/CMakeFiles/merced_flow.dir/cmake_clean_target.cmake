file(REMOVE_RECURSE
  "libmerced_flow.a"
)
