file(REMOVE_RECURSE
  "libmerced_core.a"
)
