file(REMOVE_RECURSE
  "CMakeFiles/merced_core.dir/area_report.cc.o"
  "CMakeFiles/merced_core.dir/area_report.cc.o.d"
  "CMakeFiles/merced_core.dir/emit_bist.cc.o"
  "CMakeFiles/merced_core.dir/emit_bist.cc.o.d"
  "CMakeFiles/merced_core.dir/merced.cc.o"
  "CMakeFiles/merced_core.dir/merced.cc.o.d"
  "CMakeFiles/merced_core.dir/paper_data.cc.o"
  "CMakeFiles/merced_core.dir/paper_data.cc.o.d"
  "CMakeFiles/merced_core.dir/ppet_session.cc.o"
  "CMakeFiles/merced_core.dir/ppet_session.cc.o.d"
  "CMakeFiles/merced_core.dir/table_printer.cc.o"
  "CMakeFiles/merced_core.dir/table_printer.cc.o.d"
  "libmerced_core.a"
  "libmerced_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
