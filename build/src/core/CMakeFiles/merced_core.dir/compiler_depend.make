# Empty compiler generated dependencies file for merced_core.
# This may be replaced when dependencies are built.
