
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area_report.cc" "src/core/CMakeFiles/merced_core.dir/area_report.cc.o" "gcc" "src/core/CMakeFiles/merced_core.dir/area_report.cc.o.d"
  "/root/repo/src/core/emit_bist.cc" "src/core/CMakeFiles/merced_core.dir/emit_bist.cc.o" "gcc" "src/core/CMakeFiles/merced_core.dir/emit_bist.cc.o.d"
  "/root/repo/src/core/merced.cc" "src/core/CMakeFiles/merced_core.dir/merced.cc.o" "gcc" "src/core/CMakeFiles/merced_core.dir/merced.cc.o.d"
  "/root/repo/src/core/paper_data.cc" "src/core/CMakeFiles/merced_core.dir/paper_data.cc.o" "gcc" "src/core/CMakeFiles/merced_core.dir/paper_data.cc.o.d"
  "/root/repo/src/core/ppet_session.cc" "src/core/CMakeFiles/merced_core.dir/ppet_session.cc.o" "gcc" "src/core/CMakeFiles/merced_core.dir/ppet_session.cc.o.d"
  "/root/repo/src/core/table_printer.cc" "src/core/CMakeFiles/merced_core.dir/table_printer.cc.o" "gcc" "src/core/CMakeFiles/merced_core.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/merced_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/merced_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/merced_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/merced_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/retiming/CMakeFiles/merced_retiming.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/merced_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/merced_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/merced_circuits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
