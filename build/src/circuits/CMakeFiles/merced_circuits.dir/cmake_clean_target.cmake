file(REMOVE_RECURSE
  "libmerced_circuits.a"
)
