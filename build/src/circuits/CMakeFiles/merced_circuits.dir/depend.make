# Empty dependencies file for merced_circuits.
# This may be replaced when dependencies are built.
