file(REMOVE_RECURSE
  "CMakeFiles/merced_circuits.dir/generator.cc.o"
  "CMakeFiles/merced_circuits.dir/generator.cc.o.d"
  "CMakeFiles/merced_circuits.dir/registry.cc.o"
  "CMakeFiles/merced_circuits.dir/registry.cc.o.d"
  "CMakeFiles/merced_circuits.dir/s27.cc.o"
  "CMakeFiles/merced_circuits.dir/s27.cc.o.d"
  "libmerced_circuits.a"
  "libmerced_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
