
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/generator.cc" "src/circuits/CMakeFiles/merced_circuits.dir/generator.cc.o" "gcc" "src/circuits/CMakeFiles/merced_circuits.dir/generator.cc.o.d"
  "/root/repo/src/circuits/registry.cc" "src/circuits/CMakeFiles/merced_circuits.dir/registry.cc.o" "gcc" "src/circuits/CMakeFiles/merced_circuits.dir/registry.cc.o.d"
  "/root/repo/src/circuits/s27.cc" "src/circuits/CMakeFiles/merced_circuits.dir/s27.cc.o" "gcc" "src/circuits/CMakeFiles/merced_circuits.dir/s27.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/merced_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
