# CMake generated Testfile for 
# Source directory: /root/repo/src/retiming
# Build directory: /root/repo/build/src/retiming
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
