file(REMOVE_RECURSE
  "CMakeFiles/merced_retiming.dir/cut_retiming.cc.o"
  "CMakeFiles/merced_retiming.dir/cut_retiming.cc.o.d"
  "CMakeFiles/merced_retiming.dir/retime_graph.cc.o"
  "CMakeFiles/merced_retiming.dir/retime_graph.cc.o.d"
  "CMakeFiles/merced_retiming.dir/retimed_netlist.cc.o"
  "CMakeFiles/merced_retiming.dir/retimed_netlist.cc.o.d"
  "libmerced_retiming.a"
  "libmerced_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
