# Empty dependencies file for merced_retiming.
# This may be replaced when dependencies are built.
