file(REMOVE_RECURSE
  "libmerced_retiming.a"
)
