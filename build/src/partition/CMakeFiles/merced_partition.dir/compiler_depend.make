# Empty compiler generated dependencies file for merced_partition.
# This may be replaced when dependencies are built.
