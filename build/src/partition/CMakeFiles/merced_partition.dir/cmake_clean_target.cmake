file(REMOVE_RECURSE
  "libmerced_partition.a"
)
