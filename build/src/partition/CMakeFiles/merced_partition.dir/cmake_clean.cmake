file(REMOVE_RECURSE
  "CMakeFiles/merced_partition.dir/assign_cbit.cc.o"
  "CMakeFiles/merced_partition.dir/assign_cbit.cc.o.d"
  "CMakeFiles/merced_partition.dir/clustering.cc.o"
  "CMakeFiles/merced_partition.dir/clustering.cc.o.d"
  "CMakeFiles/merced_partition.dir/make_group.cc.o"
  "CMakeFiles/merced_partition.dir/make_group.cc.o.d"
  "CMakeFiles/merced_partition.dir/sa_partition.cc.o"
  "CMakeFiles/merced_partition.dir/sa_partition.cc.o.d"
  "libmerced_partition.a"
  "libmerced_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
