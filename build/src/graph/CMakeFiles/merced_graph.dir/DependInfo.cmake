
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/circuit_graph.cc" "src/graph/CMakeFiles/merced_graph.dir/circuit_graph.cc.o" "gcc" "src/graph/CMakeFiles/merced_graph.dir/circuit_graph.cc.o.d"
  "/root/repo/src/graph/dijkstra.cc" "src/graph/CMakeFiles/merced_graph.dir/dijkstra.cc.o" "gcc" "src/graph/CMakeFiles/merced_graph.dir/dijkstra.cc.o.d"
  "/root/repo/src/graph/scc.cc" "src/graph/CMakeFiles/merced_graph.dir/scc.cc.o" "gcc" "src/graph/CMakeFiles/merced_graph.dir/scc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/merced_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
