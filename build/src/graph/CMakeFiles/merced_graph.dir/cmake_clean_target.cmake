file(REMOVE_RECURSE
  "libmerced_graph.a"
)
