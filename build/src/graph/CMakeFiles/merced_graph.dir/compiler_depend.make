# Empty compiler generated dependencies file for merced_graph.
# This may be replaced when dependencies are built.
