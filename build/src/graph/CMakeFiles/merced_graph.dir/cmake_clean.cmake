file(REMOVE_RECURSE
  "CMakeFiles/merced_graph.dir/circuit_graph.cc.o"
  "CMakeFiles/merced_graph.dir/circuit_graph.cc.o.d"
  "CMakeFiles/merced_graph.dir/dijkstra.cc.o"
  "CMakeFiles/merced_graph.dir/dijkstra.cc.o.d"
  "CMakeFiles/merced_graph.dir/scc.cc.o"
  "CMakeFiles/merced_graph.dir/scc.cc.o.d"
  "libmerced_graph.a"
  "libmerced_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
