# Empty dependencies file for merced_sim.
# This may be replaced when dependencies are built.
