file(REMOVE_RECURSE
  "libmerced_sim.a"
)
