
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cone.cc" "src/sim/CMakeFiles/merced_sim.dir/cone.cc.o" "gcc" "src/sim/CMakeFiles/merced_sim.dir/cone.cc.o.d"
  "/root/repo/src/sim/fault.cc" "src/sim/CMakeFiles/merced_sim.dir/fault.cc.o" "gcc" "src/sim/CMakeFiles/merced_sim.dir/fault.cc.o.d"
  "/root/repo/src/sim/fault_sim.cc" "src/sim/CMakeFiles/merced_sim.dir/fault_sim.cc.o" "gcc" "src/sim/CMakeFiles/merced_sim.dir/fault_sim.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/merced_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/merced_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/merced_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/merced_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/merced_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/merced_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
