file(REMOVE_RECURSE
  "CMakeFiles/merced_sim.dir/cone.cc.o"
  "CMakeFiles/merced_sim.dir/cone.cc.o.d"
  "CMakeFiles/merced_sim.dir/fault.cc.o"
  "CMakeFiles/merced_sim.dir/fault.cc.o.d"
  "CMakeFiles/merced_sim.dir/fault_sim.cc.o"
  "CMakeFiles/merced_sim.dir/fault_sim.cc.o.d"
  "CMakeFiles/merced_sim.dir/simulator.cc.o"
  "CMakeFiles/merced_sim.dir/simulator.cc.o.d"
  "libmerced_sim.a"
  "libmerced_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
