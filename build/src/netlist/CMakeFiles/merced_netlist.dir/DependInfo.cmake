
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/area_model.cc" "src/netlist/CMakeFiles/merced_netlist.dir/area_model.cc.o" "gcc" "src/netlist/CMakeFiles/merced_netlist.dir/area_model.cc.o.d"
  "/root/repo/src/netlist/bench_io.cc" "src/netlist/CMakeFiles/merced_netlist.dir/bench_io.cc.o" "gcc" "src/netlist/CMakeFiles/merced_netlist.dir/bench_io.cc.o.d"
  "/root/repo/src/netlist/gate.cc" "src/netlist/CMakeFiles/merced_netlist.dir/gate.cc.o" "gcc" "src/netlist/CMakeFiles/merced_netlist.dir/gate.cc.o.d"
  "/root/repo/src/netlist/netlist.cc" "src/netlist/CMakeFiles/merced_netlist.dir/netlist.cc.o" "gcc" "src/netlist/CMakeFiles/merced_netlist.dir/netlist.cc.o.d"
  "/root/repo/src/netlist/stats.cc" "src/netlist/CMakeFiles/merced_netlist.dir/stats.cc.o" "gcc" "src/netlist/CMakeFiles/merced_netlist.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
