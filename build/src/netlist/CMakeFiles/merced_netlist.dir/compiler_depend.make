# Empty compiler generated dependencies file for merced_netlist.
# This may be replaced when dependencies are built.
