file(REMOVE_RECURSE
  "libmerced_netlist.a"
)
