file(REMOVE_RECURSE
  "CMakeFiles/merced_netlist.dir/area_model.cc.o"
  "CMakeFiles/merced_netlist.dir/area_model.cc.o.d"
  "CMakeFiles/merced_netlist.dir/bench_io.cc.o"
  "CMakeFiles/merced_netlist.dir/bench_io.cc.o.d"
  "CMakeFiles/merced_netlist.dir/gate.cc.o"
  "CMakeFiles/merced_netlist.dir/gate.cc.o.d"
  "CMakeFiles/merced_netlist.dir/netlist.cc.o"
  "CMakeFiles/merced_netlist.dir/netlist.cc.o.d"
  "CMakeFiles/merced_netlist.dir/stats.cc.o"
  "CMakeFiles/merced_netlist.dir/stats.cc.o.d"
  "libmerced_netlist.a"
  "libmerced_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
