file(REMOVE_RECURSE
  "CMakeFiles/fault_coverage.dir/fault_coverage.cpp.o"
  "CMakeFiles/fault_coverage.dir/fault_coverage.cpp.o.d"
  "fault_coverage"
  "fault_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
