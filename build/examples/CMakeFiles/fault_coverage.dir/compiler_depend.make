# Empty compiler generated dependencies file for fault_coverage.
# This may be replaced when dependencies are built.
