file(REMOVE_RECURSE
  "CMakeFiles/merced_cli.dir/merced_cli.cpp.o"
  "CMakeFiles/merced_cli.dir/merced_cli.cpp.o.d"
  "merced_cli"
  "merced_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merced_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
