# Empty dependencies file for merced_cli.
# This may be replaced when dependencies are built.
