# Empty compiler generated dependencies file for retiming_demo.
# This may be replaced when dependencies are built.
