file(REMOVE_RECURSE
  "CMakeFiles/retiming_demo.dir/retiming_demo.cpp.o"
  "CMakeFiles/retiming_demo.dir/retiming_demo.cpp.o.d"
  "retiming_demo"
  "retiming_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retiming_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
