// Probabilistic multicommodity-flow network saturation — paper §3.1 Table 3,
// after Yeh/Cheng/Lin (ICCAD 1992).
//
// Repeatedly picks a source node, routes a unit of "commodity" along the
// Dijkstra shortest-path tree to all reachable sinks, adds Δ flow to every
// net the tree uses, and re-prices each net with the exponential congestion
// function d(e) = exp(α · flow(e) / cap(e)). After enough samples, d(E)
// ranks nets by how structurally central they are: nets inside strongly
// connected regions absorb the most flow (paper Fig. 5) and become the
// preferred cut locations.
//
// The paper's STEP 3 loops "while ∃v: visit(v) ≤ min_visit" with uniformly
// random sources. Two faithful-but-scalable policy knobs are provided:
//  * SourcePolicy::kUniform — pick uniformly from all nodes (paper text);
//  * SourcePolicy::kUnderVisited — pick uniformly among nodes still below
//    min_visit (avoids the coupon-collector tail; same stationary result).
//  * VisitPolicy::kSourceOnly — visit(v) counts only source selections;
//  * VisitPolicy::kTreeNodes — every node settled by a Dijkstra tree counts
//    as visited (the fairness index of Table 3 monitors coverage of the
//    whole network; counting tree coverage reaches the same fairness with
//    ~|tree|/|V| fewer Dijkstra runs, which is what makes the published
//    Sparc10 runtimes plausible).
// Defaults reproduce the published behaviour at tractable cost:
// kUnderVisited + kTreeNodes.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "graph/circuit_graph.h"
#include "runtime/thread_pool.h"

namespace merced {

/// Parameters of Table 3 / §4.1 ("we set b=1, min_visit=20, α=4, Δ=0.01").
struct SaturateParams {
  double capacity = 1.0;   ///< b   — per-net capacity
  double alpha = 4.0;      ///< α   — congestion exponent
  double delta = 0.01;     ///< Δ   — flow quantum per tree net
  int min_visit = 20;      ///< fairness threshold on visit(v)

  enum class SourcePolicy { kUniform, kUnderVisited };
  enum class VisitPolicy { kSourceOnly, kTreeNodes };
  SourcePolicy source_policy = SourcePolicy::kUnderVisited;
  VisitPolicy visit_policy = VisitPolicy::kTreeNodes;

  /// Hard cap on Dijkstra runs (safety net for pathological graphs).
  std::size_t max_iterations = 2'000'000;

  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/// Result: per-net flow and congestion distance, plus sampling statistics.
struct SaturationResult {
  std::vector<double> flow;      ///< per net
  std::vector<double> distance;  ///< per net: exp(α·flow/cap), 1.0 if never used
  std::vector<std::uint32_t> visit;  ///< per node
  std::size_t iterations = 0;        ///< Dijkstra trees built
};

/// Runs the modified Saturate_Network procedure.
SaturationResult saturate_network(const CircuitGraph& graph, const SaturateParams& params);

/// Deterministic per-start seed: start 0 keeps the base seed unchanged (so a
/// 1-start run is bit-identical to the historical single-start pipeline);
/// start k > 0 uses splitmix64(base + k), decorrelating the RNG streams.
/// This mapping is part of the determinism contract (DESIGN.md "Parallel
/// runtime"): results depend only on (base seed, start index), never on
/// thread count or scheduling.
std::uint64_t multi_start_seed(std::uint64_t base_seed, std::size_t start_index) noexcept;

/// Nets ranked by descending congestion distance, ties broken by ascending
/// net id. The head of the ranking is where the saturation says the circuit
/// is most contended: Make_Group prefers to cut there, and the exact PIC
/// solver branches there first so the most consequential merge/separate
/// decisions sit at the top of its search tree (src/exact).
std::vector<NetId> congestion_ranking(const SaturationResult& sat);

/// Runs `num_starts` independent saturations of the same graph concurrently
/// on `pool`, start k seeded with multi_start_seed(params.seed, k). The
/// result vector is indexed by start, so any downstream selection that
/// scans it in index order is thread-count-independent.
std::vector<SaturationResult> saturate_network_multistart(const CircuitGraph& graph,
                                                          const SaturateParams& params,
                                                          std::size_t num_starts,
                                                          ThreadPool& pool);

}  // namespace merced
