#include "flow/saturate_network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/dijkstra.h"
#include "obs/obs.h"

namespace merced {

namespace {

/// Tracks the set of nodes whose visit count is still <= threshold, with
/// O(1) random sampling and removal.
class UnderVisitedSet {
 public:
  explicit UnderVisitedSet(std::size_t n) : pos_(n), members_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      pos_[i] = i;
      members_[i] = static_cast<NodeId>(i);
    }
  }

  bool empty() const noexcept { return members_.empty(); }
  std::size_t size() const noexcept { return members_.size(); }

  NodeId sample(std::mt19937_64& rng) const {
    std::uniform_int_distribution<std::size_t> pick(0, members_.size() - 1);
    return members_[pick(rng)];
  }

  bool contains(NodeId v) const noexcept {
    return pos_[v] < members_.size() && members_[pos_[v]] == v;
  }

  void remove(NodeId v) {
    if (!contains(v)) return;
    const std::size_t p = pos_[v];
    const NodeId last = members_.back();
    members_[p] = last;
    pos_[last] = p;
    members_.pop_back();
    pos_[v] = static_cast<std::size_t>(-1);
  }

 private:
  std::vector<std::size_t> pos_;
  std::vector<NodeId> members_;
};

}  // namespace

SaturationResult saturate_network(const CircuitGraph& g, const SaturateParams& p) {
  MERCED_SPAN("saturate_network");
  if (p.capacity <= 0) throw std::invalid_argument("saturate_network: capacity must be > 0");
  if (p.delta <= 0) throw std::invalid_argument("saturate_network: delta must be > 0");
  if (p.min_visit < 0) throw std::invalid_argument("saturate_network: min_visit must be >= 0");

  const std::size_t n = g.num_nodes();
  SaturationResult r;
  r.flow.assign(g.num_nets(), 0.0);
  r.distance.assign(g.num_nets(), 1.0);  // STEP 1.1: d(e) = 1
  r.visit.assign(n, 0);                  // STEP 2.1: visit(v) = 0
  if (n == 0) return r;

  std::mt19937_64 rng(p.seed);
  UnderVisitedSet under(n);
  std::uniform_int_distribution<std::size_t> any_node(0, n - 1);

  const auto threshold = static_cast<std::uint32_t>(p.min_visit);

  auto bump_visit = [&](NodeId v) {
    if (++r.visit[v] > threshold) under.remove(v);
  };

  // STEP 3: while some node is insufficiently visited. Work counters
  // accumulate locally and flush once per saturation, so the loop itself
  // stays uninstrumented.
  std::uint64_t nets_flowed = 0;
  while (!under.empty() && r.iterations < p.max_iterations) {
    NodeId src;
    if (p.source_policy == SaturateParams::SourcePolicy::kUniform) {
      src = static_cast<NodeId>(any_node(rng));
    } else {
      src = under.sample(rng);
    }
    if (p.visit_policy == SaturateParams::VisitPolicy::kSourceOnly) {
      bump_visit(src);
    }

    // STEP 3.2: shortest path tree from src to all (reachable) sinks.
    const ShortestPathTree tree = dijkstra(g, src, r.distance);
    ++r.iterations;

    if (p.visit_policy == SaturateParams::VisitPolicy::kTreeNodes) {
      for (NodeId v : tree.reached) bump_visit(v);
    }

    // STEP 3.3: inject Δ flow on each net of the tree and re-price it.
    for (NetId net : tree_nets(g, tree)) {
      r.flow[net] += p.delta;
      r.distance[net] = std::exp(p.alpha * r.flow[net] / p.capacity);
      ++nets_flowed;
    }
  }
  MERCED_COUNT(obs::Counter::kFlowIterations, r.iterations);
  MERCED_COUNT(obs::Counter::kFlowTreeNetsFlowed, nets_flowed);
  return r;
}

std::uint64_t multi_start_seed(std::uint64_t base_seed, std::size_t start_index) noexcept {
  if (start_index == 0) return base_seed;
  // splitmix64 finalizer (Steele/Lea/Flood) over base + index.
  std::uint64_t z = base_seed + static_cast<std::uint64_t>(start_index);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<NetId> congestion_ranking(const SaturationResult& sat) {
  std::vector<NetId> order(sat.distance.size());
  for (NetId n = 0; n < order.size(); ++n) order[n] = n;
  std::sort(order.begin(), order.end(), [&](NetId a, NetId b) {
    if (sat.distance[a] != sat.distance[b]) return sat.distance[a] > sat.distance[b];
    return a < b;
  });
  return order;
}

std::vector<SaturationResult> saturate_network_multistart(const CircuitGraph& graph,
                                                          const SaturateParams& params,
                                                          std::size_t num_starts,
                                                          ThreadPool& pool) {
  if (num_starts == 0) throw std::invalid_argument("saturate_network_multistart: num_starts must be > 0");
  return parallel_map<SaturationResult>(pool, num_starts, [&](std::size_t k) {
    SaturateParams p = params;
    p.seed = multi_start_seed(params.seed, k);
    return saturate_network(graph, p);
  });
}

}  // namespace merced
