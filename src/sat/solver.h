// A compact CDCL SAT solver — the proof core behind the redundancy and
// equivalence oracles.
//
// The architecture is the classic conflict-driven loop (dawn/MiniSat
// lineage), sized for the tiny, structurally-UNSAT-heavy CNFs circuit
// miters produce here:
//
//  * two-watched-literal propagation — each clause is watched by two of
//    its literals; only clauses whose watch gets falsified are visited, so
//    unit propagation cost tracks the active part of the formula;
//  * 1UIP conflict analysis — on conflict, resolve backwards over the
//    implication trail until exactly one literal of the current decision
//    level remains, learn that asserting clause, and backjump to the
//    second-highest level in it;
//  * VSIDS-lite decisions — per-variable activity bumped for every
//    variable touched by conflict analysis, exponentially decayed per
//    conflict, with a lazy max-heap over activities and phase saving;
//  * restart-free — the miters here are a few thousand variables at most
//    (hash-consed Tseitin keeps equivalent structure shared), so restarts
//    and clause-database reduction would be dead weight. A conflict budget
//    guards against pathological inputs instead.
//
// Invariants the tests pin (tests/sat_test.cc): every kSat answer carries a
// model that satisfies all original clauses; every kUnsat answer agrees
// with a brute-force truth-table/DPLL oracle; propagation alone (zero
// decisions) settles unit-chain formulas.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/cnf.h"

namespace merced::sat {

enum class Verdict : std::uint8_t {
  kSat,
  kUnsat,
  kUnknown,  ///< conflict budget exhausted (never on circuit miters; see solve())
};

/// Work counters of one Solver lifetime, flushed into the obs layer by the
/// oracles (redundancy/equivalence) after each solve.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;   ///< literals enqueued on the trail
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t max_trail = 0;      ///< deepest trail seen
};

class Solver {
 public:
  Solver();

  /// Adds a fresh variable and returns its index.
  Var new_var();
  std::size_t num_vars() const noexcept { return assign_.size(); }

  /// Adds a clause over existing variables. Duplicate literals are merged
  /// and tautologies (x ∨ ¬x) dropped. Returns false when the formula is
  /// already unsatisfiable at level 0 (empty clause, or a unit contradicting
  /// a prior level-0 fact) — callers may stop encoding early.
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Decides satisfiability of everything added so far. Repeatable: the
  /// trail unwinds to level 0 on exit, and more clauses/vars may be added
  /// between calls (incremental in the grow-only sense). `max_conflicts`
  /// bounds the search (0 = unbounded); the bounded form returns kUnknown
  /// on budget exhaustion instead of looping on adversarial inputs.
  Verdict solve(std::uint64_t max_conflicts = 0);

  /// Model access after kSat: value of `v` in the satisfying assignment.
  bool model_value(Var v) const;
  /// True iff `l` is satisfied by the model.
  bool model_holds(Lit l) const { return model_value(l.var()) != l.negated(); }

  const SolverStats& stats() const noexcept { return stats_; }

 private:
  enum : std::uint8_t { kUndef = 2 };  ///< assign_ value for "unassigned"

  struct Watcher {
    std::uint32_t clause = 0;  ///< index into clauses_
    Lit blocker;               ///< other watch; satisfied blocker skips the visit
  };

  bool enqueue(Lit l, std::int32_t reason);
  std::int32_t propagate();  ///< conflicting clause index, or -1
  void analyze(std::int32_t conflict, Clause& learnt, std::int32_t& backjump_level);
  void backtrack(std::int32_t level);
  Lit pick_branch();
  void bump(Var v);
  void attach(std::uint32_t clause_index);

  std::uint8_t value_of(Lit l) const {
    const std::uint8_t a = assign_[l.var()];
    return a == kUndef ? std::uint8_t{kUndef} : static_cast<std::uint8_t>(a ^ (l.code & 1));
  }

  std::vector<Clause> clauses_;            ///< originals + learnt, one arena
  std::vector<std::vector<Watcher>> watches_;  ///< per literal code
  std::vector<std::uint8_t> assign_;       ///< per var: 0 / 1 / kUndef
  std::vector<std::uint8_t> phase_;        ///< per var: saved last value
  std::vector<std::int32_t> level_;        ///< per var: decision level
  std::vector<std::int32_t> reason_;       ///< per var: clause index or -1
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;     ///< trail size at each decision
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  std::vector<std::pair<double, Var>> order_;  ///< lazy max-heap (stale entries)
  std::vector<std::uint8_t> seen_;             ///< analyze() scratch

  bool unsat_ = false;  ///< level-0 contradiction discovered
  SolverStats stats_;
};

}  // namespace merced::sat
