#include "sat/equivalence.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"
#include "retiming/retimed_netlist.h"
#include "sat/tseitin.h"
#include "sim/simulator.h"

namespace merced::sat {

namespace {

void accumulate(SolverStats& into, const SolverStats& s) {
  into.decisions += s.decisions;
  into.propagations += s.propagations;
  into.conflicts += s.conflicts;
  into.learned_clauses += s.learned_clauses;
  into.learned_literals += s.learned_literals;
  into.max_trail = std::max(into.max_trail, s.max_trail);
}

/// Pairing of the two netlists' PIs and POs (by net name; apply_retiming
/// preserves names).
struct IoMap {
  std::vector<std::size_t> rt_input_src;  ///< per retimed input: original input index
  std::vector<GateId> orig_po;
  std::vector<GateId> rt_po;
};

IoMap map_io(const Netlist& orig, const Netlist& rt) {
  IoMap io;
  std::vector<std::size_t> index_of(orig.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < orig.inputs().size(); ++i) index_of[orig.inputs()[i]] = i;
  io.rt_input_src.reserve(rt.inputs().size());
  for (const GateId id : rt.inputs()) {
    const GateId src = orig.find(rt.gate(id).name);
    if (src == kNoGate || index_of[src] == static_cast<std::size_t>(-1)) {
      throw std::logic_error("equivalence: retimed PI '" + rt.gate(id).name +
                             "' has no original counterpart");
    }
    io.rt_input_src.push_back(index_of[src]);
  }
  for (const GateId id : orig.outputs()) {
    const GateId r = rt.find(orig.gate(id).name);
    if (r == kNoGate || !rt.is_output(r)) {
      throw std::logic_error("equivalence: retimed PO '" + orig.gate(id).name +
                             "' has no original counterpart");
    }
    io.orig_po.push_back(id);
    io.rt_po.push_back(r);
  }
  return io;
}

/// Unrolls `orig` symbolically over `frames` frames. `initial` is the state
/// presented during frame 1 (concrete false, or free variables for the
/// induction window). Fills `pis[f-1]` with the frame-f PI literals and
/// returns the per-frame full gate-literal vectors.
std::vector<std::vector<Lit>> unroll(CircuitEncoder& enc, const Netlist& orig,
                                     std::size_t frames, std::span<const Lit> initial,
                                     std::vector<std::vector<Lit>>& pis) {
  std::vector<std::vector<Lit>> values;
  values.reserve(frames);
  pis.assign(frames, {});
  std::vector<Lit> state(initial.begin(), initial.end());
  for (std::size_t f = 1; f <= frames; ++f) {
    std::vector<Lit>& in = pis[f - 1];
    in.reserve(orig.inputs().size());
    for (std::size_t i = 0; i < orig.inputs().size(); ++i) in.push_back(enc.fresh());
    values.push_back(encode_frame(enc, orig, in, state));
    for (std::size_t i = 0; i < orig.dffs().size(); ++i) {
      state[i] = values.back()[orig.gate(orig.dffs()[i]).fanins.at(0)];
    }
  }
  return values;
}

/// Replays a base-miter model on the two concrete machines: original from
/// all-zero, retimed from its honestly computed warm initial state. True
/// iff some PO really diverges during the check frames.
bool confirm_counterexample(const Netlist& orig, const RetimedCircuit& rt,
                            const IoMap& io,
                            const std::vector<std::vector<bool>>& inputs,
                            std::size_t warmup) {
  try {
    Simulator so(orig);
    so.set_state(std::vector<bool>(orig.dffs().size(), false));
    const std::span<const std::vector<bool>> warm(inputs.data(), warmup);
    const std::vector<bool> rstate = compute_retimed_initial_state(
        orig, rt, std::vector<bool>(orig.dffs().size(), false), warm);
    Simulator sr(rt.netlist);
    sr.set_state(rstate);
    for (std::size_t f = 1; f <= inputs.size(); ++f) {
      so.step(inputs[f - 1]);
      if (f <= warmup) continue;
      std::vector<bool> rin(io.rt_input_src.size());
      for (std::size_t j = 0; j < rin.size(); ++j) {
        rin[j] = inputs[f - 1][io.rt_input_src[j]];
      }
      sr.step(rin);
      for (std::size_t o = 0; o < io.orig_po.size(); ++o) {
        if (so.value(io.orig_po[o]) != sr.value(io.rt_po[o])) return true;
      }
    }
  } catch (const std::exception&) {
    return false;  // warm-state computation rejected the plan: not confirmable
  }
  return false;
}

}  // namespace

EquivalenceResult check_retiming_equivalence(const CircuitGraph& graph,
                                             const Retiming& rho,
                                             const EquivalenceOptions& opt) {
  MERCED_SPAN("check_retiming_equivalence");
  EquivalenceResult res;
  const Netlist& orig = graph.netlist();

  const RetimeGraph rgraph(graph);
  RetimedCircuit rt;
  try {
    rt = apply_retiming(graph, rgraph, rho);
  } catch (const std::exception& e) {
    res.error = e.what();
    MERCED_COUNT(obs::Counter::kEquivChecks, 1);
    return res;  // kBuildFailed — the plan itself is rejected
  }
  const Netlist& rnl = rt.netlist;
  res.retimed_registers = rt.origins.size();

  const std::size_t T = std::max<std::size_t>(1, opt.check_frames);
  res.check_frames = T;

  // W: smallest warm-up putting every tap frame at >= 1 (tap frame of the
  // register (u, k, ρ) presented during frame f is f − k − ρ).
  std::int64_t max_kr = 0;
  for (const auto& o : rt.origins) {
    max_kr = std::max<std::int64_t>(max_kr, static_cast<std::int64_t>(o.depth) + o.rho);
  }
  const std::int64_t W = max_kr;
  res.warmup_frames = static_cast<std::size_t>(W);
  const auto tap_frame = [&](const RetimedCircuit::RegisterOrigin& o,
                             std::int64_t f) -> std::int64_t {
    return f - o.depth - o.rho + opt.tap_skew;
  };

  std::int64_t frames = W + static_cast<std::int64_t>(T);
  for (const auto& o : rt.origins) frames = std::max(frames, tap_frame(o, W + 1));
  if (frames > static_cast<std::int64_t>(opt.max_frames)) {
    res.error = "equivalence: unroll of " + std::to_string(frames) +
                " frames exceeds max_frames";
    MERCED_COUNT(obs::Counter::kEquivChecks, 1);
    return res;
  }

  IoMap io;
  try {
    io = map_io(orig, rnl);
  } catch (const std::exception& e) {
    res.error = e.what();
    MERCED_COUNT(obs::Counter::kEquivChecks, 1);
    return res;
  }

  const auto flush = [&](const Solver& solver, const CircuitEncoder& enc) {
    ++res.solves;
    accumulate(res.stats, solver.stats());
    res.cache_hits += enc.cache_hits();
    res.gates_encoded += enc.gates_encoded();
  };

  // ---------- base miter: concrete zero start, W warm-up, T check frames.
  Verdict base = Verdict::kUnsat;
  {
    Solver solver;
    CircuitEncoder enc(solver);
    std::vector<std::vector<Lit>> pis;
    const std::vector<Lit> zero(orig.dffs().size(), enc.lit_false());
    const std::vector<std::vector<Lit>> of =
        unroll(enc, orig, static_cast<std::size_t>(frames), zero, pis);

    std::vector<Lit> rstate(rt.origins.size());
    for (std::size_t i = 0; i < rt.origins.size(); ++i) {
      const std::int64_t t = std::clamp<std::int64_t>(tap_frame(rt.origins[i], W + 1),
                                                      1, frames);
      rstate[i] = of[static_cast<std::size_t>(t - 1)][rt.origins[i].source];
    }

    Clause any_diff;
    for (std::int64_t f = W + 1; f <= W + static_cast<std::int64_t>(T); ++f) {
      std::vector<Lit> rin(io.rt_input_src.size());
      for (std::size_t j = 0; j < rin.size(); ++j) {
        rin[j] = pis[static_cast<std::size_t>(f - 1)][io.rt_input_src[j]];
      }
      const std::vector<Lit> rf = encode_frame(enc, rnl, rin, rstate);
      for (std::size_t o = 0; o < io.orig_po.size(); ++o) {
        const Lit diff = enc.encode_xor(of[static_cast<std::size_t>(f - 1)][io.orig_po[o]],
                                        rf[io.rt_po[o]]);
        if (diff != enc.lit_false()) any_diff.push_back(diff);
      }
      for (std::size_t i = 0; i < rnl.dffs().size(); ++i) {
        rstate[i] = rf[rnl.gate(rnl.dffs()[i]).fanins.at(0)];
      }
    }

    if (any_diff.empty()) {
      // Hash-consing folded every output pair to the same literal: the
      // machines are structurally identical over the window.
      base = Verdict::kUnsat;
    } else {
      solver.add_clause(any_diff);
      base = solver.solve(opt.max_conflicts);
    }
    flush(solver, enc);

    if (base == Verdict::kSat) {
      EquivalenceCounterexample cex;
      const auto replay_frames = static_cast<std::size_t>(W) + T;
      cex.inputs.resize(replay_frames);
      for (std::size_t f = 0; f < replay_frames; ++f) {
        cex.inputs[f].resize(orig.inputs().size());
        for (std::size_t i = 0; i < orig.inputs().size(); ++i) {
          cex.inputs[f][i] = solver.model_holds(pis[f][i]);
        }
      }
      cex.confirmed = confirm_counterexample(orig, rt, io, cex.inputs,
                                             static_cast<std::size_t>(W));
      res.counterexample = std::move(cex);
    }
  }
  res.base_proved = base == Verdict::kUnsat;

  // ---------- inductive step: free state, one re-establishment frame.
  Verdict step = Verdict::kUnsat;
  bool step_ran = false;
  if (opt.induction && res.base_proved && !rt.origins.empty()) {
    const std::int64_t t0 = std::max<std::int64_t>(1, max_kr);
    std::int64_t ind_frames = t0 + 1;
    for (const auto& o : rt.origins) {
      ind_frames = std::max(ind_frames, tap_frame(o, t0 + 2));
    }
    if (ind_frames > static_cast<std::int64_t>(opt.max_frames)) {
      res.error = "equivalence: induction unroll of " + std::to_string(ind_frames) +
                  " frames exceeds max_frames";
      MERCED_COUNT(obs::Counter::kEquivChecks, 1);
      return res;
    }
    Solver solver;
    CircuitEncoder enc(solver);
    std::vector<Lit> s0(orig.dffs().size());
    for (Lit& l : s0) l = enc.fresh();
    std::vector<std::vector<Lit>> pis;
    const std::vector<std::vector<Lit>> of =
        unroll(enc, orig, static_cast<std::size_t>(ind_frames), s0, pis);

    std::vector<Lit> rstate(rt.origins.size());
    for (std::size_t i = 0; i < rt.origins.size(); ++i) {
      const std::int64_t t = std::clamp<std::int64_t>(tap_frame(rt.origins[i], t0 + 1),
                                                      1, ind_frames);
      rstate[i] = of[static_cast<std::size_t>(t - 1)][rt.origins[i].source];
    }
    std::vector<Lit> rin(io.rt_input_src.size());
    for (std::size_t j = 0; j < rin.size(); ++j) {
      rin[j] = pis[static_cast<std::size_t>(t0)][io.rt_input_src[j]];
    }
    const std::vector<Lit> rf = encode_frame(enc, rnl, rin, rstate);

    Clause violated;
    for (std::size_t o = 0; o < io.orig_po.size(); ++o) {
      const Lit diff = enc.encode_xor(of[static_cast<std::size_t>(t0)][io.orig_po[o]],
                                      rf[io.rt_po[o]]);
      if (diff != enc.lit_false()) violated.push_back(diff);
    }
    for (std::size_t i = 0; i < rt.origins.size(); ++i) {
      const Lit next = rf[rnl.gate(rnl.dffs()[i]).fanins.at(0)];
      const std::int64_t t = std::clamp<std::int64_t>(tap_frame(rt.origins[i], t0 + 2),
                                                      1, ind_frames);
      const Lit want = of[static_cast<std::size_t>(t - 1)][rt.origins[i].source];
      const Lit diff = enc.encode_xor(next, want);
      if (diff != enc.lit_false()) violated.push_back(diff);
    }

    if (!violated.empty()) {
      solver.add_clause(violated);
      step = solver.solve(opt.max_conflicts);
    }
    step_ran = true;
    flush(solver, enc);
  }
  res.induction_proved = !opt.induction || !step_ran || step == Verdict::kUnsat;

  if (base == Verdict::kUnknown || step == Verdict::kUnknown) {
    res.status = EquivStatus::kUnknown;
  } else if (base == Verdict::kSat || step == Verdict::kSat) {
    res.status = EquivStatus::kRefuted;
  } else {
    res.status = EquivStatus::kProved;
  }

  MERCED_COUNT(obs::Counter::kEquivChecks, 1);
  MERCED_COUNT(obs::Counter::kSatSolves, res.solves);
  MERCED_COUNT(obs::Counter::kSatConflicts, res.stats.conflicts);
  MERCED_COUNT(obs::Counter::kSatDecisions, res.stats.decisions);
  MERCED_COUNT(obs::Counter::kSatPropagations, res.stats.propagations);
  MERCED_COUNT(obs::Counter::kSatLearnedClauses, res.stats.learned_clauses);
  return res;
}

}  // namespace merced::sat
