#include "sat/prove_json.h"

#include <array>
#include <ostream>

namespace merced::sat {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

void write_prove_json(std::ostream& os, std::span<const CutProof> proofs,
                      const ProveRunInfo& run) {
  std::uint64_t total = 0, detected = 0, redundant = 0, detectable = 0;
  std::uint64_t replayed = 0, unknown = 0, inconsistent = 0, solves = 0, conflicts = 0;
  for (const CutProof& p : proofs) {
    total += p.total_faults;
    detected += p.detected;
    redundant += p.proved_redundant;
    detectable += p.proved_detectable;
    replayed += p.replayed;
    unknown += p.unknown;
    inconsistent += p.inconsistent;
    solves += p.solves;
    conflicts += p.solver.conflicts;
  }
  const bool fully = unknown == 0 && inconsistent == 0;

  os << "{\n  \"schema\": \"" << kProveSchema << "\",\n  \"run\": {\"tool\": \"";
  json_escape(os, run.tool);
  os << "\", \"circuit\": \"";
  json_escape(os, run.circuit);
  os << "\", \"lk\": " << run.lk << "},\n  \"summary\": {\"cuts\": " << proofs.size()
     << ", \"total_faults\": " << total << ", \"detected\": " << detected
     << ", \"proved_redundant\": " << redundant
     << ", \"proved_detectable\": " << detectable << ", \"replayed\": " << replayed
     << ", \"unknown\": " << unknown << ", \"inconsistent\": " << inconsistent
     << ", \"solves\": " << solves << ", \"conflicts\": " << conflicts
     << ", \"fully_explained\": " << (fully ? "true" : "false") << "},\n  \"cuts\": [";
  for (std::size_t i = 0; i < proofs.size(); ++i) {
    const CutProof& p = proofs[i];
    if (i) os << ",";
    os << "\n    {\"cluster\": " << p.cluster_index << ", \"inputs\": " << p.num_inputs
       << ", \"total_faults\": " << p.total_faults << ", \"detected\": " << p.detected
       << ", \"proved_redundant\": " << p.proved_redundant
       << ", \"proved_detectable\": " << p.proved_detectable
       << ", \"replayed\": " << p.replayed << ", \"unknown\": " << p.unknown
       << ", \"inconsistent\": " << p.inconsistent << ", \"solves\": " << p.solves << "}";
  }
  os << "\n  ]\n}\n";
}

namespace {

bool is_uint(const obs::JsonValue& v) {
  return v.is_number() && v.as_number() >= 0 &&
         v.as_number() == static_cast<double>(static_cast<std::uint64_t>(v.as_number()));
}

std::string check_member(const obs::JsonValue& obj, const char* key,
                         obs::JsonValue::Kind kind, const char* where) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return std::string(where) + ": missing member \"" + key + "\"";
  if (v->kind() != kind) {
    return std::string(where) + ": member \"" + key + "\" has wrong type";
  }
  return "";
}

constexpr std::array<const char*, 9> kCutCounters = {
    "inputs",           "total_faults", "detected",
    "proved_redundant", "proved_detectable", "replayed",
    "unknown",          "inconsistent", "solves",
};

}  // namespace

std::string validate_prove_json(const obs::JsonValue& doc) {
  using Kind = obs::JsonValue::Kind;
  if (!doc.is_object()) return "document is not an object";
  if (std::string err = check_member(doc, "schema", Kind::kString, "root"); !err.empty()) {
    return err;
  }
  if (doc.find("schema")->as_string() != kProveSchema) {
    return "unknown schema \"" + doc.find("schema")->as_string() + "\"";
  }

  if (std::string err = check_member(doc, "run", Kind::kObject, "root"); !err.empty()) {
    return err;
  }
  const obs::JsonValue& run = *doc.find("run");
  for (const char* key : {"tool", "circuit"}) {
    if (std::string err = check_member(run, key, Kind::kString, "run"); !err.empty()) {
      return err;
    }
  }
  if (std::string err = check_member(run, "lk", Kind::kNumber, "run"); !err.empty()) {
    return err;
  }
  if (!is_uint(*run.find("lk"))) return "run: member \"lk\" is not a non-negative integer";

  if (std::string err = check_member(doc, "summary", Kind::kObject, "root"); !err.empty()) {
    return err;
  }
  const obs::JsonValue& summary = *doc.find("summary");
  for (const char* key : {"cuts", "total_faults", "detected", "proved_redundant",
                          "proved_detectable", "replayed", "unknown", "inconsistent",
                          "solves", "conflicts"}) {
    if (std::string err = check_member(summary, key, Kind::kNumber, "summary");
        !err.empty()) {
      return err;
    }
    if (!is_uint(*summary.find(key))) {
      return std::string("summary: member \"") + key + "\" is not a non-negative integer";
    }
  }
  if (std::string err = check_member(summary, "fully_explained", Kind::kBool, "summary");
      !err.empty()) {
    return err;
  }

  if (std::string err = check_member(doc, "cuts", Kind::kArray, "root"); !err.empty()) {
    return err;
  }
  const auto& cuts = doc.find("cuts")->as_array();
  std::array<std::uint64_t, kCutCounters.size()> sums{};
  for (const obs::JsonValue& c : cuts) {
    if (!c.is_object()) return "cuts: entry is not an object";
    if (std::string err = check_member(c, "cluster", Kind::kNumber, "cut"); !err.empty()) {
      return err;
    }
    if (!is_uint(*c.find("cluster"))) {
      return "cut: member \"cluster\" is not a non-negative integer";
    }
    std::array<std::uint64_t, kCutCounters.size()> v{};
    for (std::size_t k = 0; k < kCutCounters.size(); ++k) {
      if (std::string err = check_member(c, kCutCounters[k], Kind::kNumber, "cut");
          !err.empty()) {
        return err;
      }
      if (!is_uint(*c.find(kCutCounters[k]))) {
        return std::string("cut: member \"") + kCutCounters[k] +
               "\" is not a non-negative integer";
      }
      v[k] = static_cast<std::uint64_t>(c.find(kCutCounters[k])->as_number());
      sums[k] += v[k];
    }
    // Per-cut arithmetic: verdicts partition the solve count, detection and
    // replay stay within their universes.
    const std::uint64_t total_faults = v[1], det = v[2], red = v[3], sat = v[4];
    const std::uint64_t rep = v[5], unk = v[6], solves = v[8];
    if (det > total_faults) return "cut: \"detected\" exceeds \"total_faults\"";
    if (rep > sat) return "cut: \"replayed\" exceeds \"proved_detectable\"";
    if (red + sat + unk != solves) {
      return "cut: verdict counts do not partition \"solves\"";
    }
  }

  // Cross-check the summary against the cuts array.
  auto num = [&](const char* key) {
    return static_cast<std::uint64_t>(summary.find(key)->as_number());
  };
  if (num("cuts") != cuts.size()) {
    return "summary: \"cuts\" disagrees with the cuts array";
  }
  const std::array<const char*, 8> totals = {
      "total_faults", "detected",     "proved_redundant", "proved_detectable",
      "replayed",     "unknown",      "inconsistent",     "solves",
  };
  for (std::size_t k = 0; k < totals.size(); ++k) {
    if (num(totals[k]) != sums[k + 1]) {
      return std::string("summary: \"") + totals[k] +
             "\" disagrees with the cuts array";
    }
  }
  if (summary.find("fully_explained")->as_bool() !=
      (num("unknown") == 0 && num("inconsistent") == 0)) {
    return "summary: \"fully_explained\" disagrees with the verdict counts";
  }
  return "";
}

}  // namespace merced::sat
