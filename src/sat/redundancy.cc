#include "sat/redundancy.h"

#include "obs/obs.h"
#include "sat/tseitin.h"

namespace merced::sat {

namespace {

void accumulate(SolverStats& into, const SolverStats& s) {
  into.decisions += s.decisions;
  into.propagations += s.propagations;
  into.conflicts += s.conflicts;
  into.learned_clauses += s.learned_clauses;
  into.learned_literals += s.learned_literals;
  into.max_trail = std::max(into.max_trail, s.max_trail);
}

}  // namespace

CutProof prove_cone_coverage(const ConeSimulator& cone, std::size_t cluster_index,
                             const ProveOptions& opt) {
  MERCED_SPAN("prove_cut_coverage", cluster_index);

  CoverageOptions sweep_opt;
  sweep_opt.max_inputs = opt.max_inputs;
  sweep_opt.jobs = opt.jobs;
  const CoverageResult sweep = exhaustive_coverage(cone, sweep_opt);

  // Rebuild the per-fault sweep verdicts (undetected is a subsequence of
  // the collapsed fault list, so one forward scan pairs them up).
  const std::vector<Fault> faults = cone.cluster_faults();

  CutProof proof;
  proof.cluster_index = cluster_index;
  proof.num_inputs = cone.cut_inputs().size();
  proof.total_faults = faults.size();
  proof.detected = sweep.detected;
  proof.verdicts.reserve(faults.size());

  std::size_t undetected_at = 0;
  for (const Fault& fault : faults) {
    FaultVerdict v;
    v.fault = fault;
    v.detected_by_sweep = true;
    if (undetected_at < sweep.undetected.size() &&
        sweep.undetected[undetected_at] == fault) {
      v.detected_by_sweep = false;
      ++undetected_at;
    }

    if (!v.detected_by_sweep || opt.prove_detected) {
      Solver solver;
      CircuitEncoder enc(solver);
      const std::vector<Lit> inputs = encode_fault_miter(enc, cone, fault);
      const Verdict verdict = solver.solve(opt.max_conflicts);
      ++proof.solves;
      accumulate(proof.solver, solver.stats());

      switch (verdict) {
        case Verdict::kUnsat:
          v.proof = FaultVerdict::Proof::kRedundant;
          ++proof.proved_redundant;
          break;
        case Verdict::kSat: {
          v.proof = FaultVerdict::Proof::kDetectable;
          ++proof.proved_detectable;
          v.pattern.reserve(inputs.size());
          for (const Lit l : inputs) v.pattern.push_back(solver.model_holds(l));
          v.replayed = detects_pattern(cone, fault, v.pattern);
          if (v.replayed) ++proof.replayed;
          break;
        }
        case Verdict::kUnknown:
          ++proof.unknown;
          break;
      }
      v.consistent = v.detected_by_sweep
                         ? (v.proof == FaultVerdict::Proof::kDetectable && v.replayed)
                         : v.proof == FaultVerdict::Proof::kRedundant;
    } else {
      // Sweep-detected fault, SAT cross-check skipped by option: the sweep
      // itself exhibited a detecting pattern, so it stands as consistent.
      v.proof = FaultVerdict::Proof::kDetectable;
      v.consistent = true;
    }
    if (!v.consistent) ++proof.inconsistent;
    proof.verdicts.push_back(std::move(v));
  }

  MERCED_COUNT(obs::Counter::kSatSolves, proof.solves);
  MERCED_COUNT(obs::Counter::kSatConflicts, proof.solver.conflicts);
  MERCED_COUNT(obs::Counter::kSatDecisions, proof.solver.decisions);
  MERCED_COUNT(obs::Counter::kSatPropagations, proof.solver.propagations);
  MERCED_COUNT(obs::Counter::kSatLearnedClauses, proof.solver.learned_clauses);
  MERCED_COUNT(obs::Counter::kProveRedundantProved, proof.proved_redundant);
  MERCED_COUNT(obs::Counter::kProveVectorsReplayed, proof.replayed);
  return proof;
}

CutProof prove_cut_coverage(const CircuitGraph& graph, const Clustering& clustering,
                            std::size_t cluster_index, const ProveOptions& opt) {
  const ConeSimulator cone(graph, clustering, cluster_index);
  return prove_cone_coverage(cone, cluster_index, opt);
}

FaultVerdict prove_fault(const ConeSimulator& cone, const Fault& fault,
                         std::uint64_t max_conflicts) {
  FaultVerdict v;
  v.fault = fault;

  Solver solver;
  CircuitEncoder enc(solver);
  const std::vector<Lit> inputs = encode_fault_miter(enc, cone, fault);
  const Verdict verdict = solver.solve(max_conflicts);

  switch (verdict) {
    case Verdict::kUnsat:
      v.proof = FaultVerdict::Proof::kRedundant;
      break;
    case Verdict::kSat:
      v.proof = FaultVerdict::Proof::kDetectable;
      v.pattern.reserve(inputs.size());
      for (const Lit l : inputs) v.pattern.push_back(solver.model_holds(l));
      v.replayed = detects_pattern(cone, fault, v.pattern);
      break;
    case Verdict::kUnknown:
      break;
  }

  const SolverStats& s = solver.stats();
  MERCED_COUNT(obs::Counter::kSatSolves, 1);
  MERCED_COUNT(obs::Counter::kSatConflicts, s.conflicts);
  MERCED_COUNT(obs::Counter::kSatDecisions, s.decisions);
  MERCED_COUNT(obs::Counter::kSatPropagations, s.propagations);
  MERCED_COUNT(obs::Counter::kSatLearnedClauses, s.learned_clauses);
  return v;
}

UntestableCrossCheck cross_check_untestable(const ConeSimulator& cone,
                                            std::span<const Fault> faults,
                                            std::span<const std::uint8_t> untestable,
                                            std::uint64_t max_conflicts) {
  MERCED_SPAN("cross_check_untestable");
  UntestableCrossCheck result;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (untestable[i] == 0) continue;
    ++result.checked;
    const FaultVerdict v = prove_fault(cone, faults[i], max_conflicts);
    switch (v.proof) {
      case FaultVerdict::Proof::kRedundant:
        ++result.confirmed;
        MERCED_COUNT(obs::Counter::kProveRedundantProved, 1);
        break;
      case FaultVerdict::Proof::kDetectable:
        // The solver found a pattern the static proof says cannot exist —
        // record it whether or not the kernel replay also confirms it (a
        // non-replaying pattern would indict the kernel instead, equally
        // fatal).
        result.disagreements.push_back(i);
        break;
      case FaultVerdict::Proof::kUnknown:
        ++result.unknown;
        break;
    }
  }
  return result;
}

}  // namespace merced::sat
