#include "sat/tseitin.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "graph/circuit_graph.h"

namespace merced::sat {

std::size_t CircuitEncoder::KeyHash::operator()(const Key& k) const noexcept {
  // FNV-1a over the type byte and literal codes.
  std::size_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(k.type));
  for (const Lit l : k.fanins) mix(l.code);
  return h;
}

CircuitEncoder::CircuitEncoder(Solver& solver) : solver_(&solver) {
  true_ = make_lit(solver_->new_var());
  solver_->add_clause({true_});
}

Lit CircuitEncoder::fresh() { return make_lit(solver_->new_var()); }

Lit CircuitEncoder::consed(GateType canonical, std::vector<Lit> fanins, bool& fresh_entry) {
  const auto [it, inserted] = cache_.try_emplace(Key{canonical, std::move(fanins)}, kNoLit);
  fresh_entry = inserted;
  if (!inserted) ++cache_hits_;
  return it->second;
}

Lit CircuitEncoder::encode_and(std::span<const Lit> fanins) {
  // Canonical n-ary AND: sort, dedup, fold constants and complement pairs.
  std::vector<Lit> f(fanins.begin(), fanins.end());
  std::sort(f.begin(), f.end(), [](Lit a, Lit b) { return a.code < b.code; });
  std::vector<Lit> norm;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (f[i] == lit_false()) return lit_false();
    if (f[i] == lit_true()) continue;
    if (!norm.empty() && norm.back() == f[i]) continue;         // x ∧ x
    if (!norm.empty() && norm.back() == ~f[i]) return lit_false();  // x ∧ ¬x
    norm.push_back(f[i]);
  }
  if (norm.empty()) return lit_true();
  if (norm.size() == 1) return norm[0];

  bool fresh_entry = false;
  const Lit cached = consed(GateType::kAnd, norm, fresh_entry);
  if (!fresh_entry) return cached;

  const Lit y = fresh();
  Clause long_clause;
  long_clause.reserve(norm.size() + 1);
  long_clause.push_back(y);
  for (const Lit l : norm) {
    solver_->add_clause({~y, l});
    long_clause.push_back(~l);
  }
  solver_->add_clause(long_clause);
  ++gates_encoded_;
  cache_[Key{GateType::kAnd, std::move(norm)}] = y;
  return y;
}

Lit CircuitEncoder::encode_xor_chain(std::span<const Lit> fanins) {
  // Canonical XOR: strip signs into a parity bit, cancel equal-variable
  // pairs, fold constants. What survives is a sorted set of distinct
  // positive literals XORed together, then the parity re-applied.
  bool parity = false;
  std::vector<Var> vars;
  for (const Lit l : fanins) {
    if (l == lit_true()) {
      parity = !parity;
      continue;
    }
    if (l == lit_false()) continue;
    parity ^= l.negated();
    vars.push_back(l.var());
  }
  std::sort(vars.begin(), vars.end());
  std::vector<Lit> terms;
  for (std::size_t i = 0; i < vars.size();) {
    if (i + 1 < vars.size() && vars[i] == vars[i + 1]) {
      i += 2;  // x ⊕ x = 0
      continue;
    }
    terms.push_back(make_lit(vars[i]));
    ++i;
  }
  if (terms.empty()) return lit_true() ^ !parity;
  Lit acc = terms[0];
  for (std::size_t i = 1; i < terms.size(); ++i) {
    Lit a = acc, b = terms[i];
    if (b.code < a.code) std::swap(a, b);
    bool fresh_entry = false;
    const Lit cached = consed(GateType::kXor, {a, b}, fresh_entry);
    if (!fresh_entry) {
      acc = cached;
      continue;
    }
    const Lit y = fresh();
    solver_->add_clause({~y, a, b});
    solver_->add_clause({~y, ~a, ~b});
    solver_->add_clause({y, ~a, b});
    solver_->add_clause({y, a, ~b});
    ++gates_encoded_;
    cache_[Key{GateType::kXor, {a, b}}] = y;
    acc = y;
  }
  return acc ^ parity;
}

Lit CircuitEncoder::encode_mux(Lit sel, Lit a, Lit b) {
  // y = sel ? b : a (ConeSimulator convention: fanin[1] when sel=0,
  // fanin[2] when sel=1).
  if (sel == lit_true()) return b;
  if (sel == lit_false()) return a;
  if (a == b) return a;
  if (a == ~b) {
    const Lit xors[2] = {sel, a};  // sel ? ¬a : a  ==  sel ⊕ a
    return encode_xor_chain(xors);
  }
  if (sel.negated()) {
    std::swap(a, b);
    sel = ~sel;
  }
  bool fresh_entry = false;
  const Lit cached = consed(GateType::kMux, {sel, a, b}, fresh_entry);
  if (!fresh_entry) return cached;
  const Lit y = fresh();
  solver_->add_clause({~sel, ~b, y});
  solver_->add_clause({~sel, b, ~y});
  solver_->add_clause({sel, ~a, y});
  solver_->add_clause({sel, a, ~y});
  solver_->add_clause({~a, ~b, y});  // redundant, helps propagation
  solver_->add_clause({a, b, ~y});
  ++gates_encoded_;
  cache_[Key{GateType::kMux, {sel, a, b}}] = y;
  return y;
}

Lit CircuitEncoder::encode(GateType type, std::span<const Lit> fanins) {
  switch (type) {
    case GateType::kConst0:
      return lit_false();
    case GateType::kConst1:
      return lit_true();
    case GateType::kBuf:
      return fanins[0];
    case GateType::kNot:
      return ~fanins[0];
    case GateType::kAnd:
      return encode_and(fanins);
    case GateType::kNand:
      return ~encode_and(fanins);
    case GateType::kOr:
    case GateType::kNor: {
      std::vector<Lit> inv(fanins.begin(), fanins.end());
      for (Lit& l : inv) l = ~l;
      const Lit nor = encode_and(inv);  // NOR = AND of complements
      return type == GateType::kNor ? nor : ~nor;
    }
    case GateType::kXor:
      return encode_xor_chain(fanins);
    case GateType::kXnor:
      return ~encode_xor_chain(fanins);
    case GateType::kMux:
      return encode_mux(fanins[0], fanins[1], fanins[2]);
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw std::logic_error("CircuitEncoder::encode: non-combinational gate type");
}

std::vector<Lit> encode_cone(CircuitEncoder& enc, const ConeSimulator& cone,
                             std::span<const Lit> input_lits, const Fault* fault) {
  if (input_lits.size() != cone.cut_inputs().size()) {
    throw std::invalid_argument("encode_cone: expected " +
                                std::to_string(cone.cut_inputs().size()) +
                                " input literals");
  }
  const CircuitGraph& graph = cone.graph();
  const Netlist& nl = graph.netlist();
  const std::span<const NetId> inputs = cone.cut_inputs();
  const Lit stuck =
      fault != nullptr && fault->stuck_value ? enc.lit_true() : enc.lit_false();

  // Literal per cone node, keyed by NodeId (cone gates are sparse in the
  // graph's node space, so a map beats a full-size vector here).
  std::unordered_map<NodeId, Lit> lit_of;
  lit_of.reserve(cone.gates().size());
  const auto fanin_lit = [&](NodeId d) -> Lit {
    // CUT inputs win over cluster membership, mirroring ConeSimulator's
    // slot_of (a DFF inside the cluster still enters via its input slot).
    const auto at = std::lower_bound(inputs.begin(), inputs.end(), graph.net_of(d));
    if (at != inputs.end() && *at == graph.net_of(d)) {
      return input_lits[static_cast<std::size_t>(at - inputs.begin())];
    }
    const auto it = lit_of.find(d);
    if (it == lit_of.end()) {
      throw std::logic_error("encode_cone: fanin is neither CUT input nor cluster gate");
    }
    return it->second;
  };

  std::vector<Lit> fanins;
  for (const NodeId v : cone.gates()) {
    const Gate& gate = nl.gate(v);
    const bool faulty_here = fault != nullptr && fault->gate == v;
    if (faulty_here && fault->site == Fault::Site::kOutput) {
      lit_of.emplace(v, stuck);  // stem fault: the gate's output is pinned
      continue;
    }
    fanins.clear();
    for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const bool faulty_pin = faulty_here && fault->site == Fault::Site::kInputPin &&
                              pin == fault->pin;
      fanins.push_back(faulty_pin ? stuck : fanin_lit(gate.fanins[pin]));
    }
    lit_of.emplace(v, enc.encode(gate.type, fanins));
  }

  std::vector<Lit> outputs;
  outputs.reserve(cone.observed_outputs().size());
  for (const NetId net : cone.observed_outputs()) {
    outputs.push_back(lit_of.at(graph.driver(net)));
  }
  return outputs;
}

std::vector<Lit> encode_fault_miter(CircuitEncoder& enc, const ConeSimulator& cone,
                                    const Fault& fault) {
  std::vector<Lit> inputs;
  inputs.reserve(cone.cut_inputs().size());
  for (std::size_t i = 0; i < cone.cut_inputs().size(); ++i) inputs.push_back(enc.fresh());

  const std::vector<Lit> good = encode_cone(enc, cone, inputs, nullptr);
  const std::vector<Lit> bad = encode_cone(enc, cone, inputs, &fault);

  Clause any_diff;
  any_diff.reserve(good.size());
  for (std::size_t o = 0; o < good.size(); ++o) {
    const Lit diff = enc.encode_xor(good[o], bad[o]);
    if (diff == enc.lit_false()) continue;  // structurally untouched output
    any_diff.push_back(diff);
  }
  if (any_diff.empty()) {
    // The fault provably reaches no observed output: force UNSAT.
    enc.solver().add_clause({enc.lit_false()});
  } else {
    enc.solver().add_clause(any_diff);
  }
  return inputs;
}

std::vector<Lit> encode_frame(CircuitEncoder& enc, const Netlist& netlist,
                              std::span<const Lit> input_lits,
                              std::span<const Lit> state_lits) {
  if (input_lits.size() != netlist.inputs().size() ||
      state_lits.size() != netlist.dffs().size()) {
    throw std::invalid_argument("encode_frame: input/state literal count mismatch");
  }
  std::vector<Lit> lits(netlist.size(), kNoLit);
  for (std::size_t i = 0; i < netlist.inputs().size(); ++i) {
    lits[netlist.inputs()[i]] = input_lits[i];
  }
  for (std::size_t i = 0; i < netlist.dffs().size(); ++i) {
    lits[netlist.dffs()[i]] = state_lits[i];
  }
  std::vector<Lit> fanins;
  for (const GateId id : netlist.combinational_topo_order()) {
    const Gate& gate = netlist.gate(id);
    fanins.clear();
    for (const GateId f : gate.fanins) fanins.push_back(lits[f]);
    lits[id] = enc.encode(gate.type, fanins);
  }
  return lits;
}

}  // namespace merced::sat
