// CNF primitives for the in-repo SAT engine — literals, clauses, formulas.
//
// The encoding follows the MiniSat/dawn convention: variable v has two
// literals coded 2v (positive) and 2v+1 (negated), so a literal's variable
// is code >> 1 and its sign is code & 1. Everything downstream (the CDCL
// solver, the Tseitin encoder, the brute-force oracles in sat_test) speaks
// this one representation; a Cnf is just a variable count plus a clause
// list, cheap to copy into the test oracles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace merced::sat {

/// 0-based variable index.
using Var = std::uint32_t;

inline constexpr Var kNoVar = static_cast<Var>(-1);

/// A literal: variable + sign, packed as (var << 1) | negated.
struct Lit {
  std::uint32_t code = static_cast<std::uint32_t>(-1);

  constexpr Var var() const noexcept { return code >> 1; }
  constexpr bool negated() const noexcept { return (code & 1) != 0; }
  friend constexpr bool operator==(Lit, Lit) = default;
};

inline constexpr Lit kNoLit{};

constexpr Lit make_lit(Var v, bool negated = false) noexcept {
  return Lit{(v << 1) | static_cast<std::uint32_t>(negated)};
}

/// Complement literal.
constexpr Lit operator~(Lit l) noexcept { return Lit{l.code ^ 1u}; }

/// Flip the literal iff `flip` — handy when encoding NAND/NOR/XNOR as the
/// complement of their positive sibling.
constexpr Lit operator^(Lit l, bool flip) noexcept {
  return Lit{l.code ^ static_cast<std::uint32_t>(flip)};
}

/// One disjunction of literals.
using Clause = std::vector<Lit>;

/// A CNF formula: `num_vars` variables (0..num_vars-1) and a clause list.
/// The truth-table / DPLL oracles in sat_test evaluate this directly; the
/// CDCL solver ingests it clause by clause.
struct Cnf {
  std::size_t num_vars = 0;
  std::vector<Clause> clauses;

  Var new_var() { return static_cast<Var>(num_vars++); }
  void add(Clause c) { clauses.push_back(std::move(c)); }
};

/// Evaluates `clause` under a full assignment (`assignment[v]` = value of
/// variable v). True iff some literal is satisfied.
inline bool clause_satisfied(std::span<const Lit> clause,
                             const std::vector<bool>& assignment) {
  for (const Lit l : clause) {
    if (assignment[l.var()] != l.negated()) return true;
  }
  return false;
}

/// Evaluates the whole formula under a full assignment.
inline bool cnf_satisfied(const Cnf& cnf, const std::vector<bool>& assignment) {
  for (const Clause& c : cnf.clauses) {
    if (!clause_satisfied(c, assignment)) return false;
  }
  return true;
}

}  // namespace merced::sat
