// merced-prove-v1 — the SAT coverage-proof report as a versioned JSON
// artifact, the third sibling of merced-metrics-v1 and merced-verify-v1:
//
//   { "schema": "merced-prove-v1",
//     "run": {"tool": "...", "circuit": "...", "lk": N},
//     "summary": {"cuts": N, "total_faults": N, "detected": N,
//                 "proved_redundant": N, "proved_detectable": N,
//                 "replayed": N, "unknown": N, "inconsistent": N,
//                 "solves": N, "conflicts": N, "fully_explained": B},
//     "cuts": [{"cluster": i, "inputs": I, "total_faults": N,
//               "detected": N, "proved_redundant": N,
//               "proved_detectable": N, "replayed": N, "unknown": N,
//               "inconsistent": N, "solves": N}, ...] }
//
// Cuts keep station order. The validator enforces the internal arithmetic
// (per-cut verdicts partition the solve count, summary totals equal the
// per-cut sums, fully_explained ⟺ zero unknown and zero inconsistent), so
// a hand-edited or drifted artifact is rejected rather than trusted —
// merced_cli --prove-coverage writes these and metrics_check --prove
// validates them.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/json.h"
#include "sat/redundancy.h"

namespace merced::sat {

inline constexpr const char* kProveSchema = "merced-prove-v1";

/// Identity of the proving run (the "run" JSON object).
struct ProveRunInfo {
  std::string tool;     ///< producing binary, e.g. "merced_cli"
  std::string circuit;  ///< circuit name or .bench path
  std::uint64_t lk = 0;
};

/// Serializes the versioned artifact described in the file comment.
/// `proofs` is one CutProof per station, station order.
void write_prove_json(std::ostream& os, std::span<const CutProof> proofs,
                      const ProveRunInfo& run);

/// Validates a parsed prove artifact against merced-prove-v1. Returns an
/// empty string when valid, else a description of the first violation.
std::string validate_prove_json(const obs::JsonValue& doc);

}  // namespace merced::sat
