// Tseitin encoding of gate-level circuits into CNF, with structural
// hash-consing.
//
// The encoder turns netlist gates into solver literals one gate at a time:
// encode(type, fanins) returns a literal constrained (by Tseitin clauses)
// to equal the gate's function of the fanin literals. Three folds keep the
// CNF small and — critically — make miters of structurally-identical logic
// collapse before the solver ever runs:
//
//  * constant folding — a gate whose value is forced by constant fanins
//    becomes lit_true()/lit_false(), no clauses;
//  * literal aliasing — BUF is its fanin, NOT is its complement, and the
//    NAND/NOR/XNOR family encodes as the complement of its positive
//    sibling (a literal flip is free in CNF);
//  * hash-consing — symmetric gates sort (and dedup) their fanin literals,
//    and a (type, fanins) cache returns the existing literal for a repeat
//    structure. Two copies of the same cone therefore share one variable
//    per gate, so an equivalence miter of a circuit against itself is
//    UNSAT by unit propagation alone — CDCL effort is spent only where the
//    two sides genuinely diverge (a fault site, a corrupted retiming).
//
// On top of the gate encoder sit the two circuit entry points the oracles
// use: encode_cone (a CUT's combinational cone over free input variables,
// with optional stuck-at fault injection mirroring ConeSimulator's fault
// semantics exactly) and encode_frame (one clock frame of a whole netlist,
// the building block of the unrolled retiming-equivalence miter).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/gate.h"
#include "netlist/netlist.h"
#include "sat/solver.h"
#include "sim/cone.h"
#include "sim/fault.h"

namespace merced::sat {

class CircuitEncoder {
 public:
  /// Binds the encoder to `solver`; the encoder allocates variables and
  /// clauses in it. One reserved variable backs the constant literals.
  explicit CircuitEncoder(Solver& solver);

  Solver& solver() noexcept { return *solver_; }

  /// The constant-true / constant-false literals (one shared variable).
  Lit lit_true() const noexcept { return true_; }
  Lit lit_false() const noexcept { return ~true_; }

  /// A fresh unconstrained variable (circuit input).
  Lit fresh();

  /// Literal computing `type` over `fanins` (fanin count must be valid for
  /// the type, as in eval_gate). Hash-consed: structurally repeated calls
  /// return the same literal without new clauses.
  Lit encode(GateType type, std::span<const Lit> fanins);
  Lit encode(GateType type, std::initializer_list<Lit> fanins) {
    return encode(type, std::span<const Lit>(fanins.begin(), fanins.size()));
  }

  /// Literal asserting `a != b` (an XOR miter tap).
  Lit encode_xor(Lit a, Lit b) { return encode(GateType::kXor, {a, b}); }

  /// Number of structurally-shared lookups served from the cache.
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  /// Number of gates that actually produced clauses.
  std::uint64_t gates_encoded() const noexcept { return gates_encoded_; }

 private:
  struct Key {
    GateType type;
    std::vector<Lit> fanins;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  Lit encode_and(std::span<const Lit> fanins);  // n-ary AND after folding
  Lit encode_xor_chain(std::span<const Lit> fanins);
  Lit encode_mux(Lit sel, Lit a, Lit b);
  Lit consed(GateType canonical, std::vector<Lit> fanins, bool& fresh_entry);

  Solver* solver_;
  Lit true_;
  std::unordered_map<Key, Lit, KeyHash> cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t gates_encoded_ = 0;
};

/// Encodes the combinational cone of a CUT over `input_lits` (one literal
/// per cone.cut_inputs() entry, typically fresh variables). Returns one
/// literal per cone.observed_outputs() entry. If `fault` is non-null it is
/// injected exactly as ConeSimulator does: an output-stem fault forces the
/// gate's literal to the stuck constant; an input-pin fault replaces that
/// one pin's fanin literal at the faulty gate only.
std::vector<Lit> encode_cone(CircuitEncoder& enc, const ConeSimulator& cone,
                             std::span<const Lit> input_lits,
                             const Fault* fault = nullptr);

/// Builds the good-vs-faulty miter of one CUT fault over shared fresh input
/// variables and asserts "some observed output differs". Returns the input
/// literals (cut_inputs() order) so a SAT model yields the detecting
/// pattern. The caller owns the solver verdict.
std::vector<Lit> encode_fault_miter(CircuitEncoder& enc, const ConeSimulator& cone,
                                    const Fault& fault);

/// One clock frame of a whole netlist: given per-PI literals
/// (netlist.inputs() order) and per-DFF output literals (netlist.dffs()
/// order), returns a literal for every gate's output this frame (indexed by
/// GateId; DFF entries echo `state_lits`, PI entries echo `input_lits`).
std::vector<Lit> encode_frame(CircuitEncoder& enc, const Netlist& netlist,
                              std::span<const Lit> input_lits,
                              std::span<const Lit> state_lits);

}  // namespace merced::sat
