// SAT equivalence checking of a retimed circuit against its original.
//
// Retiming must preserve normal-mode behaviour cycle-for-cycle once the
// retimed registers are warm (retiming/retimed_netlist.h). This module
// proves that with a bounded+inductive unrolled miter:
//
//  * base miter — unroll the original machine symbolically from its
//    concrete all-zero initial state for W warm-up frames (W = the deepest
//    warm-up any retimed register needs, max(depth + ρ) over register
//    origins). The retimed machine then starts at frame W+1 with each
//    register tied to the original's unrolled signal per the RegisterOrigin
//    correspondence — the register at depth k of source u presented during
//    frame f holds u's value of frame f − k − ρ(u). Both machines run T
//    shared-input check frames; a PO XOR miter asserts some output
//    differs. UNSAT ⇒ outputs agree on every reachable run of length T.
//  * inductive step — the same correspondence with *free* (symbolic)
//    initial state: if the retimed next-state and outputs match the
//    original's shifted signals for an arbitrary state, the bounded base
//    extends to all time. Because the correspondence is structural, the
//    hash-consing Tseitin encoder collapses both sides of a genuine
//    retiming to the same literals and the miter is UNSAT by construction;
//    the solver only works when the retiming is actually wrong.
//
// A SAT base miter yields a concrete input stream, which is replayed on
// the two simulators (Simulator + compute_retimed_initial_state) so the
// counterexample is confirmed outside the SAT engine. The fuzz oracle
// stack runs this check after every compile; `tap_skew` exists so the fuzz
// harness can corrupt the warm-up tap formula and watch the checker fire.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/circuit_graph.h"
#include "retiming/retime_graph.h"
#include "sat/solver.h"

namespace merced::sat {

enum class EquivStatus : std::uint8_t {
  kProved,       ///< base UNSAT (and induction UNSAT when enabled)
  kRefuted,      ///< some miter SAT — the machines (or the tap formula) differ
  kUnknown,      ///< conflict budget exhausted
  kBuildFailed,  ///< apply_retiming rejected the plan (illegal/skewed ρ)
};

struct EquivalenceCounterexample {
  /// Primary-input stream, frames 1..W+T in netlist.inputs() order.
  std::vector<std::vector<bool>> inputs;
  /// Replayed on Simulator vs the retimed machine and the outputs really
  /// diverge. False either means the SAT model was spurious (a bug) or the
  /// miter itself was corrupted (tap_skew != 0), where replay uses the
  /// honest tap formula and the machines agree.
  bool confirmed = false;
};

struct EquivalenceOptions {
  std::size_t check_frames = 2;   ///< T: shared-input output-compare frames
  bool induction = true;          ///< also prove the unbounded step
  /// Unroll guard: W + T (or the induction window) beyond this fails the
  /// build instead of exploding the CNF.
  std::size_t max_frames = 256;
  std::uint64_t max_conflicts = 1u << 22;  ///< per-miter budget
  /// Testing hook (fuzz defect "skew-tap"): every warm-up tap frame is
  /// shifted by this many cycles, modelling an off-by-one in the
  /// RegisterOrigin correspondence. Nonzero skew on a real retiming makes
  /// the base miter SAT — the checker must fire.
  int tap_skew = 0;
};

struct EquivalenceResult {
  EquivStatus status = EquivStatus::kBuildFailed;
  std::string error;               ///< build-failure reason
  bool base_proved = false;        ///< base miter UNSAT
  bool induction_proved = false;   ///< step miter UNSAT (when enabled)
  std::size_t warmup_frames = 0;   ///< W
  std::size_t check_frames = 0;    ///< T actually used
  std::size_t retimed_registers = 0;
  std::uint64_t solves = 0;
  SolverStats stats;               ///< aggregated over all miters
  std::uint64_t cache_hits = 0;    ///< encoder sharing across the two machines
  std::uint64_t gates_encoded = 0;
  std::optional<EquivalenceCounterexample> counterexample;  ///< base SAT only

  bool equivalent() const noexcept { return status == EquivStatus::kProved; }
};

/// Applies `rho` to `graph`'s netlist (rebuilding the RetimeGraph the same
/// deterministic way the compiler does) and proves the retimed machine
/// cycle-exact equivalent as described above. Publishes sat.*/equiv.* obs
/// counters. Never throws on a bad plan — that is a kBuildFailed verdict.
EquivalenceResult check_retiming_equivalence(const CircuitGraph& graph,
                                             const Retiming& rho,
                                             const EquivalenceOptions& opt = {});

}  // namespace merced::sat
