// SAT redundancy prover — closing the coverage gap the kernel reports.
//
// Pseudo-exhaustive testing applies all 2^ι patterns to a CUT, so a fault
// the sweep misses is *combinationally redundant by construction* — no
// input assignment distinguishes good from faulty cone. This module turns
// that claim from an inference into a proof: for every fault the kernel
// leaves undetected, build the good-vs-faulty miter over the CUT's inputs
// (sat/tseitin.h) and run CDCL. UNSAT is a machine-checked certificate that
// the fault is untestable — the paper's "100% coverage of detectable
// faults" with the word *detectable* made precise. A SAT verdict on an
// undetected fault would expose a kernel bug; its model is a concrete
// detecting pattern, which we replay on the event-driven kernel
// (detects_pattern) so the two engines cross-check each other in both
// directions. Detected faults can optionally go through the same
// SAT-then-replay loop, pinning the kernel's positive verdicts too.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/circuit_graph.h"
#include "partition/clustering.h"
#include "sat/solver.h"
#include "sim/cone.h"
#include "sim/fault.h"

namespace merced::sat {

/// One fault's SAT verdict against the kernel's sweep verdict.
struct FaultVerdict {
  enum class Proof : std::uint8_t {
    kRedundant,    ///< miter UNSAT: no pattern distinguishes the machines
    kDetectable,   ///< miter SAT: `pattern` detects the fault
    kUnknown,      ///< conflict budget exhausted (pathological miter)
  };

  Fault fault;
  bool detected_by_sweep = false;  ///< the kernel's verdict
  Proof proof = Proof::kUnknown;
  std::vector<bool> pattern;       ///< cut_inputs() order, kDetectable only
  bool replayed = false;           ///< pattern confirmed by detects_pattern
  /// Sweep and proof agree (detected ⟺ kDetectable-with-replay,
  /// undetected ⟺ kRedundant). Any false here is a bug in one engine.
  bool consistent = false;
};

/// Proof summary of one CUT.
struct CutProof {
  std::size_t cluster_index = 0;
  std::size_t num_inputs = 0;        ///< ι of the CUT
  std::size_t total_faults = 0;
  std::size_t detected = 0;          ///< by the exhaustive sweep
  std::size_t proved_redundant = 0;  ///< UNSAT certificates
  std::size_t proved_detectable = 0; ///< SAT with a detecting pattern
  std::size_t replayed = 0;          ///< SAT patterns confirmed on the kernel
  std::size_t unknown = 0;           ///< budget-exhausted solves
  std::size_t inconsistent = 0;      ///< engine disagreements (must be 0)
  SolverStats solver;                ///< aggregated over all solves
  std::uint64_t solves = 0;
  std::vector<FaultVerdict> verdicts;  ///< cluster_faults() order

  /// Every undetected fault carries an UNSAT certificate and every SAT
  /// pattern replays: detected + proved_redundant == total_faults-wise
  /// closure with zero unexplained gaps.
  bool fully_explained() const noexcept {
    return unknown == 0 && inconsistent == 0;
  }
};

struct ProveOptions {
  std::size_t max_inputs = 22;       ///< ι cap forwarded to the sweep
  std::size_t jobs = 1;              ///< sweep threads (SAT runs single-threaded)
  /// Also SAT-prove faults the sweep already detected (full cross-check).
  /// Off, only the sweep's undetected residue is proved.
  bool prove_detected = true;
  std::uint64_t max_conflicts = 1u << 20;  ///< per-miter budget
};

/// Sweeps cluster `cluster_index` exhaustively, then proves every fault's
/// verdict as described above. Publishes sat.* / prove.* obs counters.
CutProof prove_cut_coverage(const CircuitGraph& graph, const Clustering& clustering,
                            std::size_t cluster_index, const ProveOptions& opt = {});

/// Same, over an already-built cone (avoids rebuilding the CSR form).
CutProof prove_cone_coverage(const ConeSimulator& cone, std::size_t cluster_index,
                             const ProveOptions& opt = {});

/// Single-fault proof: builds the good-vs-faulty miter over `cone` and runs
/// CDCL. kRedundant carries an UNSAT certificate; kDetectable fills
/// `pattern` and replays it on the event-driven kernel (`replayed`).
/// `detected_by_sweep` and `consistent` are left default — this entry point
/// has no sweep verdict to compare against. Publishes sat.* obs counters.
FaultVerdict prove_fault(const ConeSimulator& cone, const Fault& fault,
                         std::uint64_t max_conflicts = 1u << 20);

/// Verdict of cross-checking one static-analysis untestability claim set
/// against the SAT prover, fault by fault (see cross_check_untestable).
struct UntestableCrossCheck {
  std::size_t checked = 0;    ///< claims put to the solver
  std::size_t confirmed = 0;  ///< UNSAT: the static proof stands
  std::size_t unknown = 0;    ///< conflict budget exhausted (inconclusive)
  /// Indices (into the fault list) of claims the solver REFUTED with a
  /// replayed detecting pattern. Any entry is a hard bug in the static
  /// analyzer — never a tolerable approximation.
  std::vector<std::size_t> disagreements;

  bool all_confirmed() const noexcept {
    return disagreements.empty() && unknown == 0;
  }
};

/// Proves every fault `i` of `faults` with `untestable[i] != 0` on the SAT
/// miter, one solve per claim. The static analyzer only ever *skips* faults
/// it proved untestable, so a SAT+replayed verdict here means the skip was
/// wrong — callers treat a non-empty `disagreements` as a hard failure.
/// `untestable` must be at least faults.size() long.
UntestableCrossCheck cross_check_untestable(const ConeSimulator& cone,
                                            std::span<const Fault> faults,
                                            std::span<const std::uint8_t> untestable,
                                            std::uint64_t max_conflicts = 1u << 20);

}  // namespace merced::sat
