#include "sat/solver.h"

#include <algorithm>
#include <stdexcept>

namespace merced::sat {

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(kUndef);
  phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  order_.emplace_back(0.0, v);
  std::push_heap(order_.begin(), order_.end());
  return v;
}

void Solver::attach(std::uint32_t ci) {
  const Clause& c = clauses_[ci];
  watches_[(~c[0]).code].push_back({ci, c[1]});
  watches_[(~c[1]).code].push_back({ci, c[0]});
}

bool Solver::add_clause(std::span<const Lit> lits) {
  if (unsat_) return false;
  backtrack(0);  // a model left on the trail from a prior solve() must not
                 // masquerade as level-0 facts (phase_ keeps it for model_value)
  // Normalize: sort by code, drop duplicates, detect tautology, and drop
  // literals already false at level 0 / short-circuit on true ones.
  Clause c(lits.begin(), lits.end());
  std::sort(c.begin(), c.end(), [](Lit a, Lit b) { return a.code < b.code; });
  Clause norm;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i + 1 < c.size() && c[i].code == c[i + 1].code) continue;  // duplicate
    if (i + 1 < c.size() && (c[i].code ^ 1u) == c[i + 1].code) return true;  // taut
    if (c[i].var() >= num_vars()) {
      throw std::invalid_argument("Solver::add_clause: literal names unknown variable");
    }
    const std::uint8_t v = value_of(c[i]);
    if (v == 1 && level_[c[i].var()] == 0) return true;   // already satisfied
    if (v == 0 && level_[c[i].var()] == 0) continue;      // already false
    norm.push_back(c[i]);
  }
  if (norm.empty()) {
    unsat_ = true;
    return false;
  }
  if (norm.size() == 1) {
    if (!enqueue(norm[0], -1)) {
      unsat_ = true;
      return false;
    }
    if (propagate() >= 0) {
      unsat_ = true;
      return false;
    }
    return true;
  }
  const auto ci = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back(std::move(norm));
  attach(ci);
  return true;
}

bool Solver::enqueue(Lit l, std::int32_t reason) {
  const std::uint8_t v = value_of(l);
  if (v != kUndef) return v == 1;
  const Var var = l.var();
  assign_[var] = l.negated() ? 0 : 1;
  phase_[var] = assign_[var];
  level_[var] = static_cast<std::int32_t>(trail_lim_.size());
  reason_[var] = reason;
  trail_.push_back(l);
  ++stats_.propagations;
  stats_.max_trail = std::max<std::uint64_t>(stats_.max_trail, trail_.size());
  return true;
}

std::int32_t Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];  // p is true; visit watchers of ¬p
    std::vector<Watcher>& ws = watches_[p.code];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      const Watcher w = ws[wi];
      if (value_of(w.blocker) == 1) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      // Ensure the falsified watch sits at c[1].
      const Lit false_lit = ~p;
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      if (value_of(c[0]) == 1) {  // first watch satisfied
        ws[keep++] = {w.clause, c[0]};
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (value_of(c[k]) != 0) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).code].push_back({w.clause, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit (or conflicting) on c[0].
      ws[keep++] = {w.clause, c[0]};
      if (!enqueue(c[0], static_cast<std::int32_t>(w.clause))) {
        // Conflict: keep the remaining watchers, report the clause.
        for (std::size_t rest = wi + 1; rest < ws.size(); ++rest) ws[keep++] = ws[rest];
        ws.resize(keep);
        propagate_head_ = trail_.size();
        return static_cast<std::int32_t>(w.clause);
      }
    }
    ws.resize(keep);
  }
  return -1;
}

void Solver::bump(Var v) {
  activity_[v] += activity_inc_;
  if (activity_[v] > 1e100) {  // rescale to keep doubles finite
    for (double& a : activity_) a *= 1e-100;
    activity_inc_ *= 1e-100;
  }
  order_.emplace_back(activity_[v], v);
  std::push_heap(order_.begin(), order_.end());
}

void Solver::analyze(std::int32_t conflict, Clause& learnt, std::int32_t& backjump_level) {
  // First-UIP scheme: walk the trail backwards resolving antecedents until
  // exactly one literal of the current level remains.
  learnt.clear();
  learnt.push_back(kNoLit);  // slot 0: the asserting (UIP) literal
  const auto current_level = static_cast<std::int32_t>(trail_lim_.size());
  std::size_t index = trail_.size();
  std::size_t path = 0;  // current-level literals pending resolution
  Lit p = kNoLit;

  std::int32_t reason = conflict;
  do {
    const Clause& c = clauses_[static_cast<std::size_t>(reason)];
    for (const Lit q : c) {
      if (p != kNoLit && q == p) continue;  // skip the resolved-on literal
      const Var v = q.var();
      if (seen_[v] != 0 || level_[v] == 0) continue;
      seen_[v] = 1;
      bump(v);
      if (level_[v] >= current_level) {
        ++path;
      } else {
        learnt.push_back(q);
      }
    }
    // Find the next current-level literal on the trail to resolve on.
    while (seen_[trail_[index - 1].var()] == 0) --index;
    p = trail_[--index];
    seen_[p.var()] = 0;
    --path;
    reason = reason_[p.var()];
  } while (path > 0);
  learnt[0] = ~p;

  // Backjump level = second-highest level in the learnt clause.
  backjump_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    backjump_level = level_[learnt[1].var()];
  }
  for (std::size_t i = 1; i < learnt.size(); ++i) seen_[learnt[i].var()] = 0;
}

void Solver::backtrack(std::int32_t target) {
  if (static_cast<std::int32_t>(trail_lim_.size()) <= target) return;
  const std::size_t keep = trail_lim_[static_cast<std::size_t>(target)];
  for (std::size_t i = trail_.size(); i > keep; --i) {
    const Var v = trail_[i - 1].var();
    assign_[v] = kUndef;
    reason_[v] = -1;
    order_.emplace_back(activity_[v], v);
    std::push_heap(order_.begin(), order_.end());
  }
  trail_.resize(keep);
  trail_lim_.resize(static_cast<std::size_t>(target));
  propagate_head_ = keep;
}

Lit Solver::pick_branch() {
  // Lazy heap: pop until a fresh (unassigned, activity-current) entry shows.
  while (!order_.empty()) {
    std::pop_heap(order_.begin(), order_.end());
    const auto [act, v] = order_.back();
    order_.pop_back();
    if (assign_[v] == kUndef && act == activity_[v]) {
      return make_lit(v, phase_[v] == 0);  // phase saving
    }
  }
  for (Var v = 0; v < num_vars(); ++v) {
    if (assign_[v] == kUndef) return make_lit(v, phase_[v] == 0);
  }
  return kNoLit;
}

Verdict Solver::solve(std::uint64_t max_conflicts) {
  if (unsat_) return Verdict::kUnsat;
  backtrack(0);
  if (propagate() >= 0) {
    unsat_ = true;
    return Verdict::kUnsat;
  }

  Clause learnt;
  for (;;) {
    const std::int32_t conflict = propagate();
    if (conflict >= 0) {
      ++stats_.conflicts;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return Verdict::kUnsat;
      }
      std::int32_t backjump = 0;
      analyze(conflict, learnt, backjump);
      backtrack(backjump);
      ++stats_.learned_clauses;
      stats_.learned_literals += learnt.size();
      if (learnt.size() == 1) {
        if (!enqueue(learnt[0], -1)) {
          unsat_ = true;
          return Verdict::kUnsat;
        }
      } else {
        const auto ci = static_cast<std::uint32_t>(clauses_.size());
        clauses_.push_back(learnt);
        attach(ci);
        if (!enqueue(learnt[0], static_cast<std::int32_t>(ci))) {
          unsat_ = true;
          return Verdict::kUnsat;
        }
      }
      activity_inc_ /= 0.95;  // decay all (relatively) per conflict
      if (max_conflicts != 0 && stats_.conflicts >= max_conflicts) {
        backtrack(0);
        return Verdict::kUnknown;
      }
      continue;
    }
    const Lit next = pick_branch();
    if (next == kNoLit) return Verdict::kSat;  // full model on the trail
    ++stats_.decisions;
    trail_lim_.push_back(trail_.size());
    enqueue(next, -1);
  }
}

bool Solver::model_value(Var v) const {
  if (v >= num_vars()) throw std::out_of_range("Solver::model_value: unknown variable");
  // After kSat the trail holds a full assignment; phase_ mirrors it (and is
  // the stable answer even after the trail unwinds on the next solve()).
  return assign_[v] == kUndef ? phase_[v] != 0 : assign_[v] != 0;
}

}  // namespace merced::sat
