#include "partition/clustering.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace merced {

namespace {

bool is_comb_gate(const CircuitGraph& g, NodeId v) { return is_comb_node(g, v); }

}  // namespace

void Clustering::validate(const CircuitGraph& g) const {
  if (cluster_of.size() != g.num_nodes()) {
    throw std::runtime_error("Clustering: cluster_of size mismatch");
  }
  std::vector<std::size_t> seen(clusters.size(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::int32_t c = cluster_of[v];
    if (g.is_pi(v)) {
      if (c != kNoCluster) {
        throw std::runtime_error("Clustering: PI node assigned to a cluster");
      }
      continue;
    }
    if (c == kNoCluster || static_cast<std::size_t>(c) >= clusters.size()) {
      throw std::runtime_error("Clustering: node " + std::to_string(v) +
                               " has invalid cluster index");
    }
    ++seen[static_cast<std::size_t>(c)];
  }
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (seen[i] != clusters[i].size()) {
      throw std::runtime_error("Clustering: cluster " + std::to_string(i) +
                               " membership inconsistent with cluster_of");
    }
    for (NodeId v : clusters[i]) {
      if (cluster_of[v] != static_cast<std::int32_t>(i)) {
        throw std::runtime_error("Clustering: cluster list / map mismatch");
      }
    }
  }
}

std::vector<NetId> input_nets(const CircuitGraph& g, const Clustering& c,
                              std::size_t ci) {
  std::unordered_set<NetId> inputs;
  const auto cluster_index = static_cast<std::int32_t>(ci);
  for (NodeId v : c.clusters.at(ci)) {
    if (!is_comb_gate(g, v)) continue;  // only combinational logic consumes test inputs
    for (BranchId b : g.in_branches(v)) {
      const Branch& br = g.branch(b);
      const NodeId d = br.source;
      // Sources: PIs, DFFs anywhere, and gates of *other* clusters.
      if (g.is_pi(d) || g.is_register(d) || c.cluster_of[d] != cluster_index) {
        inputs.insert(br.net);
      }
    }
  }
  std::vector<NetId> out(inputs.begin(), inputs.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t input_count(const CircuitGraph& g, const Clustering& c, std::size_t ci) {
  return input_nets(g, c, ci).size();
}

std::vector<NetId> cut_nets(const CircuitGraph& g, const Clustering& c) {
  std::vector<NetId> cuts;
  for (NodeId d = 0; d < g.num_nodes(); ++d) {
    if (!is_comb_gate(g, d)) continue;
    const std::int32_t dc = c.cluster_of[d];
    for (BranchId b : g.out_branches(d)) {
      const Branch& br = g.branch(b);
      if (is_comb_gate(g, br.sink) && c.cluster_of[br.sink] != dc) {
        cuts.push_back(br.net);
        break;  // one A_CELL per net regardless of how many branches cross
      }
    }
  }
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

CutReport make_cut_report(const CircuitGraph& g, const Clustering& c,
                          const SccInfo& sccs) {
  CutReport r;
  r.cuts_per_scc.assign(sccs.count(), 0);
  for (NetId net : cut_nets(g, c)) {
    ++r.nets_cut;
    const NodeId d = g.driver(net);
    const std::int32_t scc = sccs.component_of[d];
    if (scc == kNoScc) continue;
    const std::int32_t dc = c.cluster_of[d];
    for (BranchId b : g.net_branches(net)) {
      const Branch& br = g.branch(b);
      if (c.cluster_of[br.sink] != dc && sccs.component_of[br.sink] == scc &&
          !g.is_register(br.sink) && !g.is_pi(br.sink)) {
        ++r.cut_nets_on_scc;
        ++r.cuts_per_scc[static_cast<std::size_t>(scc)];
        break;
      }
    }
  }
  return r;
}

}  // namespace merced
