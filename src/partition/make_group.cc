#include "partition/make_group.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace merced {

namespace {

bool is_comb_gate(const CircuitGraph& g, NodeId v) { return is_comb_node(g, v); }

/// True when removing `net` severs a connection inside SCC `scc` (it then
/// consumes retiming budget). Only combinational connections count; a net
/// driven by a DFF already has its register at the cut.
bool net_consumes_scc_budget(const CircuitGraph& g, const SccInfo& sccs, NetId net,
                             std::int32_t& scc_out) {
  const NodeId d = g.driver(net);
  if (!is_comb_gate(g, d)) return false;
  const std::int32_t scc = sccs.component_of[d];
  if (scc == kNoScc) return false;
  for (BranchId b : g.net_branches(net)) {
    if (sccs.component_of[g.branch(b).sink] == scc) {
      scc_out = scc;
      return true;
    }
  }
  return false;
}

/// State shared by the boundary-lowering loop.
struct Cutter {
  const CircuitGraph& g;
  const SccInfo& sccs;
  std::vector<double> d_eff;        // effective distance (0 = pinned)
  std::vector<bool> removed;        // per net
  std::vector<std::size_t> c_scc;   // cuts used per SCC
  std::vector<std::size_t> budget;  // β·f(λ) per SCC

  Cutter(const CircuitGraph& graph, const SccInfo& scc_info,
         const SaturationResult& sat, int beta)
      : g(graph),
        sccs(scc_info),
        d_eff(sat.distance),
        removed(graph.num_nets(), false),
        c_scc(scc_info.count(), 0),
        budget(scc_info.count(), 0) {
    for (std::size_t i = 0; i < scc_info.count(); ++i) {
      budget[i] = static_cast<std::size_t>(beta) * scc_info.dff_count[i];
    }
  }

  /// Attempts to remove `net` under the SCC budget (Table 7 STEP 2.1).
  /// Returns true when the net ends up removed.
  bool try_remove(NetId net) {
    if (removed[net]) return true;
    std::int32_t scc = kNoScc;
    if (net_consumes_scc_budget(g, sccs, net, scc)) {
      auto s = static_cast<std::size_t>(scc);
      if (c_scc[s] < budget[s]) {
        ++c_scc[s];
      } else {
        // Budget exhausted: pin every uncut net of this SCC (STEP 2.1.2.1)
        // so no future boundary can cut it.
        for (NodeId m : sccs.components[s]) {
          if (!removed[g.net_of(m)]) d_eff[g.net_of(m)] = 0.0;
        }
        d_eff[net] = 0.0;
        return false;
      }
    }
    removed[net] = true;
    return true;
  }
};

/// Weakly-connected components among `nodes` over alive branches. PI-driven
/// branches never connect (PIs are not partitioned; a shared input must not
/// glue two clusters together).
std::vector<std::vector<NodeId>> weak_components(const CircuitGraph& g,
                                                 const std::vector<bool>& removed,
                                                 const std::vector<NodeId>& nodes) {
  std::vector<std::int32_t> mark(g.num_nodes(), -2);  // -2 = not in scope
  for (NodeId v : nodes) mark[v] = -1;                // -1 = in scope, unvisited

  std::vector<std::vector<NodeId>> comps;
  std::vector<NodeId> dfs;
  for (NodeId root : nodes) {
    if (mark[root] != -1) continue;
    const auto cid = static_cast<std::int32_t>(comps.size());
    comps.emplace_back();
    dfs.push_back(root);
    mark[root] = cid;
    while (!dfs.empty()) {
      const NodeId v = dfs.back();
      dfs.pop_back();
      comps.back().push_back(v);
      auto visit = [&](NodeId w) {
        if (mark[w] == -1) {
          mark[w] = cid;
          dfs.push_back(w);
        }
      };
      for (BranchId b : g.out_branches(v)) {
        const Branch& br = g.branch(b);
        if (!removed[br.net] && !g.is_pi(br.source)) visit(br.sink);
      }
      for (BranchId b : g.in_branches(v)) {
        const Branch& br = g.branch(b);
        if (!removed[br.net] && !g.is_pi(br.source)) visit(br.source);
      }
    }
  }
  return comps;
}

/// ι of a candidate node set (not yet a registered cluster): distinct nets
/// feeding its combinational gates from PIs, DFFs, or nodes outside the set.
std::size_t set_input_count(const CircuitGraph& g, const std::vector<NodeId>& nodes,
                            std::vector<bool>& in_set_scratch) {
  for (NodeId v : nodes) in_set_scratch[v] = true;
  std::vector<NetId> inputs;
  for (NodeId v : nodes) {
    if (!is_comb_gate(g, v)) continue;
    for (BranchId b : g.in_branches(v)) {
      const Branch& br = g.branch(b);
      const NodeId d = br.source;
      if (g.is_pi(d) || g.is_register(d) || !in_set_scratch[d]) inputs.push_back(br.net);
    }
  }
  for (NodeId v : nodes) in_set_scratch[v] = false;
  std::sort(inputs.begin(), inputs.end());
  inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
  return inputs.size();
}

}  // namespace

MakeGroupResult make_group(const CircuitGraph& g, const SccInfo& sccs,
                           const SaturationResult& sat, const MakeGroupParams& p) {
  MERCED_SPAN("make_group");
  if (sat.distance.size() != g.num_nets()) {
    throw std::invalid_argument("make_group: saturation result size mismatch");
  }
  if (p.beta < 1) throw std::invalid_argument("make_group: beta must be >= 1");
  if (p.lk == 0) throw std::invalid_argument("make_group: lk must be >= 1");

  Cutter cut(g, sccs, sat, p.beta);

  // Sorted stack of distinct distance values, max first (Table 4 STEP 3).
  std::vector<double> levels = cut.d_eff;
  std::sort(levels.begin(), levels.end(), std::greater<>());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  std::size_t level_pos = 0;

  // Initial boundary = max d; cut all nets at or above it (Table 4 STEP 4).
  MakeGroupResult result;
  double boundary = levels.empty() ? 0.0 : levels[0];
  if (!levels.empty()) {
    ++result.boundary_steps;
    for (NetId net = 0; net < g.num_nets(); ++net) {
      if (cut.d_eff[net] >= boundary) cut.try_remove(net);
    }
    ++level_pos;
  }

  std::vector<NodeId> scope;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.is_pi(v)) scope.push_back(v);
  }

  std::vector<bool> scratch(g.num_nodes(), false);
  std::vector<std::vector<NodeId>> feasible;
  std::vector<std::vector<NodeId>> oversized;
  for (auto& comp : weak_components(g, cut.removed, scope)) {
    (set_input_count(g, comp, scratch) <= p.lk ? feasible : oversized)
        .push_back(std::move(comp));
  }

  // Lower the boundary; re-split only oversized groups (Table 4 STEP 5).
  while (!oversized.empty() && level_pos < levels.size()) {
    // Jump to the highest remaining d value actually present inside an
    // oversized group, so every step removes at least one net.
    double target = 0.0;
    for (const auto& grp : oversized) {
      for (NodeId v : grp) {
        const NetId net = g.net_of(v);
        if (!cut.removed[net] && cut.d_eff[net] > target) target = cut.d_eff[net];
      }
    }
    if (target <= 0.0) break;  // everything left is pinned — cannot split further
    while (level_pos < levels.size() && levels[level_pos] > target) ++level_pos;
    if (level_pos >= levels.size()) break;
    boundary = levels[level_pos];
    ++level_pos;
    ++result.boundary_steps;

    std::vector<std::vector<NodeId>> still_oversized;
    for (auto& grp : oversized) {
      for (NodeId v : grp) {
        const NetId net = g.net_of(v);
        if (!cut.removed[net] && cut.d_eff[net] >= boundary) cut.try_remove(net);
      }
      for (auto& comp : weak_components(g, cut.removed, grp)) {
        (set_input_count(g, comp, scratch) <= p.lk ? feasible : still_oversized)
            .push_back(std::move(comp));
      }
    }
    oversized = std::move(still_oversized);
  }

  result.feasible = oversized.empty();

  // Assemble the clustering (feasible groups first, then any leftovers).
  Clustering& c = result.clustering;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  auto add_cluster = [&](std::vector<NodeId>&& nodes) {
    const auto idx = static_cast<std::int32_t>(c.clusters.size());
    for (NodeId v : nodes) c.cluster_of[v] = idx;
    c.clusters.push_back(std::move(nodes));
  };
  for (auto& grp : feasible) add_cluster(std::move(grp));
  for (auto& grp : oversized) {
    result.oversized_clusters.push_back(c.clusters.size());
    add_cluster(std::move(grp));
  }

  result.net_removed = std::move(cut.removed);
  result.scc_cuts_used = std::move(cut.c_scc);
  if (obs::enabled()) {
    std::uint64_t removed = 0;
    for (bool r : result.net_removed) removed += r ? 1 : 0;
    obs::add(obs::Counter::kGroupNetsRemoved, removed);
    obs::add(obs::Counter::kGroupBoundarySteps, result.boundary_steps);
  }
  return result;
}

}  // namespace merced
