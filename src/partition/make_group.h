// Make_Group / Make_Set — paper §3.1, Tables 4–7.
//
// Starting from the congestion distances d(E) produced by Saturate_Network,
// nets are removed ("cut") in decreasing congestion order until every
// cluster (weakly connected component over the remaining nets) satisfies the
// input constraint ι(π) ≤ l_k.
//
// Boundary semantics (Table 4/5): a net is removed when d(e) ≥ boundary.
// The boundary starts at max d(E) and is lowered one distinct value at a
// time; only still-oversized clusters are re-split at the new boundary, so
// feasible clusters keep their (cheaper) earlier cut set.
//
// SCC cut budget (Eq. 6, Table 7 STEP 2.1): removing a combinational net
// that severs a connection inside a non-trivial SCC λ consumes one unit of
// that SCC's budget β·f(λ), where f(λ) is the number of registers on λ.
// Once exhausted, every remaining net of λ is pinned (d(e) := 0) and can
// never be cut — legal retiming (Eq. 2) could not supply registers for more
// cuts. Nets driven by DFFs or PIs are free: a register/TPG already exists
// at that boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/saturate_network.h"
#include "graph/scc.h"
#include "partition/clustering.h"

namespace merced {

struct MakeGroupParams {
  std::size_t lk = 16;  ///< input constraint ι(π) ≤ lk (CBIT length)
  int beta = 50;        ///< Eq. 6 multiplier on SCC cut budgets (β ≥ 1)
};

struct MakeGroupResult {
  Clustering clustering;
  std::vector<bool> net_removed;   ///< per net: removed during clustering
  std::vector<std::size_t> scc_cuts_used;  ///< c(λ) per SccInfo component
  std::size_t boundary_steps = 0;  ///< distinct boundary values consumed
  bool feasible = true;            ///< all clusters satisfy ι ≤ lk
  std::vector<std::size_t> oversized_clusters;  ///< indices if !feasible
};

/// Runs the clustering pass. `saturation` must come from the same graph.
MakeGroupResult make_group(const CircuitGraph& graph, const SccInfo& sccs,
                           const SaturationResult& saturation,
                           const MakeGroupParams& params);

}  // namespace merced
