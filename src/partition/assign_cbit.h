// Assign_CBIT — paper §3.2, Table 8.
//
// Make_Group typically leaves many small clusters. Because the per-bit CBIT
// area σ_k falls as the CBIT length grows (Table 1), it is cheaper to pack
// several small clusters behind one full-width CBIT than to give each its
// own small CBIT. Assign_CBIT greedily merges clusters:
//
//   repeatedly take the cluster O with the largest input count, then absorb
//   the feasible cluster g maximizing the gain γ(O+g) = l_k − ι(O+g) ≥ 0
//   (Eq. 7); ties are broken by the number of cut nets the merge
//   internalizes. Stop when ι(O) = l_k or no feasible candidate remains.
//
// Merging can *reduce* ι below the naive sum: shared input nets are counted
// once, and cut nets between O and g become internal (removing their
// A_CELLs).
#pragma once

#include <cstddef>
#include <vector>

#include "partition/clustering.h"

namespace merced {

struct AssignCbitResult {
  Clustering partitions;                   ///< final merged partition list P
  std::vector<std::size_t> input_counts;   ///< ι(π) per partition
  std::size_t merges_performed = 0;
};

/// Merges `initial` clusters under the input constraint `lk`. `initial`
/// normally comes from make_group; clusters already over `lk` (infeasible
/// leftovers) are passed through unmerged.
AssignCbitResult assign_cbit(const CircuitGraph& graph, const Clustering& initial,
                             std::size_t lk);

}  // namespace merced
