// Simulated-annealing baseline for the PIC problem — after the authors'
// prior work, Liou/Lin/Cheng/Liu, "Circuit Partitioning for Pipelined
// Pseudo-Exhaustive Testing Using Simulated Annealing", CICC 1994 (the
// paper's reference [4]).
//
// The DAC'96 paper replaces this with the multicommodity-flow clustering;
// this implementation exists as the comparison baseline: same clustering
// model (partition/clustering.h), same feasibility constraint ι(π) ≤ l_k,
// cost = number of cut nets + a penalty for constraint violations. Moves
// reassign one node to a neighbouring cluster; the temperature follows a
// geometric schedule.
#pragma once

#include <cstdint>

#include "partition/clustering.h"

namespace merced {

struct SaParams {
  std::size_t lk = 16;
  double initial_temperature = 5.0;
  double cooling = 0.95;
  std::size_t moves_per_temperature = 0;  ///< 0 = 8·|V| (scaled default)
  double min_temperature = 0.05;
  double infeasibility_penalty = 10.0;  ///< per input over the lk budget
  std::uint64_t seed = 1;
};

struct SaResult {
  Clustering clustering;
  std::size_t nets_cut = 0;
  bool feasible = true;       ///< all clusters meet ι ≤ lk
  std::size_t moves_tried = 0;
  std::size_t moves_accepted = 0;
};

/// Runs simulated annealing from an initial clustering (typically a
/// fine-grained seed, e.g. singletons or a cheap greedy cover).
SaResult sa_partition(const CircuitGraph& graph, const Clustering& initial,
                      const SaParams& params);

/// Convenience seed: every weakly-connected pair collapsed — here simply
/// one singleton cluster per non-PI node.
Clustering singleton_clustering(const CircuitGraph& graph);

}  // namespace merced
