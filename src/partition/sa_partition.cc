#include "partition/sa_partition.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_set>

namespace merced {

namespace {

bool is_comb_gate(const CircuitGraph& g, NodeId v) {
  return !g.is_pi(v) && !g.is_register(v);
}

/// Incremental SA state: cluster membership plus per-cluster input sets and
/// the global cut-net count, all maintained under single-node moves.
class SaState {
 public:
  SaState(const CircuitGraph& g, const Clustering& c, const SaParams& p)
      : g_(g), p_(p), cluster_of_(c.cluster_of), inputs_(c.count()),
        members_(c.clusters) {
    for (std::size_t i = 0; i < c.count(); ++i) {
      for (NetId n : input_nets(g, c, i)) inputs_[i].insert(n);
      penalty_ += overflow_penalty(inputs_[i].size());
    }
    for (NetId n : cut_nets(g, c)) cut_set_.insert(n);
  }

  double cost() const { return static_cast<double>(cut_set_.size()) + penalty_; }

  std::size_t cuts() const { return cut_set_.size(); }

  bool feasible() const {
    for (const auto& in : inputs_) {
      if (in.size() > p_.lk) return false;
    }
    return true;
  }

  /// Moves node v to cluster `to`; O(degree) full local recompute of the
  /// two touched clusters' input sets and the affected cut nets.
  void apply_move(NodeId v, std::int32_t to) {
    const std::int32_t from = cluster_of_[v];
    cluster_of_[v] = to;
    auto& fm = members_[static_cast<std::size_t>(from)];
    fm.erase(std::find(fm.begin(), fm.end(), v));
    members_[static_cast<std::size_t>(to)].push_back(v);
    rebuild_cluster(from);
    rebuild_cluster(to);
    // Cut status can only change for nets touching v.
    refresh_net(g_.net_of(v));
    for (BranchId b : g_.in_branches(v)) refresh_net(g_.branch(b).net);
  }

  std::int32_t cluster_of(NodeId v) const { return cluster_of_[v]; }

  Clustering snapshot() const {
    Clustering c;
    c.cluster_of = cluster_of_;
    c.clusters.resize(inputs_.size());
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (cluster_of_[v] != kNoCluster) {
        c.clusters[static_cast<std::size_t>(cluster_of_[v])].push_back(v);
      }
    }
    // Drop empty clusters, remapping ids.
    Clustering packed;
    packed.cluster_of.assign(g_.num_nodes(), kNoCluster);
    for (auto& members : c.clusters) {
      if (members.empty()) continue;
      const auto id = static_cast<std::int32_t>(packed.clusters.size());
      for (NodeId v : members) packed.cluster_of[v] = id;
      packed.clusters.push_back(std::move(members));
    }
    return packed;
  }

 private:
  double overflow_penalty(std::size_t inputs) const {
    return inputs > p_.lk
               ? p_.infeasibility_penalty * static_cast<double>(inputs - p_.lk)
               : 0.0;
  }

  void rebuild_cluster(std::int32_t ci) {
    auto& in = inputs_[static_cast<std::size_t>(ci)];
    penalty_ -= overflow_penalty(in.size());
    in.clear();
    for (NodeId v : members_[static_cast<std::size_t>(ci)]) {
      if (!is_comb_gate(g_, v)) continue;
      for (BranchId b : g_.in_branches(v)) {
        const Branch& br = g_.branch(b);
        if (g_.is_pi(br.source) || g_.is_register(br.source) ||
            cluster_of_[br.source] != ci) {
          in.insert(br.net);
        }
      }
    }
    penalty_ += overflow_penalty(in.size());
  }

  void refresh_net(NetId n) {
    const NodeId d = g_.driver(n);
    bool cut = false;
    if (is_comb_gate(g_, d)) {
      for (BranchId b : g_.net_branches(n)) {
        const Branch& br = g_.branch(b);
        if (is_comb_gate(g_, br.sink) && cluster_of_[br.sink] != cluster_of_[d]) {
          cut = true;
          break;
        }
      }
    }
    if (cut) {
      cut_set_.insert(n);
    } else {
      cut_set_.erase(n);
    }
  }

  const CircuitGraph& g_;
  const SaParams& p_;
  std::vector<std::int32_t> cluster_of_;
  std::vector<std::unordered_set<NetId>> inputs_;
  std::vector<std::vector<NodeId>> members_;
  std::unordered_set<NetId> cut_set_;
  double penalty_ = 0.0;
};

}  // namespace

Clustering singleton_clustering(const CircuitGraph& g) {
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.is_pi(v)) continue;
    c.cluster_of[v] = static_cast<std::int32_t>(c.clusters.size());
    c.clusters.push_back({v});
  }
  return c;
}

SaResult sa_partition(const CircuitGraph& g, const Clustering& initial,
                      const SaParams& p) {
  initial.validate(g);
  std::mt19937_64 rng(p.seed);
  SaState state(g, initial, p);

  std::vector<NodeId> movable;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.is_pi(v)) movable.push_back(v);
  }

  SaResult result;
  const std::size_t moves_per_t =
      p.moves_per_temperature > 0 ? p.moves_per_temperature : 8 * movable.size();
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  double cost = state.cost();
  for (double temp = p.initial_temperature; temp > p.min_temperature;
       temp *= p.cooling) {
    for (std::size_t m = 0; m < moves_per_t; ++m) {
      ++result.moves_tried;
      const NodeId v = movable[rng() % movable.size()];
      // Candidate target: the cluster of a random neighbour (keeps moves
      // local and meaningful).
      std::int32_t to = kNoCluster;
      const auto& in_b = g.in_branches(v);
      const auto& out_b = g.out_branches(v);
      const std::size_t deg = in_b.size() + out_b.size();
      if (deg == 0) continue;
      const std::size_t pick = rng() % deg;
      const Branch& br =
          g.branch(pick < in_b.size() ? in_b[pick] : out_b[pick - in_b.size()]);
      const NodeId peer = br.source == v ? br.sink : br.source;
      if (g.is_pi(peer)) continue;
      to = state.cluster_of(peer);
      if (to == state.cluster_of(v)) continue;

      const std::int32_t from = state.cluster_of(v);
      state.apply_move(v, to);
      const double new_cost = state.cost();
      const double delta = new_cost - cost;
      if (delta <= 0 || coin(rng) < std::exp(-delta / temp)) {
        cost = new_cost;
        ++result.moves_accepted;
      } else {
        state.apply_move(v, from);  // revert
      }
    }
  }

  result.clustering = state.snapshot();

  // Repair pass: annealing can freeze in a local minimum with an oversized
  // cluster that no single-node move can fix. Splitting such a cluster into
  // singletons restores feasibility whenever every gate fan-in fits lk
  // (the same guarantee Make_Group relies on).
  {
    Clustering repaired;
    repaired.cluster_of.assign(g.num_nodes(), kNoCluster);
    for (std::size_t i = 0; i < result.clustering.count(); ++i) {
      if (input_count(g, result.clustering, i) <= p.lk) {
        const auto id = static_cast<std::int32_t>(repaired.clusters.size());
        for (NodeId v : result.clustering.clusters[i]) repaired.cluster_of[v] = id;
        repaired.clusters.push_back(result.clustering.clusters[i]);
      } else {
        for (NodeId v : result.clustering.clusters[i]) {
          repaired.cluster_of[v] = static_cast<std::int32_t>(repaired.clusters.size());
          repaired.clusters.push_back({v});
        }
      }
    }
    result.clustering = std::move(repaired);
  }

  result.clustering.validate(g);
  result.nets_cut = cut_nets(g, result.clustering).size();
  result.feasible = true;
  for (std::size_t i = 0; i < result.clustering.count(); ++i) {
    if (input_count(g, result.clustering, i) > p.lk) result.feasible = false;
  }
  return result;
}

}  // namespace merced
