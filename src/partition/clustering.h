// Clustering model for the partition-with-input-constraint (PIC) problem —
// paper §2.3.
//
// A clustering assigns every non-PI node (combinational gates and DFFs,
// V = R ∪ C) to exactly one cluster. Primary-input sources stay outside all
// clusters: they feed clusters but are not partitioned.
//
// Test semantics fix the two key counts:
//
//  * ι(π) — the *input count* of cluster π: the number of distinct sources
//    that drive combinational logic inside π during pseudo-exhaustive test:
//    primary-input nets, DFF-output nets (the DFF becomes a CBIT cell that
//    generates patterns, whether it sits inside or outside π), and cut nets
//    driven by gates of other clusters. 2^ι(π) bounds the exhaustive test
//    length of π, so the PIC constraint is ι(π) ≤ l_k (Eq. 5, "including
//    primary inputs").
//
//  * cut nets — combinational nets severed by the partition: driver is a
//    gate of cluster A with at least one *gate* sink in cluster B ≠ A. Each
//    needs an A_CELL (a register inserted at the cut). Crossing nets driven
//    by PIs or DFFs, or terminating in a DFF's D pin, already have a
//    register/TPG at the boundary and cost nothing extra — this is why the
//    paper's Table 12 reports zero A_CBIT for circuits that partition along
//    existing register boundaries.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/circuit_graph.h"
#include "graph/scc.h"

namespace merced {

/// Cluster index sentinel for nodes outside all clusters (PIs).
inline constexpr std::int32_t kNoCluster = -1;

/// True for nodes that consume test inputs and can anchor cut nets: every
/// partitionable node that is neither a PI source nor a register. Note this
/// deliberately includes CONST0/CONST1 cells — they are clustered and their
/// nets are cuttable, unlike gate.h's is_combinational() which excludes
/// constants from *evaluation*. All ι/cut accounting (here, in Make_Group
/// and in the exact solver) must share this one predicate.
inline bool is_comb_node(const CircuitGraph& g, NodeId v) {
  return !g.is_pi(v) && !g.is_register(v);
}

/// A partition of the non-PI nodes into disjoint clusters.
struct Clustering {
  std::vector<std::int32_t> cluster_of;        ///< per node; PIs = kNoCluster
  std::vector<std::vector<NodeId>> clusters;   ///< member nodes per cluster

  std::size_t count() const noexcept { return clusters.size(); }

  /// Validates disjointness/coverage against the graph; throws on violation.
  void validate(const CircuitGraph& graph) const;
};

/// ι(π): input count of one cluster (see file comment).
std::size_t input_count(const CircuitGraph& graph, const Clustering& c,
                        std::size_t cluster_index);

/// The set of distinct input nets of one cluster (ι = its size).
std::vector<NetId> input_nets(const CircuitGraph& graph, const Clustering& c,
                              std::size_t cluster_index);

/// All cut nets of the clustering (see file comment), sorted ascending.
std::vector<NetId> cut_nets(const CircuitGraph& graph, const Clustering& c);

/// Per-experiment cut summary (Tables 10/11 columns).
struct CutReport {
  std::size_t nets_cut = 0;          ///< total cut nets
  std::size_t cut_nets_on_scc = 0;   ///< cut nets severing a connection inside an SCC
  std::vector<std::size_t> cuts_per_scc;  ///< indexed like SccInfo::components
};

/// Classifies the clustering's cut nets against the SCC structure. A cut
/// net is "on an SCC" when its driver and at least one crossing gate sink
/// lie in the same non-trivial SCC (severing a feedback connection).
CutReport make_cut_report(const CircuitGraph& graph, const Clustering& c,
                          const SccInfo& sccs);

}  // namespace merced
