#include "partition/assign_cbit.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "obs/obs.h"

namespace merced {

namespace {

bool is_comb_gate(const CircuitGraph& g, NodeId v) {
  return !g.is_pi(v) && !g.is_register(v);
}

struct WorkCluster {
  std::vector<NodeId> nodes;
  std::unordered_set<NetId> inputs;  ///< current input nets (ι = size)
  bool alive = true;
  bool finalized = false;  ///< already moved from S to P (Table 8 STEP 3.3)
};

/// Inputs of a merged pair and the number of cut nets internalized.
struct MergeEval {
  std::size_t merged_inputs = 0;
  std::size_t cuts_removed = 0;
};

MergeEval evaluate_merge(const CircuitGraph& g, const std::vector<std::int32_t>& owner,
                         const WorkCluster& a, std::int32_t a_id, const WorkCluster& b,
                         std::int32_t b_id) {
  MergeEval ev;
  std::size_t union_size = a.inputs.size();
  for (NetId n : b.inputs) {
    if (!a.inputs.contains(n)) ++union_size;
  }
  // Nets that stop being inputs because their driver lands inside the merge.
  // A net may appear in both input sets (it fed both clusters); the union
  // counted it once, so collect internalized nets as a set and subtract once.
  std::unordered_set<NetId> internal_nets;
  for (NetId n : a.inputs) {
    const NodeId d = g.driver(n);
    if (is_comb_gate(g, d) && owner[d] == b_id) internal_nets.insert(n);
  }
  for (NetId n : b.inputs) {
    const NodeId d = g.driver(n);
    if (is_comb_gate(g, d) && owner[d] == a_id) internal_nets.insert(n);
  }
  ev.cuts_removed = internal_nets.size();
  ev.merged_inputs = union_size - internal_nets.size();
  return ev;
}

}  // namespace

AssignCbitResult assign_cbit(const CircuitGraph& g, const Clustering& initial,
                             std::size_t lk) {
  MERCED_SPAN("assign_cbit");
  if (lk == 0) throw std::invalid_argument("assign_cbit: lk must be >= 1");
  initial.validate(g);

  std::vector<WorkCluster> work(initial.count());
  std::vector<std::int32_t> owner = initial.cluster_of;
  for (std::size_t i = 0; i < initial.count(); ++i) {
    work[i].nodes = initial.clusters[i];
    for (NetId n : input_nets(g, initial, i)) work[i].inputs.insert(n);
  }

  AssignCbitResult result;
  // S sorted by ι descending (Table 4 STEP 6 / Table 8 STEP 3.1); we pick
  // the max-ι alive cluster each round.
  std::vector<std::size_t> order(work.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return work[a].inputs.size() > work[b].inputs.size();
  });

  std::vector<std::size_t> final_ids;
  for (std::size_t oi : order) {
    if (!work[oi].alive) continue;
    WorkCluster& O = work[oi];
    const auto o_id = static_cast<std::int32_t>(oi);

    if (O.inputs.size() <= lk) {
      // Absorb the best feasible candidate while any exists (Table 8
      // STEP 3.2; γ = 0 merges are explicitly allowed by Eq. 7 and still
      // pack clusters behind one CBIT / internalize cut nets).
      bool merged_any = true;
      while (merged_any) {
        merged_any = false;
        std::size_t best = static_cast<std::size_t>(-1);
        MergeEval best_ev;
        for (std::size_t gi = 0; gi < work.size(); ++gi) {
          if (gi == oi || !work[gi].alive || work[gi].finalized) continue;
          // Oversized leftovers from make_group are never merge fodder.
          if (work[gi].inputs.size() > lk) continue;
          const MergeEval ev = evaluate_merge(g, owner, O, o_id, work[gi],
                                              static_cast<std::int32_t>(gi));
          if (ev.merged_inputs > lk) continue;  // γ < 0: infeasible (Eq. 7)
          const bool better =
              best == static_cast<std::size_t>(-1) ||
              ev.merged_inputs < best_ev.merged_inputs ||
              (ev.merged_inputs == best_ev.merged_inputs &&
               ev.cuts_removed > best_ev.cuts_removed);
          if (better) {
            best = gi;
            best_ev = ev;
          }
        }
        if (best != static_cast<std::size_t>(-1)) {
          WorkCluster& G = work[best];
          for (NodeId v : G.nodes) {
            owner[v] = o_id;
            O.nodes.push_back(v);
          }
          for (NetId n : G.inputs) O.inputs.insert(n);
          // Drop nets that became internal.
          std::erase_if(O.inputs, [&](NetId n) {
            const NodeId d = g.driver(n);
            return is_comb_gate(g, d) && owner[d] == o_id;
          });
          G.alive = false;
          G.nodes.clear();
          G.inputs.clear();
          ++result.merges_performed;
          merged_any = true;
        }
      }
    }
    O.finalized = true;
    final_ids.push_back(oi);
  }

  // Assemble final partition list.
  Clustering& parts = result.partitions;
  parts.cluster_of.assign(g.num_nodes(), kNoCluster);
  for (std::size_t oi : final_ids) {
    const auto idx = static_cast<std::int32_t>(parts.clusters.size());
    for (NodeId v : work[oi].nodes) parts.cluster_of[v] = idx;
    parts.clusters.push_back(std::move(work[oi].nodes));
    result.input_counts.push_back(work[oi].inputs.size());
  }
  parts.validate(g);
  MERCED_COUNT(obs::Counter::kCbitMerges, result.merges_performed);
  return result;
}

}  // namespace merced
