// Benchmark registry: the 17 ISCAS89 circuits of the paper's Table 9 plus
// the s27 running example.
//
// s27 is embedded verbatim; the other circuits are synthesized to match
// their published statistics (see generator.h and DESIGN.md).
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "circuits/generator.h"
#include "netlist/netlist.h"

namespace merced {

/// One suite entry with its published Table 9 row.
struct BenchmarkEntry {
  SyntheticSpec spec;        ///< generation parameters (name included)
  bool embedded = false;     ///< true for s27 (exact netlist)
};

/// All suite entries in Table 9 order (s27 first, then s510 … s38584.1).
std::span<const BenchmarkEntry> benchmark_suite();

/// Entry by name, or nullptr.
const BenchmarkEntry* find_benchmark(std::string_view name);

/// Loads (parses or generates) a finalized benchmark netlist by name.
/// Throws std::invalid_argument for unknown names.
Netlist load_benchmark(std::string_view name);

}  // namespace merced
