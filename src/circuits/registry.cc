#include "circuits/registry.h"

#include <stdexcept>
#include <vector>

#include "circuits/s27.h"

namespace merced {

namespace {

SyntheticSpec spec(std::string name, std::size_t pis, std::size_t dffs,
                   std::size_t gates, std::size_t invs, AreaUnits area,
                   double scc_frac, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = std::move(name);
  s.num_pis = pis;
  s.num_dffs = dffs;
  s.num_gates = gates;
  s.num_invs = invs;
  s.target_area = area;
  s.scc_dff_fraction = scc_frac;
  s.seed = seed;
  return s;
}

const std::vector<BenchmarkEntry>& suite() {
  // Table 9 statistics; scc_dff_fraction from Table 10 column 3
  // ("DFFs on SCC" / "No. of DFFs").
  static const std::vector<BenchmarkEntry> kSuite = {
      {spec("s27", 4, 3, 10, 2, 0, 1.0, 27), /*embedded=*/true},
      {spec("s510", 19, 6, 179, 32, 547, 6.0 / 6, 510), false},
      {spec("s420.1", 18, 16, 140, 78, 620, 16.0 / 16, 420), false},
      {spec("s641", 35, 19, 107, 272, 832, 15.0 / 19, 641), false},
      {spec("s713", 35, 19, 139, 254, 892, 15.0 / 19, 713), false},
      {spec("s820", 18, 5, 256, 33, 943, 5.0 / 5, 820), false},
      {spec("s832", 18, 5, 262, 25, 961, 5.0 / 5, 832), false},
      {spec("s838.1", 34, 32, 288, 158, 1268, 32.0 / 32, 838), false},
      {spec("s1423", 17, 74, 490, 167, 2238, 71.0 / 74, 1423), false},
      {spec("s5378", 35, 179, 1004, 1775, 6241, 124.0 / 179, 5378), false},
      {spec("s9234.1", 36, 211, 2027, 3570, 11467, 172.0 / 211, 92341), false},
      {spec("s9234", 19, 228, 2027, 3570, 11637, 173.0 / 228, 9234), false},
      {spec("s13207.1", 62, 638, 2573, 5378, 19171, 462.0 / 638, 132071), false},
      {spec("s13207", 31, 669, 2573, 5378, 19476, 463.0 / 669, 13207), false},
      {spec("s15850.1", 77, 534, 3448, 6324, 21305, 487.0 / 534, 158501), false},
      {spec("s35932", 35, 1728, 12204, 3861, 50625, 1728.0 / 1728, 35932), false},
      {spec("s38417", 28, 1636, 8709, 13470, 52768, 1166.0 / 1636, 38417), false},
      {spec("s38584.1", 38, 1426, 11448, 7805, 55147, 1424.0 / 1426, 385841), false},
  };
  return kSuite;
}

}  // namespace

std::span<const BenchmarkEntry> benchmark_suite() { return suite(); }

const BenchmarkEntry* find_benchmark(std::string_view name) {
  for (const BenchmarkEntry& e : suite()) {
    if (e.spec.name == name) return &e;
  }
  return nullptr;
}

Netlist load_benchmark(std::string_view name) {
  const BenchmarkEntry* e = find_benchmark(name);
  if (e == nullptr) {
    throw std::invalid_argument("load_benchmark: unknown circuit '" + std::string(name) +
                                "'");
  }
  if (e->embedded) return make_s27();
  return generate_circuit(e->spec);
}

}  // namespace merced
