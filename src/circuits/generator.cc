#include "circuits/generator.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace merced {

namespace {

struct CellPlan {
  GateType type = GateType::kNand;
  std::size_t planned_pins = 2;
  std::vector<GateId> fanins;

  bool has_free_pin() const { return fanins.size() < planned_pins; }
};

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) noexcept {
  if (index == 0) return base_seed;
  // splitmix64 finalizer (Steele/Lea/Flood) over base + index — the same
  // decorrelation flow::multi_start_seed applies to saturation starts.
  std::uint64_t z = base_seed + index;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Netlist generate_circuit(const SyntheticSpec& spec) {
  if (spec.num_gates == 0 || spec.num_pis == 0) {
    throw std::invalid_argument("generate_circuit: need at least one gate and one PI");
  }
  std::mt19937_64 rng(spec.seed);
  auto rand_below = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };
  auto rand_prob = [&] { return std::uniform_real_distribution<double>(0.0, 1.0)(rng); };

  const std::size_t total_cells = spec.num_gates + spec.num_invs;

  // ---- plan cell types and pin counts ---------------------------------
  std::vector<CellPlan> cells(total_cells);
  {
    std::vector<std::size_t> idx(total_cells);
    for (std::size_t i = 0; i < total_cells; ++i) idx[i] = i;
    std::shuffle(idx.begin(), idx.end(), rng);
    for (std::size_t i = 0; i < spec.num_invs; ++i) {
      cells[idx[i]].type = GateType::kNot;
      cells[idx[i]].planned_pins = 1;
    }
  }
  std::vector<std::size_t> gate_cells;
  for (std::size_t i = 0; i < total_cells; ++i) {
    if (cells[i].type != GateType::kNot) {
      cells[i].type = (rng() & 1) ? GateType::kNand : GateType::kNor;
      gate_cells.push_back(i);
    }
  }

  // Hit the published estimated area: base = DFFs(10) + INVs(1) + gates(2);
  // a NAND→AND / NOR→OR upgrade or an extra fan-in each add one unit.
  const AreaUnits base = static_cast<AreaUnits>(10 * spec.num_dffs + spec.num_invs +
                                                2 * spec.num_gates);
  AreaUnits deficit = spec.target_area > base ? spec.target_area - base : 0;
  {
    std::vector<std::size_t> shuffled = gate_cells;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    const std::size_t upgrades =
        std::min<std::size_t>(shuffled.size(), static_cast<std::size_t>(deficit / 2));
    for (std::size_t i = 0; i < upgrades; ++i) {
      CellPlan& c = cells[shuffled[i]];
      c.type = (c.type == GateType::kNand) ? GateType::kAnd : GateType::kOr;
      --deficit;
    }
    std::size_t guard = static_cast<std::size_t>(deficit) * 4 + 64;
    while (deficit > 0 && guard-- > 0) {
      CellPlan& c = cells[gate_cells[rand_below(gate_cells.size())]];
      if (c.planned_pins < 8) {
        ++c.planned_pins;
        --deficit;
      }
    }
  }

  // ---- netlist skeleton ------------------------------------------------
  Netlist nl(spec.name);
  std::vector<GateId> pi_ids(spec.num_pis);
  for (std::size_t p = 0; p < spec.num_pis; ++p) {
    pi_ids[p] = nl.add_gate(GateType::kInput, "pi" + std::to_string(p));
  }
  std::vector<GateId> cell_ids(total_cells);
  for (std::size_t i = 0; i < total_cells; ++i) {
    cell_ids[i] = nl.add_gate(cells[i].type, "n" + std::to_string(i));
  }
  std::vector<GateId> dff_ids(spec.num_dffs);
  std::vector<GateId> dff_fanin(spec.num_dffs, kNoGate);
  std::vector<std::size_t> dff_fanin_cell(spec.num_dffs, static_cast<std::size_t>(-1));
  for (std::size_t k = 0; k < spec.num_dffs; ++k) {
    dff_ids[k] = nl.add_gate(GateType::kDff, "r" + std::to_string(k));
  }

  // Claiming a pin may exceed the plan by one (structural wiring takes
  // priority over exact area; the slack is a handful of units per circuit).
  auto claim_pin = [&](std::size_t cell, GateId source) -> bool {
    // One pin of overflow is tolerated on multi-input gates (structural
    // wiring beats exact area by a few units); inverters are strictly 1-pin.
    const std::size_t cap = cells[cell].type == GateType::kNot
                                ? 1
                                : cells[cell].planned_pins + 1;
    if (cells[cell].fanins.size() >= cap) return false;
    cells[cell].fanins.push_back(source);
    return true;
  };
  auto find_free_cell = [&](std::size_t lo, std::size_t hi,
                            std::size_t min_pins = 1) -> std::size_t {
    if (lo >= hi) return static_cast<std::size_t>(-1);
    auto usable = [&](std::size_t i) {
      return cells[i].has_free_pin() && cells[i].planned_pins >= min_pins;
    };
    for (std::size_t t = 0; t < 40; ++t) {
      const std::size_t i = lo + rand_below(hi - lo);
      if (usable(i)) return i;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      if (usable(i)) return i;
    }
    return static_cast<std::size_t>(-1);
  };

  // ---- feedback structure (SCCs) ---------------------------------------
  // Feedback DFF k gets a loop DFF→c0→…→cm→DFF over ascending gate indices
  // (combinational logic stays acyclic; the cycle closes through the DFF).
  // Loops of one group share a gate with the previous loop, chaining them
  // into a single SCC.
  const auto n_fb = static_cast<std::size_t>(spec.scc_dff_fraction *
                                                 static_cast<double>(spec.num_dffs) +
                                             0.5);
  std::vector<std::vector<std::size_t>> group_gates;  // wired cells per SCC group
  std::size_t scc_cells_wired = 0;
  std::size_t fb_done = 0;
  std::size_t attempts = 0;
  while (fb_done < n_fb && attempts++ < 4 * spec.num_dffs + 64) {
    const std::size_t remaining = n_fb - fb_done;
    const std::size_t max_group = std::min<std::size_t>(remaining, 8 + n_fb / 4);
    const std::size_t group = 1 + rand_below(max_group);
    // Wide regions: real feedback structures (FSMs, datapath loops) span
    // large parts of a circuit, which is why the paper sees most cut nets
    // land on SCCs (Tables 10/11 column 4).
    const std::size_t region_len = std::clamp<std::size_t>(90 * group, 12, total_cells);
    const std::size_t region_lo =
        total_cells > region_len ? rand_below(total_cells - region_len) : 0;
    const std::size_t region_hi = std::min(region_lo + region_len, total_cells);

    std::size_t shared = static_cast<std::size_t>(-1);
    std::vector<std::size_t> wired_here;
    for (std::size_t j = 0; j < group && fb_done < n_fb; ++j) {
      const std::size_t k = fb_done;
      std::vector<std::size_t> chain;
      if (shared == static_cast<std::size_t>(-1)) {
        // First loop of the group: 1..3 ascending gates.
        std::size_t lo = region_lo;
        const std::size_t hops = 1 + rand_below(3);
        for (std::size_t h = 0; h < hops; ++h) {
          // Junction gates get revisited by the next loop: need >= 2 pins.
          const std::size_t c = find_free_cell(lo, region_hi, 2);
          if (c == static_cast<std::size_t>(-1)) break;
          chain.push_back(c);
          lo = c + 1;
        }
      } else {
        // Later loops pass through `shared` to merge into the group's SCC.
        // A fresh gate c anywhere in the region keeps chains ascending
        // (c→shared or shared→c) and spreads pin load; `shared` then rotates
        // to c so no gate serves as the junction more than twice.
        const std::size_t c = find_free_cell(region_lo, region_hi, 2);
        if (c == static_cast<std::size_t>(-1) || c == shared) {
          chain.push_back(shared);
        } else if (c < shared) {
          chain.push_back(c);
          chain.push_back(shared);
        } else {
          chain.push_back(shared);
          chain.push_back(c);
        }
      }
      if (chain.empty()) break;  // region saturated; retry another region

      GateId prev = dff_ids[k];
      bool ok = true;
      for (std::size_t c : chain) {
        if (!claim_pin(c, prev)) {
          ok = false;
          break;
        }
        prev = cell_ids[c];
      }
      if (!ok || prev == dff_ids[k]) break;
      dff_fanin[k] = prev;  // last chain gate → DFF input
      dff_fanin_cell[k] = chain.back();
      // Rotate the junction to the freshest gate of this loop's chain.
      shared = (chain.front() != shared) ? chain.front() : chain.back();
      for (std::size_t c : chain) wired_here.push_back(c);
      ++fb_done;
    }
    if (!wired_here.empty()) {
      std::sort(wired_here.begin(), wired_here.end());
      wired_here.erase(std::unique(wired_here.begin(), wired_here.end()),
                       wired_here.end());
      scc_cells_wired += wired_here.size();
      group_gates.push_back(std::move(wired_here));
    }
  }
  const std::size_t fb_actual = fb_done;

  // ---- SCC enlargement ---------------------------------------------------
  // Pull additional gates into the feedback structures: for gates a < b of
  // one SCC, wiring a→x→b (a < x < b) puts x on a cycle (x reaches b, and b
  // reaches a within the SCC), so x joins the SCC without touching any
  // register. Budgeted by scc_gate_coverage.
  if (!group_gates.empty() && spec.scc_gate_coverage > 0) {
    const auto target = static_cast<std::size_t>(spec.scc_gate_coverage *
                                                 static_cast<double>(total_cells));
    std::size_t failures = 0;
    while (scc_cells_wired < target && failures < 2 * total_cells + 256) {
      auto& gg = group_gates[rand_below(group_gates.size())];
      if (gg.size() < 2 || gg.back() - gg.front() < 2) {
        ++failures;
        continue;
      }
      // Fresh cell x strictly inside the group's index span, then bracket it
      // by the nearest members: a (predecessor) and some successor b with
      // pin capacity.
      const std::size_t x = find_free_cell(gg.front() + 1, gg.back());
      auto it = std::lower_bound(gg.begin(), gg.end(), x);
      if (x == static_cast<std::size_t>(-1) || it == gg.begin() || it == gg.end() ||
          *it == x) {
        ++failures;
        continue;
      }
      const std::size_t a = *(it - 1);
      std::size_t b = static_cast<std::size_t>(-1);
      for (auto bt = it; bt != gg.end() && bt != it + 16; ++bt) {
        if (cells[*bt].fanins.size() < cells[*bt].planned_pins) {
          b = *bt;
          break;
        }
      }
      if (b == static_cast<std::size_t>(-1) || b <= x) {
        ++failures;
        continue;
      }
      // Wire a whole ascending chain a -> x -> x2 -> ... -> xm -> b: every
      // chain cell joins the SCC at the cost of a single pin on b, and the
      // multi-pin cells among them replenish the pool of pins available to
      // future insertions.
      std::vector<std::size_t> xs{x};
      for (std::size_t lo = x + 1; xs.size() < 12;) {
        const std::size_t c = find_free_cell(lo, b);
        if (c == static_cast<std::size_t>(-1)) break;
        xs.push_back(c);
        lo = c + 1;
      }
      std::size_t prev = a;
      bool ok = true;
      for (std::size_t c : xs) {
        if (!claim_pin(c, cell_ids[prev])) { ok = false; break; }
        prev = c;
      }
      if (!ok || !claim_pin(b, cell_ids[prev])) {
        ++failures;
        continue;
      }
      for (std::size_t c : xs) {
        gg.insert(std::lower_bound(gg.begin(), gg.end(), c), c);
      }
      scc_cells_wired += xs.size();
    }
  }

  // ---- pipeline DFFs (forward-only, never on a cycle) ------------------
  for (std::size_t k = fb_actual; k < spec.num_dffs; ++k) {
    const std::size_t a = rand_below(std::max<std::size_t>(1, total_cells * 4 / 5));
    dff_fanin[k] = cell_ids[a];
    dff_fanin_cell[k] = a;
    const std::size_t sink = find_free_cell(a + 1, total_cells);
    if (sink != static_cast<std::size_t>(-1)) claim_pin(sink, dff_ids[k]);
  }

  // ---- every PI drives at least one gate -------------------------------
  for (std::size_t p = 0; p < spec.num_pis; ++p) {
    const std::size_t sink = find_free_cell(0, total_cells);
    if (sink != static_cast<std::size_t>(-1)) claim_pin(sink, pi_ids[p]);
  }

  // ---- fill the remaining pins -----------------------------------------
  // Real circuits are modular: a region of logic reads a few nearby PIs and
  // registers, not uniformly random ones. Cells are grouped into blocks;
  // each block sees a small home pool of PIs and of DFFs homed nearby.
  const std::size_t block_size = std::clamp<std::size_t>(total_cells / 24, 24, 400);
  const std::size_t num_blocks = (total_cells + block_size - 1) / block_size;
  std::vector<std::vector<std::size_t>> home_pis(num_blocks);
  for (std::size_t p = 0; p < spec.num_pis; ++p) {
    home_pis[p % num_blocks].push_back(p);  // every PI has a home block
  }
  for (std::size_t b = 0; b < num_blocks; ++b) {
    while (home_pis[b].size() < std::min<std::size_t>(3, spec.num_pis)) {
      home_pis[b].push_back(rand_below(spec.num_pis));
    }
  }
  std::vector<std::vector<std::size_t>> home_dffs(num_blocks);
  for (std::size_t k = 0; k < spec.num_dffs; ++k) {
    if (dff_fanin_cell[k] != static_cast<std::size_t>(-1)) {
      home_dffs[dff_fanin_cell[k] / block_size].push_back(k);
    }
  }

  std::geometric_distribution<std::size_t> near(0.15);
  for (std::size_t i = 0; i < total_cells; ++i) {
    CellPlan& c = cells[i];
    const std::size_t blk = i / block_size;
    std::size_t dup_retries = 0;
    while (c.fanins.size() < c.planned_pins) {
      GateId src = kNoGate;
      if (i > 0 && rand_prob() < spec.locality) {
        const std::size_t back = std::min<std::size_t>(1 + near(rng), i);
        src = cell_ids[i - back];
      } else if (rand_prob() < 0.95) {
        // Home pool: a nearby block's PIs or DFFs.
        const std::size_t pb =
            std::min(num_blocks - 1, blk + rand_below(3) - std::min<std::size_t>(1, blk));
        if ((rng() & 1) && !home_dffs[pb].empty()) {
          const std::size_t k = home_dffs[pb][rand_below(home_dffs[pb].size())];
          // Feedback DFFs may feed anything (only enlarges their SCC);
          // pipeline DFFs must stay forward of their input gate.
          if (k < fb_actual || dff_fanin_cell[k] < i) src = dff_ids[k];
        }
        if (src == kNoGate && !home_pis[pb].empty()) {
          src = pi_ids[home_pis[pb][rand_below(home_pis[pb].size())]];
        }
      } else {
        // Occasional global connection (clock-tree-like broadcast nets).
        const std::size_t pick = rand_below(2);
        if (pick == 0 && spec.num_dffs > 0) {
          const std::size_t k = rand_below(spec.num_dffs);
          if (k < fb_actual || dff_fanin_cell[k] < i) src = dff_ids[k];
        }
        if (src == kNoGate) src = pi_ids[rand_below(spec.num_pis)];
      }
      if (src == kNoGate && i > 0) src = cell_ids[rand_below(i)];
      if (src == kNoGate) src = pi_ids[rand_below(spec.num_pis)];
      // A gate reading the same net twice (AND(a,a)) or a net plus its own
      // inversion (NAND(x, NOT(x)) is constant) is pure redundancy; real
      // netlists avoid both and they only breed undetectable faults.
      auto inverter_of = [&](GateId g1, GateId g2) {
        // True when g1 is a NOT/BUF cell reading g2.
        if (g1 < cell_ids[0] || g1 >= cell_ids[0] + total_cells) return false;
        const CellPlan& cp = cells[g1 - cell_ids[0]];
        return cp.planned_pins == 1 && !cp.fanins.empty() && cp.fanins[0] == g2;
      };
      bool clashes = false;
      for (GateId f : c.fanins) {
        if (f == src || inverter_of(f, src) || inverter_of(src, f)) {
          clashes = true;
          break;
        }
      }
      if (clashes && dup_retries++ < 8) continue;
      c.fanins.push_back(src);
    }
  }

  // ---- commit ------------------------------------------------------------
  for (std::size_t i = 0; i < total_cells; ++i) {
    nl.set_fanins(cell_ids[i], cells[i].fanins);
  }
  for (std::size_t k = 0; k < spec.num_dffs; ++k) {
    if (dff_fanin[k] == kNoGate) {
      // Feedback budget ran out for this DFF: degrade to pipeline register.
      const std::size_t a = rand_below(total_cells);
      dff_fanin[k] = cell_ids[a];
    }
    nl.set_fanins(dff_ids[k], {dff_fanin[k]});
  }
  nl.finalize();

  // ---- primary outputs: every sink gate is observable --------------------
  bool any_output = false;
  for (std::size_t i = 0; i < total_cells; ++i) {
    if (nl.fanouts(cell_ids[i]).empty()) {
      nl.mark_output(cell_ids[i]);
      any_output = true;
    }
  }
  if (!any_output) nl.mark_output(cell_ids[total_cells - 1]);
  nl.finalize();
  return nl;
}

}  // namespace merced
