#include "circuits/s27.h"

#include "netlist/bench_io.h"

namespace merced {

std::string_view s27_bench_text() {
  // MCNC ISCAS89 distribution text (Brglez/Bryan/Kozminski 1989).
  return R"(# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";
}

Netlist make_s27() { return parse_bench(s27_bench_text(), "s27"); }

}  // namespace merced
