// Seeded synthetic sequential-circuit generator.
//
// The MCNC ISCAS89 netlist files are not redistributable here, so the
// benchmark suite is reproduced *statistically*: for each circuit the
// generator builds a netlist matching the published Table 9 row exactly
// (#PI, #DFF, #gates, #INV) and the published estimated area (by tuning the
// gate-type mix and extra fan-ins), plus the published feedback character
// (fraction of DFFs inside strongly connected components, Tables 10/11
// column 3). See DESIGN.md "Substitutions".
//
// Construction guarantees:
//  * combinational logic is acyclic (gate fan-ins only reference
//    lower-indexed gates, PIs or DFF outputs);
//  * every feedback DFF lies on a directed cycle through at least one gate
//    (never a pure register ring); feedback loops of one group share a
//    terminal gate, merging them into one SCC;
//  * pipeline (non-feedback) DFFs only move data forward, so they join no
//    cycle;
//  * every PI and DFF output drives at least one gate; sink gates become
//    primary outputs (observability, and POs never sit on DFFs).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/area_model.h"
#include "netlist/netlist.h"

namespace merced {

struct SyntheticSpec {
  std::string name;
  std::size_t num_pis = 0;
  std::size_t num_dffs = 0;
  std::size_t num_gates = 0;  ///< combinational gates excluding inverters
  std::size_t num_invs = 0;
  AreaUnits target_area = 0;  ///< Table 9 "Estimated Area"
  double scc_dff_fraction = 1.0;  ///< DFFs-on-SCC / DFFs (Table 10 col 3)
  /// Fraction of combinational cells pulled into SCCs. Real sequential
  /// circuits keep much of their logic inside feedback structures, which is
  /// why the paper's cut nets mostly land on SCCs (Tables 10/11).
  double scc_gate_coverage = 0.4;
  double locality = 0.85;  ///< probability a fan-in comes from a nearby gate
  std::uint64_t seed = 1;
};

/// Builds a finalized netlist for the spec. Deterministic in `seed`.
Netlist generate_circuit(const SyntheticSpec& spec);

/// Decorrelated per-index seed: a pure function of (base_seed, index), so
/// that batch drivers (multi-start compiles, the fuzz driver's --runs loop)
/// can hand item i a seed that does not depend on scheduling order or job
/// count — the same (base, i) always yields the same circuit no matter how
/// many threads consume the batch. Index 0 returns base_seed unchanged
/// (convention shared with flow::multi_start_seed: "start 0 is the
/// configured seed"); higher indices apply a splitmix64 finalizer, whose
/// avalanche keeps neighbouring indices statistically independent —
/// consecutive raw seeds fed to std::mt19937_64 would correlate the first
/// draws of neighbouring runs.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) noexcept;

}  // namespace merced
