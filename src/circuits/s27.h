// The ISCAS89 s27 benchmark — the paper's running example (Fig. 2).
#pragma once

#include <string_view>

#include "netlist/netlist.h"

namespace merced {

/// The s27 netlist in `.bench` syntax (4 PIs, 3 DFFs, 10 gates).
std::string_view s27_bench_text();

/// Parsed and finalized s27.
Netlist make_s27();

}  // namespace merced
