// Static netlist analysis over a compiled CUT — no simulation, no SAT.
//
// The coverage pipeline sweeps every collapsed-naive fault with 2^ι
// patterns and only learns a fault is redundant after the SAT prover fails
// to find one. Classic ATPG practice inverts that order: purely structural
// reasoning on the cone shrinks the fault list and proves untestability
// before the hot path starts. This module implements that layer over the
// ConeSimulator's public view of a cluster (value slots = [cut inputs |
// topo gates], exactly the kernel's CSR space):
//
//  * constant/X propagation + structural sweep — ternary evaluation folds
//    constant nets (Const0/Const1 sources and implication-discovered ties);
//    a reverse reachability pass finds gates that cannot reach any
//    observed output (unobservable stubs);
//  * fault equivalence and dominance collapsing — output faults chain
//    through single-fanout nets into the driving gate's output fault
//    (identical faulty machines, so verdicts copy exactly), and the
//    uncontrolled-output fault of an AND/NAND/OR/NOR gate is dominance-
//    skipped with its pin/driver faults as witnesses (under an exhaustive
//    sweep, a detected witness proves detection; an all-undetected witness
//    set proves nothing and the fault is re-simulated);
//  * a FIRE-style fault-independent implication engine — direct forward/
//    backward implications plus single-assignment learning (contrapositive
//    edges harvested from one propagation per literal). A fault is proved
//    untestable when its excitation assignment conflicts (the site is
//    tied), when its gate cannot reach an observed output, or when the
//    excitation's implied side-input values block every propagation path
//    (the D-frontier dies before any observed output);
//  * SCOAP-like controllability/observability scores per value slot,
//    saturating at kScoreInf.
//
// Everything lands in a FaultPlan (sim/fault.h) the kernels resolve to
// verdicts bit-identical to the full sweep, and in a per-CUT report
// serialized as the merced-analyze-v1 artifact (analyze_json.h). The
// untestability claims are cross-checked fault-by-fault against the SAT
// redundancy prover (sat/redundancy.h) by merced_cli --analyze and by
// fuzz oracle 6 — a disagreement is a hard failure, never a warning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/circuit_graph.h"
#include "partition/clustering.h"
#include "sim/cone.h"
#include "sim/fault.h"

namespace merced::analyze {

/// SCOAP score saturation bound; a controllability of kScoreInf means "no
/// input assignment produces this value" (e.g. CC1 of a tied-low net) and
/// an observability of kScoreInf means "no path to an observed output".
inline constexpr std::uint32_t kScoreInf = 1u << 24;

struct AnalyzeOptions {
  /// Slot-count cap above which single-assignment learning is skipped
  /// (direct implications still run; learning is quadratic in slots).
  std::size_t learn_max_slots = 4096;
  /// Witness cap per dominance-skipped fault (more witnesses only improve
  /// inference odds, at plan-size cost).
  std::size_t max_witnesses = 8;
  /// Equivalence + dominance collapsing (off = every testable fault is
  /// swept; used for A/B and by the fuzzer to isolate engines).
  bool enable_collapse = true;
  /// Implication-based untestability proofs (off = only sweep/copy/infer).
  bool enable_untestable = true;
};

/// Ternary good-machine value of a slot proved by static analysis.
enum class SlotConst : std::uint8_t { kFree = 0, kZero = 1, kOne = 2 };

/// The full static-analysis result of one CUT. Vectors indexed "per slot"
/// follow the cone's value-slot space (ι inputs, then topo gates); "per
/// fault" vectors follow cone.cluster_faults() order, as does `plan`.
struct CutAnalysis {
  std::size_t cluster_index = 0;
  std::size_t num_inputs = 0;
  std::size_t num_gates = 0;
  std::size_t num_outputs = 0;

  // --- constant/X propagation + structural sweep -----------------------
  std::vector<SlotConst> constant;    ///< per slot
  std::vector<std::uint8_t> observable;  ///< per gate: reaches an observed output
  std::size_t constant_slots = 0;
  std::size_t unobservable_gates = 0;
  std::size_t learned_implications = 0;  ///< contrapositive edges harvested

  // --- SCOAP-like scores -----------------------------------------------
  std::vector<std::uint32_t> cc0;  ///< per slot: cost of driving it to 0
  std::vector<std::uint32_t> cc1;  ///< per slot: cost of driving it to 1
  std::vector<std::uint32_t> co;   ///< per slot: cost of observing it

  // --- fault collapsing + untestability --------------------------------
  std::size_t total_faults = 0;
  std::size_t classes = 0;       ///< equivalence classes over the universe
  std::size_t swept = 0;         ///< plan kSweep entries
  std::size_t copied = 0;        ///< plan kCopyRep entries
  std::size_t inferred = 0;      ///< plan kInfer entries
  std::size_t untestable = 0;    ///< plan kUntestable entries
  std::vector<std::uint8_t> untestable_fault;  ///< per fault: statically proved
  FaultPlan plan;                ///< consumed by exhaustive_coverage/PpetSession

  /// Share of the universe whose verdict needs no dedicated simulation.
  double collapse_ratio() const noexcept {
    return total_faults == 0
               ? 0.0
               : static_cast<double>(copied + inferred) / static_cast<double>(total_faults);
  }
  /// Share of the universe statically proved untestable.
  double untestable_share() const noexcept {
    return total_faults == 0
               ? 0.0
               : static_cast<double>(untestable) / static_cast<double>(total_faults);
  }
};

/// Analyzes one compiled CUT. Pure function of the cone structure and the
/// options — no simulation, no SAT, deterministic.
CutAnalysis analyze_cut(const ConeSimulator& cone, std::size_t cluster_index,
                        const AnalyzeOptions& opt = {});

/// Per-circuit aggregate: one CutAnalysis per cluster, cluster order.
struct CircuitAnalysis {
  std::vector<CutAnalysis> cuts;

  std::size_t total_faults() const noexcept;
  std::size_t swept() const noexcept;
  std::size_t copied() const noexcept;
  std::size_t inferred() const noexcept;
  std::size_t untestable() const noexcept;
  double collapse_ratio() const noexcept;
  double untestable_share() const noexcept;
};

/// Analyzes every cluster of `clustering` (register-only clusters yield
/// degenerate empty entries, kept so indices line up with cluster indices).
CircuitAnalysis analyze_circuit(const CircuitGraph& graph, const Clustering& clustering,
                                const AnalyzeOptions& opt = {});

}  // namespace merced::analyze
