#include "analyze/analyze_json.h"

#include <array>
#include <cmath>
#include <limits>
#include <ostream>

namespace merced::analyze {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

void write_analyze_json(std::ostream& os, const CircuitAnalysis& analysis,
                        const AnalyzeRunInfo& run) {
  std::uint64_t classes = 0, constant_slots = 0, unobservable = 0, learned = 0;
  for (const CutAnalysis& c : analysis.cuts) {
    classes += c.classes;
    constant_slots += c.constant_slots;
    unobservable += c.unobservable_gates;
    learned += c.learned_implications;
  }
  const auto old_precision = os.precision(std::numeric_limits<double>::max_digits10);

  os << "{\n  \"schema\": \"" << kAnalyzeSchema << "\",\n  \"run\": {\"tool\": \"";
  json_escape(os, run.tool);
  os << "\", \"circuit\": \"";
  json_escape(os, run.circuit);
  os << "\", \"lk\": " << run.lk << "},\n  \"summary\": {\"cuts\": "
     << analysis.cuts.size() << ", \"total_faults\": " << analysis.total_faults()
     << ", \"classes\": " << classes << ", \"swept\": " << analysis.swept()
     << ", \"copied\": " << analysis.copied() << ", \"inferred\": " << analysis.inferred()
     << ", \"untestable\": " << analysis.untestable()
     << ", \"constant_slots\": " << constant_slots
     << ", \"unobservable_gates\": " << unobservable
     << ", \"learned_implications\": " << learned
     << ", \"collapse_ratio\": " << analysis.collapse_ratio()
     << ", \"untestable_share\": " << analysis.untestable_share() << "},\n  \"cuts\": [";
  for (std::size_t i = 0; i < analysis.cuts.size(); ++i) {
    const CutAnalysis& c = analysis.cuts[i];
    if (i) os << ",";
    os << "\n    {\"cluster\": " << c.cluster_index << ", \"inputs\": " << c.num_inputs
       << ", \"gates\": " << c.num_gates << ", \"outputs\": " << c.num_outputs
       << ", \"total_faults\": " << c.total_faults << ", \"classes\": " << c.classes
       << ", \"swept\": " << c.swept << ", \"copied\": " << c.copied
       << ", \"inferred\": " << c.inferred << ", \"untestable\": " << c.untestable
       << ", \"constant_slots\": " << c.constant_slots
       << ", \"unobservable_gates\": " << c.unobservable_gates
       << ", \"learned_implications\": " << c.learned_implications << "}";
  }
  os << "\n  ]\n}\n";
  os.precision(old_precision);
}

namespace {

bool is_uint(const obs::JsonValue& v) {
  return v.is_number() && v.as_number() >= 0 &&
         v.as_number() == static_cast<double>(static_cast<std::uint64_t>(v.as_number()));
}

std::string check_member(const obs::JsonValue& obj, const char* key,
                         obs::JsonValue::Kind kind, const char* where) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return std::string(where) + ": missing member \"" + key + "\"";
  if (v->kind() != kind) {
    return std::string(where) + ": member \"" + key + "\" has wrong type";
  }
  return "";
}

constexpr std::array<const char*, 12> kCutCounters = {
    "inputs",         "gates",          "outputs",
    "total_faults",   "classes",        "swept",
    "copied",         "inferred",       "untestable",
    "constant_slots", "unobservable_gates", "learned_implications",
};

}  // namespace

std::string validate_analyze_json(const obs::JsonValue& doc) {
  using Kind = obs::JsonValue::Kind;
  if (!doc.is_object()) return "document is not an object";
  if (std::string err = check_member(doc, "schema", Kind::kString, "root"); !err.empty()) {
    return err;
  }
  if (doc.find("schema")->as_string() != kAnalyzeSchema) {
    return "unknown schema \"" + doc.find("schema")->as_string() + "\"";
  }

  if (std::string err = check_member(doc, "run", Kind::kObject, "root"); !err.empty()) {
    return err;
  }
  const obs::JsonValue& run = *doc.find("run");
  for (const char* key : {"tool", "circuit"}) {
    if (std::string err = check_member(run, key, Kind::kString, "run"); !err.empty()) {
      return err;
    }
  }
  if (std::string err = check_member(run, "lk", Kind::kNumber, "run"); !err.empty()) {
    return err;
  }
  if (!is_uint(*run.find("lk"))) return "run: member \"lk\" is not a non-negative integer";

  if (std::string err = check_member(doc, "summary", Kind::kObject, "root"); !err.empty()) {
    return err;
  }
  const obs::JsonValue& summary = *doc.find("summary");
  for (const char* key : {"cuts", "total_faults", "classes", "swept", "copied",
                          "inferred", "untestable", "constant_slots",
                          "unobservable_gates", "learned_implications"}) {
    if (std::string err = check_member(summary, key, Kind::kNumber, "summary");
        !err.empty()) {
      return err;
    }
    if (!is_uint(*summary.find(key))) {
      return std::string("summary: member \"") + key + "\" is not a non-negative integer";
    }
  }
  for (const char* key : {"collapse_ratio", "untestable_share"}) {
    if (std::string err = check_member(summary, key, Kind::kNumber, "summary");
        !err.empty()) {
      return err;
    }
    const double r = summary.find(key)->as_number();
    if (!(r >= 0.0 && r <= 1.0)) {
      return std::string("summary: member \"") + key + "\" is not in [0, 1]";
    }
  }

  if (std::string err = check_member(doc, "cuts", Kind::kArray, "root"); !err.empty()) {
    return err;
  }
  const auto& cuts = doc.find("cuts")->as_array();
  std::array<std::uint64_t, kCutCounters.size()> sums{};
  for (const obs::JsonValue& c : cuts) {
    if (!c.is_object()) return "cuts: entry is not an object";
    if (std::string err = check_member(c, "cluster", Kind::kNumber, "cut"); !err.empty()) {
      return err;
    }
    if (!is_uint(*c.find("cluster"))) {
      return "cut: member \"cluster\" is not a non-negative integer";
    }
    std::array<std::uint64_t, kCutCounters.size()> v{};
    for (std::size_t k = 0; k < kCutCounters.size(); ++k) {
      if (std::string err = check_member(c, kCutCounters[k], Kind::kNumber, "cut");
          !err.empty()) {
        return err;
      }
      if (!is_uint(*c.find(kCutCounters[k]))) {
        return std::string("cut: member \"") + kCutCounters[k] +
               "\" is not a non-negative integer";
      }
      v[k] = static_cast<std::uint64_t>(c.find(kCutCounters[k])->as_number());
      sums[k] += v[k];
    }
    // Per-cut arithmetic: the plan actions partition the fault universe,
    // every kSweep/kInfer entry is a class representative, and the
    // structural counts stay within their spaces.
    const std::uint64_t gates = v[1], total = v[3], classes = v[4];
    const std::uint64_t swept = v[5], copied = v[6], inferred = v[7], unt = v[8];
    if (swept + copied + inferred + unt != total) {
      return "cut: plan actions do not partition \"total_faults\"";
    }
    if (classes > total) return "cut: \"classes\" exceeds \"total_faults\"";
    if (swept + inferred > classes) {
      return "cut: \"swept\" + \"inferred\" exceeds \"classes\"";
    }
    if (v[9] > v[0] + gates) return "cut: \"constant_slots\" exceeds the slot count";
    if (v[10] > gates) return "cut: \"unobservable_gates\" exceeds \"gates\"";
  }

  // Cross-check the summary against the cuts array.
  auto num = [&](const char* key) {
    return static_cast<std::uint64_t>(summary.find(key)->as_number());
  };
  if (num("cuts") != cuts.size()) {
    return "summary: \"cuts\" disagrees with the cuts array";
  }
  const std::array<const char*, 9> totals = {
      "total_faults",   "classes",        "swept",
      "copied",         "inferred",       "untestable",
      "constant_slots", "unobservable_gates", "learned_implications",
  };
  for (std::size_t k = 0; k < totals.size(); ++k) {
    if (num(totals[k]) != sums[k + 3]) {
      return std::string("summary: \"") + totals[k] + "\" disagrees with the cuts array";
    }
  }
  const std::uint64_t total = num("total_faults");
  const double collapse =
      total == 0 ? 0.0
                 : static_cast<double>(num("copied") + num("inferred")) /
                       static_cast<double>(total);
  const double share = total == 0 ? 0.0
                                  : static_cast<double>(num("untestable")) /
                                        static_cast<double>(total);
  if (std::abs(summary.find("collapse_ratio")->as_number() - collapse) > 1e-9) {
    return "summary: \"collapse_ratio\" disagrees with the counts";
  }
  if (std::abs(summary.find("untestable_share")->as_number() - share) > 1e-9) {
    return "summary: \"untestable_share\" disagrees with the counts";
  }
  return "";
}

}  // namespace merced::analyze
