#include "analyze/analyze.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "netlist/netlist.h"
#include "obs/obs.h"

namespace merced::analyze {

namespace {

// Ternary values of the implication engine: 0/1 are the logic constants,
// kTX is "unconstrained". SlotConst maps back out via const_of.
constexpr std::uint8_t kT0 = 0, kT1 = 1, kTX = 2;

SlotConst const_of(std::uint8_t t) noexcept {
  return t == kT0 ? SlotConst::kZero : t == kT1 ? SlotConst::kOne : SlotConst::kFree;
}

/// The analyzer's flat mirror of one cone, rebuilt from ConeSimulator's
/// public API (same value-slot space: ι inputs, then topo gates). Carries
/// the one extra piece the kernel CSR drops: per-slot sink (gate, pin)
/// pairs, which backward implications and the D-frontier walk need.
struct ConeView {
  std::size_t num_inputs = 0;
  std::size_t num_gates = 0;
  std::size_t num_slots = 0;
  std::vector<NodeId> node;                  ///< per gate: graph node
  std::vector<GateType> type;                ///< per gate
  std::vector<std::uint32_t> fanin_offset;   ///< per gate, into fanin_slot
  std::vector<std::uint32_t> fanin_slot;
  std::vector<std::int32_t> observed_index;  ///< per gate: output index or -1
  std::vector<std::uint8_t> single_sink;     ///< per gate: exactly one graph branch
  std::vector<std::uint32_t> sink_offset;    ///< per slot, into sink_gate/sink_pin
  std::vector<std::uint32_t> sink_gate;
  std::vector<std::uint16_t> sink_pin;

  std::size_t fanin_count(std::size_t t) const noexcept {
    return fanin_offset[t + 1] - fanin_offset[t];
  }
  const std::uint32_t* fanins(std::size_t t) const noexcept {
    return fanin_slot.data() + fanin_offset[t];
  }
  std::size_t out_slot(std::size_t t) const noexcept { return num_inputs + t; }
};

ConeView build_view(const ConeSimulator& cone) {
  const CircuitGraph& g = cone.graph();
  const Netlist& nl = g.netlist();
  const auto inputs = cone.cut_inputs();
  const auto gates = cone.gates();

  ConeView v;
  v.num_inputs = inputs.size();
  v.num_gates = gates.size();
  v.num_slots = inputs.size() + gates.size();

  std::vector<std::int32_t> input_slot(g.num_nodes(), -1);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    input_slot[g.driver(inputs[i])] = static_cast<std::int32_t>(i);
  }
  std::vector<std::int32_t> pos(g.num_nodes(), -1);
  for (std::size_t t = 0; t < gates.size(); ++t) {
    pos[gates[t]] = static_cast<std::int32_t>(t);
  }

  v.node.assign(gates.begin(), gates.end());
  v.type.reserve(gates.size());
  v.fanin_offset.reserve(gates.size() + 1);
  v.fanin_offset.push_back(0);
  v.observed_index.assign(gates.size(), -1);
  v.single_sink.assign(gates.size(), 0);
  for (std::size_t t = 0; t < gates.size(); ++t) {
    const Gate& gate = nl.gate(gates[t]);
    v.type.push_back(gate.type);
    for (GateId f : gate.fanins) {
      if (input_slot[f] >= 0) {
        v.fanin_slot.push_back(static_cast<std::uint32_t>(input_slot[f]));
      } else if (pos[f] >= 0) {
        v.fanin_slot.push_back(static_cast<std::uint32_t>(v.num_inputs) +
                               static_cast<std::uint32_t>(pos[f]));
      } else {
        throw std::logic_error("analyze: fanin is neither CUT input nor cluster gate");
      }
    }
    v.fanin_offset.push_back(static_cast<std::uint32_t>(v.fanin_slot.size()));
    v.single_sink[t] = g.out_branches(gates[t]).size() == 1 ? 1 : 0;
  }
  const auto outputs = cone.observed_outputs();
  for (std::size_t o = 0; o < outputs.size(); ++o) {
    const std::int32_t p = pos[g.driver(outputs[o])];
    v.observed_index[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(o);
  }

  // Per-slot sink CSR (counting sort over fanin pins).
  std::vector<std::uint32_t> counts(v.num_slots + 1, 0);
  for (const std::uint32_t s : v.fanin_slot) ++counts[s + 1];
  for (std::size_t s = 0; s < v.num_slots; ++s) counts[s + 1] += counts[s];
  v.sink_offset = counts;
  v.sink_gate.resize(v.fanin_slot.size());
  v.sink_pin.resize(v.fanin_slot.size());
  for (std::size_t t = 0; t < gates.size(); ++t) {
    for (std::uint32_t k = v.fanin_offset[t]; k < v.fanin_offset[t + 1]; ++k) {
      const std::uint32_t s = v.fanin_slot[k];
      const std::uint32_t at = counts[s]++;
      v.sink_gate[at] = static_cast<std::uint32_t>(t);
      v.sink_pin[at] = static_cast<std::uint16_t>(k - v.fanin_offset[t]);
    }
  }
  return v;
}

/// Ternary gate evaluation (the forward implication rule).
template <typename GetPin>
std::uint8_t eval_tern(GateType type, std::size_t nf, GetPin&& get) {
  switch (type) {
    case GateType::kConst0: return kT0;
    case GateType::kConst1: return kT1;
    case GateType::kBuf: return get(0);
    case GateType::kNot: {
      const std::uint8_t a = get(0);
      return a == kTX ? kTX : a ^ 1;
    }
    case GateType::kAnd:
    case GateType::kNand: {
      bool any_x = false;
      for (std::size_t k = 0; k < nf; ++k) {
        const std::uint8_t a = get(k);
        if (a == kT0) return type == GateType::kAnd ? kT0 : kT1;
        if (a == kTX) any_x = true;
      }
      if (any_x) return kTX;
      return type == GateType::kAnd ? kT1 : kT0;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool any_x = false;
      for (std::size_t k = 0; k < nf; ++k) {
        const std::uint8_t a = get(k);
        if (a == kT1) return type == GateType::kOr ? kT1 : kT0;
        if (a == kTX) any_x = true;
      }
      if (any_x) return kTX;
      return type == GateType::kOr ? kT0 : kT1;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint8_t acc = type == GateType::kXor ? kT0 : kT1;
      for (std::size_t k = 0; k < nf; ++k) {
        const std::uint8_t a = get(k);
        if (a == kTX) return kTX;
        acc ^= a;
      }
      return acc;
    }
    case GateType::kMux: {
      const std::uint8_t sel = get(0);
      if (sel == kT0) return get(1);
      if (sel == kT1) return get(2);
      const std::uint8_t a = get(1), b = get(2);
      return (a != kTX && a == b) ? a : kTX;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw std::logic_error("analyze: non-evaluable gate type in cone");
}

/// Controlling input value of the AND/OR families; false for types without
/// one (which can never block a fault effect on a side input).
bool controlling_value(GateType t, std::uint8_t& c) noexcept {
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand: c = kT0; return true;
    case GateType::kOr:
    case GateType::kNor: c = kT1; return true;
    default: return false;
  }
}

/// Output value of an AND-family gate when all inputs sit at the
/// non-controlling value (the "uncontrolled output").
std::uint8_t uncontrolled_output(GateType t) noexcept {
  return (t == GateType::kAnd || t == GateType::kNor) ? kT1 : kT0;
}

/// The FIRE-style implication engine: direct forward/backward implications
/// over the cone's gate functions, a baseline of statically-proved
/// constants, and learned contrapositive edges from single-assignment
/// learning. One assume() call seeds a single (slot = value) assignment and
/// propagates to fixpoint; a conflict proves the assignment unachievable by
/// any input pattern.
class ImplicationEngine {
 public:
  explicit ImplicationEngine(const ConeView& view)
      : v_(&view), base_(view.num_slots, kTX), val_(view.num_slots, kTX) {}

  std::uint8_t base(std::size_t slot) const noexcept { return base_[slot]; }

  /// Installs a proved fact (the slot is constant) together with its full
  /// implication closure into the baseline every assume() starts from.
  void add_base_fact(std::size_t slot, std::uint8_t tv) {
    if (base_[slot] == tv) return;
    if (!assume(slot, tv)) {
      // A fact cannot conflict: gate constraints are satisfiable for every
      // input assignment. Reaching this means the caller's fact was wrong.
      throw std::logic_error("analyze: baseline fact conflicts with the cone");
    }
    base_ = val_;
  }

  /// Single-assignment learning: for every free slot and value, propagate
  /// once; a conflict proves the slot constant (folded into the baseline),
  /// otherwise every implied literal contributes its contrapositive edge.
  /// Returns the number of learned edges.
  std::size_t learn() {
    learned_.assign(2 * v_->num_slots, {});
    std::size_t edges = 0;
    for (std::size_t s = 0; s < v_->num_slots; ++s) {
      for (std::uint8_t tv : {kT0, kT1}) {
        if (base_[s] != kTX) break;
        if (!assume(s, tv)) {
          add_base_fact(s, tv ^ 1);
          continue;
        }
        for (const std::uint32_t a : trail_) {
          if (a == s) continue;
          // (s = tv) ⇒ (a = val[a]), so (a = ¬val[a]) ⇒ (s = ¬tv).
          learned_[lit(a, val_[a] ^ 1)].push_back(lit(s, tv ^ 1));
        }
      }
    }
    for (auto& list : learned_) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      edges += list.size();
    }
    return edges;
  }

  /// Seeds (slot = tv) on top of the constant baseline and propagates to
  /// fixpoint. Returns false on conflict (the assignment is unachievable).
  /// Implied values are readable through value() until the next assume().
  bool assume(std::size_t slot, std::uint8_t tv) {
    val_ = base_;
    trail_.clear();
    queue_.clear();
    if (!enqueue(static_cast<std::uint32_t>(slot), tv)) return false;
    return propagate();
  }

  std::uint8_t value(std::size_t slot) const noexcept { return val_[slot]; }

 private:
  static std::uint32_t lit(std::uint32_t slot, std::uint8_t tv) noexcept {
    return 2 * slot + tv;
  }

  bool enqueue(std::uint32_t slot, std::uint8_t tv) {
    const std::uint8_t cur = val_[slot];
    if (cur == tv) return true;
    if (cur != kTX) return false;  // conflict
    val_[slot] = tv;
    trail_.push_back(slot);
    queue_.push_back(slot);
    return true;
  }

  bool propagate() {
    while (!queue_.empty()) {
      const std::uint32_t s = queue_.back();
      queue_.pop_back();
      if (!learned_.empty()) {
        for (const std::uint32_t l : learned_[lit(s, val_[s])]) {
          if (!enqueue(l >> 1, static_cast<std::uint8_t>(l & 1))) return false;
        }
      }
      for (std::uint32_t i = v_->sink_offset[s]; i < v_->sink_offset[s + 1]; ++i) {
        if (!try_gate(v_->sink_gate[i])) return false;
      }
      if (s >= v_->num_inputs && !try_gate(s - static_cast<std::uint32_t>(v_->num_inputs))) {
        return false;
      }
    }
    return true;
  }

  /// Re-derives everything derivable at gate `t` from the current values:
  /// the forward ternary evaluation plus the per-type backward rules. Every
  /// rule is a *necessary* consequence, so soundness of untestability
  /// proofs only needs each implemented rule to be correct, not complete.
  bool try_gate(std::uint32_t t) {
    const std::uint32_t* fin = v_->fanins(t);
    const std::size_t nf = v_->fanin_count(t);
    const auto out = static_cast<std::uint32_t>(v_->out_slot(t));
    const GateType type = v_->type[t];

    const std::uint8_t fv =
        eval_tern(type, nf, [&](std::size_t k) { return val_[fin[k]]; });
    if (fv != kTX && !enqueue(out, fv)) return false;
    const std::uint8_t ov = val_[out];
    if (ov == kTX) return true;

    switch (type) {
      case GateType::kBuf:
        return enqueue(fin[0], ov);
      case GateType::kNot:
        return enqueue(fin[0], ov ^ 1);
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        std::uint8_t c = 0;
        controlling_value(type, c);
        if (ov == uncontrolled_output(type)) {
          for (std::size_t k = 0; k < nf; ++k) {
            if (!enqueue(fin[k], c ^ 1)) return false;
          }
          return true;
        }
        // Controlled output: if no input is at the controlling value yet
        // and exactly one is free, that one must control.
        std::int64_t unknown = -1;
        for (std::size_t k = 0; k < nf; ++k) {
          const std::uint8_t a = val_[fin[k]];
          if (a == c) return true;  // already justified
          if (a == kTX) {
            if (unknown >= 0) return true;  // two candidates, nothing forced
            unknown = static_cast<std::int64_t>(k);
          }
        }
        if (unknown >= 0) return enqueue(fin[static_cast<std::size_t>(unknown)], c);
        return true;  // all non-controlling: forward eval raised the conflict
      }
      case GateType::kXor:
      case GateType::kXnor: {
        std::int64_t unknown = -1;
        std::uint8_t parity = ov ^ (type == GateType::kXnor ? 1 : 0);
        for (std::size_t k = 0; k < nf; ++k) {
          const std::uint8_t a = val_[fin[k]];
          if (a == kTX) {
            if (unknown >= 0) return true;
            unknown = static_cast<std::int64_t>(k);
          } else {
            parity ^= a;
          }
        }
        if (unknown >= 0) return enqueue(fin[static_cast<std::size_t>(unknown)], parity);
        return true;
      }
      case GateType::kMux: {
        const std::uint8_t sel = val_[fin[0]];
        if (sel == kT0) return enqueue(fin[1], ov);
        if (sel == kT1) return enqueue(fin[2], ov);
        const std::uint8_t a = val_[fin[1]], b = val_[fin[2]];
        if (a != kTX && a != ov) {
          return enqueue(fin[0], kT1) && enqueue(fin[2], ov);
        }
        if (b != kTX && b != ov) {
          return enqueue(fin[0], kT0) && enqueue(fin[1], ov);
        }
        return true;
      }
      default:
        return true;  // constants: forward eval is the whole story
    }
  }

  const ConeView* v_;
  std::vector<std::uint8_t> base_;  ///< constant baseline (closure of facts)
  std::vector<std::uint8_t> val_;   ///< working assignment of one assume()
  std::vector<std::uint32_t> trail_;
  std::vector<std::uint32_t> queue_;
  std::vector<std::vector<std::uint32_t>> learned_;  ///< per literal (2s+v)
};

/// Can a fault effect (D) pass through gate `t`? `has_d(k)` says whether
/// fanin pin k carries a potential effect; D-free pins hold the *same*
/// value in both machines (by induction over the frontier walk), so a
/// D-free side pin implied to the controlling value kills every effect.
/// Conservative in the detectable direction: multi-D gates always pass.
template <typename HasD>
bool passes_gate(const ConeView& v, const ImplicationEngine& eng, std::uint32_t t,
                 HasD&& has_d) {
  const std::uint32_t* fin = v.fanins(t);
  const std::size_t nf = v.fanin_count(t);
  const GateType type = v.type[t];
  std::uint8_t c = 0;
  if (controlling_value(type, c)) {
    for (std::size_t k = 0; k < nf; ++k) {
      if (!has_d(k) && eng.value(fin[k]) == c) return false;
    }
    return true;
  }
  if (type == GateType::kMux) {
    if (has_d(0)) return true;
    const std::uint8_t sel = eng.value(fin[0]);
    if (sel == kT0) return has_d(1);
    if (sel == kT1) return has_d(2);
    return has_d(1) || has_d(2);
  }
  return true;  // NOT/BUF/XOR family: no controlling side value exists
}

/// Walks the D-frontier from the fault site forward under the excitation
/// implications held by `eng`. Returns true when some observed output may
/// see the effect (the fault is possibly detectable); false is a static
/// proof of untestability.
///
/// The walk is a worklist over the sink CSR: whenever a slot gains D its
/// sink gates are retried, so the cost is proportional to the fault's
/// D-cone, not the whole cut. passes_gate is monotone in has_d (a D pin is
/// exempt from the controlling-value check), so retry-on-new-fanin reaches
/// the same fixpoint as a finalized topo scan. A slot carries D iff
/// d_mark[slot] == gen; bumping gen resets the marking without a clear.
bool effect_reaches_observed(const ConeView& v, const ImplicationEngine& eng,
                             const Fault& fault, std::uint32_t t0,
                             std::vector<std::uint32_t>& d_mark,
                             std::uint32_t gen,
                             std::vector<std::uint32_t>& work) {
  if (fault.site == Fault::Site::kInputPin) {
    // The effect enters through one pin of the faulty gate only; the other
    // branches of the stem keep their good value.
    if (!passes_gate(v, eng, t0, [&](std::size_t k) { return k == fault.pin; })) {
      return false;
    }
  }
  if (v.observed_index[t0] >= 0) return true;
  const auto seed = static_cast<std::uint32_t>(v.out_slot(t0));
  d_mark[seed] = gen;
  work.clear();
  work.push_back(seed);
  while (!work.empty()) {
    const std::uint32_t s = work.back();
    work.pop_back();
    for (std::uint32_t i = v.sink_offset[s]; i < v.sink_offset[s + 1]; ++i) {
      const std::uint32_t t = v.sink_gate[i];
      const auto o = static_cast<std::uint32_t>(v.out_slot(t));
      if (d_mark[o] == gen) continue;
      const std::uint32_t* fin = v.fanins(t);
      if (!passes_gate(v, eng, t, [&](std::size_t k) { return d_mark[fin[k]] == gen; })) {
        continue;
      }
      d_mark[o] = gen;
      if (v.observed_index[t] >= 0) return true;
      work.push_back(o);
    }
  }
  return false;
}

std::uint32_t uf_find(std::vector<std::uint32_t>& parent, std::uint32_t x) noexcept {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

/// Union keeping the smaller fault index as root, so every class
/// representative is its first member in cluster_faults() order.
void uf_unite(std::vector<std::uint32_t>& parent, std::uint32_t a, std::uint32_t b) noexcept {
  a = uf_find(parent, a);
  b = uf_find(parent, b);
  if (a == b) return;
  if (b < a) std::swap(a, b);
  parent[b] = a;
}

std::uint64_t fault_key(const Fault& f) noexcept {
  return (static_cast<std::uint64_t>(f.gate) << 18) |
         (static_cast<std::uint64_t>(f.site == Fault::Site::kInputPin) << 17) |
         (static_cast<std::uint64_t>(f.pin) << 1) |
         static_cast<std::uint64_t>(f.stuck_value ? 1 : 0);
}

constexpr std::uint32_t kNoFault = ~std::uint32_t{0};

std::uint32_t saturating_add(std::uint32_t a, std::uint32_t b) noexcept {
  const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
  return s >= kScoreInf ? kScoreInf : static_cast<std::uint32_t>(s);
}

/// SCOAP combinational controllabilities, one forward topo pass, then the
/// observabilities in one reverse pass. Saturates at kScoreInf; slots the
/// implication layer proved constant get the impossible side pinned to
/// kScoreInf so scores and proofs tell one story.
void scoap_scores(const ConeView& v, const ImplicationEngine& eng, CutAnalysis& out) {
  out.cc0.assign(v.num_slots, kScoreInf);
  out.cc1.assign(v.num_slots, kScoreInf);
  out.co.assign(v.num_slots, kScoreInf);
  for (std::size_t i = 0; i < v.num_inputs; ++i) {
    out.cc0[i] = 1;
    out.cc1[i] = 1;
  }
  for (std::size_t t = 0; t < v.num_gates; ++t) {
    const std::uint32_t* fin = v.fanins(t);
    const std::size_t nf = v.fanin_count(t);
    const std::size_t o = v.out_slot(t);
    std::uint32_t c0 = kScoreInf, c1 = kScoreInf;
    switch (v.type[t]) {
      case GateType::kConst0: c0 = 1; break;
      case GateType::kConst1: c1 = 1; break;
      case GateType::kBuf:
        c0 = out.cc0[fin[0]];
        c1 = out.cc1[fin[0]];
        break;
      case GateType::kNot:
        c0 = out.cc1[fin[0]];
        c1 = out.cc0[fin[0]];
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        std::uint32_t all = 0, one = kScoreInf;
        for (std::size_t k = 0; k < nf; ++k) {
          all = saturating_add(all, out.cc1[fin[k]]);
          one = std::min(one, out.cc0[fin[k]]);
        }
        c1 = v.type[t] == GateType::kAnd ? all : one;
        c0 = v.type[t] == GateType::kAnd ? one : all;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        std::uint32_t all = 0, one = kScoreInf;
        for (std::size_t k = 0; k < nf; ++k) {
          all = saturating_add(all, out.cc0[fin[k]]);
          one = std::min(one, out.cc1[fin[k]]);
        }
        c1 = v.type[t] == GateType::kOr ? one : all;
        c0 = v.type[t] == GateType::kOr ? all : one;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        std::uint32_t even = 0, odd = kScoreInf;  // cost of parity-0 / parity-1
        for (std::size_t k = 0; k < nf; ++k) {
          const std::uint32_t i0 = out.cc0[fin[k]], i1 = out.cc1[fin[k]];
          const std::uint32_t ne = std::min(saturating_add(even, i0), saturating_add(odd, i1));
          const std::uint32_t no = std::min(saturating_add(even, i1), saturating_add(odd, i0));
          even = ne;
          odd = no;
        }
        c0 = v.type[t] == GateType::kXor ? even : odd;
        c1 = v.type[t] == GateType::kXor ? odd : even;
        break;
      }
      case GateType::kMux: {
        const std::uint32_t s0 = out.cc0[fin[0]], s1 = out.cc1[fin[0]];
        c0 = std::min(saturating_add(s0, out.cc0[fin[1]]),
                      saturating_add(s1, out.cc0[fin[2]]));
        c1 = std::min(saturating_add(s0, out.cc1[fin[1]]),
                      saturating_add(s1, out.cc1[fin[2]]));
        break;
      }
      case GateType::kInput:
      case GateType::kDff:
        break;
    }
    out.cc0[o] = saturating_add(c0, c0 == kScoreInf ? 0 : 1);
    out.cc1[o] = saturating_add(c1, c1 == kScoreInf ? 0 : 1);
  }
  // Pin impossible sides of proved constants.
  for (std::size_t s = 0; s < v.num_slots; ++s) {
    if (eng.base(s) == kT0) out.cc1[s] = kScoreInf;
    if (eng.base(s) == kT1) out.cc0[s] = kScoreInf;
  }

  for (std::size_t t = 0; t < v.num_gates; ++t) {
    if (v.observed_index[t] >= 0) out.co[v.out_slot(t)] = 0;
  }
  for (std::size_t ti = v.num_gates; ti-- > 0;) {
    const std::uint32_t oc = out.co[v.out_slot(ti)];
    if (oc == kScoreInf) continue;
    const std::uint32_t* fin = v.fanins(ti);
    const std::size_t nf = v.fanin_count(ti);
    for (std::size_t k = 0; k < nf; ++k) {
      std::uint32_t side = 0;
      switch (v.type[ti]) {
        case GateType::kAnd:
        case GateType::kNand:
          for (std::size_t j = 0; j < nf; ++j) {
            if (j != k) side = saturating_add(side, out.cc1[fin[j]]);
          }
          break;
        case GateType::kOr:
        case GateType::kNor:
          for (std::size_t j = 0; j < nf; ++j) {
            if (j != k) side = saturating_add(side, out.cc0[fin[j]]);
          }
          break;
        case GateType::kXor:
        case GateType::kXnor:
          for (std::size_t j = 0; j < nf; ++j) {
            if (j != k) {
              side = saturating_add(side, std::min(out.cc0[fin[j]], out.cc1[fin[j]]));
            }
          }
          break;
        case GateType::kMux:
          if (k == 0) {
            // Observing the select needs the data inputs to differ.
            side = std::min(saturating_add(out.cc0[fin[1]], out.cc1[fin[2]]),
                            saturating_add(out.cc1[fin[1]], out.cc0[fin[2]]));
          } else {
            side = k == 1 ? out.cc0[fin[0]] : out.cc1[fin[0]];
          }
          break;
        default:
          break;  // NOT/BUF/constants: free side
      }
      const std::uint32_t cost = saturating_add(saturating_add(oc, side), 1);
      out.co[fin[k]] = std::min(out.co[fin[k]], cost);
    }
  }
}

}  // namespace

CutAnalysis analyze_cut(const ConeSimulator& cone, std::size_t cluster_index,
                        const AnalyzeOptions& opt) {
  MERCED_SPAN("analyze_cut", cluster_index);
  const ConeView v = build_view(cone);

  CutAnalysis out;
  out.cluster_index = cluster_index;
  out.num_inputs = v.num_inputs;
  out.num_gates = v.num_gates;
  out.num_outputs = cone.observed_outputs().size();

  // --- constant/X propagation, then implication-discovered ties ---------
  ImplicationEngine eng(v);
  {
    std::vector<std::uint8_t> konst(v.num_slots, kTX);
    for (std::size_t t = 0; t < v.num_gates; ++t) {
      const std::uint8_t fv = eval_tern(v.type[t], v.fanin_count(t), [&](std::size_t k) {
        return konst[v.fanins(t)[k]];
      });
      konst[v.out_slot(t)] = fv;
    }
    for (std::size_t s = 0; s < v.num_slots; ++s) {
      if (konst[s] != kTX) eng.add_base_fact(s, konst[s]);
    }
  }
  if (opt.enable_untestable && v.num_slots <= opt.learn_max_slots) {
    out.learned_implications = eng.learn();
  }
  out.constant.resize(v.num_slots);
  for (std::size_t s = 0; s < v.num_slots; ++s) {
    out.constant[s] = const_of(eng.base(s));
    if (out.constant[s] != SlotConst::kFree) ++out.constant_slots;
  }

  // --- structural observability sweep (reverse reachability) ------------
  out.observable.assign(v.num_gates, 0);
  for (std::size_t ti = v.num_gates; ti-- > 0;) {
    bool reach = v.observed_index[ti] >= 0;
    const std::size_t o = v.out_slot(ti);
    for (std::uint32_t i = v.sink_offset[o]; !reach && i < v.sink_offset[o + 1]; ++i) {
      reach = out.observable[v.sink_gate[i]] != 0;
    }
    out.observable[ti] = reach ? 1 : 0;
    if (!reach) ++out.unobservable_gates;
  }

  scoap_scores(v, eng, out);

  // --- the fault universe ----------------------------------------------
  const std::vector<Fault> faults = cone.cluster_faults();
  const auto num_faults = static_cast<std::uint32_t>(faults.size());
  out.total_faults = faults.size();

  std::unordered_map<std::uint64_t, std::uint32_t> index;
  index.reserve(faults.size());
  std::vector<std::int32_t> pos_of_node(cone.graph().num_nodes(), -1);
  for (std::size_t t = 0; t < v.num_gates; ++t) {
    pos_of_node[v.node[t]] = static_cast<std::int32_t>(t);
  }
  for (std::uint32_t i = 0; i < num_faults; ++i) index.emplace(fault_key(faults[i]), i);
  const auto lookup = [&](NodeId gate, Fault::Site site, std::uint16_t pin,
                          bool sv) -> std::uint32_t {
    const auto it = index.find(fault_key(Fault{gate, site, pin, sv}));
    return it == index.end() ? kNoFault : it->second;
  };

  // --- per-fault static untestability ------------------------------------
  // Faults sharing an excitation literal (site slot, excite value) see the
  // exact same implied assignment, so group them and run one assume() per
  // distinct literal instead of one per fault; only the D-frontier walk is
  // per fault. The verdicts are identical to the one-assume-per-fault loop.
  out.untestable_fault.assign(faults.size(), 0);
  if (opt.enable_untestable) {
    struct ExciteJob {
      std::uint32_t lit;  ///< 2 * site slot + excite value
      std::uint32_t fault;
      std::uint32_t t0;
    };
    std::vector<ExciteJob> excite_jobs;
    excite_jobs.reserve(faults.size());
    for (std::uint32_t i = 0; i < num_faults; ++i) {
      const Fault& f = faults[i];
      const auto t0 = static_cast<std::uint32_t>(pos_of_node[f.gate]);
      if (!out.observable[t0]) {
        out.untestable_fault[i] = 1;  // no path to any observed output
        continue;
      }
      const std::size_t site = f.site == Fault::Site::kOutput
                                   ? v.out_slot(t0)
                                   : v.fanins(t0)[f.pin];
      const std::uint8_t excite = f.stuck_value ? kT0 : kT1;
      excite_jobs.push_back(
          {static_cast<std::uint32_t>(2 * site + excite), i, t0});
    }
    std::sort(excite_jobs.begin(), excite_jobs.end(),
              [](const ExciteJob& a, const ExciteJob& b) {
                return a.lit != b.lit ? a.lit < b.lit : a.fault < b.fault;
              });
    std::vector<std::uint32_t> d_mark(v.num_slots, 0);
    std::vector<std::uint32_t> d_work;
    std::uint32_t d_gen = 0;
    for (std::size_t j = 0; j < excite_jobs.size();) {
      const std::uint32_t group_lit = excite_jobs[j].lit;
      const bool excitable = eng.assume(group_lit >> 1,
                                        static_cast<std::uint8_t>(group_lit & 1));
      for (; j < excite_jobs.size() && excite_jobs[j].lit == group_lit; ++j) {
        const ExciteJob& job = excite_jobs[j];
        if (!excitable) {
          out.untestable_fault[job.fault] = 1;  // site is tied to the stuck value
        } else if (!effect_reaches_observed(v, eng, faults[job.fault], job.t0,
                                            d_mark, ++d_gen, d_work)) {
          out.untestable_fault[job.fault] = 1;  // every path is blocked
        }
      }
    }
  }

  // --- equivalence classes over single-fanout chains ---------------------
  std::vector<std::uint32_t> parent(faults.size());
  for (std::uint32_t i = 0; i < num_faults; ++i) parent[i] = i;
  const auto unite = [&](std::uint32_t a, std::uint32_t b) {
    if (a != kNoFault && b != kNoFault) uf_unite(parent, a, b);
  };
  if (opt.enable_collapse) {
    for (std::uint32_t t = 0; t < v.num_gates; ++t) {
      const std::uint32_t* fin = v.fanins(t);
      const std::size_t nf = v.fanin_count(t);
      for (std::size_t k = 0; k < nf; ++k) {
        if (fin[k] < v.num_inputs) continue;
        const std::uint32_t d = fin[k] - static_cast<std::uint32_t>(v.num_inputs);
        if (!v.single_sink[d] || v.observed_index[d] >= 0) continue;
        // The driver feeds exactly this pin and nothing observes it, so a
        // stuck driver and the corresponding stuck output are the same
        // faulty machine.
        const NodeId gd = v.node[d], gt = v.node[t];
        switch (v.type[t]) {
          case GateType::kBuf:
            for (const bool sv : {false, true}) {
              unite(lookup(gt, Fault::Site::kOutput, 0, sv),
                    lookup(gd, Fault::Site::kOutput, 0, sv));
            }
            break;
          case GateType::kNot:
            for (const bool sv : {false, true}) {
              unite(lookup(gt, Fault::Site::kOutput, 0, sv),
                    lookup(gd, Fault::Site::kOutput, 0, !sv));
            }
            break;
          case GateType::kAnd:
          case GateType::kNand:
          case GateType::kOr:
          case GateType::kNor: {
            std::uint8_t c = 0;
            controlling_value(v.type[t], c);
            // Driver stuck at the controlling value ≡ controlled output.
            const bool out_sv = uncontrolled_output(v.type[t]) == kT0;
            unite(lookup(gt, Fault::Site::kOutput, 0, out_sv),
                  lookup(gd, Fault::Site::kOutput, 0, c == kT1));
            break;
          }
          default:
            break;  // XOR/XNOR/MUX: no exact cross-gate equivalence
        }
      }
    }
  }

  // Untestability is a property of the faulty machine, so it extends to the
  // whole equivalence class.
  std::vector<std::uint8_t> class_untestable(faults.size(), 0);
  for (std::uint32_t i = 0; i < num_faults; ++i) {
    if (out.untestable_fault[i]) class_untestable[uf_find(parent, i)] = 1;
  }

  // --- plan assembly -----------------------------------------------------
  FaultPlan& plan = out.plan;
  plan.action.assign(faults.size(), FaultPlan::Action::kSweep);
  plan.rep.assign(faults.size(), 0);
  for (std::uint32_t i = 0; i < num_faults; ++i) {
    const std::uint32_t root = uf_find(parent, i);
    if (root == i) ++out.classes;
    if (class_untestable[root]) {
      plan.action[i] = FaultPlan::Action::kUntestable;
      out.untestable_fault[i] = 1;  // report the whole class as proved
    } else if (root != i) {
      plan.action[i] = FaultPlan::Action::kCopyRep;
      plan.rep[i] = root;
    }
  }

  // Dominance: the uncontrolled-output fault of an AND-family gate is
  // detected by every test of any of its ¬c pin faults (and of a qualifying
  // single-fanout driver's ¬c stem fault) — under an exhaustive sweep a
  // detected witness therefore proves detection. Witnesses must stay
  // kSweep; gates are visited in topo order so driver-side reps are
  // already decided.
  std::vector<std::vector<std::uint32_t>> witnesses(faults.size());
  if (opt.enable_collapse) {
    for (std::uint32_t t = 0; t < v.num_gates; ++t) {
      std::uint8_t c = 0;
      if (!controlling_value(v.type[t], c)) continue;
      const bool a_sv = uncontrolled_output(v.type[t]) == kT1;
      const std::uint32_t a = lookup(v.node[t], Fault::Site::kOutput, 0, a_sv);
      if (a == kNoFault || plan.action[a] != FaultPlan::Action::kSweep) continue;
      const std::uint32_t* fin = v.fanins(t);
      const std::size_t nf = v.fanin_count(t);
      std::vector<std::uint32_t>& w = witnesses[a];
      const auto add_witness = [&](std::uint32_t j) {
        if (j == kNoFault) return;
        const std::uint32_t r = uf_find(parent, j);
        if (r == a || plan.action[r] != FaultPlan::Action::kSweep) return;
        if (std::find(w.begin(), w.end(), r) != w.end()) return;
        if (w.size() < opt.max_witnesses) w.push_back(r);
      };
      for (std::size_t k = 0; k < nf; ++k) {
        add_witness(lookup(v.node[t], Fault::Site::kInputPin,
                           static_cast<std::uint16_t>(k), c == kT0));
        if (fin[k] >= v.num_inputs) {
          const std::uint32_t d = fin[k] - static_cast<std::uint32_t>(v.num_inputs);
          if (v.single_sink[d] && v.observed_index[d] < 0) {
            add_witness(lookup(v.node[d], Fault::Site::kOutput, 0, c == kT0));
          }
        }
      }
      if (!w.empty()) plan.action[a] = FaultPlan::Action::kInfer;
    }
  }

  plan.witness_offset.assign(faults.size() + 1, 0);
  for (std::uint32_t i = 0; i < num_faults; ++i) {
    plan.witness_offset[i + 1] =
        plan.witness_offset[i] + static_cast<std::uint32_t>(witnesses[i].size());
    for (const std::uint32_t r : witnesses[i]) plan.witness.push_back(r);
  }

  for (const FaultPlan::Action a : plan.action) {
    switch (a) {
      case FaultPlan::Action::kSweep: ++out.swept; break;
      case FaultPlan::Action::kCopyRep: ++out.copied; break;
      case FaultPlan::Action::kInfer: ++out.inferred; break;
      case FaultPlan::Action::kUntestable: ++out.untestable; break;
    }
  }
  if (!plan.valid_for(faults.size())) {
    throw std::logic_error("analyze: assembled FaultPlan failed validation");
  }
  return out;
}

CircuitAnalysis analyze_circuit(const CircuitGraph& graph, const Clustering& clustering,
                                const AnalyzeOptions& opt) {
  MERCED_SPAN("analyze_circuit");
  CircuitAnalysis out;
  out.cuts.reserve(clustering.count());
  for (std::size_t ci = 0; ci < clustering.count(); ++ci) {
    const ConeSimulator cone(graph, clustering, ci);
    out.cuts.push_back(analyze_cut(cone, ci, opt));
  }
  return out;
}

std::size_t CircuitAnalysis::total_faults() const noexcept {
  std::size_t n = 0;
  for (const CutAnalysis& c : cuts) n += c.total_faults;
  return n;
}

std::size_t CircuitAnalysis::swept() const noexcept {
  std::size_t n = 0;
  for (const CutAnalysis& c : cuts) n += c.swept;
  return n;
}

std::size_t CircuitAnalysis::copied() const noexcept {
  std::size_t n = 0;
  for (const CutAnalysis& c : cuts) n += c.copied;
  return n;
}

std::size_t CircuitAnalysis::inferred() const noexcept {
  std::size_t n = 0;
  for (const CutAnalysis& c : cuts) n += c.inferred;
  return n;
}

std::size_t CircuitAnalysis::untestable() const noexcept {
  std::size_t n = 0;
  for (const CutAnalysis& c : cuts) n += c.untestable;
  return n;
}

double CircuitAnalysis::collapse_ratio() const noexcept {
  const std::size_t total = total_faults();
  return total == 0 ? 0.0 : static_cast<double>(copied() + inferred()) / static_cast<double>(total);
}

double CircuitAnalysis::untestable_share() const noexcept {
  const std::size_t total = total_faults();
  return total == 0 ? 0.0 : static_cast<double>(untestable()) / static_cast<double>(total);
}

}  // namespace merced::analyze
