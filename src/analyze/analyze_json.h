// merced-analyze-v1 — the static-analysis report as a versioned JSON
// artifact, sibling of merced-metrics-v2 / merced-verify-v1 /
// merced-prove-v1:
//
//   { "schema": "merced-analyze-v1",
//     "run": {"tool": "...", "circuit": "...", "lk": N},
//     "summary": {"cuts": N, "total_faults": N, "classes": N, "swept": N,
//                 "copied": N, "inferred": N, "untestable": N,
//                 "constant_slots": N, "unobservable_gates": N,
//                 "learned_implications": N, "collapse_ratio": R,
//                 "untestable_share": R},
//     "cuts": [{"cluster": i, "inputs": I, "gates": G, "outputs": O,
//               "total_faults": N, "classes": N, "swept": N, "copied": N,
//               "inferred": N, "untestable": N, "constant_slots": N,
//               "unobservable_gates": N, "learned_implications": N}, ...] }
//
// Cuts keep cluster order. The validator enforces the internal arithmetic
// (per-cut plan actions partition the fault universe, every kSweep/kInfer
// entry is a class representative so classes >= swept + inferred, summary
// totals equal the per-cut sums, ratios recompute from the counts), so a
// hand-edited or drifted artifact is rejected rather than trusted —
// merced_cli --analyze writes these and metrics_check --analyze validates
// them.
#pragma once

#include <iosfwd>
#include <string>

#include "analyze/analyze.h"
#include "obs/json.h"

namespace merced::analyze {

inline constexpr const char* kAnalyzeSchema = "merced-analyze-v1";

/// Identity of the analysis run (the "run" JSON object).
struct AnalyzeRunInfo {
  std::string tool;     ///< producing binary, e.g. "merced_cli"
  std::string circuit;  ///< circuit name or .bench path
  std::uint64_t lk = 0;
};

/// Serializes the versioned artifact described in the file comment.
void write_analyze_json(std::ostream& os, const CircuitAnalysis& analysis,
                        const AnalyzeRunInfo& run);

/// Validates a parsed analyze artifact against merced-analyze-v1. Returns an
/// empty string when valid, else a description of the first violation.
std::string validate_analyze_json(const obs::JsonValue& doc);

}  // namespace merced::analyze
