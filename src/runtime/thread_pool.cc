#include "runtime/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/obs.h"

namespace merced {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

std::size_t resolve_jobs(std::size_t jobs) noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<IndexRange> split_ranges(std::size_t n, std::size_t parts) {
  std::vector<IndexRange> ranges;
  if (n == 0) return ranges;
  parts = std::clamp<std::size_t>(parts, 1, n);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;  // first `extra` ranges get one more
  ranges.reserve(parts);
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    ranges.push_back(IndexRange{begin, begin + len});
    begin += len;
  }
  return ranges;
}

ThreadPool::ThreadPool(std::size_t jobs) {
  const std::size_t total = resolve_jobs(jobs);
  stats_.reserve(total);
  for (std::size_t t = 0; t < total; ++t) {
    stats_.push_back(std::make_unique<StatSlot>());
  }
  threads_.reserve(total - 1);
  for (std::size_t t = 1; t < total; ++t) {
    threads_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Lifetime flush into the obs counters (workers are joined, slots final):
  // the metrics artifact's "scheduler" section reports these as
  // pool_busy_seconds / pool_idle_seconds.
  if (obs::enabled()) {
    std::uint64_t busy = 0;
    std::uint64_t idle = 0;
    for (const auto& slot : stats_) {
      busy += slot->busy_ns.load(std::memory_order_relaxed);
      idle += slot->idle_ns.load(std::memory_order_relaxed);
    }
    obs::add(obs::Counter::kPoolBusyNs, busy);
    obs::add(obs::Counter::kPoolIdleNs, idle);
  }
}

std::vector<WorkerStats> ThreadPool::stats() const {
  std::vector<WorkerStats> out(stats_.size());
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    out[i].tasks = stats_[i]->tasks.load(std::memory_order_relaxed);
    out[i].busy_seconds =
        static_cast<double>(stats_[i]->busy_ns.load(std::memory_order_relaxed)) / 1e9;
    out[i].idle_seconds =
        static_cast<double>(stats_[i]->idle_ns.load(std::memory_order_relaxed)) / 1e9;
  }
  return out;
}

void ThreadPool::reset_stats() {
  for (auto& slot : stats_) {
    slot->tasks.store(0, std::memory_order_relaxed);
    slot->busy_ns.store(0, std::memory_order_relaxed);
    slot->idle_ns.store(0, std::memory_order_relaxed);
  }
}

void ThreadPool::drain_indices(StatSlot& slot) {
  const auto t0 = Clock::now();
  std::uint64_t executed = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) break;
    ++executed;
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
      // Early-stop hint: let other workers fall out of the claim loop.
      next_.store(n_, std::memory_order_relaxed);
    }
  }
  slot.tasks.fetch_add(executed, std::memory_order_relaxed);
  slot.busy_ns.fetch_add(ns_between(t0, Clock::now()), std::memory_order_relaxed);
  MERCED_COUNT(obs::Counter::kPoolTasksRun, executed);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  StatSlot& slot = *stats_[worker_index];
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      const auto idle0 = Clock::now();
      wake_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      slot.idle_ns.fetch_add(ns_between(idle0, Clock::now()),
                             std::memory_order_relaxed);
      if (stop_) return;
      seen = epoch_;
    }
    drain_indices(slot);
    {
      std::lock_guard lock(mu_);
      if (--busy_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  MERCED_COUNT(obs::Counter::kPoolParallelFors, 1);
  if (threads_.empty() || n == 1) {
    StatSlot& slot = *stats_[0];
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) body(i);
    slot.tasks.fetch_add(n, std::memory_order_relaxed);
    slot.busy_ns.fetch_add(ns_between(t0, Clock::now()), std::memory_order_relaxed);
    MERCED_COUNT(obs::Counter::kPoolTasksRun, n);
    return;
  }
  {
    std::lock_guard lock(mu_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    busy_ = threads_.size();
    ++epoch_;
  }
  wake_.notify_all();
  drain_indices(*stats_[0]);  // the caller is the pool's extra worker
  std::exception_ptr err;
  {
    std::unique_lock lock(mu_);
    done_.wait(lock, [&] { return busy_ == 0; });
    body_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace merced
