#include "runtime/thread_pool.h"

#include <algorithm>

namespace merced {

std::size_t resolve_jobs(std::size_t jobs) noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<IndexRange> split_ranges(std::size_t n, std::size_t parts) {
  std::vector<IndexRange> ranges;
  if (n == 0) return ranges;
  parts = std::clamp<std::size_t>(parts, 1, n);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;  // first `extra` ranges get one more
  ranges.reserve(parts);
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    ranges.push_back(IndexRange{begin, begin + len});
    begin += len;
  }
  return ranges;
}

ThreadPool::ThreadPool(std::size_t jobs) {
  const std::size_t total = resolve_jobs(jobs);
  threads_.reserve(total - 1);
  for (std::size_t t = 1; t < total; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::drain_indices() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
      // Early-stop hint: let other workers fall out of the claim loop.
      next_.store(n_, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      wake_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    drain_indices();
    {
      std::lock_guard lock(mu_);
      if (--busy_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard lock(mu_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    busy_ = threads_.size();
    ++epoch_;
  }
  wake_.notify_all();
  drain_indices();  // the caller is the pool's extra worker
  std::exception_ptr err;
  {
    std::unique_lock lock(mu_);
    done_.wait(lock, [&] { return busy_ == 0; });
    body_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace merced
