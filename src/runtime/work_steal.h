// Work-stealing task execution on top of ThreadPool.
//
// ThreadPool::parallel_for self-schedules loop indices off one shared
// atomic counter, which balances well when every index costs about the
// same. The session coverage sweep does not: its tasks are (station x
// fault-chunk) cells whose cost spans orders of magnitude (2^ι batches
// times live faults), and a shared counter makes every claim a cache-line
// fight once tasks get small. parallel_for_stealing instead deals tasks
// round-robin into per-worker queues up front; each worker drains its own
// queue and, when empty, steals the back half of the fullest victim queue.
// Callers pre-sort tasks most-expensive-first so the initial deal is
// already balanced and stealing only mops up the tail.
//
// Determinism: like parallel_for, only the *assignment* of tasks to
// workers is scheduling-dependent. Callers must write results to
// per-task index-addressed slots, making the reduced result bit-identical
// for every worker count and every steal interleaving (the property
// sim_kernel_test pins for the coverage sweep).
//
// The worker_slot passed to the body identifies the queue being drained,
// not a thread: slots are claimed 1:1 by pool workers in the common case,
// but a slow wake-up may leave one thread driving two slots sequentially.
// Either way a slot's tasks never run concurrently with each other, so
// per-slot scratch state (e.g. a kernel Workspace) needs no locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "runtime/thread_pool.h"

namespace merced {

/// Aggregate scheduler statistics of one parallel_for_stealing run. The
/// counts are exact but scheduling-dependent — two correct runs legitimately
/// steal differently — so they are diagnostics (surfaced into the metrics
/// artifact's "scheduler" section), never part of a determinism contract.
struct StealStats {
  std::uint64_t tasks_run = 0;        ///< == n on success
  std::uint64_t tasks_stolen = 0;     ///< tasks that migrated queues
  std::uint64_t steal_attempts = 0;   ///< victim scans (successful or not)
  std::uint64_t steal_failures = 0;   ///< scans that found nothing to take

  StealStats& operator+=(const StealStats& other) noexcept {
    tasks_run += other.tasks_run;
    tasks_stolen += other.tasks_stolen;
    steal_attempts += other.steal_attempts;
    steal_failures += other.steal_failures;
    return *this;
  }
};

/// Runs body(task, worker_slot) for every task in [0, n) over the pool's
/// workers with per-worker queues and work stealing. Blocks until done.
/// worker_slot is in [0, pool.size()). Exceptions from the body propagate
/// (first one wins) and abort the remaining tasks.
StealStats parallel_for_stealing(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t task, std::size_t worker_slot)>& body);

}  // namespace merced
