#include "runtime/work_steal.h"

#include <atomic>
#include <mutex>
#include <vector>

#include "obs/obs.h"

namespace merced {

namespace {

/// One worker's task queue. The owner pops from the head; thieves take the
/// back half. A task is in exactly one queue (or in flight on a worker),
/// so draining terminates regardless of interleaving.
struct TaskQueue {
  std::mutex mu;
  std::vector<std::size_t> items;
  std::size_t head = 0;  ///< items[head..) are pending

  std::size_t remaining() {
    std::lock_guard lock(mu);
    return items.size() - head;
  }
};

}  // namespace

StealStats parallel_for_stealing(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t task, std::size_t worker_slot)>& body) {
  StealStats stats;
  if (n == 0) return stats;

  const std::size_t workers = std::min(pool.size(), n);
  std::vector<TaskQueue> queues(workers);
  // Round-robin deal. Callers order tasks most-expensive-first, so the deal
  // spreads the heavy head of the list across all queues.
  for (std::size_t w = 0; w < workers; ++w) {
    queues[w].items.reserve(n / workers + 1);
  }
  for (std::size_t t = 0; t < n; ++t) queues[t % workers].items.push_back(t);

  std::atomic<std::uint64_t> tasks_run{0};
  std::atomic<std::uint64_t> tasks_stolen{0};
  std::atomic<std::uint64_t> steal_attempts{0};
  std::atomic<std::uint64_t> steal_failures{0};
  std::atomic<bool> abort{false};

  pool.parallel_for(workers, [&](std::size_t w) {
    TaskQueue& own = queues[w];
    std::uint64_t ran = 0;
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) break;
      std::size_t task;
      bool have = false;
      {
        std::lock_guard lock(own.mu);
        if (own.head < own.items.size()) {
          task = own.items[own.head++];
          have = true;
        }
      }
      if (!have) {
        // Steal: scan for the fullest victim, take the back half of its
        // queue. A victim drained between scan and lock just retries the
        // scan; the loop ends when every queue is empty.
        steal_attempts.fetch_add(1, std::memory_order_relaxed);
        std::size_t victim = workers;
        std::size_t victim_remaining = 0;
        for (std::size_t v = 0; v < workers; ++v) {
          if (v == w) continue;
          const std::size_t rem = queues[v].remaining();
          if (rem > victim_remaining) {
            victim = v;
            victim_remaining = rem;
          }
        }
        if (victim == workers) {
          // Terminal scan: every queue empty, nothing left to take.
          steal_failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        std::vector<std::size_t> loot;
        {
          std::lock_guard lock(queues[victim].mu);
          auto& items = queues[victim].items;
          const std::size_t rem = items.size() - queues[victim].head;
          const std::size_t take = (rem + 1) / 2;
          loot.assign(items.end() - static_cast<std::ptrdiff_t>(take), items.end());
          items.resize(items.size() - take);
        }
        if (loot.empty()) {
          // Victim drained between scan and lock; rescan.
          steal_failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        tasks_stolen.fetch_add(loot.size(), std::memory_order_relaxed);
        {
          std::lock_guard lock(own.mu);
          own.items = std::move(loot);
          own.head = 0;
        }
        continue;
      }
      try {
        body(task, w);
      } catch (...) {
        abort.store(true, std::memory_order_relaxed);
        throw;  // parallel_for records the first exception and rethrows
      }
      ++ran;
    }
    tasks_run.fetch_add(ran, std::memory_order_relaxed);
  });

  stats.tasks_run = tasks_run.load(std::memory_order_relaxed);
  stats.tasks_stolen = tasks_stolen.load(std::memory_order_relaxed);
  stats.steal_attempts = steal_attempts.load(std::memory_order_relaxed);
  stats.steal_failures = steal_failures.load(std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::add(obs::Counter::kSchedTasksRun, stats.tasks_run);
    obs::add(obs::Counter::kSchedTasksStolen, stats.tasks_stolen);
    obs::add(obs::Counter::kSchedStealAttempts, stats.steal_attempts);
    obs::add(obs::Counter::kSchedStealFailures, stats.steal_failures);
  }
  return stats;
}

}  // namespace merced
