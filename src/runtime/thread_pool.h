// Fixed-size thread pool and deterministic parallel primitives.
//
// Merced's hot paths (multi-start Saturate_Network, parallel-fault
// simulation, concurrent CUT sweeps) are embarrassingly parallel: N
// independent work items whose results land in disjoint, index-addressed
// slots. The runtime therefore stays deliberately small — a fixed pool with
// a shared atomic work counter, no work stealing, no futures:
//
//  * ThreadPool(jobs) owns jobs-1 worker threads; the caller participates
//    as the jobs-th worker, so ThreadPool(1) runs everything inline with no
//    threads at all (the serial baseline is literally serial).
//  * parallel_for(n, body) runs body(0..n-1), each index exactly once.
//    Scheduling order is unspecified, which is why callers must write
//    results to per-index slots only.
//  * parallel_map(pool, n, fn) is the deterministic-reduction primitive:
//    fn(i) results are stored at index i and any fold over them happens on
//    the caller in index order — so the reduced value is bit-identical
//    regardless of thread count. Every parallel result Merced publishes
//    (multi-start winner, fault signatures, cut sets) goes through an
//    index-ordered reduction; see DESIGN.md "Parallel runtime".
//
// Exceptions thrown by body propagate to the caller (first one wins;
// remaining indices of the same loop may be skipped).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace merced {

/// Resolves a user-facing jobs count: 0 means "all hardware threads".
std::size_t resolve_jobs(std::size_t jobs) noexcept;

/// A contiguous index range [begin, end) of one parallel shard.
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const noexcept { return end - begin; }
};

/// Splits [0, n) into at most `parts` contiguous, near-equal, non-empty
/// ranges (fewer when n < parts; empty when n == 0). The split depends only
/// on (n, parts), never on scheduling — shard-then-reduce callers rely on
/// this for thread-count-independent results.
std::vector<IndexRange> split_ranges(std::size_t n, std::size_t parts);

/// Per-worker execution statistics (see ThreadPool::stats()). Busy time is
/// wall time spent inside parallel_for bodies; idle time is wall time a
/// pool worker spent parked waiting for a job (always 0 for the caller
/// slot, which only exists inside parallel_for).
struct WorkerStats {
  std::uint64_t tasks = 0;  ///< loop indices this worker executed
  double busy_seconds = 0;
  double idle_seconds = 0;
};

class ThreadPool {
 public:
  /// `jobs` = total workers including the calling thread (0 = hardware).
  explicit ThreadPool(std::size_t jobs = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the caller (>= 1).
  std::size_t size() const noexcept { return threads_.size() + 1; }

  /// Runs body(i) for every i in [0, n), distributing indices over the pool
  /// via a shared counter. Blocks until all n indices completed. Not
  /// reentrant: body must not call parallel_for on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Cumulative per-worker statistics since construction or the last
  /// reset_stats(). Index 0 is the calling thread's slot, indices 1..size()-1
  /// the pool workers. Call while no parallel_for is running (between runs);
  /// idle time of a currently-parked worker accrues only when it next wakes.
  std::vector<WorkerStats> stats() const;

  /// Zeroes all worker statistics — reset-between-runs semantics so one
  /// pool can serve several measured runs. Same quiescence rule as stats().
  void reset_stats();

 private:
  /// Per-worker stat slot. Relaxed atomics: each slot is written only by
  /// its owning thread; stats() reads are exact once the pool is quiescent.
  struct StatSlot {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };

  void worker_loop(std::size_t worker_index);
  void drain_indices(StatSlot& slot);

  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<StatSlot>> stats_;  ///< [0]=caller, [t]=worker t

  std::mutex mu_;
  std::condition_variable wake_;     ///< workers wait here for a job
  std::condition_variable done_;     ///< caller waits here for completion
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};  ///< next unclaimed index
  std::size_t busy_ = 0;              ///< workers still inside the job
  std::uint64_t epoch_ = 0;           ///< job generation counter
  bool stop_ = false;
  std::exception_ptr error_;
};

/// Maps i -> fn(i) into a vector, in parallel, preserving index order. Fold
/// the result on the caller for a deterministic reduction.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace merced
