// Stable rule IDs for the static-verification catalog (verify/verify.h has
// the full table; DESIGN.md §10 the severity policy). Kept in a std-free
// header so the lowest layers — the .bench parser fires NET-MULTI-DRIVEN
// and NET-UNDRIVEN at parse time — can name rules without depending on the
// checker library.
#pragma once

namespace merced::verify {

inline constexpr const char* kNetUndriven = "NET-UNDRIVEN";
inline constexpr const char* kNetMultiDriven = "NET-MULTI-DRIVEN";
inline constexpr const char* kNetArity = "NET-ARITY";
inline constexpr const char* kNetCombCycle = "NET-COMB-CYCLE";
inline constexpr const char* kNetDangling = "NET-DANGLING";
inline constexpr const char* kNetUnreachable = "NET-UNREACHABLE";
inline constexpr const char* kPartCoverage = "PART-COVERAGE";
inline constexpr const char* kPartIota = "PART-IOTA";
inline constexpr const char* kPartIotaMismatch = "PART-IOTA-MISMATCH";
inline constexpr const char* kPartCutMissing = "PART-CUT-MISSING";
inline constexpr const char* kPartCutExtra = "PART-CUT-EXTRA";
inline constexpr const char* kRetNegWeight = "RET-NEG-WEIGHT";
inline constexpr const char* kRetCutUnregistered = "RET-CUT-UNREGISTERED";
inline constexpr const char* kRetCycleConserve = "RET-CYCLE-CONSERVE";
inline constexpr const char* kRetBookkeeping = "RET-BOOKKEEPING";

}  // namespace merced::verify
