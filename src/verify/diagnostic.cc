#include "verify/diagnostic.h"

#include <algorithm>

namespace merced::verify {

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string format_diagnostic(const Diagnostic& d) {
  std::string out;
  out += to_string(d.severity);
  out += "[";
  out += d.rule;
  out += "]: ";
  out += d.message;
  if (!d.object.empty() || d.line != 0) {
    out += " (";
    if (!d.object.empty()) {
      out += "at '";
      out += d.object;
      out += "'";
      if (d.line != 0) out += ", ";
    }
    if (d.line != 0) {
      out += "line ";
      out += std::to_string(d.line);
    }
    out += ")";
  }
  return out;
}

void Report::merge(Report other) {
  findings.insert(findings.end(), std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
}

std::size_t Report::count(Severity s) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::size_t Report::count_rule(std::string_view rule) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [rule](const Diagnostic& d) { return d.rule == rule; }));
}

}  // namespace merced::verify
