// merced-verify-v1 — the static-verification report as a versioned JSON
// artifact, comparable across commits exactly like the merced-metrics-v1
// and BENCH_*.json documents:
//
//   { "schema": "merced-verify-v1",
//     "run": {"tool": "...", "circuit": "...", "lk": N},
//     "summary": {"errors": N, "warnings": N, "infos": N, "findings": N,
//                 "clean": true/false},
//     "findings": [{"rule": "PART-IOTA", "severity": "error",
//                   "message": "...", "object": "G17", "line": 0}, ...] }
//
// Findings keep checker emission order (deterministic: all traversals are
// id-ordered), so two runs of the same binary diff cleanly. The validator
// is what verify_test and the CI verification job run against freshly
// produced artifacts; merced_cli --verify-json writes them and
// metrics_check --verify validates them.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/json.h"
#include "verify/diagnostic.h"

namespace merced::verify {

inline constexpr const char* kVerifySchema = "merced-verify-v1";

/// Identity of the verified artifact (the "run" JSON object).
struct VerifyRunInfo {
  std::string tool;     ///< producing binary, e.g. "merced_cli"
  std::string circuit;  ///< circuit name or .bench path
  std::uint64_t lk = 0;
};

/// Serializes the versioned artifact described in the file comment.
void write_verify_json(std::ostream& os, const Report& report, const VerifyRunInfo& run);

/// Validates a parsed verify artifact against merced-verify-v1. Returns an
/// empty string when valid, else a description of the first violation.
std::string validate_verify_json(const obs::JsonValue& doc);

}  // namespace merced::verify
