#include "verify/verify_json.h"

#include <array>
#include <ostream>
#include <string_view>

namespace merced::verify {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

void write_verify_json(std::ostream& os, const Report& report, const VerifyRunInfo& run) {
  os << "{\n  \"schema\": \"" << kVerifySchema << "\",\n  \"run\": {\"tool\": \"";
  json_escape(os, run.tool);
  os << "\", \"circuit\": \"";
  json_escape(os, run.circuit);
  os << "\", \"lk\": " << run.lk << "},\n  \"summary\": {\"errors\": " << report.errors()
     << ", \"warnings\": " << report.warnings() << ", \"infos\": " << report.infos()
     << ", \"findings\": " << report.findings.size()
     << ", \"clean\": " << (report.clean() ? "true" : "false") << "},\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Diagnostic& d = report.findings[i];
    if (i) os << ",";
    os << "\n    {\"rule\": \"";
    json_escape(os, d.rule);
    os << "\", \"severity\": \"" << to_string(d.severity) << "\", \"message\": \"";
    json_escape(os, d.message);
    os << "\", \"object\": \"";
    json_escape(os, d.object);
    os << "\", \"line\": " << d.line << "}";
  }
  os << "\n  ]\n}\n";
}

namespace {

bool is_uint(const obs::JsonValue& v) {
  return v.is_number() && v.as_number() >= 0 &&
         v.as_number() == static_cast<double>(static_cast<std::uint64_t>(v.as_number()));
}

std::string check_member(const obs::JsonValue& obj, const char* key,
                         obs::JsonValue::Kind kind, const char* where) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return std::string(where) + ": missing member \"" + key + "\"";
  if (v->kind() != kind) {
    return std::string(where) + ": member \"" + key + "\" has wrong type";
  }
  return "";
}

}  // namespace

std::string validate_verify_json(const obs::JsonValue& doc) {
  using Kind = obs::JsonValue::Kind;
  if (!doc.is_object()) return "document is not an object";
  if (std::string err = check_member(doc, "schema", Kind::kString, "root"); !err.empty()) {
    return err;
  }
  if (doc.find("schema")->as_string() != kVerifySchema) {
    return "unknown schema \"" + doc.find("schema")->as_string() + "\"";
  }

  if (std::string err = check_member(doc, "run", Kind::kObject, "root"); !err.empty()) {
    return err;
  }
  const obs::JsonValue& run = *doc.find("run");
  for (const char* key : {"tool", "circuit"}) {
    if (std::string err = check_member(run, key, Kind::kString, "run"); !err.empty()) {
      return err;
    }
  }
  if (std::string err = check_member(run, "lk", Kind::kNumber, "run"); !err.empty()) {
    return err;
  }
  if (!is_uint(*run.find("lk"))) return "run: member \"lk\" is not a non-negative integer";

  if (std::string err = check_member(doc, "summary", Kind::kObject, "root"); !err.empty()) {
    return err;
  }
  const obs::JsonValue& summary = *doc.find("summary");
  for (const char* key : {"errors", "warnings", "infos", "findings"}) {
    if (std::string err = check_member(summary, key, Kind::kNumber, "summary");
        !err.empty()) {
      return err;
    }
    if (!is_uint(*summary.find(key))) {
      return std::string("summary: member \"") + key + "\" is not a non-negative integer";
    }
  }
  if (std::string err = check_member(summary, "clean", Kind::kBool, "summary");
      !err.empty()) {
    return err;
  }

  if (std::string err = check_member(doc, "findings", Kind::kArray, "root"); !err.empty()) {
    return err;
  }
  std::uint64_t errors = 0, warnings = 0, infos = 0;
  const auto& findings = doc.find("findings")->as_array();
  for (const obs::JsonValue& f : findings) {
    if (!f.is_object()) return "findings: entry is not an object";
    for (const char* key : {"rule", "severity", "message", "object"}) {
      if (std::string err = check_member(f, key, Kind::kString, "finding"); !err.empty()) {
        return err;
      }
    }
    if (std::string err = check_member(f, "line", Kind::kNumber, "finding"); !err.empty()) {
      return err;
    }
    if (!is_uint(*f.find("line"))) return "finding: member \"line\" is not a non-negative integer";
    if (f.find("rule")->as_string().empty()) return "finding: empty rule ID";
    const std::string& sev = f.find("severity")->as_string();
    if (sev == "error") {
      ++errors;
    } else if (sev == "warning") {
      ++warnings;
    } else if (sev == "info") {
      ++infos;
    } else {
      return "finding: unknown severity \"" + sev + "\"";
    }
  }
  // Cross-check the summary against the findings array — a drifted summary
  // is exactly the kind of wrong-but-plausible artifact this tool exists
  // to reject.
  auto num = [&](const char* key) {
    return static_cast<std::uint64_t>(summary.find(key)->as_number());
  };
  if (num("errors") != errors || num("warnings") != warnings || num("infos") != infos ||
      num("findings") != findings.size()) {
    return "summary: counts disagree with the findings array";
  }
  if (summary.find("clean")->as_bool() != (errors == 0)) {
    return "summary: \"clean\" disagrees with the error count";
  }
  return "";
}

}  // namespace merced::verify
