#include "verify/verify.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace merced::verify {

namespace {

using merced::is_comb_node;  // the shared predicate from partition/clustering.h

Diagnostic make(const char* rule, Severity sev, std::string msg, std::string obj = {},
                std::size_t line = 0) {
  Diagnostic d;
  d.rule = rule;
  d.severity = sev;
  d.message = std::move(msg);
  d.object = std::move(obj);
  d.line = line;
  return d;
}

std::string cluster_tag(std::size_t ci) { return "pi#" + std::to_string(ci); }

}  // namespace

// ------------------------------------------------------- netlist DRC ---

Report verify_netlist(const Netlist& nl) {
  Report rep;
  const std::size_t n = nl.size();

  // Arity / undriven. Distinguish "no fanins at all where the type needs
  // some" (an undriven net in disguise: the gate computes nothing) from a
  // wrong-but-nonzero pin count.
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    const std::size_t pins = g.fanins.size();
    if (pins < min_fanin(g.type)) {
      if (pins == 0) {
        rep.add(make(kNetUndriven, Severity::kError,
                     "net '" + g.name + "' is undriven: " + std::string(to_string(g.type)) +
                         " gate has no fanins",
                     g.name));
      } else {
        rep.add(make(kNetArity, Severity::kError,
                     "gate '" + g.name + "' (" + std::string(to_string(g.type)) + ") has " +
                         std::to_string(pins) + " fanins, minimum is " +
                         std::to_string(min_fanin(g.type)),
                     g.name));
      }
    } else if (pins > max_fanin(g.type)) {
      rep.add(make(kNetArity, Severity::kError,
                   "gate '" + g.name + "' (" + std::string(to_string(g.type)) + ") has " +
                       std::to_string(pins) + " fanins, maximum is " +
                       std::to_string(max_fanin(g.type)),
                   g.name));
    }
  }

  // Rebuild fanouts locally — the pass must work on netlists finalize()
  // would reject, so it cannot use the cached lists.
  std::vector<std::vector<GateId>> fanouts(n);
  for (GateId id = 0; id < n; ++id) {
    for (GateId f : nl.gate(id).fanins) {
      if (f < n) fanouts[f].push_back(id);
    }
  }

  // Combinational cycles: Kahn over the combinational dependency graph
  // (INPUT/DFF/CONST are sources; a DFF's fanin is a next-state edge, not a
  // combinational dependency). Leftover gates sit on a register-free cycle.
  {
    std::vector<std::size_t> pending(n, 0);
    std::vector<GateId> ready;
    std::size_t ordered = 0;
    for (GateId id = 0; id < n; ++id) {
      const Gate& g = nl.gate(id);
      if (is_input(g.type) || is_sequential(g.type) || g.type == GateType::kConst0 ||
          g.type == GateType::kConst1) {
        ready.push_back(id);
      } else {
        pending[id] = g.fanins.size();
        if (pending[id] == 0) ready.push_back(id);
      }
    }
    while (!ready.empty()) {
      const GateId id = ready.back();
      ready.pop_back();
      ++ordered;
      for (GateId s : fanouts[id]) {
        const Gate& sink = nl.gate(s);
        if (is_sequential(sink.type) || is_input(sink.type)) continue;
        if (pending[s] > 0 && --pending[s] == 0) ready.push_back(s);
      }
    }
    if (ordered < n) {
      std::string sample;
      std::size_t listed = 0;
      std::string first;
      for (GateId id = 0; id < n && listed < 5; ++id) {
        const Gate& g = nl.gate(id);
        if (is_input(g.type) || is_sequential(g.type)) continue;
        if (pending[id] > 0) {
          if (first.empty()) first = g.name;
          if (!sample.empty()) sample += ", ";
          sample += g.name;
          ++listed;
        }
      }
      rep.add(make(kNetCombCycle, Severity::kError,
                   "combinational cycle with no DFF on the path through " +
                       std::to_string(n - ordered) + " gate(s): " + sample,
                   first));
    }
  }

  // Dangling fanout: a net nobody consumes and that is not a primary
  // output drives nothing observable.
  for (GateId id = 0; id < n; ++id) {
    if (fanouts[id].empty() && !nl.is_output(id)) {
      rep.add(make(kNetDangling, Severity::kWarning,
                   "net '" + nl.gate(id).name + "' has no fanout and is not a primary output",
                   nl.gate(id).name));
    }
  }

  // Unreachable gates: reverse reachability from the primary outputs over
  // fanin edges (through DFFs). Gates outside the cone of every output can
  // never influence observable behavior. Dangling gates are already
  // reported above; only flag gates that do drive something.
  {
    std::vector<char> reach(n, 0);
    std::vector<GateId> stack;
    for (GateId id : nl.outputs()) {
      if (!reach[id]) {
        reach[id] = 1;
        stack.push_back(id);
      }
    }
    while (!stack.empty()) {
      const GateId id = stack.back();
      stack.pop_back();
      for (GateId f : nl.gate(id).fanins) {
        if (f < n && !reach[f]) {
          reach[f] = 1;
          stack.push_back(f);
        }
      }
    }
    for (GateId id = 0; id < n; ++id) {
      if (!reach[id] && !fanouts[id].empty()) {
        rep.add(make(kNetUnreachable, Severity::kWarning,
                     "gate '" + nl.gate(id).name + "' cannot reach any primary output",
                     nl.gate(id).name));
      }
    }
  }

  return rep;
}

// -------------------------------------------------- partition legality ---

Report verify_partition(const CircuitGraph& g, const CompiledView& view) {
  Report rep;
  if (view.partitions == nullptr) return rep;
  const Clustering& c = *view.partitions;
  const Netlist& nl = g.netlist();
  const std::size_t n = g.num_nodes();

  // PART-COVERAGE: the clustering must be a disjoint cover of the non-PI
  // nodes. If the shape itself is broken, the counts below would index out
  // of bounds — report and stop this family.
  if (c.cluster_of.size() != n) {
    rep.add(make(kPartCoverage, Severity::kError,
                 "cluster_of has " + std::to_string(c.cluster_of.size()) +
                     " entries for a circuit with " + std::to_string(n) + " nodes"));
    return rep;
  }
  const std::size_t nclusters = c.clusters.size();
  bool shape_ok = true;
  std::vector<std::size_t> seen(nclusters, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::int32_t ci = c.cluster_of[v];
    if (g.is_pi(v)) {
      if (ci != kNoCluster) {
        rep.add(make(kPartCoverage, Severity::kError,
                     "primary input '" + nl.gate(v).name + "' is assigned to a cluster",
                     nl.gate(v).name));
        shape_ok = false;
      }
      continue;
    }
    if (ci == kNoCluster || static_cast<std::size_t>(ci) >= nclusters) {
      rep.add(make(kPartCoverage, Severity::kError,
                   "node '" + nl.gate(v).name + "' is not assigned to any cluster",
                   nl.gate(v).name));
      shape_ok = false;
      continue;
    }
    ++seen[static_cast<std::size_t>(ci)];
  }
  for (std::size_t i = 0; i < nclusters && shape_ok; ++i) {
    if (seen[i] != c.clusters[i].size()) {
      rep.add(make(kPartCoverage, Severity::kError,
                   "cluster " + std::to_string(i) + " lists " +
                       std::to_string(c.clusters[i].size()) + " members but cluster_of maps " +
                       std::to_string(seen[i]) + " nodes to it",
                   cluster_tag(i)));
      shape_ok = false;
      break;
    }
    for (NodeId v : c.clusters[i]) {
      if (v >= n || c.cluster_of[v] != static_cast<std::int32_t>(i)) {
        rep.add(make(kPartCoverage, Severity::kError,
                     "cluster " + std::to_string(i) + " member list disagrees with cluster_of",
                     cluster_tag(i)));
        shape_ok = false;
        break;
      }
    }
  }
  if (!shape_ok) return rep;

  // Recompute every ι(π) from scratch with a single sweep over all
  // branches (deliberately not input_nets(): an independent traversal is
  // the point). A branch contributes its net to sink-cluster π when the
  // sink is combinational logic inside π and the source is a PI, a DFF
  // (anywhere), or a gate of another cluster — Eq. 5's "including primary
  // inputs" accounting.
  std::vector<std::vector<NetId>> ins(nclusters);
  for (const Branch& br : g.branches()) {
    if (!is_comb_node(g, br.sink)) continue;
    const std::int32_t ci = c.cluster_of[br.sink];
    if (ci == kNoCluster) continue;
    const NodeId d = br.source;
    if (g.is_pi(d) || g.is_register(d) || c.cluster_of[d] != ci) {
      ins[static_cast<std::size_t>(ci)].push_back(br.net);
    }
  }
  for (std::size_t i = 0; i < nclusters; ++i) {
    auto& v = ins[i];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // PART-IOTA-MISMATCH: the artifact's claimed input counts vs the recount.
  if (view.partition_inputs.size() != nclusters) {
    rep.add(make(kPartIotaMismatch, Severity::kError,
                 "artifact reports " + std::to_string(view.partition_inputs.size()) +
                     " input counts for " + std::to_string(nclusters) + " partitions"));
  } else {
    for (std::size_t i = 0; i < nclusters; ++i) {
      if (view.partition_inputs[i] != ins[i].size()) {
        rep.add(make(kPartIotaMismatch, Severity::kError,
                     "partition " + std::to_string(i) + " reports iota = " +
                         std::to_string(view.partition_inputs[i]) +
                         " but a from-scratch recount finds " + std::to_string(ins[i].size()),
                     cluster_tag(i)));
      }
    }
  }

  // PART-IOTA: Eq. 5. When the artifact itself says "infeasible" this is
  // the honest report of a circuit property, not a defect — downgrade.
  const Severity iota_sev = view.feasible ? Severity::kError : Severity::kInfo;
  for (std::size_t i = 0; i < nclusters; ++i) {
    if (ins[i].size() > view.lk) {
      rep.add(make(kPartIota, iota_sev,
                   "partition " + std::to_string(i) + " has iota = " +
                       std::to_string(ins[i].size()) + " > lk = " + std::to_string(view.lk) +
                       (view.feasible ? "" : " (artifact declares the partition infeasible)"),
                   cluster_tag(i)));
    }
  }

  // Recompute the cut set: a net is cut when its (combinational) driver
  // has at least one combinational sink in another cluster. Every such
  // boundary crossing must be sealed by an A_CELL.
  std::vector<NetId> cuts;
  for (NodeId d = 0; d < n; ++d) {
    if (!is_comb_node(g, d)) continue;
    const std::int32_t dc = c.cluster_of[d];
    for (BranchId b : g.out_branches(d)) {
      const Branch& br = g.branch(b);
      if (is_comb_node(g, br.sink) && c.cluster_of[br.sink] != dc) {
        cuts.push_back(br.net);
        break;
      }
    }
  }
  std::sort(cuts.begin(), cuts.end());

  std::vector<NetId> claimed(view.cut_net_ids.begin(), view.cut_net_ids.end());
  std::sort(claimed.begin(), claimed.end());
  for (std::size_t i = 1; i < claimed.size(); ++i) {
    if (claimed[i] == claimed[i - 1]) {
      rep.add(make(kPartCutExtra, Severity::kError,
                   "net appears more than once in the claimed cut set",
                   nl.gate(claimed[i]).name));
    }
  }
  claimed.erase(std::unique(claimed.begin(), claimed.end()), claimed.end());

  std::vector<NetId> missing;
  std::set_difference(cuts.begin(), cuts.end(), claimed.begin(), claimed.end(),
                      std::back_inserter(missing));
  for (NetId net : missing) {
    const NodeId d = g.driver(net);
    std::int32_t sink_cluster = kNoCluster;
    for (BranchId b : g.net_branches(net)) {
      const Branch& br = g.branch(b);
      if (is_comb_node(g, br.sink) && c.cluster_of[br.sink] != c.cluster_of[d]) {
        sink_cluster = c.cluster_of[br.sink];
        break;
      }
    }
    rep.add(make(kPartCutMissing, Severity::kError,
                 "net '" + nl.gate(d).name + "' crosses from cluster " +
                     std::to_string(c.cluster_of[d]) + " into cluster " +
                     std::to_string(sink_cluster) +
                     " without an A_CELL (not in the cut set)",
                 nl.gate(d).name));
  }

  std::vector<NetId> extra;
  std::set_difference(claimed.begin(), claimed.end(), cuts.begin(), cuts.end(),
                      std::back_inserter(extra));
  for (NetId net : extra) {
    if (net >= g.num_nets()) {
      rep.add(make(kPartCutExtra, Severity::kError,
                   "claimed cut net id " + std::to_string(net) + " is out of range"));
      continue;
    }
    rep.add(make(kPartCutExtra, Severity::kError,
                 "net '" + nl.gate(g.driver(net)).name +
                     "' is in the claimed cut set but no combinational branch of it "
                     "crosses a cluster boundary",
                 nl.gate(g.driver(net)).name));
  }

  return rep;
}

// --------------------------------------------------- retiming legality ---

namespace {

/// Bellman–Ford over one SCC's induced constraint subgraph — deliberately
/// a different algorithm than the compiler's SPFA so the Eq. 2 feasibility
/// re-derivation shares no code with what it checks. Returns the edge
/// indices (into `edges`) of one negative cycle, or empty when feasible.
struct ConsEdge {
  std::uint32_t from = 0;  ///< constraint orientation (REdge::to)
  std::uint32_t to = 0;    ///< constraint orientation (REdge::from)
  std::int64_t w = 0;      ///< base weight minus the register requirement
  std::int64_t base = 0;   ///< original register count on the edge
  NetId net = kNoNet;      ///< required cut net (kNoNet when unconstrained)
};

std::vector<std::size_t> find_negative_cycle(std::size_t n,
                                             const std::vector<ConsEdge>& edges) {
  std::vector<std::int64_t> dist(n, 0);
  std::vector<std::size_t> parent(n, static_cast<std::size_t>(-1));
  std::uint32_t witness = static_cast<std::uint32_t>(-1);
  for (std::size_t round = 0; round <= n; ++round) {
    bool relaxed = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const ConsEdge& e = edges[i];
      if (dist[e.from] + e.w < dist[e.to]) {
        dist[e.to] = dist[e.from] + e.w;
        parent[e.to] = i;
        relaxed = true;
        witness = e.to;
      }
    }
    if (!relaxed) return {};
  }
  // A relaxation on round n proves a negative cycle. Walk the parent chain
  // from the witness marking visited vertices; the first repeat is on the
  // cycle, then collect the cycle itself.
  std::vector<char> on_chain(n, 0);
  std::uint32_t cur = witness;
  while (!on_chain[cur]) {
    on_chain[cur] = 1;
    if (parent[cur] == static_cast<std::size_t>(-1)) return {};  // defensive
    cur = edges[parent[cur]].from;
  }
  std::vector<std::size_t> cycle;
  std::uint32_t walk = cur;
  do {
    const std::size_t pe = parent[walk];
    cycle.push_back(pe);
    walk = edges[pe].from;
  } while (walk != cur && cycle.size() <= edges.size());
  return cycle;
}

}  // namespace

Report verify_retiming(const CircuitGraph& g, const RetimeGraph& rg,
                       const SccInfo& sccs, const CompiledView& view) {
  Report rep;
  if (view.retiming == nullptr || view.partitions == nullptr) return rep;
  const CutRetimingPlan& plan = *view.retiming;
  const Clustering& c = *view.partitions;
  const Netlist& nl = g.netlist();
  if (c.cluster_of.size() != g.num_nodes()) return rep;  // PART-COVERAGE's problem

  // --- RET-BOOKKEEPING: the plan must split the cut set exactly, and the
  // --- area model's 0.9/2.3 DFF counts must match the plan's lists.
  std::vector<NetId> merged = plan.retimable;
  merged.insert(merged.end(), plan.multiplexed.begin(), plan.multiplexed.end());
  std::sort(merged.begin(), merged.end());
  for (std::size_t i = 1; i < merged.size(); ++i) {
    if (merged[i] == merged[i - 1]) {
      rep.add(make(kRetBookkeeping, Severity::kError,
                   "net is listed as both retimable and multiplexed (or twice)",
                   merged[i] < g.num_nets() ? nl.gate(g.driver(merged[i])).name : ""));
    }
  }
  std::vector<NetId> claimed_cuts(view.cut_net_ids.begin(), view.cut_net_ids.end());
  std::sort(claimed_cuts.begin(), claimed_cuts.end());
  claimed_cuts.erase(std::unique(claimed_cuts.begin(), claimed_cuts.end()),
                     claimed_cuts.end());
  std::vector<NetId> dedup = merged;
  dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
  if (dedup != claimed_cuts) {
    rep.add(make(kRetBookkeeping, Severity::kError,
                 "retimable + multiplexed (" + std::to_string(dedup.size()) +
                     " nets) is not exactly the cut set (" +
                     std::to_string(claimed_cuts.size()) + " nets)"));
  }
  if (view.area_exact_retimable_cuts != plan.retimable.size() ||
      view.area_exact_multiplexed_cuts != plan.multiplexed.size()) {
    rep.add(make(kRetBookkeeping, Severity::kError,
                 "area report counts " + std::to_string(view.area_exact_retimable_cuts) +
                     " retimed conversions (0.9 DFF) and " +
                     std::to_string(view.area_exact_multiplexed_cuts) +
                     " multiplexed A_CELLs (2.3 DFF); the plan lists " +
                     std::to_string(plan.retimable.size()) + " and " +
                     std::to_string(plan.multiplexed.size())));
  }
  if (view.area_retimable_cuts + view.area_multiplexed_cuts != claimed_cuts.size()) {
    rep.add(make(kRetBookkeeping, Severity::kError,
                 "aggregate area accounting covers " +
                     std::to_string(view.area_retimable_cuts + view.area_multiplexed_cuts) +
                     " cuts, cut set has " + std::to_string(claimed_cuts.size())));
  }
  bool have_rho = !plan.rho.empty();
  if (have_rho && plan.rho.size() != rg.num_vertices()) {
    rep.add(make(kRetBookkeeping, Severity::kError,
                 "retiming rho has " + std::to_string(plan.rho.size()) +
                     " labels for a retime graph with " +
                     std::to_string(rg.num_vertices()) + " vertices"));
    have_rho = false;
  }

  const std::unordered_set<NetId> retimable(plan.retimable.begin(), plan.retimable.end());

  // --- RET-NEG-WEIGHT (Eq. 3) and RET-CUT-UNREGISTERED: with ρ in hand
  // --- these are direct certificate checks on every edge.
  if (have_rho) {
    std::unordered_set<NetId> flagged;
    for (const REdge& e : rg.edges()) {
      const std::int64_t rw = static_cast<std::int64_t>(e.weight) + plan.rho[e.to] -
                              plan.rho[e.from];
      if (rw < 0) {
        rep.add(make(kRetNegWeight, Severity::kError,
                     "edge on net '" + nl.gate(g.driver(e.source_net)).name +
                         "' has retimed weight " + std::to_string(rw) +
                         " (w=" + std::to_string(e.weight) + ", Eq. 3 requires >= 0)",
                     nl.gate(g.driver(e.source_net)).name));
      }
      if (rw < 1 && retimable.contains(e.source_net)) {
        const NodeId u = rg.node_of(e.from);
        const NodeId v = rg.node_of(e.to);
        if (c.cluster_of[u] != c.cluster_of[v] && flagged.insert(e.source_net).second) {
          rep.add(make(kRetCutUnregistered, Severity::kError,
                       "retimable cut net '" + nl.gate(g.driver(e.source_net)).name +
                           "' has a boundary-crossing branch carrying " +
                           std::to_string(rw < 0 ? 0 : rw) +
                           " registers under rho (CUT boundary not sealed)",
                       nl.gate(g.driver(e.source_net)).name));
        }
      }
    }
  }

  // --- RET-CYCLE-CONSERVE (Eq. 2): independent of ρ, re-derive whether a
  // --- legal retiming can place a register on every crossing branch of
  // --- every claimed-retimable net. Cycles live inside SCCs, so solve the
  // --- induced constraint subsystem per SCC with plain Bellman–Ford.
  for (std::size_t s = 0; s < sccs.count(); ++s) {
    std::vector<ConsEdge> edges;
    std::vector<std::uint32_t> local_of(rg.num_vertices(),
                                        static_cast<std::uint32_t>(-1));
    std::uint32_t next_local = 0;
    auto localize = [&](RVertexId v) {
      if (local_of[v] == static_cast<std::uint32_t>(-1)) local_of[v] = next_local++;
      return local_of[v];
    };
    const auto redges = rg.edges();
    for (const REdge& e : redges) {
      const NodeId u = rg.node_of(e.from);
      const NodeId v = rg.node_of(e.to);
      if (sccs.component_of[u] != static_cast<std::int32_t>(s) ||
          sccs.component_of[v] != static_cast<std::int32_t>(s)) {
        continue;
      }
      ConsEdge ce;
      // Constraint orientation: requirement w(e) + rho(to) − rho(from) ≥ req
      // is the shortest-path edge to→from with weight w − req.
      ce.from = localize(e.to);
      ce.to = localize(e.from);
      ce.base = e.weight;
      const bool required =
          retimable.contains(e.source_net) && c.cluster_of[u] != c.cluster_of[v];
      ce.w = e.weight - (required ? 1 : 0);
      ce.net = required ? e.source_net : kNoNet;
      edges.push_back(ce);
    }
    if (edges.empty()) continue;
    const std::vector<std::size_t> cycle = find_negative_cycle(next_local, edges);
    if (cycle.empty()) continue;
    std::int64_t registers = 0;
    std::vector<NetId> nets;
    for (std::size_t ei : cycle) {
      registers += edges[ei].base;
      if (edges[ei].net != kNoNet) nets.push_back(edges[ei].net);
    }
    const std::size_t required_cuts = nets.size();
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
    std::string name_list;
    for (std::size_t i = 0; i < nets.size() && i < 5; ++i) {
      if (i) name_list += ", ";
      name_list += nl.gate(g.driver(nets[i])).name;
    }
    rep.add(make(kRetCycleConserve, Severity::kError,
                 "SCC " + std::to_string(s) + " has a cycle carrying " +
                     std::to_string(registers) + " register(s) but " +
                     std::to_string(required_cuts) +
                     " required retimable cut crossing(s) (Eq. 2 conservation "
                     "violated; cuts: " +
                     name_list + ")",
                 nets.empty() ? "" : nl.gate(g.driver(nets.front())).name));
  }

  return rep;
}

Report verify_artifact(const CircuitGraph& graph, const RetimeGraph& rgraph,
                       const SccInfo& sccs, const CompiledView& view) {
  Report rep = verify_netlist(graph.netlist());
  rep.merge(verify_partition(graph, view));
  rep.merge(verify_retiming(graph, rgraph, sccs, view));
  return rep;
}

}  // namespace merced::verify
