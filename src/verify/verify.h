// merced::verify — static verification of PPET compile artifacts.
//
// Merced's guarantees are structural: a compiled design is only a valid
// pseudo-exhaustive test plan if every partition obeys ι(π) ≤ l_k (Eq. 5),
// every combinational boundary crossing is sealed by an A_CELL, and the
// retiming labels are legal (w_ρ(e) ≥ 0 everywhere, Eq. 2 register
// conservation on every cycle). Simulation exercises these dynamically;
// this pass proves them directly on the artifact, with no simulation —
// every count is recomputed from scratch with independent traversals, so a
// compiler bug that produces a wrong-but-plausible artifact is caught even
// when the stored summary numbers agree with each other.
//
// Rule catalog (stable IDs; severities and JSON schema in DESIGN.md §10):
//
//   netlist DRC                      partition legality
//   ----------------------------    -------------------------------------
//   NET-UNDRIVEN       error        PART-COVERAGE       error
//   NET-MULTI-DRIVEN   error*       PART-IOTA           error / info**
//   NET-ARITY          error        PART-IOTA-MISMATCH  error
//   NET-COMB-CYCLE     error        PART-CUT-MISSING    error
//   NET-DANGLING       warning      PART-CUT-EXTRA      error
//   NET-UNREACHABLE    warning
//                                    retiming legality
//                                    -------------------------------------
//                                    RET-NEG-WEIGHT        error
//                                    RET-CUT-UNREGISTERED  error
//                                    RET-CYCLE-CONSERVE    error
//                                    RET-BOOKKEEPING       error
//
//   *  fired by the .bench parser (the in-memory Netlist cannot represent
//      two drivers on one net); shares this catalog via verify::Diagnostic.
//   ** info when the artifact itself declares the partition infeasible —
//      an honestly-reported ι > l_k is a property of the circuit at that
//      l_k, not a compiler defect.
#pragma once

#include <cstddef>
#include <span>

#include "graph/circuit_graph.h"
#include "graph/scc.h"
#include "netlist/netlist.h"
#include "partition/clustering.h"
#include "retiming/cut_retiming.h"
#include "retiming/retime_graph.h"
#include "verify/diagnostic.h"
#include "verify/rule_ids.h"

namespace merced::verify {

/// The slice of a compile result the checker cross-examines. Kept as a
/// view of plain pieces (not MercedResult) so this library sits below
/// core and compile() itself can assert a clean report in debug builds.
struct CompiledView {
  const Clustering* partitions = nullptr;
  std::span<const std::size_t> partition_inputs;  ///< claimed ι(π) per cluster
  std::span<const NetId> cut_net_ids;             ///< claimed cut set (sorted)
  const CutRetimingPlan* retiming = nullptr;      ///< may be null: skip RET-*
  bool feasible = true;                           ///< artifact's own claim
  std::size_t lk = 16;                            ///< input constraint checked
  /// AreaReport bookkeeping (0.9 / 2.3 DFF model inputs). Counts, not the
  /// report itself, so the checker does not depend on the core layer.
  std::size_t area_retimable_cuts = 0;
  std::size_t area_multiplexed_cuts = 0;
  std::size_t area_exact_retimable_cuts = 0;
  std::size_t area_exact_multiplexed_cuts = 0;
};

/// Netlist DRC family. Works on *unfinalized* netlists: fanouts and the
/// topological order are rebuilt internally, so a netlist that finalize()
/// would reject can still be diagnosed (and the diagnosis names the rule).
Report verify_netlist(const Netlist& netlist);

/// Partition-legality family (PART-*) for one clustering claim.
Report verify_partition(const CircuitGraph& graph, const CompiledView& view);

/// Retiming-legality family (RET-*). `rgraph` must be built from `graph`.
/// When the plan's ρ is empty the ρ-dependent rules (RET-NEG-WEIGHT,
/// RET-CUT-UNREGISTERED) are skipped; RET-CYCLE-CONSERVE re-derives Eq. 2
/// feasibility of the claimed retimable set independently of ρ.
Report verify_retiming(const CircuitGraph& graph, const RetimeGraph& rgraph,
                       const SccInfo& sccs, const CompiledView& view);

/// All three families over one artifact: netlist DRC + PART-* + RET-*.
Report verify_artifact(const CircuitGraph& graph, const RetimeGraph& rgraph,
                       const SccInfo& sccs, const CompiledView& view);

}  // namespace merced::verify
