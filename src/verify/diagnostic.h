// Shared diagnostic model for static findings — the one format every
// structural complaint in the repo uses, whether it comes from the `.bench`
// parser (a malformed input) or from the merced::verify checker (a
// compiled artifact that breaks a PPET invariant).
//
// A Diagnostic is a (rule, severity, message, anchor) tuple. Rules are
// stable string IDs (catalog in DESIGN.md §10) so tests can assert "exactly
// rule X fired" and CI can grep artifacts; anchors name the net/cluster the
// finding is about and, for parser findings, the 1-based source line.
//
// This header is deliberately std-only: the netlist parser sits at the
// bottom of the library stack and must be able to throw these without
// dragging in the graph/partition/retiming layers the checker needs.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace merced::verify {

enum class Severity { kInfo, kWarning, kError };

/// Lower-case severity name ("info" / "warning" / "error").
std::string_view to_string(Severity s) noexcept;

/// One static finding.
struct Diagnostic {
  std::string rule;                       ///< stable ID, e.g. "NET-COMB-CYCLE"
  Severity severity = Severity::kError;
  std::string message;                    ///< self-contained human text
  std::string object;                     ///< net / cluster anchor ("" = none)
  std::size_t line = 0;                   ///< 1-based source line (0 = none)
};

/// "error[NET-UNDRIVEN]: message (at 'G12', line 7)" — the canonical
/// rendering used by exception texts, the CLI and the JSON `text` field.
std::string format_diagnostic(const Diagnostic& d);

/// An ordered bag of findings plus severity accounting.
struct Report {
  std::vector<Diagnostic> findings;

  void add(Diagnostic d) { findings.push_back(std::move(d)); }
  void merge(Report other);

  std::size_t count(Severity s) const noexcept;
  std::size_t errors() const noexcept { return count(Severity::kError); }
  std::size_t warnings() const noexcept { return count(Severity::kWarning); }
  std::size_t infos() const noexcept { return count(Severity::kInfo); }

  /// Number of findings carrying `rule`.
  std::size_t count_rule(std::string_view rule) const noexcept;

  /// No error-severity findings (warnings/infos allowed).
  bool clean() const noexcept { return errors() == 0; }
};

/// Thrown by parsers on malformed input; carries the structured finding so
/// callers can recover the rule ID, net name and line, not just the text.
class DiagnosticError : public std::runtime_error {
 public:
  explicit DiagnosticError(Diagnostic d)
      : std::runtime_error(format_diagnostic(d)), diagnostic_(std::move(d)) {}

  const Diagnostic& diagnostic() const noexcept { return diagnostic_; }

 private:
  Diagnostic diagnostic_;
};

}  // namespace merced::verify
