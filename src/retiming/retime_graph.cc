#include "retiming/retime_graph.h"

#include <numeric>
#include <stdexcept>
#include <string>

namespace merced {

RetimeGraph::RetimeGraph(const CircuitGraph& g) {
  const Netlist& nl = g.netlist();
  vertex_of_.assign(g.num_nodes(), kNoRVertex);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!g.is_register(n)) {
      vertex_of_[n] = static_cast<RVertexId>(node_of_.size());
      node_of_.push_back(n);
    }
  }

  // For each non-register sink gate, trace every fanin pin backwards through
  // the DFF chain to its combinational/PI source; the chain length is the
  // edge weight. Each (sink, pin) yields exactly one edge because DFFs have
  // a single fanin.
  for (NodeId sink = 0; sink < g.num_nodes(); ++sink) {
    if (g.is_register(sink)) continue;
    const Gate& gate = nl.gate(sink);
    for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
      NodeId src = gate.fanins[pin];
      std::int32_t weight = 0;
      // Walk back through registers. A pure register ring (no combinational
      // cell on the cycle) cannot reach here since we started from a gate.
      std::size_t guard = g.num_nodes() + 1;
      while (g.is_register(src)) {
        ++weight;
        const Gate& dff = nl.gate(src);
        src = dff.fanins.at(0);
        if (guard-- == 0) {
          throw std::runtime_error("RetimeGraph: register chain longer than the circuit "
                                   "(pure DFF ring feeding gate '" + gate.name + "')");
        }
      }
      edges_.push_back(REdge{vertex_of_[src], vertex_of_[sink], weight, g.net_of(src),
                             static_cast<std::uint16_t>(pin)});
    }
  }
}

std::int64_t RetimeGraph::total_registers() const {
  return std::accumulate(edges_.begin(), edges_.end(), std::int64_t{0},
                         [](std::int64_t acc, const REdge& e) { return acc + e.weight; });
}

bool RetimeGraph::is_legal(const Retiming& rho) const {
  if (rho.size() != num_vertices()) return false;
  for (const REdge& e : edges_) {
    if (retimed_weight(e, rho) < 0) return false;
  }
  return true;
}

std::int64_t RetimeGraph::path_registers(std::span<const std::size_t> edge_indices,
                                         const Retiming* rho) const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < edge_indices.size(); ++i) {
    const REdge& e = edges_.at(edge_indices[i]);
    if (i > 0 && edges_.at(edge_indices[i - 1]).to != e.from) {
      throw std::invalid_argument("path_registers: edges do not form a path");
    }
    total += rho ? retimed_weight(e, *rho) : e.weight;
  }
  return total;
}

}  // namespace merced
