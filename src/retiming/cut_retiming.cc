#include "retiming/cut_retiming.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"

namespace merced {

namespace {

/// Constraint edge for the difference system ρ(u) − ρ(v) ≤ w − req,
/// i.e. a shortest-path edge v→u with weight (w − req).
struct CEdge {
  RVertexId from;      // v
  RVertexId to;        // u
  std::int32_t base;   // w(e)
  NetId cut_net;       // kNoNet when this edge is not a required cut
};

/// SPFA with negative-cycle extraction. Returns an empty vector and fills
/// `rho` when feasible; otherwise returns the vertices of one negative
/// cycle (in constraint-graph orientation).
std::vector<std::size_t> spfa(std::size_t n, const std::vector<CEdge>& edges,
                              const std::vector<bool>& required, Retiming& rho) {
  std::vector<std::vector<std::size_t>> out(n);
  for (std::size_t i = 0; i < edges.size(); ++i) out[edges[i].from].push_back(i);

  std::vector<std::int64_t> dist(n, 0);
  std::vector<std::size_t> parent_edge(n, static_cast<std::size_t>(-1));
  std::vector<std::uint32_t> relax_count(n, 0);
  std::vector<bool> in_queue(n, true);
  std::deque<RVertexId> queue;
  for (std::size_t v = 0; v < n; ++v) queue.push_back(static_cast<RVertexId>(v));

  while (!queue.empty()) {
    const RVertexId v = queue.front();
    queue.pop_front();
    in_queue[v] = false;
    for (std::size_t ei : out[v]) {
      const CEdge& e = edges[ei];
      const std::int64_t w = e.base - (required[ei] ? 1 : 0);
      if (dist[v] + w < dist[e.to]) {
        dist[e.to] = dist[v] + w;
        parent_edge[e.to] = ei;
        // A vertex relaxed many times is likely on (or fed by) a negative
        // cycle; the parent walk below *verifies* before reporting, so a low
        // threshold is safe — false alarms just reset the counter.
        if (++relax_count[e.to] > 32) {
          // Negative cycle: walking n+1 parent steps from e.to must land on
          // the cycle (every vertex on a long-enough parent chain repeats).
          RVertexId cur = e.to;
          bool complete = true;
          for (std::size_t step = 0; step <= n; ++step) {
            if (parent_edge[cur] == static_cast<std::size_t>(-1)) {
              complete = false;  // transient chain; the cycle will resurface
              break;
            }
            cur = edges[parent_edge[cur]].from;
          }
          if (complete) {
            std::vector<std::size_t> cycle;
            RVertexId walk = cur;
            do {
              const std::size_t pe = parent_edge[walk];
              cycle.push_back(pe);
              walk = edges[pe].from;
            } while (walk != cur && cycle.size() <= n);
            if (walk == cur) return cycle;
          }
          relax_count[e.to] = 0;  // retry later if it was transient
        }
        if (!in_queue[e.to]) {
          in_queue[e.to] = true;
          queue.push_back(e.to);
        }
      }
    }
  }
  rho.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) rho[v] = static_cast<std::int32_t>(dist[v]);
  return {};
}

}  // namespace

CutRetimingPlan plan_cut_retiming(const CircuitGraph& g, const RetimeGraph& rg,
                                  const SccInfo& sccs, std::span<const NetId> cut_nets,
                                  const Clustering& clustering) {
  MERCED_SPAN("plan_cut_retiming");
  CutRetimingPlan plan;
  std::unordered_set<NetId> cut_set(cut_nets.begin(), cut_nets.end());

  // Per-SCC cut census for the aggregate pre-pass. A cut net belongs to SCC
  // λ when its driver and a crossing gate sink are both in λ.
  std::unordered_map<std::int32_t, std::vector<NetId>> scc_cuts;
  std::unordered_set<NetId> demoted;
  for (NetId net : cut_nets) {
    const NodeId d = g.driver(net);
    const std::int32_t scc = sccs.component_of[d];
    if (scc == kNoScc) continue;
    const std::int32_t dc = clustering.cluster_of[d];
    for (BranchId b : g.net_branches(net)) {
      const Branch& br = g.branch(b);
      if (!g.is_register(br.sink) && !g.is_pi(br.sink) &&
          clustering.cluster_of[br.sink] != dc && sccs.component_of[br.sink] == scc) {
        scc_cuts[scc].push_back(net);
        break;
      }
    }
  }
  for (auto& [scc, nets] : scc_cuts) {
    const std::size_t supply = sccs.dff_count[static_cast<std::size_t>(scc)];
    if (nets.size() > supply) {
      // Demote the excess (Table 12 accounting): keep the first f(λ) cuts.
      for (std::size_t i = supply; i < nets.size(); ++i) demoted.insert(nets[i]);
      plan.scc_aggregate_demotions += nets.size() - supply;
    }
  }

  // Build the constraint system. A retime-graph edge is a *crossing branch*
  // of cut net n when source_net == n and its endpoints sit in different
  // clusters. Every crossing branch of a retimable cut must carry >= 1
  // register after retiming — including branches whose registers already
  // exist (w >= 1): without the constraint the solver may retime the
  // boundary DFF away and unseal the crossing (found by merced::verify's
  // RET-CUT-UNREGISTERED gate).
  const auto& redges = rg.edges();
  std::vector<CEdge> cedges;
  cedges.reserve(redges.size());
  std::vector<bool> required(redges.size(), false);
  std::unordered_map<NetId, std::vector<std::size_t>> edges_of_net;
  for (std::size_t i = 0; i < redges.size(); ++i) {
    const REdge& e = redges[i];
    NetId cut = kNoNet;
    if (cut_set.contains(e.source_net)) {
      const NodeId from_node = rg.node_of(e.from);
      const NodeId to_node = rg.node_of(e.to);
      if (clustering.cluster_of[from_node] != clustering.cluster_of[to_node]) {
        cut = e.source_net;
        edges_of_net[cut].push_back(i);
        required[i] = !demoted.contains(cut);
      }
    }
    cedges.push_back(CEdge{e.to, e.from, e.weight, cut});
  }

  // Resolve infeasibility SCC by SCC: every directed cycle of the circuit
  // lies inside one SCC, so negative cycles can only involve edges whose
  // endpoints share an SCC. Solving each SCC's induced subsystem first
  // keeps the repeated negative-cycle searches on small graphs; the final
  // global solve then finds ρ without hitting any cycle.
  //
  // Each negative cycle has Σ(w − req) < 0 and needs exactly
  // (required_on_cycle − Σw) demotions (Eq. 2: a cycle can host at most
  // f(p) = Σw registers over its cuts); after many rounds on one SCC we
  // escalate to demoting every required cut on the found cycle.
  auto resolve = [&](std::size_t n_vertices, const std::vector<CEdge>& edges,
                     std::vector<bool>& req, const std::vector<std::size_t>& global_idx,
                     Retiming* rho_out) {
    Retiming local_rho;
    Retiming& rho = rho_out ? *rho_out : local_rho;
    for (std::size_t round = 0;; ++round) {
      std::vector<std::size_t> cycle = spfa(n_vertices, edges, req, rho);
      if (cycle.empty()) return;
      std::int64_t weight_sum = 0;
      std::vector<NetId> required_nets;
      for (std::size_t ei : cycle) {
        weight_sum += edges[ei].base;
        const NetId net = edges[ei].cut_net;
        if (net != kNoNet && req[ei] && !demoted.contains(net)) {
          required_nets.push_back(net);  // may repeat when a net crosses twice
        }
      }
      std::int64_t deficit =
          static_cast<std::int64_t>(required_nets.size()) - weight_sum;
      std::sort(required_nets.begin(), required_nets.end());
      required_nets.erase(std::unique(required_nets.begin(), required_nets.end()),
                          required_nets.end());
      if (deficit <= 0 || required_nets.empty()) {
        throw std::logic_error(
            "plan_cut_retiming: negative cycle without demotable cut — the base "
            "circuit has a register-free combinational cycle");
      }
      if (round > 8) deficit = static_cast<std::int64_t>(required_nets.size());
      for (std::int64_t i = 0; i < deficit && !required_nets.empty(); ++i) {
        const NetId net = required_nets.back();
        required_nets.pop_back();
        demoted.insert(net);
        for (std::size_t j : edges_of_net[net]) {
          required[j] = false;
          // Mirror into the local requirement vector when solving a subgraph.
          if (!global_idx.empty()) {
            const auto it = std::lower_bound(global_idx.begin(), global_idx.end(), j);
            if (it != global_idx.end() && *it == j) {
              req[static_cast<std::size_t>(it - global_idx.begin())] = false;
            }
          }
        }
        ++plan.negative_cycle_demotions;
      }
    }
  };

  // Per-SCC subproblems (only for SCCs that still have required cuts).
  std::unordered_set<std::int32_t> sccs_with_cuts;
  for (std::size_t i = 0; i < cedges.size(); ++i) {
    if (!required[i]) continue;
    const std::int32_t s = sccs.component_of[rg.node_of(redges[i].from)];
    if (s != kNoScc && s == sccs.component_of[rg.node_of(redges[i].to)]) {
      sccs_with_cuts.insert(s);
    }
  }
  for (std::int32_t s : sccs_with_cuts) {
    // Induced subgraph: edges with both endpoints in SCC s.
    std::unordered_map<RVertexId, RVertexId> local_of;
    std::vector<CEdge> local_edges;
    std::vector<bool> local_req;
    std::vector<std::size_t> global_idx;
    auto localize = [&](RVertexId v) {
      return local_of.try_emplace(v, static_cast<RVertexId>(local_of.size()))
          .first->second;
    };
    for (std::size_t i = 0; i < cedges.size(); ++i) {
      const std::int32_t sf = sccs.component_of[rg.node_of(redges[i].from)];
      const std::int32_t st = sccs.component_of[rg.node_of(redges[i].to)];
      if (sf == s && st == s) {
        local_edges.push_back(CEdge{localize(cedges[i].from), localize(cedges[i].to),
                                    cedges[i].base, cedges[i].cut_net});
        local_req.push_back(required[i]);
        global_idx.push_back(i);
      }
    }
    resolve(local_of.size(), local_edges, local_req, global_idx, nullptr);
  }

  // Tie all PI and PO-driver vertices to one label (the Leiserson–Saxe host
  // constraint): their signals cannot time-shift, so normal-mode function is
  // preserved cycle-exactly. Cuts this makes infeasible (e.g. a cut on a
  // register-free PI→PO path) are demoted to multiplexed A_CELLs — exactly
  // the hardware the paper prescribes when retiming cannot supply the
  // register (Fig. 3c).
  {
    const Netlist& nl = g.netlist();
    RVertexId ref = kNoRVertex;
    auto tie = [&](NodeId n) {
      const RVertexId v = rg.vertex_of(n);
      if (v == kNoRVertex) return;
      if (ref == kNoRVertex) {
        ref = v;
        return;
      }
      cedges.push_back(CEdge{ref, v, 0, kNoNet});
      cedges.push_back(CEdge{v, ref, 0, kNoNet});
      required.push_back(false);
      required.push_back(false);
    };
    for (GateId id : nl.inputs()) tie(id);
    for (GateId id : nl.outputs()) {
      if (!g.is_register(id)) tie(id);
    }
  }

  // Global solve for ρ (per-SCC cycles are already satisfied; this also
  // resolves any cycle the host constraints introduced).
  resolve(rg.num_vertices(), cedges, required, {}, &plan.rho);

  for (NetId net : cut_nets) {
    (demoted.contains(net) ? plan.multiplexed : plan.retimable).push_back(net);
  }
  std::sort(plan.retimable.begin(), plan.retimable.end());
  std::sort(plan.multiplexed.begin(), plan.multiplexed.end());
  if (obs::enabled()) {
    std::uint64_t lags = 0;
    for (std::int32_t rho : plan.rho) lags += rho != 0 ? 1 : 0;
    obs::add(obs::Counter::kRetimingLagsApplied, lags);
    obs::add(obs::Counter::kRetimingNegCycleDemotions, plan.negative_cycle_demotions);
    obs::add(obs::Counter::kRetimingAggregateDemotions, plan.scc_aggregate_demotions);
  }
  return plan;
}

}  // namespace merced
