// Leiserson–Saxe retiming model — paper §2.2, after [1].
//
// The retiming view of a synchronous circuit keeps only the combinational
// cells as vertices; registers become integer weights w(e) on the edges
// between them. A retiming ρ: C → Z relabels vertices; the retimed weight of
// edge u→v is
//
//     w_ρ(e) = w(e) + ρ(v) − ρ(u)                        (Lemma 1 / Eq. 1)
//
// A retiming is *legal* iff w_ρ(e) ≥ 0 for every edge (Corollary 3 / Eq. 3),
// and every directed cycle keeps its register count (Corollary 2 / Eq. 2).
//
// Primary inputs and outputs are free endpoints here — the paper allows
// changing the register count of I/O paths (test pipelining tolerates
// latency changes, §2.3: "additional registers can be added arbitrarily...
// based on Eq. (1)"); only cycles constrain retiming.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/circuit_graph.h"

namespace merced {

/// Vertex of the retiming graph (a combinational gate, a PI, or a PO-less
/// sink endpoint). Indices are local to the RetimeGraph.
using RVertexId = std::uint32_t;

inline constexpr RVertexId kNoRVertex = static_cast<RVertexId>(-1);

/// Edge u→v carrying w registers. `cut_net` records which circuit net this
/// edge corresponds to at its *source* end (the net driven by the source
/// gate, where an A_CELL would sit if the edge is a cut).
struct REdge {
  RVertexId from = kNoRVertex;
  RVertexId to = kNoRVertex;
  std::int32_t weight = 0;  ///< registers on this connection, w(e) >= 0
  NetId source_net = kNoNet;
  std::uint16_t sink_pin = 0;  ///< fanin pin index at the sink gate
};

/// A retiming assignment ρ, one integer per vertex.
using Retiming = std::vector<std::int32_t>;

/// Register-weighted retiming graph derived from a circuit graph: vertices
/// are non-register nodes (gates and PIs); DFF chains collapse into edge
/// weights.
class RetimeGraph {
 public:
  explicit RetimeGraph(const CircuitGraph& graph);

  std::size_t num_vertices() const noexcept { return node_of_.size(); }
  std::span<const REdge> edges() const noexcept { return edges_; }

  /// Circuit node backing vertex `v` (a gate or PI).
  NodeId node_of(RVertexId v) const { return node_of_.at(v); }

  /// Vertex for circuit node `n`, or kNoRVertex for registers.
  RVertexId vertex_of(NodeId n) const { return vertex_of_.at(n); }

  /// Total registers over all edges (equals the netlist DFF count when no
  /// DFF drives only dangling nets).
  std::int64_t total_registers() const;

  /// Retimed weight of edge `e` under ρ (Eq. 1 applied to a single edge).
  std::int32_t retimed_weight(const REdge& e, const Retiming& rho) const {
    return e.weight + rho.at(e.to) - rho.at(e.from);
  }

  /// Eq. 3: true iff every retimed edge weight is non-negative.
  bool is_legal(const Retiming& rho) const;

  /// Registers along a vertex path (edge indices into edges()); with a
  /// retiming applied this verifies Eq. 1 in tests.
  std::int64_t path_registers(std::span<const std::size_t> edge_indices,
                              const Retiming* rho = nullptr) const;

 private:
  std::vector<REdge> edges_;
  std::vector<NodeId> node_of_;
  std::vector<RVertexId> vertex_of_;  // per circuit node; kNoRVertex for DFFs
};

}  // namespace merced
