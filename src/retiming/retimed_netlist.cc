#include "retiming/retimed_netlist.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/simulator.h"

namespace merced {

RetimedCircuit apply_retiming(const CircuitGraph& g, const RetimeGraph& rg,
                              const Retiming& rho_in) {
  if (!rg.is_legal(rho_in)) {
    throw std::invalid_argument("apply_retiming: illegal retiming");
  }
  const Netlist& nl = g.netlist();

  // Normalize: all PIs and PO drivers must share one label (their signals
  // cannot time-shift); subtract it so the reference becomes 0.
  Retiming rho = rho_in;
  {
    std::int32_t io_label = 0;
    bool have_io = false;
    auto check_io = [&](NodeId n) {
      const RVertexId v = rg.vertex_of(n);
      if (v == kNoRVertex) return;
      if (!have_io) {
        io_label = rho.at(v);
        have_io = true;
      } else if (rho.at(v) != io_label) {
        throw std::invalid_argument(
            "apply_retiming: PIs/POs carry different retiming labels — the "
            "retimed machine would not be cycle-exact equivalent");
      }
    };
    for (GateId id : nl.inputs()) check_io(id);
    for (GateId id : nl.outputs()) {
      if (!is_sequential(nl.gate(id).type)) check_io(id);
    }
    if (have_io) {
      for (auto& v : rho) v -= io_label;
    }
  }

  RetimedCircuit out;
  out.netlist.set_name(nl.name() + "_retimed");

  // 1. Copy PIs and combinational gates (fanins resolved later).
  std::vector<GateId> new_id(nl.size(), kNoGate);
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& gate = nl.gate(id);
    if (is_sequential(gate.type)) continue;
    new_id[id] = out.netlist.add_gate(gate.type, gate.name);
  }

  // 2. Per source vertex, the longest retimed chain it must drive.
  std::vector<std::int32_t> chain_len(rg.num_vertices(), 0);
  for (const REdge& e : rg.edges()) {
    chain_len[e.from] = std::max(chain_len[e.from], rg.retimed_weight(e, rho));
  }

  // 3. Build shared register chains: tap[v][k] = gate driving depth-k value.
  std::vector<std::vector<GateId>> tap(rg.num_vertices());
  for (RVertexId v = 0; v < rg.num_vertices(); ++v) {
    const NodeId src = rg.node_of(v);
    tap[v].resize(static_cast<std::size_t>(chain_len[v]) + 1);
    tap[v][0] = new_id[src];
    for (std::int32_t k = 1; k <= chain_len[v]; ++k) {
      const GateId dff = out.netlist.add_gate(
          GateType::kDff, nl.gate(src).name + "_r" + std::to_string(k),
          {tap[v][static_cast<std::size_t>(k - 1)]});
      tap[v][static_cast<std::size_t>(k)] = dff;
      out.origins.push_back(RetimedCircuit::RegisterOrigin{src, k, rho[v]});
    }
  }

  // 4. Wire sink fanins to the right chain tap.
  std::vector<std::vector<GateId>> fanins(nl.size());
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& gate = nl.gate(id);
    if (is_sequential(gate.type) || is_input(gate.type)) continue;
    fanins[id].resize(gate.fanins.size(), kNoGate);
  }
  for (const REdge& e : rg.edges()) {
    const NodeId sink = rg.node_of(e.to);
    const std::int32_t w = rg.retimed_weight(e, rho);
    fanins[sink][e.sink_pin] = tap[e.from][static_cast<std::size_t>(w)];
  }
  for (GateId id = 0; id < nl.size(); ++id) {
    if (new_id[id] == kNoGate || is_input(nl.gate(id).type)) continue;
    for (GateId f : fanins[id]) {
      if (f == kNoGate) {
        throw std::logic_error("apply_retiming: unresolved fanin on gate '" +
                               nl.gate(id).name + "'");
      }
    }
    out.netlist.set_fanins(new_id[id], fanins[id]);
  }

  // 5. Primary outputs must sit on combinational gates or PIs.
  for (GateId id : nl.outputs()) {
    if (is_sequential(nl.gate(id).type)) {
      throw std::invalid_argument(
          "apply_retiming: primary output '" + nl.gate(id).name +
          "' is a register; retiming with DFF-driven outputs is unsupported");
    }
    out.netlist.mark_output(new_id[id]);
  }

  out.netlist.finalize();
  return out;
}

std::vector<bool> compute_retimed_initial_state(
    const Netlist& original, const RetimedCircuit& retimed,
    const std::vector<bool>& original_initial_state,
    std::span<const std::vector<bool>> warmup_inputs) {
  // The register at depth k from source u (with label ρ(u)) must hold the
  // original u's value of cycle t = W − k + 1 − ρ(u) (1-indexed).
  const auto W = static_cast<std::int64_t>(warmup_inputs.size());
  std::int64_t min_t = 1, max_t = W;
  for (const auto& o : retimed.origins) {
    const std::int64_t t = W - o.depth + 1 - o.rho;
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  if (min_t < 1) {
    throw std::invalid_argument("compute_retimed_initial_state: need at least " +
                                std::to_string(W + (1 - min_t)) + " warm-up cycles");
  }

  // Record every gate's output per warm-up cycle (1-indexed: history[t-1]).
  Simulator sim(original);
  sim.set_state(original_initial_state);
  std::vector<std::vector<bool>> history;
  history.reserve(static_cast<std::size_t>(max_t));
  for (const auto& in : warmup_inputs) {
    sim.step(in);
    std::vector<bool> snapshot(original.size());
    for (GateId id = 0; id < original.size(); ++id) snapshot[id] = sim.value(id);
    history.push_back(std::move(snapshot));
  }

  // Sources with negative ρ run *ahead* of the original clock, so some
  // registers hold values of cycles beyond W. Those values are still causal
  // (legality guarantees every PI→u path carries enough registers), so a
  // three-valued extension with unknown future inputs resolves them: an X
  // on a future PI can never structurally reach the needed node.
  std::vector<std::vector<char>> known_history;
  if (max_t > W) {
    std::vector<char> val(original.size(), 0);
    std::vector<char> known(original.size(), 0);
    std::vector<char> st_val(original.dffs().size(), 0);
    std::vector<char> st_known(original.dffs().size(), 0);
    for (std::size_t i = 0; i < original.dffs().size(); ++i) {
      st_val[i] = sim.state()[i];
      st_known[i] = 1;
    }
    for (std::int64_t t = W + 1; t <= max_t; ++t) {
      for (GateId id : original.inputs()) known[id] = 0;  // future inputs: X
      for (std::size_t i = 0; i < original.dffs().size(); ++i) {
        val[original.dffs()[i]] = st_val[i];
        known[original.dffs()[i]] = st_known[i];
      }
      std::vector<bool> fanins;
      for (GateId id : original.topo_order()) {
        const Gate& gate = original.gate(id);
        if (!is_combinational(gate.type) && gate.type != GateType::kConst0 &&
            gate.type != GateType::kConst1) {
          continue;
        }
        bool all_known = true;
        fanins.clear();
        for (GateId f : gate.fanins) {
          all_known = all_known && known[f] != 0;
          fanins.push_back(val[f] != 0);
        }
        known[id] = all_known ? 1 : 0;
        val[id] = all_known ? (eval_gate(gate.type, fanins) ? 1 : 0) : 0;
      }
      std::vector<bool> snapshot(original.size());
      for (GateId id = 0; id < original.size(); ++id) snapshot[id] = val[id] != 0;
      history.push_back(std::move(snapshot));
      // Record knownness by leaving unknown entries arbitrary; needed nodes
      // are guaranteed known (checked below via `known` of the last step
      // only when t matches — track per-cycle knownness alongside).
      for (std::size_t i = 0; i < original.dffs().size(); ++i) {
        const GateId d = original.gate(original.dffs()[i]).fanins.at(0);
        st_val[i] = val[d];
        st_known[i] = known[d];
      }
      // Stash knownness into a parallel structure via history of knowns.
      known_history.push_back(known);
    }
  }

  std::vector<bool> state(retimed.origins.size());
  for (std::size_t i = 0; i < retimed.origins.size(); ++i) {
    const auto& o = retimed.origins[i];
    const std::int64_t t = W - o.depth + 1 - o.rho;
    if (t > W) {
      const auto& kn = known_history[static_cast<std::size_t>(t - W - 1)];
      if (!kn[o.source]) {
        throw std::logic_error(
            "compute_retimed_initial_state: needed future value is not causal — "
            "the retiming is not I/O-consistent");
      }
    }
    state[i] = history[static_cast<std::size_t>(t - 1)][o.source];
  }
  return state;
}

}  // namespace merced
