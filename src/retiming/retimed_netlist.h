// Applying a retiming to a netlist, and recomputing initial states.
//
// apply_retiming rebuilds the circuit with registers repositioned according
// to the retimed edge weights w_ρ(e) (Eq. 1). Register chains fanning out
// of one source are shared (edge with weight k taps the k-th register of
// the source's chain), which is also how the original netlist represents
// shift registers.
//
// Initial states are recomputed in the spirit of Touati/Brayton [16] via
// warm-up history: run the *original* machine W cycles from its initial
// state under a known input stream, recording every gate's output per
// cycle. The retimed register at depth k of source u must then hold u's
// output from cycle W−k+1 — by the time-unrolling argument both machines
// subsequently compute identical signals, so outputs agree cycle-for-cycle
// from cycle W+1 on. W must be at least the deepest retimed chain.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "retiming/retime_graph.h"

namespace merced {

struct RetimedCircuit {
  Netlist netlist;  ///< finalized retimed structure

  /// For each DFF of `netlist` (dffs() order): the *original* circuit node
  /// whose output history this register holds, its depth k >= 1, and the
  /// retiming label of the source vertex. Because retiming time-shifts an
  /// internal signal u by −ρ(u) cycles (relative to ρ(PI) = 0), the
  /// register at depth k holds the original u's value of cycle
  /// W − k + 1 − ρ(u) after W warm-up cycles.
  struct RegisterOrigin {
    NodeId source = kNoGate;
    std::int32_t depth = 0;
    std::int32_t rho = 0;
  };
  std::vector<RegisterOrigin> origins;
};

/// Rebuilds the circuit with registers placed per w_ρ. `rho` must be legal,
/// and for cycle-exact normal-mode equivalence all PI and PO-driver
/// vertices must carry the same label (apply_retiming normalizes so that
/// common label becomes 0; it throws if PIs/POs disagree). Requires every
/// primary output to be driven by a combinational gate or PI (true for all
/// bundled circuits); throws otherwise.
RetimedCircuit apply_retiming(const CircuitGraph& graph, const RetimeGraph& rgraph,
                              const Retiming& rho);

/// Computes the retimed machine's initial state equivalent to the original
/// machine *after* it consumed `warmup_inputs` (each of inputs() size)
/// starting from `original_initial_state`. Returns the retimed state in
/// retimed.netlist.dffs() order. warmup_inputs.size() must be >= the
/// deepest register chain in `retimed`.
std::vector<bool> compute_retimed_initial_state(
    const Netlist& original, const RetimedCircuit& retimed,
    const std::vector<bool>& original_initial_state,
    std::span<const std::vector<bool>> warmup_inputs);

}  // namespace merced
