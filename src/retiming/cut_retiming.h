// Retiming plan for a PPET cut set — paper §2.3.
//
// Every cut net needs a register (an A_CELL) at the cut. Legal retiming can
// move existing functional flip-flops there, at a cost of only the A_CELL's
// three extra gates (0.9 DFF). The cycle invariant Eq. (2) caps how many
// registers retiming can supply inside each loop: a cycle p can host at most
// f(p) retimed registers over its cut nets, so χ(p) − f(p) cuts (if
// positive) must instead use a brand-new multiplexed A_CELL (2.3 DFF,
// Fig. 3c).
//
// The planner expresses "cut edge e must carry a register" as the
// difference constraint  w(e) + ρ(to) − ρ(from) ≥ 1  (and ≥ 0 for all other
// edges), solves it as a shortest-path system (SPFA/Bellman–Ford), and on
// every negative cycle demotes cut nets on that cycle to multiplexed until
// the system is feasible. An SCC-aggregate pre-pass (demote
// max(0, χ(λ) − f(λ)) cuts per SCC, the paper's Table 12 accounting) keeps
// the number of negative-cycle rounds small.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/scc.h"
#include "partition/clustering.h"
#include "retiming/retime_graph.h"

namespace merced {

struct CutRetimingPlan {
  /// Cut nets that receive their register through legal retiming.
  std::vector<NetId> retimable;
  /// Cut nets that need a new multiplexed A_CELL (excess on SCCs).
  std::vector<NetId> multiplexed;
  /// A legal retiming placing >= 1 register on every crossing branch of
  /// every retimable cut net.
  Retiming rho;
  /// Demotions performed by the SCC aggregate pre-pass.
  std::size_t scc_aggregate_demotions = 0;
  /// Additional demotions forced by exact negative-cycle analysis.
  std::size_t negative_cycle_demotions = 0;
};

/// Plans retiming for the cut nets of `clustering`. `cut_nets` must be the
/// cut set of `clustering` (see partition/clustering.h); `rgraph` must be
/// built from `graph`.
CutRetimingPlan plan_cut_retiming(const CircuitGraph& graph, const RetimeGraph& rgraph,
                                  const SccInfo& sccs, std::span<const NetId> cut_nets,
                                  const Clustering& clustering);

}  // namespace merced
