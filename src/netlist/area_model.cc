#include "netlist/area_model.h"

#include <stdexcept>
#include <string>

#include "netlist/netlist.h"

namespace merced {

AreaUnits gate_area(GateType type, std::size_t fanin_count) {
  // Base cost at the type's reference arity (2 inputs for logic gates),
  // +1 unit per additional input beyond the reference.
  AreaUnits base = 0;
  std::size_t ref_arity = 2;
  switch (type) {
    case GateType::kInput: return 0;
    case GateType::kConst0:
    case GateType::kConst1: return 0;
    case GateType::kDff: return kDffArea;
    case GateType::kBuf: base = 1; ref_arity = 1; break;
    case GateType::kNot: base = 1; ref_arity = 1; break;
    case GateType::kAnd: base = 3; break;
    case GateType::kNand: base = 2; break;
    case GateType::kOr: base = 3; break;
    case GateType::kNor: base = 2; break;
    case GateType::kXor: base = 4; break;
    case GateType::kXnor: base = 4; break;
    case GateType::kMux: base = 3; ref_arity = 3; break;
  }
  if (fanin_count < min_fanin(type)) {
    throw std::invalid_argument("gate_area: fanin count " + std::to_string(fanin_count) +
                                " below minimum for " + std::string(to_string(type)));
  }
  const AreaUnits extra =
      fanin_count > ref_arity ? static_cast<AreaUnits>(fanin_count - ref_arity) : 0;
  return base + extra;
}

AreaUnits circuit_area(const Netlist& nl) {
  AreaUnits total = 0;
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    total += gate_area(g.type, g.fanins.size());
  }
  return total;
}

}  // namespace merced
