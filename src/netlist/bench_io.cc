#include "netlist/bench_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "verify/diagnostic.h"
#include "verify/rule_ids.h"

namespace merced {

namespace {

struct PendingGate {
  GateType type;
  std::string name;
  std::vector<std::string> fanin_names;
  std::size_t line;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error(".bench parse error at line " + std::to_string(line) + ": " + what);
}

/// Structural connectivity errors (multiply-driven / undriven nets) carry a
/// verify rule ID, the net name, and the source line, so the parser and the
/// static checker speak the same diagnostic language. DiagnosticError
/// derives from std::runtime_error — callers that only care about "parse
/// failed" keep working unchanged.
[[noreturn]] void fail_net(const char* rule, std::string message, std::string net,
                           std::size_t line) {
  verify::Diagnostic d;
  d.rule = rule;
  d.severity = verify::Severity::kError;
  d.message = ".bench parse error: " + std::move(message);
  d.object = std::move(net);
  d.line = line;
  throw verify::DiagnosticError(d);
}

/// Splits "NOR(G14, G11)" into function name and arg list.
void parse_call(std::string_view rhs, std::size_t line, std::string& fn,
                std::vector<std::string>& args) {
  const std::size_t open = rhs.find('(');
  const std::size_t close = rhs.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
    fail(line, "expected FUNC(args): '" + std::string(rhs) + "'");
  }
  fn = std::string(trim(rhs.substr(0, open)));
  std::string_view inner = rhs.substr(open + 1, close - open - 1);
  args.clear();
  std::size_t start = 0;
  while (start <= inner.size()) {
    std::size_t comma = inner.find(',', start);
    std::string_view tok = comma == std::string_view::npos ? inner.substr(start)
                                                           : inner.substr(start, comma - start);
    tok = trim(tok);
    if (!tok.empty()) args.emplace_back(tok);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
}

}  // namespace

Netlist parse_bench(std::string_view text, std::string name) {
  Netlist nl(std::move(name));
  std::vector<PendingGate> pendings;
  std::vector<std::pair<std::string, std::size_t>> output_names;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view raw = eol == std::string_view::npos ? text.substr(pos)
                                                         : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    std::string_view line = raw;
    if (std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      std::string fn;
      std::vector<std::string> args;
      parse_call(line, line_no, fn, args);
      if (args.size() != 1) fail(line_no, "INPUT/OUTPUT take exactly one net");
      std::string upper = fn;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      if (upper == "INPUT") {
        try {
          nl.add_gate(GateType::kInput, args[0]);
        } catch (const std::invalid_argument&) {
          fail_net(verify::kNetMultiDriven,
                   "duplicate driver for net '" + args[0] + "' (already defined)",
                   args[0], line_no);
        }
      } else if (upper == "OUTPUT") {
        for (const auto& [seen, _] : output_names) {
          if (seen == args[0]) fail(line_no, "duplicate OUTPUT '" + args[0] + "'");
        }
        output_names.emplace_back(args[0], line_no);
      } else {
        fail(line_no, "expected INPUT or OUTPUT, got '" + fn + "'");
      }
      continue;
    }

    // name = FUNC(args)
    std::string lhs(trim(line.substr(0, eq)));
    if (lhs.empty()) fail(line_no, "empty net name before '='");
    std::string fn;
    std::vector<std::string> args;
    parse_call(trim(line.substr(eq + 1)), line_no, fn, args);
    GateType type;
    if (!gate_type_from_string(fn, type)) fail(line_no, "unknown gate function '" + fn + "'");
    if (type == GateType::kInput) fail(line_no, "INPUT cannot appear on an assignment");
    pendings.push_back(PendingGate{type, std::move(lhs), std::move(args), line_no});
  }

  // Second pass: create all gates, then resolve fanins (forward refs OK).
  for (PendingGate& p : pendings) {
    try {
      nl.add_gate(p.type, p.name);
    } catch (const std::invalid_argument&) {
      // Two assignments to the same net = two drivers on one wire.
      fail_net(verify::kNetMultiDriven,
               "duplicate driver for net '" + p.name + "' (already defined)",
               p.name, p.line);
    }
  }
  for (const PendingGate& p : pendings) {
    std::vector<GateId> fanins;
    fanins.reserve(p.fanin_names.size());
    for (const std::string& fn_name : p.fanin_names) {
      const GateId f = nl.find(fn_name);
      if (f == kNoGate) {
        fail_net(verify::kNetUndriven,
                 "undefined net '" + fn_name + "' (referenced but never driven)",
                 fn_name, p.line);
      }
      fanins.push_back(f);
    }
    nl.set_fanins(nl.find(p.name), std::move(fanins));
  }
  for (const auto& [out_name, line] : output_names) {
    const GateId id = nl.find(out_name);
    if (id == kNoGate) {
      fail_net(verify::kNetUndriven,
               "OUTPUT references undefined net '" + out_name + "'", out_name, line);
    }
    nl.mark_output(id);
  }

  nl.finalize();
  return nl;
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open .bench file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string stem = path;
  if (std::size_t slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (std::size_t dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return parse_bench(ss.str(), stem);
}

namespace {

/// `.bench` has no quoting, so a net name containing grammar characters
/// ('#', '(', ')', ',', '=', whitespace) would reparse as a different
/// circuit — or not parse at all. write_bench rejects such names loudly
/// instead of emitting text that silently fails the round-trip.
void check_writable_name(const std::string& name) {
  bool bad = name.empty();
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '#' || c == '(' ||
        c == ')' || c == ',' || c == '=') {
      bad = true;
    }
  }
  if (bad) {
    throw std::invalid_argument(
        "write_bench: net name '" + name +
        "' cannot round-trip through .bench (empty, or contains '#', '(', ')', "
        "',', '=' or whitespace)");
  }
}

}  // namespace

std::string write_bench(const Netlist& nl) {
  for (GateId id = 0; id < nl.size(); ++id) check_writable_name(nl.gate(id).name);
  std::ostringstream out;
  out << "# " << nl.name() << "\n";
  for (GateId id : nl.inputs()) out << "INPUT(" << nl.gate(id).name << ")\n";
  for (GateId id : nl.outputs()) out << "OUTPUT(" << nl.gate(id).name << ")\n";
  out << "\n";
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kInput) continue;
    out << g.name << " = " << to_string(g.type) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i > 0) out << ", ";
      out << nl.gate(g.fanins[i]).name;
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace merced
