// Circuit statistics — one row of the paper's Table 9.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "netlist/area_model.h"
#include "netlist/netlist.h"

namespace merced {

/// Summary statistics of a netlist in the shape of Table 9.
struct CircuitStats {
  std::string name;
  std::size_t num_inputs = 0;   ///< primary inputs (PIs)
  std::size_t num_dffs = 0;     ///< D flip-flops
  std::size_t num_gates = 0;    ///< combinational gates excluding inverters/buffers
  std::size_t num_invs = 0;     ///< inverters (and buffers, which ISCAS89 counts with INVs)
  std::size_t num_outputs = 0;  ///< primary outputs
  AreaUnits estimated_area = 0; ///< Table 9 unit-area model

  friend bool operator==(const CircuitStats&, const CircuitStats&) = default;
};

/// Computes Table 9-style statistics for a netlist.
CircuitStats compute_stats(const Netlist& netlist);

std::ostream& operator<<(std::ostream& os, const CircuitStats& s);

}  // namespace merced
