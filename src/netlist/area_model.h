// The paper's CMOS unit-area model (Section 4, citing Geiger/Allen/Strader).
//
//   INV = 1, 2-input NAND = 2, 2-input NOR = 2, 2-input AND = 3,
//   2-input OR = 3, 2-input XOR = 4, 2:1 MUX = 3, DFF = 10.
//   Gates with higher fan-ins scale +1 unit per additional input.
//
// All BIST-hardware costs in the paper derive from these units:
//   A_CELL          = AND2 + NOR2 + XOR2 + DFF = 3+2+4+10 = 19  (1.9 DFF)
//   A_CELL from DFF = AND2 + NOR2 + XOR2       = 9            (0.9 DFF)
//   A_CELL + MUX    = 19 + 3 + 1(extra mux load) = 23          (2.3 DFF)
#pragma once

#include <cstdint>

#include "netlist/gate.h"

namespace merced {

class Netlist;

/// Area in the paper's abstract CMOS units.
using AreaUnits = std::int64_t;

/// Area of one DFF; the paper reports BIST costs as multiples of this.
inline constexpr AreaUnits kDffArea = 10;

/// Full A_CELL (Fig. 3a): AND2 + NOR2 + XOR2 + DFF = 19 units = 1.9 DFF.
inline constexpr AreaUnits kACellArea = 19;

/// A_CELL realized by converting an existing (retimed) DFF (Fig. 3b): only
/// the three gates are added = 9 units = 0.9 DFF.
inline constexpr AreaUnits kACellFromDffArea = 9;

/// A_CELL plus the 2:1 MUX needed when no functional register can be
/// retimed to the cut (Fig. 3c): 2.3 DFF = 23 units.
inline constexpr AreaUnits kACellWithMuxArea = 23;

/// Area of a single gate with `fanin_count` inputs under the paper's model.
/// Primary inputs cost 0. Throws std::invalid_argument for invalid arity.
AreaUnits gate_area(GateType type, std::size_t fanin_count);

/// Total estimated area of a netlist (Table 9's last column).
AreaUnits circuit_area(const Netlist& netlist);

}  // namespace merced
