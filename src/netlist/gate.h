// Gate-level primitive library for the Merced PPET compiler.
//
// The gate set matches what appears in the ISCAS89 `.bench` sequential
// benchmark format (Brglez/Bryan/Kozminski, ISCAS 1989) plus the handful of
// test-hardware primitives the paper's A_CELL uses (2:1 MUX, XOR).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace merced {

/// Index of a gate inside a Netlist. Dense, assigned in insertion order.
using GateId = std::uint32_t;

/// Sentinel for "no gate".
inline constexpr GateId kNoGate = std::numeric_limits<GateId>::max();

/// Primitive cell types.
///
/// `kInput` models a primary input (a source with no fanin); `kDff` is a
/// positive-edge D flip-flop with exactly one fanin. All other types are
/// combinational. Primary outputs are a *property* of a net (tracked by the
/// Netlist), not a gate type, mirroring the `.bench` format.
enum class GateType : std::uint8_t {
  kInput,
  kDff,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux,     // 2:1 mux: fanin[0]=select, fanin[1]=a (sel=0), fanin[2]=b (sel=1)
  kConst0,
  kConst1,
};

/// Number of distinct GateType values (for array-indexed tables).
inline constexpr std::size_t kGateTypeCount = 13;

/// Canonical (upper-case, `.bench`-style) name of a gate type.
std::string_view to_string(GateType type) noexcept;

/// Parses a `.bench` function name (case-insensitive). Returns true on
/// success and stores the type in `out`.
bool gate_type_from_string(std::string_view name, GateType& out) noexcept;

/// True for gates with state (currently only DFF).
constexpr bool is_sequential(GateType type) noexcept { return type == GateType::kDff; }

/// True for primary inputs.
constexpr bool is_input(GateType type) noexcept { return type == GateType::kInput; }

/// True for gates that compute a boolean function of their fanins.
constexpr bool is_combinational(GateType type) noexcept {
  return !is_sequential(type) && !is_input(type) && type != GateType::kConst0 &&
         type != GateType::kConst1;
}

/// Minimum number of fanins a valid gate of this type may have.
std::size_t min_fanin(GateType type) noexcept;

/// Maximum number of fanins a valid gate of this type may have
/// (SIZE_MAX when unbounded, e.g. AND/OR trees).
std::size_t max_fanin(GateType type) noexcept;

/// Evaluates the combinational function of `type` over boolean fanin values.
/// Precondition: fanin count is valid for the type and the type is
/// combinational or constant. DFF/INPUT are not evaluable here.
bool eval_gate(GateType type, const std::vector<bool>& fanins);

/// Bit-parallel evaluation: each std::uint64_t lane carries 64 independent
/// patterns. Used by the fault simulator for 64x speedup. Takes a span so
/// hot loops can evaluate straight out of flat (CSR) value arrays without
/// materializing a fanin vector.
std::uint64_t eval_gate_u64(GateType type, std::span<const std::uint64_t> fanins);

/// One gate instance. Kept POD-like; the Netlist owns connectivity.
struct Gate {
  GateType type = GateType::kBuf;
  std::string name;            ///< net name this gate drives (unique per netlist)
  std::vector<GateId> fanins;  ///< driver gates, in pin order
};

}  // namespace merced
