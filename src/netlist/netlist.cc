#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace merced {

GateId Netlist::add_gate(GateType type, std::string net_name, std::vector<GateId> fanins) {
  if (net_name.empty()) throw std::invalid_argument("Netlist::add_gate: empty net name");
  if (by_name_.contains(net_name)) {
    throw std::invalid_argument("Netlist::add_gate: duplicate net name '" + net_name + "'");
  }
  for (GateId f : fanins) check_id(f);
  const GateId id = static_cast<GateId>(gates_.size());
  by_name_.emplace(net_name, id);
  gates_.push_back(Gate{type, std::move(net_name), std::move(fanins)});
  if (type == GateType::kInput) inputs_.push_back(id);
  if (type == GateType::kDff) dffs_.push_back(id);
  is_output_.push_back(false);
  invalidate();
  return id;
}

void Netlist::set_fanins(GateId id, std::vector<GateId> fanins) {
  check_id(id);
  for (GateId f : fanins) check_id(f);
  gates_[id].fanins = std::move(fanins);
  invalidate();
}

void Netlist::mark_output(GateId id) {
  check_id(id);
  if (!is_output_[id]) {
    is_output_[id] = true;
    outputs_.push_back(id);
  }
}

GateId Netlist::find(std::string_view net_name) const {
  auto it = by_name_.find(std::string(net_name));
  return it == by_name_.end() ? kNoGate : it->second;
}

bool Netlist::is_output(GateId id) const {
  check_id(id);
  return is_output_[id];
}

std::span<const GateId> Netlist::fanouts(GateId id) const {
  if (!finalized_) throw std::logic_error("Netlist::fanouts: call finalize() first");
  check_id(id);
  return fanouts_[id];
}

std::span<const GateId> Netlist::topo_order() const {
  if (!finalized_) throw std::logic_error("Netlist::topo_order: call finalize() first");
  return topo_;
}

std::span<const GateId> Netlist::combinational_topo_order() const {
  if (!finalized_) {
    throw std::logic_error("Netlist::combinational_topo_order: call finalize() first");
  }
  return comb_topo_;
}

std::size_t Netlist::count_of(GateType type) const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [type](const Gate& g) { return g.type == type; }));
}

void Netlist::check_id(GateId id) const {
  if (id >= gates_.size()) {
    throw std::out_of_range("Netlist: gate id " + std::to_string(id) + " out of range");
  }
}

void Netlist::finalize() {
  // Arity checks.
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    const std::size_t n = g.fanins.size();
    if (n < min_fanin(g.type) || n > max_fanin(g.type)) {
      throw std::runtime_error("Netlist: gate '" + g.name + "' (" +
                               std::string(to_string(g.type)) + ") has invalid fanin count " +
                               std::to_string(n));
    }
  }

  // Fanout lists.
  fanouts_.assign(gates_.size(), {});
  for (GateId id = 0; id < gates_.size(); ++id) {
    for (GateId f : gates_[id].fanins) fanouts_[f].push_back(id);
  }

  // Topological order with Kahn's algorithm over the combinational
  // dependency graph: INPUT and DFF gates are sources (a DFF's value is its
  // previous-cycle state, so its fanin edge is not a combinational
  // dependency). Any leftover gate sits on a combinational cycle.
  topo_.clear();
  topo_.reserve(gates_.size());
  std::vector<std::size_t> pending(gates_.size(), 0);
  std::vector<GateId> ready;
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (is_input(g.type) || is_sequential(g.type) || g.type == GateType::kConst0 ||
        g.type == GateType::kConst1) {
      ready.push_back(id);
    } else {
      pending[id] = g.fanins.size();
      if (pending[id] == 0) ready.push_back(id);  // degenerate, caught by arity above
    }
  }
  while (!ready.empty()) {
    const GateId id = ready.back();
    ready.pop_back();
    topo_.push_back(id);
    for (GateId s : fanouts_[id]) {
      const Gate& sink = gates_[s];
      if (is_sequential(sink.type) || is_input(sink.type)) continue;
      if (pending[s] > 0 && --pending[s] == 0) ready.push_back(s);
    }
  }
  if (topo_.size() != gates_.size()) {
    throw std::runtime_error("Netlist '" + name_ +
                             "': combinational cycle detected (" +
                             std::to_string(gates_.size() - topo_.size()) +
                             " gates unreachable in topological sort)");
  }

  // Evaluation-order cache: the gates a combinational pass computes each
  // cycle (everything except INPUT/DFF sources, whose values are loaded).
  comb_topo_.clear();
  comb_topo_.reserve(topo_.size());
  for (GateId id : topo_) {
    const GateType t = gates_[id].type;
    if (!is_input(t) && !is_sequential(t)) comb_topo_.push_back(id);
  }

  finalized_ = true;
}

}  // namespace merced
