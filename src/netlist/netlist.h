// Netlist: the central gate-level circuit container.
//
// A Netlist is a bag of gates (see gate.h) with named nets. Every gate
// drives exactly one net whose name is the gate's name — the `.bench`
// convention. Fanout lists and a combinational topological order are built
// lazily by finalize() and invalidated by mutation.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/gate.h"

namespace merced {

/// A gate-level synchronous circuit.
///
/// Invariants after finalize():
///  * every fanin GateId is valid;
///  * fanin counts respect min_fanin/max_fanin;
///  * net names are unique;
///  * the combinational part is acyclic (all cycles pass through a DFF).
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // --- construction ---------------------------------------------------

  /// Adds a gate driving a net called `net_name`. Fanins may be empty and
  /// filled in later with set_fanins (to allow forward references while
  /// parsing). Throws std::invalid_argument on duplicate names.
  GateId add_gate(GateType type, std::string net_name, std::vector<GateId> fanins = {});

  /// Replaces the fanins of `id`. Throws on invalid ids.
  void set_fanins(GateId id, std::vector<GateId> fanins);

  /// Marks the net driven by `id` as a primary output. Idempotent.
  void mark_output(GateId id);

  /// Validates invariants and builds fanout lists + topological order.
  /// Throws std::runtime_error with a diagnostic on violation.
  void finalize();

  // --- queries ----------------------------------------------------------

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t size() const noexcept { return gates_.size(); }
  bool empty() const noexcept { return gates_.empty(); }

  const Gate& gate(GateId id) const { return gates_.at(id); }

  /// Gate driving the net named `net_name`, or kNoGate.
  GateId find(std::string_view net_name) const;

  std::span<const GateId> inputs() const noexcept { return inputs_; }
  std::span<const GateId> outputs() const noexcept { return outputs_; }
  std::span<const GateId> dffs() const noexcept { return dffs_; }

  bool is_output(GateId id) const;

  /// Sink gates of the net driven by `id` (valid after finalize()).
  std::span<const GateId> fanouts(GateId id) const;

  /// Topological order of all gates: inputs and DFFs first (as sources),
  /// then combinational gates in dependency order (valid after finalize()).
  std::span<const GateId> topo_order() const;

  /// Topological order restricted to the gates a combinational evaluation
  /// pass actually computes: combinational cells plus CONST0/CONST1 sources
  /// (inputs and DFFs are loaded, not evaluated). Cached by finalize() so
  /// per-cycle simulation loops need not re-filter topo_order().
  std::span<const GateId> combinational_topo_order() const;

  /// True between finalize() and the next mutation.
  bool finalized() const noexcept { return finalized_; }

  /// Number of combinational gates that are inverters (area bookkeeping).
  std::size_t count_of(GateType type) const;

 private:
  void check_id(GateId id) const;
  void invalidate() noexcept { finalized_ = false; }

  std::string name_;
  std::vector<Gate> gates_;
  std::unordered_map<std::string, GateId> by_name_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  std::vector<bool> is_output_;

  // Built by finalize().
  bool finalized_ = false;
  std::vector<std::vector<GateId>> fanouts_;
  std::vector<GateId> topo_;
  std::vector<GateId> comb_topo_;  ///< topo_ minus INPUT/DFF sources
};

}  // namespace merced
