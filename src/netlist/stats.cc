#include "netlist/stats.h"

#include <ostream>

namespace merced {

CircuitStats compute_stats(const Netlist& nl) {
  CircuitStats s;
  s.name = nl.name();
  s.num_inputs = nl.inputs().size();
  s.num_outputs = nl.outputs().size();
  s.num_dffs = nl.dffs().size();
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kNot || g.type == GateType::kBuf) {
      ++s.num_invs;
    } else if (is_combinational(g.type)) {
      ++s.num_gates;
    }
  }
  s.estimated_area = circuit_area(nl);
  return s;
}

std::ostream& operator<<(std::ostream& os, const CircuitStats& s) {
  return os << s.name << ": PI=" << s.num_inputs << " PO=" << s.num_outputs
            << " DFF=" << s.num_dffs << " gates=" << s.num_gates << " INV=" << s.num_invs
            << " area=" << s.estimated_area;
}

}  // namespace merced
