#include "netlist/gate.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <string>

namespace merced {

std::string_view to_string(GateType type) noexcept {
  switch (type) {
    case GateType::kInput: return "INPUT";
    case GateType::kDff: return "DFF";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kMux: return "MUX";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
  }
  return "?";
}

bool gate_type_from_string(std::string_view name, GateType& out) noexcept {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  struct Entry {
    std::string_view key;
    GateType value;
  };
  static constexpr Entry kTable[] = {
      {"INPUT", GateType::kInput}, {"DFF", GateType::kDff},
      {"BUF", GateType::kBuf},     {"BUFF", GateType::kBuf},
      {"NOT", GateType::kNot},     {"INV", GateType::kNot},
      {"AND", GateType::kAnd},     {"NAND", GateType::kNand},
      {"OR", GateType::kOr},       {"NOR", GateType::kNor},
      {"XOR", GateType::kXor},     {"XNOR", GateType::kXnor},
      {"MUX", GateType::kMux},     {"CONST0", GateType::kConst0},
      {"CONST1", GateType::kConst1},
  };
  for (const auto& e : kTable) {
    if (upper == e.key) {
      out = e.value;
      return true;
    }
  }
  return false;
}

std::size_t min_fanin(GateType type) noexcept {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kDff:
    case GateType::kBuf:
    case GateType::kNot:
      return 1;
    case GateType::kMux:
      return 3;
    default:
      return 2;
  }
}

std::size_t max_fanin(GateType type) noexcept {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kDff:
    case GateType::kBuf:
    case GateType::kNot:
      return 1;
    case GateType::kMux:
      return 3;
    case GateType::kXor:
    case GateType::kXnor:
      return std::numeric_limits<std::size_t>::max();
    default:
      return std::numeric_limits<std::size_t>::max();
  }
}

namespace {

template <typename T, typename Container, typename AndOp, typename OrOp, typename XorOp,
          typename NotOp>
T eval_generic(GateType type, const Container& in, AndOp and_op, OrOp or_op,
               XorOp xor_op, NotOp not_op, T all_ones, T all_zeros) {
  switch (type) {
    case GateType::kConst0:
      return all_zeros;
    case GateType::kConst1:
      return all_ones;
    case GateType::kBuf:
      return in[0];
    case GateType::kNot:
      return not_op(in[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      T acc = all_ones;
      for (const T& v : in) acc = and_op(acc, v);
      return type == GateType::kAnd ? acc : not_op(acc);
    }
    case GateType::kOr:
    case GateType::kNor: {
      T acc = all_zeros;
      for (const T& v : in) acc = or_op(acc, v);
      return type == GateType::kOr ? acc : not_op(acc);
    }
    case GateType::kXor:
    case GateType::kXnor: {
      T acc = all_zeros;
      for (const T& v : in) acc = xor_op(acc, v);
      return type == GateType::kXor ? acc : not_op(acc);
    }
    case GateType::kMux: {
      const T sel = in[0];
      // out = (~sel & a) | (sel & b)
      return or_op(and_op(not_op(sel), in[1]), and_op(sel, in[2]));
    }
    case GateType::kInput:
    case GateType::kDff:
      throw std::logic_error("eval_gate: INPUT/DFF have no combinational function");
  }
  throw std::logic_error("eval_gate: unknown gate type");
}

}  // namespace

bool eval_gate(GateType type, const std::vector<bool>& fanins) {
  return eval_generic<bool>(
      type, fanins, [](bool a, bool b) { return a && b; },
      [](bool a, bool b) { return a || b; }, [](bool a, bool b) { return a != b; },
      [](bool a) { return !a; }, true, false);
}

std::uint64_t eval_gate_u64(GateType type, std::span<const std::uint64_t> fanins) {
  return eval_generic<std::uint64_t>(
      type, fanins, [](std::uint64_t a, std::uint64_t b) { return a & b; },
      [](std::uint64_t a, std::uint64_t b) { return a | b; },
      [](std::uint64_t a, std::uint64_t b) { return a ^ b; },
      [](std::uint64_t a) { return ~a; }, ~std::uint64_t{0}, std::uint64_t{0});
}

}  // namespace merced
