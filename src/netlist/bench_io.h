// ISCAS89 `.bench` format reader/writer.
//
// Grammar (as used by the MCNC ISCAS89 distribution):
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NOR(G14, G11)
//   G5  = DFF(G10)
//
// Net names may be referenced before they are defined; the parser resolves
// forward references in a second pass.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace merced {

/// Parses `.bench` text. `name` becomes the netlist name. Throws
/// std::runtime_error with line diagnostics on malformed input.
Netlist parse_bench(std::string_view text, std::string name = "bench");

/// Parses a `.bench` file from disk.
Netlist parse_bench_file(const std::string& path);

/// Serializes a netlist back to `.bench` text (INPUT/OUTPUT decls first,
/// then gates in id order). Round-trips through parse_bench.
std::string write_bench(const Netlist& netlist);

}  // namespace merced
