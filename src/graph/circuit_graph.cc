#include "graph/circuit_graph.h"

#include <stdexcept>

namespace merced {

CircuitGraph::CircuitGraph(const Netlist& netlist) : netlist_(&netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("CircuitGraph: netlist must be finalized");
  }
  const std::size_t n = netlist.size();
  out_.assign(n, {});
  in_.assign(n, {});
  num_nets_ = n;
  for (GateId sink = 0; sink < n; ++sink) {
    for (GateId src : netlist.gate(sink).fanins) {
      const BranchId b = static_cast<BranchId>(branches_.size());
      branches_.push_back(Branch{/*net=*/src, /*source=*/src, /*sink=*/sink});
      out_[src].push_back(b);
      in_[sink].push_back(b);
    }
  }
}

}  // namespace merced
