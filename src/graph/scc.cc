#include "graph/scc.h"

#include <algorithm>
#include <numeric>

namespace merced {

std::uint64_t SccInfo::total_dffs_on_scc() const {
  return std::accumulate(dff_count.begin(), dff_count.end(), std::uint64_t{0});
}

SccInfo find_sccs(const CircuitGraph& g) {
  const std::size_t n = g.num_nodes();
  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;

  SccInfo info;
  info.component_of.assign(n, kNoScc);

  // Iterative Tarjan: frame = (node, position in its out-branch list).
  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto out = g.out_branches(f.node);
      if (f.edge_pos < out.size()) {
        const NodeId w = g.branch(out[f.edge_pos]).sink;
        ++f.edge_pos;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
        continue;
      }
      // f.node finished: pop component if root.
      const NodeId v = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] = std::min(lowlink[frames.back().node], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        std::vector<NodeId> comp;
        NodeId w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp.push_back(w);
        } while (w != v);

        // Keep only non-trivial SCCs: size >= 2 or an explicit self-loop.
        bool nontrivial = comp.size() >= 2;
        if (!nontrivial) {
          for (BranchId b : g.out_branches(comp[0])) {
            if (g.branch(b).sink == comp[0]) {
              nontrivial = true;
              break;
            }
          }
        }
        if (nontrivial) {
          const auto cid = static_cast<std::int32_t>(info.components.size());
          std::uint32_t dffs = 0;
          for (NodeId m : comp) {
            info.component_of[m] = cid;
            if (g.is_register(m)) ++dffs;
          }
          info.components.push_back(std::move(comp));
          info.dff_count.push_back(dffs);
        }
      }
    }
  }
  return info;
}

}  // namespace merced
