// Directed multi-pin circuit graph G(V = R ∪ C, E) — paper §2.1, Fig. 2(b).
//
// Nodes are the netlist's gates (registers R, combinational cells C, and
// primary-input sources). Each gate drives exactly one *net*; a net is a
// single directed hyper-edge from its driver with one *branch* per fanout
// pin (the multi-pin model of Yeh/Cheng/Lin [6]). Flow, congestion distance
// and cut decisions live at net granularity; traversal uses branches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace merced {

using NodeId = GateId;            ///< graph nodes are netlist gates
using NetId = std::uint32_t;      ///< one net per driving gate (same index space)
using BranchId = std::uint32_t;   ///< one branch per (net, sink pin)

inline constexpr NetId kNoNet = static_cast<NetId>(-1);

/// One fanout branch of a net.
struct Branch {
  NetId net = kNoNet;
  NodeId source = kNoGate;
  NodeId sink = kNoGate;
};

/// Immutable graph view over a finalized Netlist.
class CircuitGraph {
 public:
  /// Builds the graph. `netlist` must outlive the graph and be finalized.
  explicit CircuitGraph(const Netlist& netlist);

  const Netlist& netlist() const noexcept { return *netlist_; }

  std::size_t num_nodes() const noexcept { return netlist_->size(); }
  std::size_t num_nets() const noexcept { return num_nets_; }
  std::size_t num_branches() const noexcept { return branches_.size(); }

  const Branch& branch(BranchId b) const { return branches_.at(b); }

  /// All branches, in id order.
  std::span<const Branch> branches() const noexcept { return branches_; }

  /// Branches leaving `node` (the branches of the net it drives).
  std::span<const BranchId> out_branches(NodeId node) const { return out_[node]; }

  /// Branches entering `node` (one per fanin pin).
  std::span<const BranchId> in_branches(NodeId node) const { return in_[node]; }

  /// The net driven by `node`; every node drives exactly one (possibly
  /// sinkless) net, so NetId == NodeId. Kept as a function for clarity.
  NetId net_of(NodeId node) const noexcept { return node; }
  NodeId driver(NetId net) const noexcept { return net; }

  /// Branch ids belonging to `net`.
  std::span<const BranchId> net_branches(NetId net) const { return out_[net]; }

  /// True if the node is a primary-input source (excluded from clusters).
  bool is_pi(NodeId node) const { return is_input(netlist_->gate(node).type); }

  /// True if the node is a register.
  bool is_register(NodeId node) const { return is_sequential(netlist_->gate(node).type); }

 private:
  const Netlist* netlist_;
  std::vector<Branch> branches_;
  std::vector<std::vector<BranchId>> out_;  // per node == per net
  std::vector<std::vector<BranchId>> in_;
  std::size_t num_nets_ = 0;
};

}  // namespace merced
