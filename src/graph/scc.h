// Strongly connected components (Tarjan 1972, iterative) — paper Table 2
// STEP 2. SCC membership bounds how many nets legal retiming may cut inside
// feedback structures (Eq. 2 / Eq. 6).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/circuit_graph.h"

namespace merced {

/// Sentinel: node is not part of any non-trivial SCC ("loop").
inline constexpr std::int32_t kNoScc = -1;

/// SCC decomposition restricted to non-trivial components (size >= 2, or a
/// single node with a self-loop) — the paper's "loops".
struct SccInfo {
  /// Per node: index into `components`, or kNoScc.
  std::vector<std::int32_t> component_of;
  /// Member nodes of each non-trivial component.
  std::vector<std::vector<NodeId>> components;
  /// Number of registers (DFFs) in each component — f(λ) of Eq. (6).
  std::vector<std::uint32_t> dff_count;

  std::size_t count() const noexcept { return components.size(); }

  /// Total DFFs sitting on any non-trivial SCC (Tables 10/11, column 3).
  std::uint64_t total_dffs_on_scc() const;
};

/// Computes the non-trivial SCCs of the circuit graph.
SccInfo find_sccs(const CircuitGraph& graph);

}  // namespace merced
