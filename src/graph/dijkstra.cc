#include "graph/dijkstra.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace merced {

ShortestPathTree dijkstra(const CircuitGraph& g, NodeId source,
                          std::span<const double> net_distance) {
  if (net_distance.size() != g.num_nets()) {
    throw std::invalid_argument("dijkstra: net_distance size mismatch");
  }
  const std::size_t n = g.num_nodes();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  ShortestPathTree t;
  t.source = source;
  t.parent_branch.assign(n, ShortestPathTree::kNoBranch);
  t.distance.assign(n, kInf);
  t.distance[source] = 0.0;

  using Item = std::pair<double, NodeId>;  // (dist, node), min-heap
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  std::vector<bool> settled(n, false);

  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (settled[u]) continue;
    settled[u] = true;
    t.reached.push_back(u);
    for (BranchId b : g.out_branches(u)) {
      const Branch& br = g.branch(b);
      const double w = net_distance[br.net];
      if (w < 0) throw std::invalid_argument("dijkstra: negative net distance");
      const double nd = dist + w;
      if (nd < t.distance[br.sink]) {
        t.distance[br.sink] = nd;
        t.parent_branch[br.sink] = b;
        heap.emplace(nd, br.sink);
      }
    }
  }
  return t;
}

std::vector<NetId> tree_nets(const CircuitGraph& g, const ShortestPathTree& t) {
  std::vector<NetId> nets;
  nets.reserve(t.reached.size());
  for (NodeId v : t.reached) {
    const BranchId b = t.parent_branch[v];
    if (b != ShortestPathTree::kNoBranch) nets.push_back(g.branch(b).net);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

}  // namespace merced
