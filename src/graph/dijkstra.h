// Dijkstra shortest-path trees over net distances — paper Table 3 STEP 3.2.
//
// Edge weight of a branch is the congestion distance d(net) of its net. The
// tree rooted at a source covers all reachable nodes; Saturate_Network then
// injects flow on every net used by the tree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/circuit_graph.h"

namespace merced {

/// Shortest-path tree from one source.
struct ShortestPathTree {
  NodeId source = kNoGate;
  /// Per node: branch used to reach it (kNoBranch if unreached/source).
  std::vector<BranchId> parent_branch;
  /// Per node: shortest distance (infinity if unreached).
  std::vector<double> distance;
  /// Nodes reached, in settle order (source first).
  std::vector<NodeId> reached;

  static constexpr BranchId kNoBranch = static_cast<BranchId>(-1);
};

/// Runs Dijkstra from `source` with per-net weights `net_distance`
/// (size = graph.num_nets(), all values must be >= 0).
ShortestPathTree dijkstra(const CircuitGraph& graph, NodeId source,
                          std::span<const double> net_distance);

/// Distinct nets used by the tree's parent branches.
std::vector<NetId> tree_nets(const CircuitGraph& graph, const ShortestPathTree& tree);

}  // namespace merced
