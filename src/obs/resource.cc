#include "obs/resource.h"

#include <fstream>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace merced::obs {

namespace detail {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_live{0};
std::atomic<std::uint64_t> g_alloc_high_water{0};
std::atomic<bool> g_alloc_hook_installed{false};
}  // namespace detail

std::uint64_t peak_rss_bytes() {
  // Prefer /proc/self/status VmHWM: unambiguous units (kB) and reflects the
  // true high-water mark even after madvise/free returns pages.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kb = 0;
      fields >> kb;
      if (kb > 0) return kb * 1024;
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kB on Linux
#endif
  }
#endif
  return 0;
}

const std::string& cpu_model_string() {
  static const std::string model = [] {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      if (line.rfind("model name", 0) == 0) {
        std::string value = line.substr(colon + 1);
        const auto first = value.find_first_not_of(" \t");
        if (first != std::string::npos) return value.substr(first);
      }
    }
    return std::string("unknown");
  }();
  return model;
}

AllocStats alloc_stats() {
  AllocStats s;
  s.allocations = detail::g_alloc_count.load(std::memory_order_relaxed);
  s.bytes_allocated = detail::g_alloc_bytes.load(std::memory_order_relaxed);
  s.live_bytes = detail::g_alloc_live.load(std::memory_order_relaxed);
  s.high_water_bytes =
      detail::g_alloc_high_water.load(std::memory_order_relaxed);
  return s;
}

void alloc_reset() {
  detail::g_alloc_count.store(0, std::memory_order_relaxed);
  detail::g_alloc_bytes.store(0, std::memory_order_relaxed);
  detail::g_alloc_live.store(0, std::memory_order_relaxed);
  detail::g_alloc_high_water.store(0, std::memory_order_relaxed);
}

}  // namespace merced::obs
