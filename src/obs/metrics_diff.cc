#include "obs/metrics_diff.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/metrics.h"

namespace merced::obs {

namespace {

/// One artifact reduced to comparable measurements plus its identity.
struct Measurement {
  std::string name;
  std::string cls;  ///< "timing", "ratio", or "info"
  double value = 0;
};

struct Profile {
  std::string kind;  ///< "metrics" or "bench"
  std::string cpu;
  std::uint64_t hardware_concurrency = 0;
  std::string config;
  std::vector<Measurement> measurements;
};

double num_or(const JsonValue& obj, const char* key, double fallback = 0) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string str_or(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

std::string extract_metrics_profile(const JsonValue& doc, Profile& p) {
  p.kind = "metrics";
  const JsonValue* run = doc.find("run");
  if (run == nullptr || !run->is_object()) {
    return "metrics artifact has no run object";
  }
  p.cpu = str_or(*run, "cpu");
  p.hardware_concurrency =
      static_cast<std::uint64_t>(num_or(*run, "hardware_concurrency"));
  std::ostringstream config;
  config << "tool=" << str_or(*run, "tool") << " circuit=" << str_or(*run, "circuit")
         << " lk=" << num_or(*run, "lk") << " jobs=" << num_or(*run, "jobs")
         << " starts=" << num_or(*run, "starts") << " simd=" << num_or(*run, "simd");
  p.config = config.str();

  const JsonValue* phases = doc.find("phases");
  if (phases == nullptr || !phases->is_array()) {
    return "metrics artifact has no phases array";
  }
  for (const JsonValue& phase : phases->as_array()) {
    if (!phase.is_object()) continue;
    const std::string name = str_or(phase, "name");
    p.measurements.push_back({"phase " + name + " total_seconds", "timing",
                              num_or(phase, "total_seconds")});
    p.measurements.push_back(
        {"phase " + name + " max_seconds", "timing", num_or(phase, "max_seconds")});
  }
  if (const JsonValue* hists = doc.find("histograms");
      hists != nullptr && hists->is_array()) {
    for (const JsonValue& hist : hists->as_array()) {
      if (!hist.is_object()) continue;
      const std::string name = str_or(hist, "name");
      p.measurements.push_back(
          {"hist " + name + " p50_seconds", "timing", num_or(hist, "p50") / 1e9});
      p.measurements.push_back(
          {"hist " + name + " p99_seconds", "timing", num_or(hist, "p99") / 1e9});
    }
  }
  if (const JsonValue* memory = doc.find("memory");
      memory != nullptr && memory->is_object()) {
    p.measurements.push_back({"memory peak_rss_mib", "info",
                              num_or(*memory, "peak_rss_bytes") / (1024.0 * 1024.0)});
    p.measurements.push_back(
        {"memory alloc_high_water_mib", "info",
         num_or(*memory, "high_water_bytes") / (1024.0 * 1024.0)});
  }
  return "";
}

std::string extract_bench_profile(const JsonValue& doc, Profile& p) {
  p.kind = "bench";
  p.cpu = str_or(doc, "cpu");
  p.hardware_concurrency =
      static_cast<std::uint64_t>(num_or(doc, "hardware_concurrency"));
  const JsonValue* generated = doc.find("generated");
  const JsonValue* iscas = doc.find("iscas");
  if (generated == nullptr || !generated->is_object() || iscas == nullptr ||
      !iscas->is_object()) {
    return "bench artifact is missing generated/iscas sections";
  }
  std::ostringstream config;
  config << "gen_inputs=" << num_or(*generated, "inputs")
         << " gen_gates=" << num_or(*generated, "gates")
         << " circuit=" << str_or(*iscas, "circuit") << " lk=" << num_or(*iscas, "lk");
  p.config = config.str();

  p.measurements.push_back(
      {"generated naive_seconds", "timing", num_or(*generated, "naive_seconds")});
  p.measurements.push_back(
      {"generated kernel_seconds", "timing", num_or(*generated, "kernel_seconds")});
  p.measurements.push_back(
      {"generated speedup", "ratio", num_or(*generated, "speedup")});
  if (const JsonValue* simd = generated->find("simd");
      simd != nullptr && simd->is_object()) {
    if (const JsonValue* runs = simd->find("width_runs");
        runs != nullptr && runs->is_array()) {
      for (const JsonValue& run : runs->as_array()) {
        if (!run.is_object()) continue;
        std::ostringstream width;
        width << "generated simd w" << num_or(run, "width");
        p.measurements.push_back(
            {width.str() + " seconds", "timing", num_or(run, "seconds")});
        p.measurements.push_back({width.str() + " speedup_vs_u64", "ratio",
                                  num_or(run, "speedup_vs_u64")});
      }
    }
  }
  if (const JsonValue* runs = generated->find("jobs_runs");
      runs != nullptr && runs->is_array()) {
    for (const JsonValue& run : runs->as_array()) {
      if (!run.is_object()) continue;
      std::ostringstream name;
      name << "generated jobs=" << num_or(run, "jobs") << " seconds";
      p.measurements.push_back({name.str(), "timing", num_or(run, "seconds")});
    }
  }
  if (const JsonValue* analyzed = generated->find("analyzed");
      analyzed != nullptr && analyzed->is_object()) {
    // Collapsed-sweep gate: the end-to-end speedup is dimensionless and
    // gates downward like every ratio; the once-per-CUT analysis cost is
    // timing; break-even legitimately moves both ways with the plan mix.
    p.measurements.push_back({"generated analyzed sweep_speedup", "ratio",
                              num_or(*analyzed, "sweep_speedup")});
    p.measurements.push_back({"generated analyzed analyze_seconds", "timing",
                              num_or(*analyzed, "analyze_seconds")});
    p.measurements.push_back({"generated analyzed break_even_sweeps", "info",
                              num_or(*analyzed, "break_even_sweeps")});
  }
  p.measurements.push_back(
      {"iscas naive_seconds", "timing", num_or(*iscas, "naive_seconds")});
  p.measurements.push_back(
      {"iscas kernel_seconds", "timing", num_or(*iscas, "kernel_seconds")});
  p.measurements.push_back(
      {"iscas simd_seconds", "timing", num_or(*iscas, "simd_seconds")});
  p.measurements.push_back({"iscas speedup", "ratio", num_or(*iscas, "speedup")});
  p.measurements.push_back({"iscas simd_speedup_vs_u64", "ratio",
                            num_or(*iscas, "simd_speedup_vs_u64")});
  if (const JsonValue* obs = doc.find("obs_overhead");
      obs != nullptr && obs->is_object()) {
    p.measurements.push_back(
        {"obs disabled_seconds", "timing", num_or(*obs, "disabled_seconds")});
    p.measurements.push_back(
        {"obs enabled_seconds", "timing", num_or(*obs, "enabled_seconds")});
    p.measurements.push_back({"obs overhead_ratio", "info", num_or(*obs, "ratio")});
  }
  return "";
}

std::string extract_profile(const JsonValue& doc, Profile& p) {
  if (!doc.is_object()) return "artifact is not a JSON object";
  if (const JsonValue* schema = doc.find("schema");
      schema != nullptr && schema->is_string()) {
    const std::string& s = schema->as_string();
    if (s == kMetricsSchema || s == kMetricsSchemaV1) {
      return extract_metrics_profile(doc, p);
    }
    return "unknown artifact schema \"" + s + "\"";
  }
  if (doc.find("generated") != nullptr && doc.find("iscas") != nullptr) {
    return extract_bench_profile(doc, p);
  }
  return "unrecognized artifact (neither a metrics document nor a "
         "BENCH_simkernel document)";
}

}  // namespace

std::size_t DiffResult::regressions() const {
  std::size_t n = 0;
  for (const DiffEntry& e : entries) {
    if (e.direction == "slower" || e.direction == "lower") ++n;
  }
  return n;
}

std::size_t DiffResult::improvements() const {
  std::size_t n = 0;
  for (const DiffEntry& e : entries) {
    if (e.direction == "faster") ++n;
  }
  return n;
}

DiffResult diff_artifacts(const JsonValue& baseline, const JsonValue& current,
                          const DiffThresholds& thresholds) {
  DiffResult result;
  result.thresholds = thresholds;

  Profile base, cur;
  if (std::string err = extract_profile(baseline, base); !err.empty()) {
    result.error = "baseline: " + err;
    return result;
  }
  if (std::string err = extract_profile(current, cur); !err.empty()) {
    result.error = "current: " + err;
    return result;
  }
  if (base.kind != cur.kind) {
    result.error = "artifact kind mismatch: baseline is a " + base.kind +
                   " artifact, current is a " + cur.kind + " artifact";
    return result;
  }
  if (base.config != cur.config) {
    result.error = "config mismatch: baseline ran {" + base.config +
                   "}, current ran {" + cur.config +
                   "} — refusing an apples-to-oranges comparison";
    return result;
  }
  const bool host_mismatch =
      (!base.cpu.empty() && !cur.cpu.empty() && base.cpu != cur.cpu) ||
      (base.hardware_concurrency != 0 && cur.hardware_concurrency != 0 &&
       base.hardware_concurrency != cur.hardware_concurrency);
  if (host_mismatch && !thresholds.ignore_host) {
    std::ostringstream err;
    err << "host mismatch: baseline ran on \"" << base.cpu << "\" ("
        << base.hardware_concurrency << " threads), current on \"" << cur.cpu
        << "\" (" << cur.hardware_concurrency
        << " threads) — timing is not comparable across hosts; pass "
           "--ignore-host to compare ratios only";
    result.error = err.str();
    return result;
  }
  if (host_mismatch) {
    result.notes.push_back(
        "host mismatch ignored: timing metrics demoted to informational, "
        "only dimensionless ratios gate");
  }

  for (const Measurement& bm : base.measurements) {
    const auto it = std::find_if(
        cur.measurements.begin(), cur.measurements.end(),
        [&](const Measurement& m) { return m.name == bm.name; });
    if (it == cur.measurements.end()) {
      result.notes.push_back("metric \"" + bm.name + "\" only in baseline");
      continue;
    }
    DiffEntry e;
    e.metric = bm.name;
    e.cls = bm.cls;
    e.baseline = bm.value;
    e.current = it->value;
    e.delta_rel = bm.value != 0 ? (it->value - bm.value) / bm.value : 0;
    if (bm.cls == "timing" && !host_mismatch) {
      e.gated = true;
      const double threshold = thresholds.rel * bm.value + thresholds.abs_seconds;
      if (it->value - bm.value > threshold) {
        e.direction = "slower";
      } else if (bm.value - it->value > threshold) {
        e.direction = "faster";
      }
    } else if (bm.cls == "ratio") {
      e.gated = true;
      const double threshold = thresholds.rel * bm.value + thresholds.abs_ratio;
      if (bm.value - it->value > threshold) e.direction = "lower";
    }
    result.entries.push_back(std::move(e));
  }
  for (const Measurement& cm : cur.measurements) {
    const bool paired = std::any_of(
        base.measurements.begin(), base.measurements.end(),
        [&](const Measurement& m) { return m.name == cm.name; });
    if (!paired) {
      result.notes.push_back("metric \"" + cm.name + "\" only in current");
    }
  }
  return result;
}

void write_diff_table(std::ostream& os, const DiffResult& result) {
  if (!result.error.empty()) {
    os << "error: " << result.error << "\n";
    return;
  }
  os << std::left << std::setw(44) << "metric" << std::setw(8) << "class"
     << std::right << std::setw(12) << "baseline" << std::setw(12) << "current"
     << std::setw(10) << "delta" << "  verdict\n";
  for (const DiffEntry& e : result.entries) {
    std::ostringstream delta;
    delta << std::showpos << std::fixed << std::setprecision(1)
          << e.delta_rel * 100.0 << "%";
    os << std::left << std::setw(44) << e.metric << std::setw(8) << e.cls
       << std::right << std::setw(12) << std::setprecision(6) << std::defaultfloat
       << e.baseline << std::setw(12) << e.current << std::setw(10) << delta.str()
       << "  " << (e.gated ? e.direction : "-") << "\n";
  }
  for (const std::string& note : result.notes) os << "note: " << note << "\n";
  const std::size_t reg = result.regressions();
  const std::size_t imp = result.improvements();
  if (result.ok()) {
    os << "verdict: ok (" << result.entries.size() << " metrics within thresholds)\n";
    return;
  }
  os << "verdict: REGRESSION —";
  for (const DiffEntry& e : result.entries) {
    if (e.direction == "ok") continue;
    os << " [" << e.metric << " " << e.direction << " "
       << std::showpos << std::fixed << std::setprecision(1) << e.delta_rel * 100.0
       << std::defaultfloat << std::noshowpos << "%]";
  }
  os << "\n";
  if (reg == 0 && imp > 0) {
    os << "every gated drift is an improvement — if intentional, refresh the "
          "committed baseline (see EXPERIMENTS.md)\n";
  }
}

void write_diff_json(std::ostream& os, const DiffResult& result) {
  const auto escape = [&](const std::string& s) {
    for (char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default: os << c;
      }
    }
  };
  os << "{\n  \"schema\": \"" << kDiffSchema << "\",\n  \"baseline\": \"";
  escape(result.baseline_label);
  os << "\",\n  \"current\": \"";
  escape(result.current_label);
  os << "\",\n  \"thresholds\": {\"rel\": " << result.thresholds.rel
     << ", \"abs_seconds\": " << result.thresholds.abs_seconds
     << ", \"abs_ratio\": " << result.thresholds.abs_ratio << ", \"ignore_host\": "
     << (result.thresholds.ignore_host ? "true" : "false")
     << "},\n  \"verdict\": \"" << (result.ok() ? "ok" : "regression")
     << "\",\n  \"summary\": {\"entries\": " << result.entries.size()
     << ", \"gated\": "
     << std::count_if(result.entries.begin(), result.entries.end(),
                      [](const DiffEntry& e) { return e.gated; })
     << ", \"regressions\": " << result.regressions()
     << ", \"improvements\": " << result.improvements()
     << "},\n  \"entries\": [";
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    const DiffEntry& e = result.entries[i];
    if (i) os << ",";
    os << "\n    {\"metric\": \"";
    escape(e.metric);
    os << "\", \"class\": \"" << e.cls << "\", \"baseline\": " << e.baseline
       << ", \"current\": " << e.current << ", \"delta_rel\": " << e.delta_rel
       << ", \"gated\": " << (e.gated ? "true" : "false") << ", \"direction\": \""
       << e.direction << "\"}";
  }
  os << "\n  ],\n  \"notes\": [";
  for (std::size_t i = 0; i < result.notes.size(); ++i) {
    if (i) os << ", ";
    os << "\"";
    escape(result.notes[i]);
    os << "\"";
  }
  os << "]\n}\n";
}

namespace {

bool diff_is_uint(const JsonValue& v) {
  return v.is_number() && v.as_number() >= 0 &&
         v.as_number() ==
             static_cast<double>(static_cast<std::uint64_t>(v.as_number()));
}

std::string diff_check_member(const JsonValue& obj, const char* key,
                              JsonValue::Kind kind, const char* where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    return std::string(where) + ": missing member \"" + key + "\"";
  }
  if (v->kind() != kind) {
    return std::string(where) + ": member \"" + key + "\" has wrong type";
  }
  return "";
}

}  // namespace

std::string validate_diff_json(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not an object";
  if (std::string err =
          diff_check_member(doc, "schema", JsonValue::Kind::kString, "root");
      !err.empty()) {
    return err;
  }
  if (doc.find("schema")->as_string() != kDiffSchema) {
    return "unknown schema \"" + doc.find("schema")->as_string() + "\"";
  }
  for (const char* key : {"baseline", "current", "verdict"}) {
    if (std::string err =
            diff_check_member(doc, key, JsonValue::Kind::kString, "root");
        !err.empty()) {
      return err;
    }
  }
  const std::string& verdict = doc.find("verdict")->as_string();
  if (verdict != "ok" && verdict != "regression") {
    return "verdict: unexpected value \"" + verdict + "\"";
  }
  if (std::string err =
          diff_check_member(doc, "thresholds", JsonValue::Kind::kObject, "root");
      !err.empty()) {
    return err;
  }
  const JsonValue& thresholds = *doc.find("thresholds");
  for (const char* key : {"rel", "abs_seconds", "abs_ratio"}) {
    if (std::string err =
            diff_check_member(thresholds, key, JsonValue::Kind::kNumber, "thresholds");
        !err.empty()) {
      return err;
    }
    if (thresholds.find(key)->as_number() < 0) {
      return std::string("thresholds: member \"") + key + "\" is negative";
    }
  }
  if (std::string err = diff_check_member(thresholds, "ignore_host",
                                          JsonValue::Kind::kBool, "thresholds");
      !err.empty()) {
    return err;
  }
  if (std::string err =
          diff_check_member(doc, "entries", JsonValue::Kind::kArray, "root");
      !err.empty()) {
    return err;
  }
  std::size_t gated = 0, regressions = 0, improvements = 0;
  for (const JsonValue& entry : doc.find("entries")->as_array()) {
    if (!entry.is_object()) return "entries: entry is not an object";
    for (const char* key : {"metric", "class", "direction"}) {
      if (std::string err =
              diff_check_member(entry, key, JsonValue::Kind::kString, "entry");
          !err.empty()) {
        return err;
      }
    }
    for (const char* key : {"baseline", "current", "delta_rel"}) {
      if (std::string err =
              diff_check_member(entry, key, JsonValue::Kind::kNumber, "entry");
          !err.empty()) {
        return err;
      }
    }
    if (std::string err =
            diff_check_member(entry, "gated", JsonValue::Kind::kBool, "entry");
        !err.empty()) {
      return err;
    }
    const std::string& cls = entry.find("class")->as_string();
    if (cls != "timing" && cls != "ratio" && cls != "info") {
      return "entry: unexpected class \"" + cls + "\"";
    }
    const std::string& direction = entry.find("direction")->as_string();
    if (direction != "ok" && direction != "slower" && direction != "faster" &&
        direction != "lower") {
      return "entry: unexpected direction \"" + direction + "\"";
    }
    const bool is_gated = entry.find("gated")->as_bool();
    if (!is_gated && direction != "ok") {
      return "entry \"" + entry.find("metric")->as_string() +
             "\": ungated entry carries a verdict";
    }
    if (is_gated) ++gated;
    if (direction == "slower" || direction == "lower") ++regressions;
    if (direction == "faster") ++improvements;
  }
  if (std::string err =
          diff_check_member(doc, "summary", JsonValue::Kind::kObject, "root");
      !err.empty()) {
    return err;
  }
  const JsonValue& summary = *doc.find("summary");
  for (const char* key : {"entries", "gated", "regressions", "improvements"}) {
    if (std::string err =
            diff_check_member(summary, key, JsonValue::Kind::kNumber, "summary");
        !err.empty()) {
      return err;
    }
    if (!diff_is_uint(*summary.find(key))) {
      return std::string("summary: member \"") + key +
             "\" is not a non-negative integer";
    }
  }
  const auto summary_count = [&](const char* key) {
    return static_cast<std::size_t>(summary.find(key)->as_number());
  };
  if (summary_count("entries") != doc.find("entries")->as_array().size()) {
    return "summary: entry count does not match entries array";
  }
  if (summary_count("gated") != gated) {
    return "summary: gated count does not match entries";
  }
  if (summary_count("regressions") != regressions) {
    return "summary: regression count does not match entries";
  }
  if (summary_count("improvements") != improvements) {
    return "summary: improvement count does not match entries";
  }
  const bool should_be_ok = regressions == 0 && improvements == 0;
  if (should_be_ok != (verdict == "ok")) {
    return "verdict: inconsistent with entry directions";
  }
  if (std::string err =
          diff_check_member(doc, "notes", JsonValue::Kind::kArray, "root");
      !err.empty()) {
    return err;
  }
  for (const JsonValue& note : doc.find("notes")->as_array()) {
    if (!note.is_string()) return "notes: entry is not a string";
  }
  return "";
}

}  // namespace merced::obs
