#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <thread>

#include "obs/resource.h"

namespace merced::obs {

MetricsRegistry MetricsRegistry::capture(RunInfo run) {
  MetricsRegistry m;
  m.run_ = std::move(run);
  if (m.run_.cpu.empty()) m.run_.cpu = cpu_model_string();
  if (m.run_.hardware_concurrency == 0) {
    m.run_.hardware_concurrency = std::thread::hardware_concurrency();
  }
  m.counters_ = counter_values();
  m.histograms_ = histogram_snapshots();

  const AllocStats alloc = alloc_stats();
  m.memory_.peak_rss_bytes = peak_rss_bytes();
  m.memory_.alloc_hook = alloc_hook_installed();
  m.memory_.allocations = alloc.allocations;
  m.memory_.bytes_allocated = alloc.bytes_allocated;
  m.memory_.high_water_bytes = alloc.high_water_bytes;

  std::map<std::string, PhaseStat> by_name;  // ordered: output sorted by name
  for (const SpanEvent& e : span_events()) {
    PhaseStat& p = by_name[e.name];
    p.name = e.name;
    ++p.count;
    const double seconds = static_cast<double>(e.dur_ns) / 1e9;
    p.total_seconds += seconds;
    p.max_seconds = std::max(p.max_seconds, seconds);
  }
  m.phases_.reserve(by_name.size());
  for (auto& [name, stat] : by_name) m.phases_.push_back(std::move(stat));
  return m;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n  \"run\": {\"tool\": \"";
  json_escape(os, run_.tool);
  os << "\", \"circuit\": \"";
  json_escape(os, run_.circuit);
  os << "\", \"lk\": " << run_.lk << ", \"jobs\": " << run_.jobs
     << ", \"starts\": " << run_.starts << ", \"simd\": " << run_.simd
     << ", \"cpu\": \"";
  json_escape(os, run_.cpu);
  os << "\", \"hardware_concurrency\": " << run_.hardware_concurrency
     << "},\n  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i) os << ",";
    os << "\n    \"" << counter_name(static_cast<Counter>(i)) << "\": " << counters_[i];
  }
  os << "\n  },\n  \"phases\": [";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i) os << ",";
    os << "\n    {\"name\": \"";
    json_escape(os, phases_[i].name);
    os << "\", \"count\": " << phases_[i].count
       << ", \"total_seconds\": " << phases_[i].total_seconds
       << ", \"max_seconds\": " << phases_[i].max_seconds << "}";
  }
  os << "\n  ],\n  \"histograms\": [";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const HistogramSnapshot& h = histograms_[i];
    if (i) os << ",";
    os << "\n    {\"name\": \"";
    json_escape(os, h.name);
    os << "\", \"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"min\": " << h.min << ", \"max\": " << h.max
       << ", \"p50\": " << hist_quantile(h, 0.50)
       << ", \"p90\": " << hist_quantile(h, 0.90)
       << ", \"p99\": " << hist_quantile(h, 0.99) << ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << "[" << b << ", " << h.buckets[b] << "]";
    }
    os << "]}";
  }
  const auto c = [&](Counter counter) {
    return counters_[static_cast<std::size_t>(counter)];
  };
  os << "\n  ],\n  \"scheduler\": {\"tasks_run\": " << c(Counter::kSchedTasksRun)
     << ", \"tasks_stolen\": " << c(Counter::kSchedTasksStolen)
     << ", \"steal_attempts\": " << c(Counter::kSchedStealAttempts)
     << ", \"steal_failures\": " << c(Counter::kSchedStealFailures)
     << ", \"pool_parallel_fors\": " << c(Counter::kPoolParallelFors)
     << ", \"pool_tasks_run\": " << c(Counter::kPoolTasksRun)
     << ", \"pool_busy_seconds\": "
     << static_cast<double>(c(Counter::kPoolBusyNs)) / 1e9
     << ", \"pool_idle_seconds\": "
     << static_cast<double>(c(Counter::kPoolIdleNs)) / 1e9
     << "},\n  \"memory\": {\"peak_rss_bytes\": " << memory_.peak_rss_bytes
     << ", \"alloc_hook\": " << (memory_.alloc_hook ? "true" : "false")
     << ", \"allocations\": " << memory_.allocations
     << ", \"bytes_allocated\": " << memory_.bytes_allocated
     << ", \"high_water_bytes\": " << memory_.high_water_bytes << "}\n}\n";
}

namespace {

bool is_uint(const JsonValue& v) {
  return v.is_number() && v.as_number() >= 0 &&
         v.as_number() == static_cast<double>(static_cast<std::uint64_t>(v.as_number()));
}

std::string check_member(const JsonValue& obj, const char* key, JsonValue::Kind kind,
                         const char* where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    return std::string(where) + ": missing member \"" + key + "\"";
  }
  if (v->kind() != kind) {
    return std::string(where) + ": member \"" + key + "\" has wrong type";
  }
  return "";
}

}  // namespace

std::string validate_metrics_json(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not an object";
  if (std::string err = check_member(doc, "schema", JsonValue::Kind::kString, "root");
      !err.empty()) {
    return err;
  }
  const std::string& schema = doc.find("schema")->as_string();
  const bool v2 = schema == kMetricsSchema;
  if (!v2 && schema != kMetricsSchemaV1) {
    return "unknown schema \"" + schema + "\"";
  }
  if (std::string err = check_member(doc, "run", JsonValue::Kind::kObject, "root");
      !err.empty()) {
    return err;
  }
  const JsonValue& run = *doc.find("run");
  for (const char* key : {"tool", "circuit"}) {
    if (std::string err = check_member(run, key, JsonValue::Kind::kString, "run");
        !err.empty()) {
      return err;
    }
  }
  for (const char* key : {"lk", "jobs", "starts", "simd"}) {
    if (std::string err = check_member(run, key, JsonValue::Kind::kNumber, "run");
        !err.empty()) {
      return err;
    }
    if (!is_uint(*run.find(key))) {
      return std::string("run: member \"") + key + "\" is not a non-negative integer";
    }
  }
  if (v2) {
    if (std::string err = check_member(run, "cpu", JsonValue::Kind::kString, "run");
        !err.empty()) {
      return err;
    }
    if (std::string err = check_member(run, "hardware_concurrency",
                                       JsonValue::Kind::kNumber, "run");
        !err.empty()) {
      return err;
    }
    if (!is_uint(*run.find("hardware_concurrency"))) {
      return "run: member \"hardware_concurrency\" is not a non-negative integer";
    }
  }

  if (std::string err = check_member(doc, "counters", JsonValue::Kind::kObject, "root");
      !err.empty()) {
    return err;
  }
  const JsonValue& counters = *doc.find("counters");
  // Every present counter must be a known name with an integer value; a v1
  // artifact written before a counter existed may omit it, but v2 requires
  // the full current set.
  for (const auto& [name, value] : counters.as_object()) {
    bool known = false;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      if (name == counter_name(static_cast<Counter>(i))) {
        known = true;
        break;
      }
    }
    if (!known) return "counters: unknown counter \"" + name + "\"";
    if (!is_uint(value)) {
      return "counters: \"" + name + "\" is not a non-negative integer";
    }
  }
  if (v2) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      const char* name = counter_name(static_cast<Counter>(i));
      if (counters.find(name) == nullptr) {
        return std::string("counters: missing \"") + name + "\"";
      }
    }
  }

  if (std::string err = check_member(doc, "phases", JsonValue::Kind::kArray, "root");
      !err.empty()) {
    return err;
  }
  std::string prev_name;
  for (const JsonValue& phase : doc.find("phases")->as_array()) {
    if (!phase.is_object()) return "phases: entry is not an object";
    if (std::string err = check_member(phase, "name", JsonValue::Kind::kString, "phase");
        !err.empty()) {
      return err;
    }
    for (const char* key : {"count", "total_seconds", "max_seconds"}) {
      if (std::string err = check_member(phase, key, JsonValue::Kind::kNumber, "phase");
          !err.empty()) {
        return err;
      }
      if (phase.find(key)->as_number() < 0) {
        return std::string("phase: member \"") + key + "\" is negative";
      }
    }
    const std::string& name = phase.find("name")->as_string();
    if (name <= prev_name && !prev_name.empty()) {
      return "phases: not sorted by name (\"" + name + "\" after \"" + prev_name + "\")";
    }
    prev_name = name;
  }
  if (!v2) return "";

  if (std::string err =
          check_member(doc, "histograms", JsonValue::Kind::kArray, "root");
      !err.empty()) {
    return err;
  }
  prev_name.clear();
  for (const JsonValue& hist : doc.find("histograms")->as_array()) {
    if (!hist.is_object()) return "histograms: entry is not an object";
    if (std::string err =
            check_member(hist, "name", JsonValue::Kind::kString, "histogram");
        !err.empty()) {
      return err;
    }
    for (const char* key : {"count", "sum", "min", "max", "p50", "p90", "p99"}) {
      if (std::string err =
              check_member(hist, key, JsonValue::Kind::kNumber, "histogram");
          !err.empty()) {
        return err;
      }
      if (!is_uint(*hist.find(key))) {
        return std::string("histogram: member \"") + key +
               "\" is not a non-negative integer";
      }
    }
    const std::string& name = hist.find("name")->as_string();
    const auto u = [&](const char* key) {
      return static_cast<std::uint64_t>(hist.find(key)->as_number());
    };
    if (u("p50") > u("p90") || u("p90") > u("p99") || u("p99") > u("max")) {
      return "histogram \"" + name + "\": quantiles not monotone";
    }
    if (u("count") > 0 && u("min") > u("max")) {
      return "histogram \"" + name + "\": min exceeds max";
    }
    if (std::string err =
            check_member(hist, "buckets", JsonValue::Kind::kArray, "histogram");
        !err.empty()) {
      return err;
    }
    std::uint64_t bucket_total = 0;
    double prev_index = -1;
    for (const JsonValue& bucket : hist.find("buckets")->as_array()) {
      if (!bucket.is_array() || bucket.as_array().size() != 2 ||
          !is_uint(bucket.as_array()[0]) || !is_uint(bucket.as_array()[1])) {
        return "histogram \"" + name + "\": bucket is not an [index, count] pair";
      }
      const double index = bucket.as_array()[0].as_number();
      if (index >= static_cast<double>(kHistBuckets)) {
        return "histogram \"" + name + "\": bucket index out of range";
      }
      if (index <= prev_index) {
        return "histogram \"" + name + "\": bucket indices not increasing";
      }
      prev_index = index;
      bucket_total += static_cast<std::uint64_t>(bucket.as_array()[1].as_number());
    }
    if (bucket_total != u("count")) {
      return "histogram \"" + name + "\": bucket counts do not sum to count";
    }
    if (name <= prev_name && !prev_name.empty()) {
      return "histograms: not sorted by name (\"" + name + "\" after \"" +
             prev_name + "\")";
    }
    prev_name = name;
  }

  if (std::string err =
          check_member(doc, "scheduler", JsonValue::Kind::kObject, "root");
      !err.empty()) {
    return err;
  }
  const JsonValue& sched = *doc.find("scheduler");
  for (const char* key : {"tasks_run", "tasks_stolen", "steal_attempts",
                          "steal_failures", "pool_parallel_fors", "pool_tasks_run"}) {
    if (std::string err =
            check_member(sched, key, JsonValue::Kind::kNumber, "scheduler");
        !err.empty()) {
      return err;
    }
    if (!is_uint(*sched.find(key))) {
      return std::string("scheduler: member \"") + key +
             "\" is not a non-negative integer";
    }
  }
  for (const char* key : {"pool_busy_seconds", "pool_idle_seconds"}) {
    if (std::string err =
            check_member(sched, key, JsonValue::Kind::kNumber, "scheduler");
        !err.empty()) {
      return err;
    }
    if (sched.find(key)->as_number() < 0) {
      return std::string("scheduler: member \"") + key + "\" is negative";
    }
  }

  if (std::string err = check_member(doc, "memory", JsonValue::Kind::kObject, "root");
      !err.empty()) {
    return err;
  }
  const JsonValue& memory = *doc.find("memory");
  if (std::string err =
          check_member(memory, "alloc_hook", JsonValue::Kind::kBool, "memory");
      !err.empty()) {
    return err;
  }
  for (const char* key : {"peak_rss_bytes", "allocations", "bytes_allocated",
                          "high_water_bytes"}) {
    if (std::string err =
            check_member(memory, key, JsonValue::Kind::kNumber, "memory");
        !err.empty()) {
      return err;
    }
    if (!is_uint(*memory.find(key))) {
      return std::string("memory: member \"") + key +
             "\" is not a non-negative integer";
    }
  }
  return "";
}

std::string validate_trace_json(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not an object";
  if (std::string err =
          check_member(doc, "traceEvents", JsonValue::Kind::kArray, "root");
      !err.empty()) {
    return err;
  }
  for (const JsonValue& event : doc.find("traceEvents")->as_array()) {
    if (!event.is_object()) return "traceEvents: entry is not an object";
    if (std::string err = check_member(event, "ph", JsonValue::Kind::kString, "event");
        !err.empty()) {
      return err;
    }
    const std::string& ph = event.find("ph")->as_string();
    if (std::string err = check_member(event, "name", JsonValue::Kind::kString, "event");
        !err.empty()) {
      return err;
    }
    for (const char* key : {"pid", "tid"}) {
      if (std::string err = check_member(event, key, JsonValue::Kind::kNumber, "event");
          !err.empty()) {
        return err;
      }
    }
    if (ph == "X") {
      for (const char* key : {"ts", "dur"}) {
        if (std::string err =
                check_member(event, key, JsonValue::Kind::kNumber, "event");
            !err.empty()) {
          return err;
        }
        if (event.find(key)->as_number() < 0) {
          return std::string("event: \"") + key + "\" is negative";
        }
      }
    } else if (ph != "M") {
      return "event: unexpected phase \"" + ph + "\" (only X and M are emitted)";
    }
  }
  return "";
}

}  // namespace merced::obs
