#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <ostream>

namespace merced::obs {

MetricsRegistry MetricsRegistry::capture(RunInfo run) {
  MetricsRegistry m;
  m.run_ = std::move(run);
  m.counters_ = counter_values();

  std::map<std::string, PhaseStat> by_name;  // ordered: output sorted by name
  for (const SpanEvent& e : span_events()) {
    PhaseStat& p = by_name[e.name];
    p.name = e.name;
    ++p.count;
    const double seconds = static_cast<double>(e.dur_ns) / 1e9;
    p.total_seconds += seconds;
    p.max_seconds = std::max(p.max_seconds, seconds);
  }
  m.phases_.reserve(by_name.size());
  for (auto& [name, stat] : by_name) m.phases_.push_back(std::move(stat));
  return m;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n  \"run\": {\"tool\": \"";
  json_escape(os, run_.tool);
  os << "\", \"circuit\": \"";
  json_escape(os, run_.circuit);
  os << "\", \"lk\": " << run_.lk << ", \"jobs\": " << run_.jobs
     << ", \"starts\": " << run_.starts << ", \"simd\": " << run_.simd
     << "},\n  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i) os << ",";
    os << "\n    \"" << counter_name(static_cast<Counter>(i)) << "\": " << counters_[i];
  }
  os << "\n  },\n  \"phases\": [";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i) os << ",";
    os << "\n    {\"name\": \"";
    json_escape(os, phases_[i].name);
    os << "\", \"count\": " << phases_[i].count
       << ", \"total_seconds\": " << phases_[i].total_seconds
       << ", \"max_seconds\": " << phases_[i].max_seconds << "}";
  }
  os << "\n  ]\n}\n";
}

namespace {

bool is_uint(const JsonValue& v) {
  return v.is_number() && v.as_number() >= 0 &&
         v.as_number() == static_cast<double>(static_cast<std::uint64_t>(v.as_number()));
}

std::string check_member(const JsonValue& obj, const char* key, JsonValue::Kind kind,
                         const char* where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    return std::string(where) + ": missing member \"" + key + "\"";
  }
  if (v->kind() != kind) {
    return std::string(where) + ": member \"" + key + "\" has wrong type";
  }
  return "";
}

}  // namespace

std::string validate_metrics_json(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not an object";
  if (std::string err = check_member(doc, "schema", JsonValue::Kind::kString, "root");
      !err.empty()) {
    return err;
  }
  if (doc.find("schema")->as_string() != kMetricsSchema) {
    return "unknown schema \"" + doc.find("schema")->as_string() + "\"";
  }
  if (std::string err = check_member(doc, "run", JsonValue::Kind::kObject, "root");
      !err.empty()) {
    return err;
  }
  const JsonValue& run = *doc.find("run");
  for (const char* key : {"tool", "circuit"}) {
    if (std::string err = check_member(run, key, JsonValue::Kind::kString, "run");
        !err.empty()) {
      return err;
    }
  }
  for (const char* key : {"lk", "jobs", "starts", "simd"}) {
    if (std::string err = check_member(run, key, JsonValue::Kind::kNumber, "run");
        !err.empty()) {
      return err;
    }
    if (!is_uint(*run.find(key))) {
      return std::string("run: member \"") + key + "\" is not a non-negative integer";
    }
  }

  if (std::string err = check_member(doc, "counters", JsonValue::Kind::kObject, "root");
      !err.empty()) {
    return err;
  }
  const JsonValue& counters = *doc.find("counters");
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const char* name = counter_name(static_cast<Counter>(i));
    const JsonValue* v = counters.find(name);
    if (v == nullptr) return std::string("counters: missing \"") + name + "\"";
    if (!is_uint(*v)) {
      return std::string("counters: \"") + name + "\" is not a non-negative integer";
    }
  }
  if (counters.as_object().size() != kNumCounters) {
    return "counters: unexpected extra member";
  }

  if (std::string err = check_member(doc, "phases", JsonValue::Kind::kArray, "root");
      !err.empty()) {
    return err;
  }
  std::string prev_name;
  for (const JsonValue& phase : doc.find("phases")->as_array()) {
    if (!phase.is_object()) return "phases: entry is not an object";
    if (std::string err = check_member(phase, "name", JsonValue::Kind::kString, "phase");
        !err.empty()) {
      return err;
    }
    for (const char* key : {"count", "total_seconds", "max_seconds"}) {
      if (std::string err = check_member(phase, key, JsonValue::Kind::kNumber, "phase");
          !err.empty()) {
        return err;
      }
      if (phase.find(key)->as_number() < 0) {
        return std::string("phase: member \"") + key + "\" is negative";
      }
    }
    const std::string& name = phase.find("name")->as_string();
    if (name <= prev_name && !prev_name.empty()) {
      return "phases: not sorted by name (\"" + name + "\" after \"" + prev_name + "\")";
    }
    prev_name = name;
  }
  return "";
}

std::string validate_trace_json(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not an object";
  if (std::string err =
          check_member(doc, "traceEvents", JsonValue::Kind::kArray, "root");
      !err.empty()) {
    return err;
  }
  for (const JsonValue& event : doc.find("traceEvents")->as_array()) {
    if (!event.is_object()) return "traceEvents: entry is not an object";
    if (std::string err = check_member(event, "ph", JsonValue::Kind::kString, "event");
        !err.empty()) {
      return err;
    }
    const std::string& ph = event.find("ph")->as_string();
    if (std::string err = check_member(event, "name", JsonValue::Kind::kString, "event");
        !err.empty()) {
      return err;
    }
    for (const char* key : {"pid", "tid"}) {
      if (std::string err = check_member(event, key, JsonValue::Kind::kNumber, "event");
          !err.empty()) {
        return err;
      }
    }
    if (ph == "X") {
      for (const char* key : {"ts", "dur"}) {
        if (std::string err =
                check_member(event, key, JsonValue::Kind::kNumber, "event");
            !err.empty()) {
          return err;
        }
        if (event.find(key)->as_number() < 0) {
          return std::string("event: \"") + key + "\" is negative";
        }
      }
    } else if (ph != "M") {
      return "event: unexpected phase \"" + ph + "\" (only X and M are emitted)";
    }
  }
  return "";
}

}  // namespace merced::obs
