// MetricsRegistry — one run's counters and phase timings as a versioned
// JSON artifact.
//
// The trace (obs.h) answers "where did this run spend its time"; the
// metrics artifact answers "did this commit do more work than the last
// one". It serializes the aggregated counters plus per-phase wall-time
// statistics (derived from the recorded spans, grouped by span name) into
// a schema-versioned document comparable across commits exactly like the
// BENCH_*.json artifacts:
//
//   { "schema": "merced-metrics-v2",
//     "run": {"tool": "...", "circuit": "...", "lk": N, "jobs": N,
//             "starts": N, "simd": N,
//             "cpu": "...", "hardware_concurrency": N},   // host identity
//     "counters": {"flow.iterations": 123, ...},          // every Counter
//     "phases": [{"name": "...", "count": N,
//                 "total_seconds": s, "max_seconds": s}, ...],    // by name
//     "histograms": [{"name": "...", "count": N, "sum": N,
//                     "min": N, "max": N,                 // exact, ns
//                     "p50": N, "p90": N, "p99": N,       // bucket-rounded
//                     "buckets": [[index, count], ...]}, ...],    // sparse
//     "scheduler": {"tasks_run": N, "tasks_stolen": N,
//                   "steal_attempts": N, "steal_failures": N,
//                   "pool_parallel_fors": N, "pool_tasks_run": N,
//                   "pool_busy_seconds": s, "pool_idle_seconds": s},
//     "memory": {"peak_rss_bytes": N, "alloc_hook": bool,
//                "allocations": N, "bytes_allocated": N,
//                "high_water_bytes": N} }
//
// v2 is additive over v1: the v1 sections are unchanged (the run object
// gains two members), so v1 readers that pick out counters/phases keep
// working; validate_metrics_json accepts both versions, applying full v2
// strictness (host identity, histograms/scheduler/memory present and
// internally consistent) only when the schema says v2. Counters appear in
// Counter declaration order, phases and histograms sorted by name, so two
// runs of the same binary diff cleanly (timestamps aside). The schema
// validators below are what obs_test and the CI observability job run
// against freshly produced artifacts; EXPERIMENTS.md documents the diff
// workflow, and obs/metrics_diff.h turns two artifacts into a regression
// verdict.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/obs.h"

namespace merced::obs {

inline constexpr const char* kMetricsSchema = "merced-metrics-v2";
inline constexpr const char* kMetricsSchemaV1 = "merced-metrics-v1";

/// Identity of the run being measured (the "run" JSON object).
struct RunInfo {
  std::string tool;     ///< producing binary, e.g. "merced_cli"
  std::string circuit;  ///< circuit name or .bench path
  std::uint64_t lk = 0;
  std::uint64_t jobs = 0;
  std::uint64_t starts = 0;
  /// Resolved coverage-kernel lane width (64/256/512), 0 when the run did
  /// not touch the coverage kernel.
  std::uint64_t simd = 0;
  /// Host identity, so artifact diffs can refuse cross-host comparisons.
  /// capture() fills both from the machine when left at their defaults.
  std::string cpu;
  std::uint64_t hardware_concurrency = 0;
};

/// The "memory" JSON section: OS-reported peak RSS plus the alloc channel
/// (obs/resource.h). alloc_hook records whether the operator-new hook was
/// linked into the producing binary — when false the alloc numbers are
/// structurally present but meaningless zeros.
struct MemoryStats {
  std::uint64_t peak_rss_bytes = 0;
  bool alloc_hook = false;
  std::uint64_t allocations = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t high_water_bytes = 0;
};

/// Wall-time statistics of one span name.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0;
  double max_seconds = 0;
};

class MetricsRegistry {
 public:
  /// Snapshots the current collector state (aggregated counters + spans
  /// grouped by name). Call after the measured work, while quiescent.
  static MetricsRegistry capture(RunInfo run);

  const RunInfo& run() const noexcept { return run_; }
  const std::vector<std::uint64_t>& counters() const noexcept { return counters_; }
  const std::vector<PhaseStat>& phases() const noexcept { return phases_; }
  const std::vector<HistogramSnapshot>& histograms() const noexcept {
    return histograms_;
  }
  const MemoryStats& memory() const noexcept { return memory_; }

  /// Serializes the versioned artifact described in the file comment.
  void write_json(std::ostream& os) const;

 private:
  RunInfo run_;
  std::vector<std::uint64_t> counters_;  ///< indexed by Counter
  std::vector<PhaseStat> phases_;        ///< sorted by name
  std::vector<HistogramSnapshot> histograms_;  ///< sorted by name
  MemoryStats memory_;
};

/// Validates a parsed metrics artifact against merced-metrics-v2, or — when
/// the document declares merced-metrics-v1 — against the historic v1 schema
/// (v1 artifacts may omit counters added since, but unknown counter names
/// are still rejected). Returns an empty string when valid, else a
/// description of the first violation.
std::string validate_metrics_json(const JsonValue& doc);

/// Validates a parsed Chrome trace document as written by
/// write_chrome_trace: a traceEvents array whose "X" events carry
/// name/ph/pid/tid/ts/dur and whose "M" events are thread metadata.
std::string validate_trace_json(const JsonValue& doc);

}  // namespace merced::obs
