// MetricsRegistry — one run's counters and phase timings as a versioned
// JSON artifact.
//
// The trace (obs.h) answers "where did this run spend its time"; the
// metrics artifact answers "did this commit do more work than the last
// one". It serializes the aggregated counters plus per-phase wall-time
// statistics (derived from the recorded spans, grouped by span name) into
// a schema-versioned document comparable across commits exactly like the
// BENCH_*.json artifacts:
//
//   { "schema": "merced-metrics-v1",
//     "run": {"tool": "...", "circuit": "...", "lk": N, "jobs": N,
//             "starts": N, "simd": N},
//     "counters": {"flow.iterations": 123, ...},          // every Counter
//     "phases": [{"name": "...", "count": N,
//                 "total_seconds": s, "max_seconds": s}, ...] }   // by name
//
// Counters appear in Counter declaration order, phases sorted by name, so
// two runs of the same binary diff cleanly (timestamps aside). The schema
// validators below are what obs_test and the CI observability job run
// against freshly produced artifacts; EXPERIMENTS.md documents the diff
// workflow.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/obs.h"

namespace merced::obs {

inline constexpr const char* kMetricsSchema = "merced-metrics-v1";

/// Identity of the run being measured (the "run" JSON object).
struct RunInfo {
  std::string tool;     ///< producing binary, e.g. "merced_cli"
  std::string circuit;  ///< circuit name or .bench path
  std::uint64_t lk = 0;
  std::uint64_t jobs = 0;
  std::uint64_t starts = 0;
  /// Resolved coverage-kernel lane width (64/256/512), 0 when the run did
  /// not touch the coverage kernel.
  std::uint64_t simd = 0;
};

/// Wall-time statistics of one span name.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0;
  double max_seconds = 0;
};

class MetricsRegistry {
 public:
  /// Snapshots the current collector state (aggregated counters + spans
  /// grouped by name). Call after the measured work, while quiescent.
  static MetricsRegistry capture(RunInfo run);

  const RunInfo& run() const noexcept { return run_; }
  const std::vector<std::uint64_t>& counters() const noexcept { return counters_; }
  const std::vector<PhaseStat>& phases() const noexcept { return phases_; }

  /// Serializes the versioned artifact described in the file comment.
  void write_json(std::ostream& os) const;

 private:
  RunInfo run_;
  std::vector<std::uint64_t> counters_;  ///< indexed by Counter
  std::vector<PhaseStat> phases_;        ///< sorted by name
};

/// Validates a parsed metrics artifact against merced-metrics-v1. Returns
/// an empty string when valid, else a description of the first violation.
std::string validate_metrics_json(const JsonValue& doc);

/// Validates a parsed Chrome trace document as written by
/// write_chrome_trace: a traceEvents array whose "X" events carry
/// name/ph/pid/tid/ts/dur and whose "M" events are thread metadata.
std::string validate_trace_json(const JsonValue& doc);

}  // namespace merced::obs
