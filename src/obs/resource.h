// Resource telemetry: peak RSS, host identity, and the allocation
// high-water channel.
//
// The metrics artifact (obs/metrics.h, "merced-metrics-v2") reports not just
// where time went but what the run *cost*: peak resident set, total heap
// traffic, and the live-byte high-water mark. ROADMAP item 1 (the
// compile-as-a-service daemon) admits requests against memory budgets, so
// these numbers need to be machine-readable per run, not eyeballed from
// /usr/bin/time.
//
// Three channels, different mechanisms:
//
//  * peak_rss_bytes() asks the kernel (/proc/self/status VmHWM, falling
//    back to getrusage ru_maxrss) — zero overhead during the run, sampled
//    once at artifact-write time. Covers everything: heap, stacks, mapped
//    files.
//  * The alloc channel counts operator new/delete traffic. The counting
//    hooks are *not* installed by this library: replacing the global
//    operator new is a one-definition-per-program affair (sim_kernel_test
//    already owns it in its own binary), so a binary opts in by including
//    obs/alloc_hook.h in exactly one translation unit (merced_cli does).
//    alloc_stats() then reports exact allocation count, cumulative bytes,
//    and the live-byte high-water mark; alloc_hook_installed() tells the
//    metrics writer whether the numbers exist at all.
//  * cpu_model_string() / std::thread::hardware_concurrency() identify the
//    host so merced_metrics_diff can refuse cross-host comparisons instead
//    of producing a bogus verdict.
//
// Thread-safety: alloc_note_* are called from any thread (inside operator
// new); everything is relaxed atomics plus a CAS loop for the high-water
// mark. peak_rss_bytes() and cpu_model_string() are ordinary functions safe
// from any thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace merced::obs {

/// Peak resident set size of this process in bytes, as reported by the OS
/// (Linux: VmHWM from /proc/self/status; fallback: getrusage ru_maxrss).
/// Returns 0 if the platform offers neither. Monotonic over the process
/// lifetime — it cannot be reset between phases.
std::uint64_t peak_rss_bytes();

/// Human-readable CPU model ("model name" from /proc/cpuinfo), or "unknown"
/// when unavailable. Cached after the first call.
const std::string& cpu_model_string();

/// Aggregate operator-new traffic since the last alloc_reset(). All fields
/// are exact when the hook is installed (see obs/alloc_hook.h) and zero
/// otherwise.
struct AllocStats {
  std::uint64_t allocations = 0;      ///< operator new calls
  std::uint64_t bytes_allocated = 0;  ///< cumulative requested bytes
  std::uint64_t live_bytes = 0;       ///< currently outstanding bytes
  std::uint64_t high_water_bytes = 0; ///< max of live_bytes since reset
};

namespace detail {
extern std::atomic<std::uint64_t> g_alloc_count;
extern std::atomic<std::uint64_t> g_alloc_bytes;
extern std::atomic<std::uint64_t> g_alloc_live;
extern std::atomic<std::uint64_t> g_alloc_high_water;
extern std::atomic<bool> g_alloc_hook_installed;
}  // namespace detail

/// Called by the opt-in operator-new replacement for every allocation.
inline void alloc_note_new(std::size_t bytes) noexcept {
  detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  detail::g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  const std::uint64_t live =
      detail::g_alloc_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t hw = detail::g_alloc_high_water.load(std::memory_order_relaxed);
  while (live > hw && !detail::g_alloc_high_water.compare_exchange_weak(
                          hw, live, std::memory_order_relaxed)) {
  }
}

/// Called by the opt-in operator-delete replacement for every deallocation
/// whose size is known (glibc malloc_usable_size; otherwise bytes == 0 and
/// live_bytes drifts high — still a valid upper bound).
inline void alloc_note_delete(std::size_t bytes) noexcept {
  detail::g_alloc_live.fetch_sub(bytes, std::memory_order_relaxed);
}

/// True once some translation unit in this binary included obs/alloc_hook.h
/// (the hook marks itself installed at static-init time).
inline bool alloc_hook_installed() noexcept {
  return detail::g_alloc_hook_installed.load(std::memory_order_relaxed);
}

/// Snapshot of the alloc channel. Exact under the flush-while-quiescent
/// contract the counters already follow.
AllocStats alloc_stats();

/// Zeroes the alloc channel (count/bytes/high-water; live resets to 0 too,
/// so call at a phase boundary where "live" should rebase). Does not touch
/// the installed flag.
void alloc_reset();

}  // namespace merced::obs
