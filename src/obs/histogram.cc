#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace merced::obs {

std::uint64_t hist_quantile(const HistogramSnapshot& hist, double q) noexcept {
  if (hist.count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(hist.count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
    seen += hist.buckets[i];
    if (seen >= rank) {
      return std::clamp(hist_bucket_upper(i), hist.min, hist.max);
    }
  }
  return hist.max;  // unreachable when bucket counts sum to count
}

}  // namespace merced::obs
