// Opt-in global operator new/delete replacement feeding the obs alloc
// channel (obs/resource.h).
//
// Include this header in EXACTLY ONE translation unit of a binary that
// wants allocation telemetry (merced_cli does). It replaces the global
// allocation functions with malloc-backed versions that tick the alloc
// channel's atomics — the same idiom sim_kernel_test uses to assert the
// kernel's zero-allocation steady state, productized. Binaries that define
// their own operator new (sim_kernel_test) must NOT include this header:
// two replacements in one program violate the one-definition rule.
//
// Deallocation sizes come from malloc_usable_size on glibc so live_bytes /
// high_water_bytes track real heap residency; elsewhere frees are counted
// at size 0 and live_bytes becomes an upper bound (documented on
// alloc_note_delete).
//
// The hooks are unconditional — counting costs a handful of relaxed atomic
// RMWs per allocation, far below malloc itself — and mark themselves
// installed at static-init time so the metrics writer knows the numbers
// are real (alloc_hook_installed()).
#pragma once

#include <cstdlib>
#include <new>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "obs/resource.h"

namespace merced::obs::detail {
inline const bool g_alloc_hook_marker = [] {
  g_alloc_hook_installed.store(true, std::memory_order_relaxed);
  return true;
}();

inline std::size_t alloc_usable_size(void* p) noexcept {
#if defined(__GLIBC__)
  return p ? ::malloc_usable_size(p) : 0;
#else
  (void)p;
  return 0;
#endif
}
}  // namespace merced::obs::detail

// Replacement allocation functions must have external linkage and exactly
// one definition per program — non-inline in a single-inclusion header is
// the point, not an oversight.
// NOLINTBEGIN(misc-definitions-in-headers)
void* operator new(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  merced::obs::alloc_note_new(merced::obs::detail::alloc_usable_size(p));
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) {
    merced::obs::alloc_note_new(merced::obs::detail::alloc_usable_size(p));
  }
  return p;
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  merced::obs::alloc_note_delete(merced::obs::detail::alloc_usable_size(p));
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
// NOLINTEND(misc-definitions-in-headers)
