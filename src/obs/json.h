// Minimal JSON document model and recursive-descent parser.
//
// The observability layer emits two JSON artifacts — the Chrome/Perfetto
// trace and the versioned metrics snapshot — and promises both are
// schema-valid. Validation needs a reader, and the toolchain bakes in no
// JSON dependency, so this header provides the smallest DOM that can check
// a schema: parse a string into a JsonValue tree, walk it with typed
// accessors. It is a strict RFC 8259 subset reader (no comments, no
// trailing commas, UTF-8 passed through uncompacted) intended for trusted
// artifacts we wrote ourselves, not hostile input.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace merced::obs {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Ordered map: members keep document order so round-trip comparisons in
/// tests are stable.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// Thrown on malformed input, with a byte offset in the message.
struct JsonParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : kind_(Kind::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o)
      : kind_(Kind::kObject), object_(std::make_shared<JsonObject>(std::move(o))) {}

  /// Parses a complete JSON document; trailing non-space input throws.
  static JsonValue parse(std::string_view text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const { return require(Kind::kBool), bool_; }
  double as_number() const { return require(Kind::kNumber), number_; }
  const std::string& as_string() const { return require(Kind::kString), string_; }
  const JsonArray& as_array() const { return require(Kind::kArray), *array_; }
  const JsonObject& as_object() const { return require(Kind::kObject), *object_; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const noexcept;

  bool operator==(const JsonValue& other) const;

 private:
  void require(Kind k) const {
    if (kind_ != k) throw std::runtime_error("JsonValue: wrong kind access");
  }

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

}  // namespace merced::obs
