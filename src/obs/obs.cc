#include "obs/obs.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>

namespace merced::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

using Clock = std::chrono::steady_clock;

/// One thread's shard of one named histogram. Buckets are relaxed atomics
/// written only by the owning thread; the aggregator reads them at flush
/// time (quiescent, like the counters). min/max/sum/count are single-writer
/// too, so plain load-then-store updates are exact.
struct HistShard {
  std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};

  void record(std::uint64_t value) noexcept {
    buckets[hist_bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(value, std::memory_order_relaxed);
    if (value < min.load(std::memory_order_relaxed)) {
      min.store(value, std::memory_order_relaxed);
    }
    if (value > max.load(std::memory_order_relaxed)) {
      max.store(value, std::memory_order_relaxed);
    }
  }
};

/// Per-thread recording block. Counter slots are relaxed atomics (written
/// by the owning thread, read by the aggregator); the span buffer is
/// guarded by a per-thread mutex, uncontended except during a concurrent
/// flush. Blocks are owned by the registry and outlive their threads, so a
/// worker that exits before the flush still contributes its data.
///
/// Histogram slots are claimed lock-free by the owning thread: the shard
/// payload is allocated first, then the name pointer published with a
/// release store, so an aggregator that acquires a non-null name always
/// sees a constructed shard. Payloads allocate lazily (first record of a
/// name on this thread), keeping idle threads at a few hundred bytes.
struct ThreadLog {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  std::array<std::atomic<const char*>, kMaxHistogramsPerThread> hist_names{};
  std::array<std::unique_ptr<HistShard>, kMaxHistogramsPerThread> hist_shards;
  std::mutex mu;
  std::vector<SpanEvent> spans;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  ///< touched only by the owning thread
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  Clock::time_point epoch = Clock::now();
  bool epoch_set = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

ThreadLog& local_log() {
  thread_local ThreadLog* log = [] {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    r.logs.push_back(std::make_unique<ThreadLog>());
    r.logs.back()->tid = static_cast<std::uint32_t>(r.logs.size() - 1);
    return r.logs.back().get();
  }();
  return *log;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              registry().epoch)
      .count();
}

constexpr const char* kCounterNames[kNumCounters] = {
    "flow.iterations",
    "flow.tree_nets_flowed",
    "make_group.nets_removed",
    "make_group.boundary_steps",
    "assign_cbit.merges",
    "retiming.lags_applied",
    "retiming.neg_cycle_demotions",
    "retiming.aggregate_demotions",
    "kernel.ranges_run",
    "kernel.batches",
    "kernel.events_popped",
    "kernel.events_suppressed",
    "kernel.early_exits",
    "kernel.faults_dropped",
    "kernel.lanes_swept",
    "kernel.fault_groups",
    "fault_sim.groups",
    "fault_sim.faults_detected",
    "pool.parallel_fors",
    "pool.tasks_run",
    "pool.busy_ns",
    "pool.idle_ns",
    "sched.tasks_run",
    "sched.tasks_stolen",
    "sched.steal_attempts",
    "sched.steal_failures",
    "session.stations_swept",
    "session.cycles_run",
    "fuzz.runs",
    "fuzz.mutations",
    "fuzz.oracle_failures",
    "fuzz.minimizer_attempts",
    "fuzz.corpus_entries",
    "sat.solves",
    "sat.conflicts",
    "sat.decisions",
    "sat.propagations",
    "sat.learned_clauses",
    "prove.redundant_proved",
    "prove.vectors_replayed",
    "equiv.checks",
    "analyze.collapsed_faults",
    "analyze.proved_untestable",
    "analyze.residue_resims",
};

void json_escape(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    switch (*s) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << *s;
    }
  }
}

}  // namespace

const char* counter_name(Counter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

void enable() {
  Registry& r = registry();
  {
    std::lock_guard lock(r.mu);
    if (!r.epoch_set) {
      r.epoch = Clock::now();
      r.epoch_set = true;
    }
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (auto& log : r.logs) {
    for (auto& c : log->counters) c.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxHistogramsPerThread; ++i) {
      log->hist_names[i].store(nullptr, std::memory_order_relaxed);
      log->hist_shards[i].reset();
    }
    std::lock_guard span_lock(log->mu);
    log->spans.clear();
  }
  r.epoch = Clock::now();
  r.epoch_set = true;
}

void add(Counter c, std::uint64_t n) noexcept {
  local_log().counters[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

std::vector<std::uint64_t> counter_values() {
  std::vector<std::uint64_t> totals(kNumCounters, 0);
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (const auto& log : r.logs) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      totals[i] += log->counters[i].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

std::uint64_t counter_value(Counter c) {
  return counter_values()[static_cast<std::size_t>(c)];
}

void hist_record(const char* name, std::uint64_t value) noexcept {
  ThreadLog& log = local_log();
  for (std::size_t i = 0; i < kMaxHistogramsPerThread; ++i) {
    const char* slot_name = log.hist_names[i].load(std::memory_order_relaxed);
    if (slot_name == nullptr) {
      // Only the owning thread writes its slots, so claim without a CAS:
      // construct the shard first, publish the name second (release pairs
      // with the aggregator's acquire).
      log.hist_shards[i] = std::make_unique<HistShard>();
      log.hist_shards[i]->record(value);
      log.hist_names[i].store(name, std::memory_order_release);
      return;
    }
    if (slot_name == name) {
      log.hist_shards[i]->record(value);
      return;
    }
  }
  // More than kMaxHistogramsPerThread distinct names on one thread: drop.
}

std::vector<HistogramSnapshot> histogram_snapshots() {
  // Merge by *string* (not pointer): the same name recorded from different
  // translation units may live at different addresses.
  std::vector<HistogramSnapshot> out;
  const auto merged = [&](const char* name) -> HistogramSnapshot& {
    for (HistogramSnapshot& h : out) {
      if (h.name == name) return h;
    }
    out.emplace_back();
    out.back().name = name;
    out.back().min = ~std::uint64_t{0};
    out.back().buckets.assign(kHistBuckets, 0);
    return out.back();
  };
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (const auto& log : r.logs) {
    for (std::size_t i = 0; i < kMaxHistogramsPerThread; ++i) {
      const char* name = log->hist_names[i].load(std::memory_order_acquire);
      if (name == nullptr) continue;
      const HistShard& shard = *log->hist_shards[i];
      HistogramSnapshot& h = merged(name);
      h.count += shard.count.load(std::memory_order_relaxed);
      h.sum += shard.sum.load(std::memory_order_relaxed);
      h.min = std::min(h.min, shard.min.load(std::memory_order_relaxed));
      h.max = std::max(h.max, shard.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        h.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  for (HistogramSnapshot& h : out) {
    if (h.count == 0) h.min = 0;  // claimed but empty shard: normalize
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<SpanEvent> span_events() {
  std::vector<SpanEvent> events;
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (const auto& log : r.logs) {
    std::lock_guard span_lock(log->mu);
    events.insert(events.end(), log->spans.begin(), log->spans.end());
  }
  std::sort(events.begin(), events.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.depth < b.depth;
  });
  return events;
}

void write_chrome_trace(std::ostream& os) {
  const std::vector<SpanEvent> events = span_events();

  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n    ";
  };

  // Thread-name metadata for every tid that recorded at least one span.
  std::vector<std::uint32_t> tids;
  for (const SpanEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (std::uint32_t tid : tids) {
    sep();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"args\": {\"name\": \"" << (tid == 0 ? "main" : "worker-")
       << (tid == 0 ? "" : std::to_string(tid)) << "\"}}";
  }

  // ts/dur are microseconds in the Chrome trace format; keep nanosecond
  // resolution as a fraction.
  for (const SpanEvent& e : events) {
    sep();
    os << "{\"name\": \"";
    json_escape(os, e.name);
    os << "\", \"cat\": \"merced\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << static_cast<double>(e.start_ns) / 1000.0
       << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1000.0
       << ", \"args\": {\"depth\": " << e.depth;
    if (e.has_arg) os << ", \"i\": " << e.arg;
    os << "}}";
  }
  os << "\n  ]\n}\n";
}

Span::Span(const char* name) noexcept : name_(name) {
  if (!enabled()) return;
  active_ = true;
  ++local_log().depth;
  start_ns_ = now_ns();
}

Span::Span(const char* name, std::uint64_t arg) noexcept : Span(name) {
  arg_ = arg;
  has_arg_ = true;
}

Span::~Span() {
  if (!active_) return;
  const std::int64_t end_ns = now_ns();
  ThreadLog& log = local_log();
  const std::uint32_t depth = --log.depth;
  // Every span doubles as a histogram sample of its own name, so phase
  // latency distributions fall out of existing instrumentation.
  hist_record(name_, static_cast<std::uint64_t>(end_ns - start_ns_));
  std::lock_guard lock(log.mu);
  log.spans.push_back(SpanEvent{name_, log.tid, depth, start_ns_,
                                end_ns - start_ns_, arg_, has_arg_});
}

}  // namespace merced::obs
