// Artifact differ: two runs' telemetry in, a regression verdict out.
//
// The metrics artifact (obs/metrics.h) and BENCH_simkernel.json record what
// one run cost; neither can say whether a commit made things *worse*. This
// module is the comparison: parse two artifacts of the same kind, pair up
// their measurements, apply noise-aware thresholds, and produce a verdict
// machine CI can gate on (examples/merced_metrics_diff.cpp is the CLI; the
// perf-sentinel CI job runs it against a committed baseline).
//
// Measurement classes, because "worse" depends on the unit:
//  * timing (seconds; phase totals, histogram quantiles, bench wall times)
//    — lower is better, gated in BOTH directions. A current run slower than
//    baseline is a regression; one faster beyond the same threshold is
//    flagged too ("faster"), because a stale baseline silently raises the
//    bar for every later commit — the fix is refreshing the baseline
//    (EXPERIMENTS.md), not ignoring the drift.
//  * ratio (dimensionless speedups) — higher is better, gated downward
//    only; a kernel that got *more* ahead of its oracle is just good news.
//  * info (memory, counters-derived rates) — reported, never gated.
//
// Thresholds are relative plus an absolute floor (threshold = rel * base +
// abs): sub-millisecond phases live entirely inside scheduler noise, and a
// pure percentage gate would flake on them forever.
//
// Identity refusal: timing comparisons across different hosts or different
// run configurations are apples to oranges. Config mismatches (circuit, lk,
// workload shape) are always an error; host mismatches (CPU model,
// hardware_concurrency) are an error unless ignore_host is set, in which
// case timing demotes to info and only dimensionless ratios keep gating —
// the honest cross-host comparison.
//
// Scheduler counters (sched.*, pool.*) never gate: steal counts are
// timing-dependent by design (runtime/work_steal.h documents the
// non-determinism), so two correct runs legitimately differ.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.h"

namespace merced::obs {

inline constexpr const char* kDiffSchema = "merced-diff-v1";

struct DiffThresholds {
  double rel = 0.35;          ///< relative fraction of the baseline value
  double abs_seconds = 0.005; ///< absolute floor for timing metrics
  double abs_ratio = 0.10;    ///< absolute floor for ratio metrics
  bool ignore_host = false;   ///< demote timing to info on host mismatch
};

/// One paired measurement. direction is the verdict: "ok", "slower" /
/// "faster" (timing gated both ways), or "lower" (ratio regression).
struct DiffEntry {
  std::string metric;
  std::string cls;        ///< "timing", "ratio", or "info"
  double baseline = 0;
  double current = 0;
  double delta_rel = 0;   ///< (current - baseline) / baseline, 0 if base==0
  bool gated = false;
  std::string direction = "ok";
};

struct DiffResult {
  std::string baseline_label;  ///< caller-set (file paths in the CLI)
  std::string current_label;
  DiffThresholds thresholds;
  std::vector<DiffEntry> entries;
  std::vector<std::string> notes;  ///< unpaired metrics, demotions, etc.
  std::string error;  ///< non-empty: artifacts incomparable (CLI exit 2)

  std::size_t regressions() const;   ///< "slower" + "lower" entries
  std::size_t improvements() const;  ///< "faster" entries
  /// True when comparable and nothing tripped a gate (CLI exit 0).
  bool ok() const { return error.empty() && regressions() == 0 && improvements() == 0; }
};

/// Compares two parsed artifacts of the same kind (both merced-metrics-v1/
/// v2, or both BENCH_simkernel documents; kinds are auto-detected). On
/// incomparable inputs only `error` is set.
DiffResult diff_artifacts(const JsonValue& baseline, const JsonValue& current,
                          const DiffThresholds& thresholds);

/// Human-readable table plus verdict line.
void write_diff_table(std::ostream& os, const DiffResult& result);

/// The merced-diff-v1 JSON document.
void write_diff_json(std::ostream& os, const DiffResult& result);

/// Validates a parsed merced-diff-v1 document, including the summary
/// cross-check (verdict and counts must agree with the entries). Returns
/// an empty string when valid, else the first violation.
std::string validate_diff_json(const JsonValue& doc);

}  // namespace merced::obs
