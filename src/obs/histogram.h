// Log-bucketed histogram layout and quantile math for the obs layer.
//
// Counters answer "how much work"; histograms answer "how was it spread".
// The metrics artifact needs per-phase p50/p90/p99 latency (ROADMAP item 1,
// the compile-as-a-service daemon, admits requests against exactly these
// numbers), and retaining every sample to compute them exactly would make
// recording cost proportional to run length. A log-bucketed histogram keeps
// recording O(1) and memory fixed: values land in buckets whose width grows
// geometrically, so the relative quantile error is bounded by the
// sub-bucket resolution (<= 1/2^kHistSubBits, 6.25%) at every scale.
//
// Bucket layout (HdrHistogram-style, integer-only):
//  * values < 2^kHistSubBits map to singleton buckets [v, v] — exact;
//  * larger values split each octave [2^h, 2^(h+1)) into 2^kHistSubBits
//    equal sub-buckets, giving index continuity at the octave seams;
//  * values >= 2^kHistMaxBits clamp into the top bucket (at nanosecond
//    resolution that is ~18 minutes — nothing Merced times lives there).
//
// Exactness contract: bucket *counts* are exact (every recorded value lands
// in exactly one bucket, shards merge by addition), as are count/min/max.
// Only the quantile positions are estimates: hist_quantile returns the
// upper bound of the bucket containing the rank, so the true quantile lies
// within one bucket below the reported value (obs_test pins this against a
// sorted-vector oracle). Determinism follows: the merged histogram is a
// pure function of the multiset of recorded values, never of thread count
// or interleaving — the same property the counters already guarantee.
//
// Recording (MERCED_HIST / hist_record) and shard storage live in obs.h /
// obs.cc next to the counters; this header is the pure math plus the
// merged-snapshot type, so tests and the metrics writer share one
// definition of the bucket grid.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace merced::obs {

/// Sub-bucket resolution: each octave splits into 2^kHistSubBits buckets,
/// bounding relative quantile error by 1/2^kHistSubBits.
inline constexpr std::uint32_t kHistSubBits = 4;
inline constexpr std::uint64_t kHistSub = std::uint64_t{1} << kHistSubBits;

/// Values at or above 2^kHistMaxBits clamp into the final bucket.
inline constexpr std::uint32_t kHistMaxBits = 40;

/// Total bucket count: 2^kHistSubBits singletons plus
/// (kHistMaxBits - kHistSubBits) octaves of 2^kHistSubBits sub-buckets.
inline constexpr std::size_t kHistBuckets =
    kHistSub + (kHistMaxBits - kHistSubBits) * kHistSub;

/// Bucket index of `value`. Total over [0, 2^64): out-of-range values clamp
/// into the top bucket instead of indexing past the array.
constexpr std::size_t hist_bucket_index(std::uint64_t value) noexcept {
  if (value < kHistSub) return static_cast<std::size_t>(value);
  constexpr std::uint64_t kMax = (std::uint64_t{1} << kHistMaxBits) - 1;
  if (value > kMax) value = kMax;
  const auto h = static_cast<std::uint32_t>(std::bit_width(value) - 1);
  const std::uint64_t sub = (value >> (h - kHistSubBits)) - kHistSub;
  return static_cast<std::size_t>((h - kHistSubBits + 1) * kHistSub + sub);
}

/// Smallest value mapping to bucket `index` (inverse of hist_bucket_index).
constexpr std::uint64_t hist_bucket_lower(std::size_t index) noexcept {
  if (index < kHistSub) return index;
  const std::uint64_t octave = (index - kHistSub) / kHistSub;
  const std::uint64_t sub = (index - kHistSub) % kHistSub;
  return (kHistSub + sub) << octave;
}

/// Largest value mapping to bucket `index`.
constexpr std::uint64_t hist_bucket_upper(std::size_t index) noexcept {
  if (index < kHistSub) return index;
  const std::uint64_t octave = (index - kHistSub) / kHistSub;
  return hist_bucket_lower(index) + ((std::uint64_t{1} << octave) - 1);
}

/// One named histogram, merged across every thread shard. Bucket counts,
/// count, sum, min and max are exact; see the file comment for the
/// quantile-estimate contract.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< exact observed minimum (0 when count == 0)
  std::uint64_t max = 0;  ///< exact observed maximum (0 when count == 0)
  std::vector<std::uint64_t> buckets;  ///< size kHistBuckets
};

/// Quantile estimate for q in [0, 1]: the upper bound of the bucket holding
/// the ceil(q * count)-th smallest recorded value, clamped to [min, max] so
/// hist_quantile(h, 1.0) == max exactly. Returns 0 when the histogram is
/// empty. The true quantile is >= hist_bucket_lower of the same bucket.
std::uint64_t hist_quantile(const HistogramSnapshot& hist, double q) noexcept;

}  // namespace merced::obs
