#include "obs/json.h"

#include <cctype>
#include <charconv>

namespace merced::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                         what);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_space();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject members;
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray items;
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Basic-multilingual-plane code points only; our artifacts emit
          // plain ASCII, so surrogate pairs are rejected rather than joined.
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape unsupported");
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // RFC 8259 forbids leading zeros ("01"), which from_chars would accept.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      fail("leading zero in number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || end != last || start == pos_) fail("bad number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : *object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber: return number_ == other.number_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kArray: return *array_ == *other.array_;
    case Kind::kObject: return *object_ == *other.object_;
  }
  return false;
}

}  // namespace merced::obs
