// Observability layer: scoped spans, lock-free per-thread counters, and a
// Chrome/Perfetto trace exporter.
//
// Merced's compile pipeline and simulation kernels are performance
// artifacts; this module is the measurement substrate that keeps them
// honest. Two primitives, one contract:
//
//  * MERCED_SPAN("saturate_network") — an RAII span recording wall-time,
//    thread id, and nesting depth. Completed spans collect in per-thread
//    buffers and export as Chrome tracing "X" (complete) events, loadable
//    in Perfetto / chrome://tracing.
//  * MERCED_COUNT(Counter::kFlowIterations, n) — a named monotonic counter.
//    Each thread owns a cache-local slot block; increments are relaxed
//    atomics with no cross-thread contention, and counter_values()
//    aggregates all blocks on flush.
//  * MERCED_HIST("kernel.range_events", v) — a named value distribution
//    (obs/histogram.h). Each thread owns a fixed block of lock-free
//    histogram slots keyed by the (static) name pointer; recording is a
//    handful of relaxed RMWs on thread-local buckets, and
//    histogram_snapshots() merges all shards on flush with exact bucket
//    counts. Every completed span additionally records its duration into
//    the histogram of its own name, so per-span-phase latency
//    distributions (p50/p90/p99 in the metrics artifact) come for free.
//
// Null-sink contract: when no collector is enabled (the default), all three
// macros cost exactly one branch on one relaxed atomic load — no clock
// read, no allocation, no atomic RMW. Hot kernels therefore keep their
// instrumentation compiled in unconditionally; bench_exhaustive_kernel's
// overhead guardrail asserts the disabled path stays within noise of the
// uninstrumented baseline (DESIGN.md "Observability layer").
//
// Threading: spans and counter increments may happen on any thread.
// enable()/disable()/reset() and the flush/aggregation calls
// (counter_values, span_events, write_chrome_trace) must run while no
// instrumented parallel region is active — in practice, on the main thread
// between pipeline phases.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/histogram.h"

namespace merced::obs {

/// Every counter the pipeline publishes. Names (counter_name) use a
/// "subsystem.metric" convention and are the JSON keys of the metrics
/// artifact, so renaming one is a schema change.
enum class Counter : std::uint32_t {
  kFlowIterations = 0,      ///< shortest-path trees built by Saturate_Network
  kFlowTreeNetsFlowed,      ///< nets that received Δ flow across all trees
  kGroupNetsRemoved,        ///< nets cut by Make_Group boundary lowering
  kGroupBoundarySteps,      ///< boundary-lowering rounds in Make_Group
  kCbitMerges,              ///< greedy cluster merges in Assign_CBIT
  kRetimingLagsApplied,     ///< nonzero ρ labels in the legal retiming plan
  kRetimingNegCycleDemotions,  ///< cuts demoted resolving negative cycles
  kRetimingAggregateDemotions, ///< cuts demoted by the per-SCC aggregate pass
  kKernelRangesRun,         ///< exhaustive_detect_range invocations
  kKernelBatches,           ///< 64-pattern batches swept by the kernel
  kKernelEventsPopped,      ///< gate events popped from the kernel wave heap
  kKernelEventsSuppressed,  ///< popped events whose recomputed word matched
  kKernelEarlyExits,        ///< per-fault probes ended at an observed output
  kKernelFaultsDropped,     ///< faults detected and dropped from later batches
  kKernelLanesSwept,        ///< pattern lanes swept (batches x lane width)
  kKernelFaultGroups,       ///< same-gate fault groups probed by one wave
  kFaultSimGroups,          ///< 63-fault machine-word groups simulated
  kFaultSimFaultsDetected,  ///< faults detected by sequential fault sim
  kPoolParallelFors,        ///< parallel_for invocations on any ThreadPool
  kPoolTasksRun,            ///< indices executed across all parallel_fors
  kPoolBusyNs,              ///< wall ns pool workers spent inside bodies
  kPoolIdleNs,              ///< wall ns pool workers spent parked
  kSchedTasksRun,           ///< tasks executed by the work-stealing scheduler
  kSchedTasksStolen,        ///< tasks migrated off their home worker queue
  kSchedStealAttempts,      ///< victim scans by idle scheduler workers
  kSchedStealFailures,      ///< victim scans that came back empty-handed
  kSessionStationsSwept,    ///< CUT stations swept by PpetSession::run
  kSessionCyclesRun,        ///< TPG cycles executed across all stations
  kFuzzRuns,                ///< fuzz inputs generated and run through the oracles
  kFuzzMutations,           ///< semantic mutations applied across all fuzz inputs
  kFuzzOracleFailures,      ///< fuzz runs on which some oracle fired
  kFuzzMinimizerAttempts,   ///< oracle evaluations spent by the minimizer
  kFuzzCorpusEntries,       ///< new (deduplicated) corpus entries written
  kSatSolves,               ///< Solver::solve calls across all SAT oracles
  kSatConflicts,            ///< CDCL conflicts across all solves
  kSatDecisions,            ///< CDCL decisions across all solves
  kSatPropagations,         ///< literals enqueued across all solves
  kSatLearnedClauses,       ///< clauses learnt across all solves
  kProveRedundantProved,    ///< undetected faults proved redundant (UNSAT)
  kProveVectorsReplayed,    ///< SAT detecting vectors confirmed on the kernel
  kEquivChecks,             ///< retiming equivalence miters solved
  kAnalyzeCollapsedFaults,  ///< verdicts resolved by FaultPlan copy/inference
  kAnalyzeProvedUntestable, ///< faults skipped as statically untestable
  kAnalyzeResidueResims,    ///< dominance-skipped faults re-simulated
  kCount                    ///< sentinel, not a counter
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);

/// Stable "subsystem.metric" name of a counter (metrics JSON key).
const char* counter_name(Counter c) noexcept;

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True while a collector is attached. The only cost instrumentation pays
/// when observability is off is this relaxed load plus its branch.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Attaches the process-wide collector (idempotent). Timestamps of spans
/// recorded after enable() are relative to the first enable() epoch.
void enable();

/// Stops recording. Data collected so far stays readable until reset().
void disable();

/// Clears all recorded spans and zeroes every counter on every thread.
/// Call while quiescent (no instrumented work in flight).
void reset();

/// Adds `n` to counter `c` on the calling thread's slot. Callers must check
/// enabled() first (the MERCED_COUNT macro does); calling while disabled is
/// harmless but pays the slot lookup.
void add(Counter c, std::uint64_t n) noexcept;

/// Aggregated counter totals, indexed by Counter value.
std::vector<std::uint64_t> counter_values();

/// One aggregated counter.
std::uint64_t counter_value(Counter c);

/// Per-thread histogram slots: a recording thread can use at most this many
/// distinct histogram names (span names + MERCED_HIST sites). Names beyond
/// the cap are silently dropped — raise the cap rather than relying on it.
inline constexpr std::size_t kMaxHistogramsPerThread = 48;

/// Records `value` into the calling thread's shard of the histogram named
/// `name`. `name` must be a string with static storage duration (a literal,
/// like span names): shards key on the pointer and the aggregator reads it
/// at flush time. Callers must check enabled() first (the MERCED_HIST macro
/// does). Lock-free: a few relaxed RMWs on thread-local slots.
void hist_record(const char* name, std::uint64_t value) noexcept;

/// All histograms, merged across thread shards (bucket-exact, see
/// obs/histogram.h) and sorted by name. Shards recorded under the same name
/// from different macro sites merge into one snapshot. Same quiescence rule
/// as counter_values().
std::vector<HistogramSnapshot> histogram_snapshots();

/// A completed span, as exported to the trace.
struct SpanEvent {
  const char* name;        ///< static string passed to MERCED_SPAN
  std::uint32_t tid;       ///< collector thread id (registration order)
  std::uint32_t depth;     ///< nesting depth on that thread (0 = outermost)
  std::int64_t start_ns;   ///< relative to the collector epoch
  std::int64_t dur_ns;
  std::uint64_t arg;       ///< user argument (e.g. CUT index); see has_arg
  bool has_arg;
};

/// All completed spans, sorted by (start_ns, tid, depth) — a deterministic
/// order for any fixed set of events.
std::vector<SpanEvent> span_events();

/// Writes the Chrome tracing / Perfetto JSON document ("traceEvents" array
/// of ph:"X" complete events plus thread-name metadata). Valid — and empty
/// of events — even when nothing was recorded.
void write_chrome_trace(std::ostream& os);

/// RAII span. Construction checks enabled() once; a span that started while
/// enabled records on destruction even if the collector was disabled
/// meanwhile (so in-flight phases flush cleanly).
class Span {
 public:
  explicit Span(const char* name) noexcept;
  Span(const char* name, std::uint64_t arg) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
  bool has_arg_ = false;
  bool active_ = false;
};

#define MERCED_OBS_CONCAT2(a, b) a##b
#define MERCED_OBS_CONCAT(a, b) MERCED_OBS_CONCAT2(a, b)

/// Scoped span: MERCED_SPAN("name") or MERCED_SPAN("name", index_arg).
#define MERCED_SPAN(...) \
  ::merced::obs::Span MERCED_OBS_CONCAT(merced_obs_span_, __LINE__) { __VA_ARGS__ }

/// Counter increment, free when disabled (one relaxed load + branch).
#define MERCED_COUNT(counter, n)                            \
  do {                                                      \
    if (::merced::obs::enabled()) {                         \
      ::merced::obs::add((counter), (n));                   \
    }                                                       \
  } while (0)

/// Histogram sample, free when disabled (one relaxed load + branch).
/// `name` must be a string literal (static storage), like MERCED_SPAN.
#define MERCED_HIST(name, value)                            \
  do {                                                      \
    if (::merced::obs::enabled()) {                         \
      ::merced::obs::hist_record((name), (value));          \
    }                                                       \
  } while (0)

}  // namespace merced::obs
