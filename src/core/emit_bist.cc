#include "core/emit_bist.h"

#include <stdexcept>
#include <unordered_set>

namespace merced {

BistNetlist emit_bist_netlist(const CircuitGraph& g, const Clustering& clustering,
                              std::span<const NetId> cut_nets) {
  const Netlist& nl = g.netlist();
  BistNetlist out;
  out.netlist.set_name(nl.name() + "_bist");
  out.test_mode_input = "ppet_test_mode";
  out.test_enable_input = "ppet_test_en";

  // Copy every original gate (fanins rewired below).
  std::vector<GateId> new_id(nl.size(), kNoGate);
  for (GateId id = 0; id < nl.size(); ++id) {
    new_id[id] = out.netlist.add_gate(nl.gate(id).type, nl.gate(id).name);
  }
  const GateId tmode = out.netlist.add_gate(GateType::kInput, out.test_mode_input);
  const GateId ten = out.netlist.add_gate(GateType::kInput, out.test_enable_input);

  // One multiplexed A_CELL per cut net (Fig. 3a/3c gate structure:
  // AND + XOR + NOR + DFF + MUX = 3+4+2+10+3 = 22 units per cut; the paper
  // quotes 2.3 DFF including routing). Cells chain through the NOR (the
  // zero-splice feed of the complete-cycle LFSR).
  std::unordered_set<NetId> cut_set(cut_nets.begin(), cut_nets.end());
  std::vector<GateId> mux_of_net(nl.size(), kNoGate);
  GateId chain_prev = ten;  // benign in normal mode; scan head in test mode
  for (NetId net : cut_nets) {
    const GateId driver = new_id[g.driver(net)];
    const std::string base = nl.gate(g.driver(net)).name + "_acell";
    const GateId gate_and =
        out.netlist.add_gate(GateType::kAnd, base + "_and", {driver, ten});
    const GateId gate_xor =
        out.netlist.add_gate(GateType::kXor, base + "_xor", {gate_and, chain_prev});
    const GateId dff = out.netlist.add_gate(GateType::kDff, base + "_ff", {gate_xor});
    const GateId gate_nor =
        out.netlist.add_gate(GateType::kNor, base + "_nor", {dff, ten});
    // MUX pins: select, a (sel=0 -> normal path), b (sel=1 -> test register).
    const GateId mux =
        out.netlist.add_gate(GateType::kMux, base + "_mux", {tmode, driver, dff});
    mux_of_net[net] = mux;
    chain_prev = gate_nor;
    out.acell_registers.push_back(out.netlist.gate(dff).name);
  }

  // Rewire: crossing gate sinks of a cut net read the MUX instead.
  for (GateId sink = 0; sink < nl.size(); ++sink) {
    const Gate& gate = nl.gate(sink);
    std::vector<GateId> fanins;
    fanins.reserve(gate.fanins.size());
    for (GateId src : gate.fanins) {
      const bool crossing =
          cut_set.contains(src) && !is_sequential(gate.type) &&
          clustering.cluster_of[sink] != clustering.cluster_of[src];
      fanins.push_back(crossing ? mux_of_net[src] : new_id[src]);
    }
    out.netlist.set_fanins(new_id[sink], fanins);
  }
  for (GateId id : nl.outputs()) out.netlist.mark_output(new_id[id]);
  out.netlist.finalize();
  return out;
}

}  // namespace merced
