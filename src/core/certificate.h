// merced-cert-v1 — the certifying-compilation artifact.
//
// Every feasible compile can emit a certificate: a self-contained JSON
// document restating every claim the compiler makes about its output —
// the partition and its per-cluster ι, the cut set, the retiming plan ρ
// with the retimable/multiplexed split, the per-SCC Eq. 2 witnesses
// (f(λ), χ(λ)), and the CBIT area arithmetic. The certificate references
// everything by *name* (gate names, net = driver-gate name, SCCs by their
// lexicographically smallest member), never by internal ids, so a totally
// independent program can re-derive each claim from the netlist alone.
//
// That independent program is examples/merced_certcheck: a deliberately
// tiny checker with its own .bench parser, its own JSON reader, its own
// Tarjan SCC and retime-graph construction, and zero linkage against any
// compiler library. The emitter here and the checker share only this
// documented format and the structural hash definition below.
//
// Structural hash: FNV-1a (64-bit, offset 14695981039346656037,
// prime 1099511628211) over the canonical line set of the netlist —
// "INPUT(<name>)" per PI, "OUTPUT(<name>)" per PO, and
// "<name> = <TYPE>(<fanin>,<fanin>,...)" per non-input gate with canonical
// upper-case type names and no spaces in the fanin list — sorted
// lexicographically and joined with '\n'. The hash is independent of file
// formatting, comment placement, and declaration order, but pins the
// structure: both sides compute it from their own parse.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/merced.h"

namespace merced {

inline constexpr const char* kCertificateSchema = "merced-cert-v1";

/// Identity block for the "run" object.
struct CertificateInfo {
  std::string tool = "merced_cli";
  std::string circuit;               ///< circuit name or .bench path
  std::string source = "heuristic";  ///< "heuristic" or "exact"
  std::uint64_t lk = 0;
  std::int64_t beta = 0;
};

/// Formatting-independent structural hash of a finalized netlist (see the
/// file comment for the exact definition the checker mirrors).
std::uint64_t structural_hash(const Netlist& netlist);

/// Serializes the merced-cert-v1 document for a *feasible* compile result.
/// `graph` and `sccs` must be the ones the compile ran on. Throws
/// std::invalid_argument when the result is infeasible (an infeasible
/// compile makes no certifiable claims).
void write_certificate(std::ostream& os, const Netlist& netlist,
                       const CircuitGraph& graph, const SccInfo& sccs,
                       const MercedResult& result, const CertificateInfo& info);

/// Convenience overload returning the document as a string.
std::string make_certificate(const Netlist& netlist, const CircuitGraph& graph,
                             const SccInfo& sccs, const MercedResult& result,
                             const CertificateInfo& info);

}  // namespace merced
