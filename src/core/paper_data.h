// Published numbers from the paper (Tables 10, 11, 12), carried verbatim so
// benches can print paper-vs-measured side by side.
#pragma once

#include <optional>
#include <span>
#include <string_view>

namespace merced::paper {

/// One row of Table 10 / Table 11 (partition results).
struct PartitionRow {
  std::string_view name;
  unsigned dffs;
  unsigned dffs_on_scc;
  unsigned cut_nets_on_scc;
  unsigned nets_cut;
  double cpu_seconds;  ///< SUN Sparc10; "< 0.05" recorded as 0.05
};

/// One row of Table 12 (A_CBIT / A_Total in %).
struct AreaRow {
  std::string_view name;
  double with_retiming_16;
  double without_retiming_16;
  double with_retiming_24;
  double without_retiming_24;
};

std::span<const PartitionRow> table10_lk16();
std::span<const PartitionRow> table11_lk24();
std::span<const AreaRow> table12();

std::optional<PartitionRow> table10_row(std::string_view name);
std::optional<PartitionRow> table11_row(std::string_view name);
std::optional<AreaRow> table12_row(std::string_view name);

}  // namespace merced::paper
