// PPET self-test session — the system of Figure 1(a).
//
// After Merced compiles a circuit, every partition (CUT) is surrounded by
// CBITs: the generating CBIT spans the CUT's ι input nets and runs in TPG
// mode; the capturing CBIT compacts the CUT's observed outputs in PSA mode.
// All CUTs are tested *concurrently*; one session lasts 2^max(ι) cycles
// (the widest CBIT dominates, Fig. 1b). A scan chain threads every CBIT for
// global initialization and signature read-out.
//
// This module materializes that flow on the simulator: it builds the CBIT
// network for a MercedResult, drives a full self-test session (optionally
// with an injected stuck-at fault), shifts the signatures out through the
// modeled scan chain, and compares them against the golden run — the
// complete BIST use-case a downstream adopter needs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bist/cbit.h"
#include "core/merced.h"
#include "graph/circuit_graph.h"
#include "sim/cone.h"
#include "sim/fault.h"

namespace merced {

/// One CUT's test fixture inside the session.
struct CutStation {
  std::size_t partition_index = 0;
  unsigned tpg_width = 0;       ///< = ι of the CUT (CBIT slice driving it)
  unsigned psa_width = 0;       ///< MISR width compacting its outputs
  std::uint64_t cycles = 0;     ///< 2^ι exhaustive sweep length
};

/// Result of one complete self-test session.
struct SessionResult {
  std::vector<std::uint64_t> signatures;  ///< per station, PSA state at end
  std::uint64_t cycles_run = 0;           ///< dominated by the widest CUT
  /// Signatures serialized through the scan chain (MSB-first per CBIT),
  /// exactly what a tester would shift out.
  std::vector<bool> scan_stream;
};

class PpetSession {
 public:
  /// Builds the CBIT network for a compiled result. `graph` must be the
  /// graph of the compiled netlist and outlive the session. `jobs` worker
  /// threads sweep the (mutually independent) CUT stations concurrently;
  /// signatures and scan stream are identical for every jobs value because
  /// stations never interact and read-out is serialized in station order.
  PpetSession(const CircuitGraph& graph, const MercedResult& result,
              unsigned psa_width = 16, std::size_t jobs = 1);

  /// Worker threads for run() (0 = all hardware threads).
  void set_jobs(std::size_t jobs) noexcept { jobs_ = jobs; }
  std::size_t jobs() const noexcept { return jobs_; }

  /// Lane width of the coverage kernel used by measure_coverage (kAuto =
  /// MERCED_SIMD override, then the widest supported backend). Verdicts are
  /// width-independent; this is purely a throughput knob.
  void set_simd(SimdWidth simd) noexcept { simd_ = simd; }
  SimdWidth simd() const noexcept { return simd_; }

  /// Installs one static FaultPlan per station (station order; see
  /// sim/fault.h), as produced by analyze::analyze_circuit over the same
  /// clustering. measure_coverage then sweeps only each plan's kSweep
  /// faults and resolves the rest (equivalence copy, dominance inference
  /// with residue re-simulation, untestable skip) — verdicts stay
  /// bit-identical to the plan-free sweep. Pass an empty vector to clear.
  /// Throws std::invalid_argument if the count or any plan's shape does not
  /// match the stations' fault universes.
  void set_fault_plans(std::vector<FaultPlan> plans);
  bool has_fault_plans() const noexcept { return !plans_.empty(); }

  std::size_t num_stations() const noexcept { return stations_.size(); }
  const CutStation& station(std::size_t i) const { return stations_.at(i); }

  /// The combinational cone of station `i`'s CUT — the object the SAT
  /// redundancy prover encodes (sat/redundancy.h).
  const ConeSimulator& cone(std::size_t i) const { return cones_.at(i); }

  /// Total testing time of the pipe: 2^max(ι) (Figure 1b).
  std::uint64_t session_cycles() const noexcept;

  /// Runs one self-test session. All TPG CBITs are initialized (via the
  /// modeled scan chain) to the all-zero state, every CUT is swept
  /// exhaustively and concurrently, and the PSA signatures are shifted out.
  /// If `fault` is set, it is injected into its CUT for the whole session.
  SessionResult run(const std::optional<Fault>& fault = std::nullopt) const;

  /// Convenience: golden vs faulty signature comparison. Returns true when
  /// the fault changes at least one signature (the tester flags the part).
  bool detects(const Fault& fault) const;

  /// Pseudo-exhaustive stuck-at coverage of every station's CUT, one
  /// CoverageResult per station (station order), computed with the SIMD
  /// fault-group kernel. The (station x fault-chunk) task grid is sorted
  /// most-expensive-first (2^ι x chunk faults) and executed by the
  /// work-stealing scheduler (runtime/work_steal.h), so one wide CUT no
  /// longer serializes the run and stragglers are stolen instead of waited
  /// on. Verdicts land in per-fault index-addressed slots and are reduced
  /// in station then fault order, making the result bit-identical for
  /// every jobs value and every SIMD width. Throws if any station is wider
  /// than `max_inputs`.
  std::vector<CoverageResult> measure_coverage(std::size_t max_inputs = 22) const;

  /// Scheduler diagnostics of the most recent measure_coverage sweep (zeros
  /// before the first). Scheduling-dependent — surfaced for the metrics
  /// artifact and health dashboards, never part of a coverage contract.
  const StealStats& last_steal_stats() const noexcept { return last_steal_stats_; }

 private:
  const CircuitGraph* graph_;
  std::vector<CutStation> stations_;
  std::vector<ConeSimulator> cones_;
  unsigned psa_width_;
  std::size_t jobs_ = 1;
  SimdWidth simd_ = SimdWidth::kAuto;
  std::vector<FaultPlan> plans_;         ///< per station, empty = plan-free
  mutable StealStats last_steal_stats_;  ///< measure_coverage is const
};

}  // namespace merced
