// Materializing the PPET design: inserting the test hardware into the
// netlist — what the Merced compiler ultimately emits.
//
// For every cut net the emitted circuit carries a multiplexed A_CELL
// (Fig. 3c): the cut data `d` feeds AND(d, test_en) → XOR(·, chain_in) →
// DFF, and a 2:1 MUX steers either the original net (normal mode,
// test_mode = 0) or the A_CELL's register (self-test mode) into the
// crossing sinks. The A_CELLs are chained in cut order (each XOR's second
// input is the previous A_CELL's register), forming the CBIT/scan spine.
//
// Invariants the tests verify:
//  * with test_mode = 0 the emitted circuit is cycle-exact equivalent to
//    the original;
//  * the emitted area equals the original plus 2.3 DFF (23 units) per cut
//    net — the exact "without retiming" figure of the Table 12 accounting.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/circuit_graph.h"
#include "netlist/netlist.h"
#include "partition/clustering.h"

namespace merced {

struct BistNetlist {
  Netlist netlist;                 ///< original + test hardware, finalized
  std::string test_mode_input;     ///< PI selecting self-test data paths
  std::string test_enable_input;   ///< PI gating CUT data into the A_CELLs
  std::vector<std::string> acell_registers;  ///< DFF names, in chain order
};

/// Emits the testable netlist with one multiplexed A_CELL per cut net of
/// `clustering` (`cut_nets` must be its cut set).
BistNetlist emit_bist_netlist(const CircuitGraph& graph,
                              const Clustering& clustering,
                              std::span<const NetId> cut_nets);

}  // namespace merced
