#include "core/certificate.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace merced {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

void write_name_array(std::ostream& os, const std::vector<std::string>& names) {
  os << '[';
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ',';
    os << '"';
    json_escape(os, names[i]);
    os << '"';
  }
  os << ']';
}

std::string net_name(const Netlist& nl, const CircuitGraph& g, NetId net) {
  return nl.gate(g.driver(net)).name;
}

}  // namespace

std::uint64_t structural_hash(const Netlist& nl) {
  std::vector<std::string> lines;
  lines.reserve(nl.size() + nl.outputs().size());
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& gate = nl.gate(id);
    if (gate.type == GateType::kInput) {
      lines.push_back("INPUT(" + gate.name + ")");
      continue;
    }
    std::string line = gate.name;
    line += " = ";
    line += to_string(gate.type);
    line += '(';
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i) line += ',';
      line += nl.gate(gate.fanins[i]).name;
    }
    line += ')';
    lines.push_back(std::move(line));
  }
  for (GateId id : nl.outputs()) {
    lines.push_back("OUTPUT(" + nl.gate(id).name + ")");
  }
  std::sort(lines.begin(), lines.end());
  std::uint64_t h = kFnvOffset;
  bool first = true;
  for (const std::string& line : lines) {
    if (!first) {
      h ^= static_cast<unsigned char>('\n');
      h *= kFnvPrime;
    }
    first = false;
    for (char c : line) {
      h ^= static_cast<unsigned char>(c);
      h *= kFnvPrime;
    }
  }
  return h;
}

void write_certificate(std::ostream& os, const Netlist& nl, const CircuitGraph& g,
                       const SccInfo& sccs, const MercedResult& r,
                       const CertificateInfo& info) {
  if (!r.feasible) {
    throw std::invalid_argument(
        "write_certificate: an infeasible compile makes no certifiable claims");
  }

  os << "{\n  \"schema\": \"" << kCertificateSchema << "\",\n";
  os << "  \"run\": {\"tool\": \"";
  json_escape(os, info.tool);
  os << "\", \"circuit\": \"";
  json_escape(os, info.circuit);
  os << "\", \"source\": \"";
  json_escape(os, info.source);
  os << "\", \"lk\": " << info.lk << ", \"beta\": " << info.beta << "},\n";

  char hash_hex[17];
  std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                static_cast<unsigned long long>(structural_hash(nl)));
  os << "  \"netlist\": {\"name\": \"";
  json_escape(os, nl.name());
  os << "\", \"pis\": " << nl.inputs().size() << ", \"dffs\": " << nl.dffs().size()
     << ", \"gates\": " << (nl.size() - nl.inputs().size() - nl.dffs().size())
     << ", \"hash\": \"fnv1a:" << hash_hex << "\"},\n";

  // Clusters: claimed ι plus members by name. PIs are never members.
  os << "  \"clusters\": [";
  for (std::size_t ci = 0; ci < r.partitions.clusters.size(); ++ci) {
    if (ci) os << ',';
    os << "\n    {\"iota\": " << r.partition_inputs.at(ci) << ", \"members\": ";
    std::vector<std::string> members;
    members.reserve(r.partitions.clusters[ci].size());
    for (NodeId v : r.partitions.clusters[ci]) members.push_back(nl.gate(v).name);
    write_name_array(os, members);
    os << '}';
  }
  os << "\n  ],\n";

  // Cut nets by name (net = driver gate name).
  std::vector<std::string> cut_names;
  cut_names.reserve(r.cut_net_ids.size());
  for (NetId net : r.cut_net_ids) cut_names.push_back(net_name(nl, g, net));
  os << "  \"cuts\": ";
  write_name_array(os, cut_names);
  os << ",\n";

  // Retiming: ρ keyed by vertex (non-register node) name, zero entries
  // omitted; the retimable/multiplexed split of the exact plan. The vertex
  // order of RetimeGraph is the non-register nodes in node-id order.
  os << "  \"retiming\": {\"rho\": {";
  {
    std::size_t vertex = 0;
    bool first = true;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.is_register(v)) continue;
      const std::size_t idx = vertex++;
      if (idx >= r.retiming.rho.size()) break;
      const std::int32_t value = r.retiming.rho[idx];
      if (value == 0) continue;
      if (!first) os << ',';
      first = false;
      os << '"';
      json_escape(os, nl.gate(v).name);
      os << "\":" << value;
    }
  }
  os << "},\n   \"retimable\": ";
  std::vector<std::string> retimable;
  for (NetId net : r.retiming.retimable) retimable.push_back(net_name(nl, g, net));
  write_name_array(os, retimable);
  os << ",\n   \"multiplexed\": ";
  std::vector<std::string> multiplexed;
  for (NetId net : r.retiming.multiplexed) multiplexed.push_back(net_name(nl, g, net));
  write_name_array(os, multiplexed);
  os << "},\n";

  // Eq. 2 witnesses: one row per non-trivial SCC λ, keyed by the
  // lexicographically smallest member name; f(λ) = functional DFFs on λ,
  // χ(λ) = cut nets on λ (make_cut_report census).
  struct Eq2Row {
    std::string rep;
    std::uint64_t dffs = 0;
    std::uint64_t cuts = 0;
  };
  std::vector<Eq2Row> rows(sccs.count());
  for (std::size_t s = 0; s < sccs.count(); ++s) {
    Eq2Row& row = rows[s];
    for (NodeId v : sccs.components[s]) {
      const std::string& name = nl.gate(v).name;
      if (row.rep.empty() || name < row.rep) row.rep = name;
    }
    row.dffs = sccs.dff_count[s];
    row.cuts = r.cuts.cuts_per_scc.at(s);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Eq2Row& a, const Eq2Row& b) { return a.rep < b.rep; });
  os << "  \"eq2\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) os << ',';
    os << "\n    {\"scc\": \"";
    json_escape(os, rows[i].rep);
    os << "\", \"dffs\": " << rows[i].dffs << ", \"cuts_on_scc\": " << rows[i].cuts
       << '}';
  }
  os << "\n  ],\n";

  os << "  \"area\": {\"retimable_cuts\": " << r.area.retimable_cuts
     << ", \"multiplexed_cuts\": " << r.area.multiplexed_cuts
     << ", \"cbit_area_with_retiming\": " << r.area.cbit_area_with_retiming()
     << ", \"cbit_area_without_retiming\": " << r.area.cbit_area_without_retiming()
     << "}\n}\n";
}

std::string make_certificate(const Netlist& nl, const CircuitGraph& g,
                             const SccInfo& sccs, const MercedResult& r,
                             const CertificateInfo& info) {
  std::ostringstream os;
  write_certificate(os, nl, g, sccs, r, info);
  return os.str();
}

}  // namespace merced
