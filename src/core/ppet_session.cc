#include "core/ppet_session.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "runtime/work_steal.h"

namespace merced {

PpetSession::PpetSession(const CircuitGraph& graph, const MercedResult& result,
                         unsigned psa_width, std::size_t jobs)
    : graph_(&graph), psa_width_(psa_width), jobs_(jobs) {
  if (psa_width < kMinLfsrDegree || psa_width > kMaxLfsrDegree) {
    throw std::invalid_argument("PpetSession: unsupported PSA width");
  }
  for (std::size_t ci = 0; ci < result.partitions.count(); ++ci) {
    ConeSimulator cone(graph, result.partitions, ci);
    if (cone.gates().empty() || cone.cut_inputs().size() < kMinLfsrDegree) {
      continue;  // register-only or trivial partitions need no session
    }
    const auto iota = static_cast<unsigned>(cone.cut_inputs().size());
    if (iota > kMaxLfsrDegree) {
      throw std::invalid_argument("PpetSession: CUT wider than 32 inputs");
    }
    CutStation st;
    st.partition_index = ci;
    st.tpg_width = iota;
    st.psa_width = psa_width;
    st.cycles = std::uint64_t{1} << iota;
    stations_.push_back(st);
    cones_.push_back(std::move(cone));
  }
}

std::uint64_t PpetSession::session_cycles() const noexcept {
  std::uint64_t cycles = 0;
  for (const CutStation& st : stations_) cycles = std::max(cycles, st.cycles);
  return cycles;
}

SessionResult PpetSession::run(const std::optional<Fault>& fault) const {
  MERCED_SPAN("session_run");
  SessionResult out;
  out.cycles_run = session_cycles();

  // Which station carries the fault (if any)?
  std::vector<const Fault*> station_fault(stations_.size(), nullptr);
  if (fault) {
    for (std::size_t s = 0; s < stations_.size(); ++s) {
      const auto gates = cones_[s].gates();
      if (std::find(gates.begin(), gates.end(), fault->gate) != gates.end()) {
        station_fault[s] = &*fault;
      }
    }
  }

  // Concurrent sweep. Stations are mutually independent — each owns its TPG
  // and PSA CBITs and its cone — so each one runs its full 2^ι sweep as one
  // work item; a station idles after its sweep in a real device, which here
  // simply means its work item ends. Signatures land in per-station slots,
  // so the result is identical for any jobs value.
  std::vector<Cbit> psas(stations_.size(), Cbit(psa_width_));
  ThreadPool pool(std::min(resolve_jobs(jobs_),
                           std::max<std::size_t>(stations_.size(), 1)));
  pool.parallel_for(stations_.size(), [&](std::size_t s) {
    MERCED_SPAN("station_sweep", s);
    const CutStation& st = stations_[s];
    // Global initialization: scan zero into this station's CBITs (Fig. 1a's
    // chain — serial in hardware, state-equivalent here).
    Cbit tpg(st.tpg_width);
    tpg.set_mode(CbitMode::kScan);
    for (unsigned b = 0; b < st.tpg_width; ++b) tpg.step(0, false);
    tpg.set_mode(CbitMode::kTpg);

    Cbit psa(st.psa_width);
    psa.set_mode(CbitMode::kScan);
    for (unsigned b = 0; b < st.psa_width; ++b) psa.step(0, false);
    psa.set_mode(CbitMode::kPsa);

    const ConeSimulator& cone = cones_[s];
    const std::size_t n = cone.cut_inputs().size();
    std::vector<std::uint64_t> in(n);
    ConeSimulator::Workspace ws;  // reused across the 2^ι sweep: zero
                                  // per-cycle heap allocation
    for (std::uint64_t cycle = 0; cycle < st.cycles; ++cycle) {
      for (std::size_t i = 0; i < n; ++i) {
        in[i] = (tpg.state() >> i) & 1 ? ~std::uint64_t{0} : 0;
      }
      const auto outputs = cone.eval(in, ws, station_fault[s]);
      std::uint64_t word = 0;
      for (std::size_t o = 0; o < outputs.size(); ++o) {
        word ^= (outputs[o] & 1) << (o % st.psa_width);
      }
      psa.step(word);
      tpg.step(0);
    }
    psas[s] = psa;
    MERCED_COUNT(obs::Counter::kSessionStationsSwept, 1);
    MERCED_COUNT(obs::Counter::kSessionCyclesRun, st.cycles);
  });

  // Signature read-out through the scan chain: shift every PSA out serially
  // (MSB first), concatenated in station order.
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    out.signatures.push_back(psas[s].state());
    psas[s].set_mode(CbitMode::kScan);
    for (unsigned b = 0; b < stations_[s].psa_width; ++b) {
      out.scan_stream.push_back(psas[s].scan_out());
      psas[s].step(0, false);
    }
  }
  return out;
}

bool PpetSession::detects(const Fault& fault) const {
  const SessionResult golden = run();
  const SessionResult faulty = run(fault);
  return golden.signatures != faulty.signatures;
}

std::vector<CoverageResult> PpetSession::measure_coverage(std::size_t max_inputs) const {
  MERCED_SPAN("measure_coverage");
  for (const CutStation& st : stations_) {
    if (st.tpg_width > max_inputs) {
      throw std::invalid_argument("PpetSession::measure_coverage: station CUT has " +
                                  std::to_string(st.tpg_width) + " inputs, cap is " +
                                  std::to_string(max_inputs));
    }
  }

  std::vector<std::vector<Fault>> faults(stations_.size());
  std::vector<std::vector<std::uint8_t>> detected(stations_.size());
  // With installed fault plans, only each station's kSweep faults enter the
  // task grid; sweep_faults/sweep_index hold the compacted list and its
  // mapping back into the universe (unused and empty when plan-free).
  const bool planned = !plans_.empty();
  std::vector<std::vector<Fault>> sweep_faults(stations_.size());
  std::vector<std::vector<std::uint32_t>> sweep_index(stations_.size());
  std::vector<std::vector<std::uint8_t>> sub_detected(stations_.size());
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    faults[s] = cones_[s].cluster_faults();
    detected[s].assign(faults[s].size(), 0);
    if (planned) {
      if (!plans_[s].valid_for(faults[s].size())) {
        throw std::invalid_argument(
            "PpetSession::measure_coverage: fault plan does not fit station " +
            std::to_string(s));
      }
      sweep_index[s].reserve(plans_[s].sweep_count());
      for (std::size_t i = 0; i < faults[s].size(); ++i) {
        if (plans_[s].action[i] == FaultPlan::Action::kSweep) {
          sweep_faults[s].push_back(faults[s][i]);
          sweep_index[s].push_back(static_cast<std::uint32_t>(i));
        }
      }
      sub_detected[s].assign(sweep_faults[s].size(), 0);
    }
  }
  const auto station_faults = [&](std::size_t s) -> const std::vector<Fault>& {
    return planned ? sweep_faults[s] : faults[s];
  };
  const auto station_detected = [&](std::size_t s) {
    return planned ? sub_detected[s].data() : detected[s].data();
  };

  // Two-level task grid: every station's fault list splits into
  // coverage_chunks(faults, jobs) contiguous ranges, and every
  // (station, range) pair is one work item. The grid depends only on the
  // station shapes and the jobs value — never on timing. Items are sorted
  // most-expensive-first (a 2^ι sweep over the chunk's faults) so the
  // work-stealing scheduler's round-robin deal spreads the heavy items and
  // stealing only mops up the tail; per-fault verdict slots are disjoint
  // across items, so any steal interleaving reduces to the same result.
  struct Item {
    std::size_t station;
    IndexRange range;
    std::uint64_t cost;
  };
  const std::size_t jobs = resolve_jobs(jobs_);
  std::vector<Item> items;
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    const std::size_t n = station_faults(s).size();
    const std::size_t chunks = coverage_chunks(n, jobs);
    for (const IndexRange& r : split_ranges(n, chunks)) {
      items.push_back(Item{s, r, stations_[s].cycles * (r.end - r.begin)});
    }
  }
  std::stable_sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    if (a.station != b.station) return a.station < b.station;
    return a.range.begin < b.range.begin;
  });

  const SimdWidth width = resolve_simd_width(simd_);
  ThreadPool pool(std::min(jobs, std::max<std::size_t>(items.size(), 1)));
  std::vector<ConeSimulator::Workspace> workspaces(pool.size());
  last_steal_stats_ = parallel_for_stealing(
      pool, items.size(), [&](std::size_t i, std::size_t slot) {
        const Item& it = items[i];
        MERCED_SPAN("cut_sweep", it.station);
        exhaustive_detect_range_simd(cones_[it.station], station_faults(it.station),
                                     it.range, station_detected(it.station), width,
                                     workspaces[slot]);
      });

  // Plan resolution per station: scatter the compacted verdicts back into
  // the universe, then infer/residue/copy (sim/cone.h resolve_fault_plan).
  // Residue re-simulation runs per station on one thread — the residue is
  // the rare all-witnesses-undetected tail, not a bulk workload.
  std::vector<CoverageResult> out(stations_.size());
  if (planned) {
    CoverageOptions residue_opt;
    residue_opt.jobs = 1;
    residue_opt.simd = simd_;
    for (std::size_t s = 0; s < stations_.size(); ++s) {
      for (std::size_t j = 0; j < sweep_index[s].size(); ++j) {
        detected[s][sweep_index[s][j]] = sub_detected[s][j];
      }
      resolve_fault_plan(cones_[s], plans_[s], faults[s], detected[s].data(),
                         residue_opt, out[s]);
    }
  }

  // Deterministic reduction in station order, then fault order.
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    out[s].total_faults = faults[s].size();
    if (!planned) out[s].swept_faults = faults[s].size();
    for (std::size_t fi = 0; fi < faults[s].size(); ++fi) {
      if (detected[s][fi]) {
        ++out[s].detected;
      } else {
        out[s].undetected.push_back(faults[s][fi]);
      }
    }
  }
  return out;
}

void PpetSession::set_fault_plans(std::vector<FaultPlan> plans) {
  if (!plans.empty() && plans.size() != stations_.size()) {
    throw std::invalid_argument("PpetSession::set_fault_plans: expected " +
                                std::to_string(stations_.size()) + " plans, got " +
                                std::to_string(plans.size()));
  }
  for (std::size_t s = 0; s < plans.size(); ++s) {
    if (!plans[s].valid_for(cones_[s].cluster_faults().size())) {
      throw std::invalid_argument(
          "PpetSession::set_fault_plans: plan does not fit station " + std::to_string(s));
    }
  }
  plans_ = std::move(plans);
}

}  // namespace merced
