// CBIT area accounting — paper §4.2 (Table 12, Figure 8) and Eq. 4.
//
// With retiming, each retimable cut net costs an A_CELL conversion of an
// existing flip-flop: the 3 extra gates = 0.9 DFF (Fig. 3b). Excess cut
// nets on SCCs (beyond what legal retiming can supply, Eq. 2/6) need a new
// A_CELL plus a 2:1 MUX = 2.3 DFF (Fig. 3c). Without retiming, functional
// registers stay put, so *every* internal cut net costs a full multiplexed
// A_CELL = 2.3 DFF. The paper reports A_CBIT / A_Total where
// A_Total = A_circuit + A_CBIT.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/area_model.h"

namespace merced {

struct AreaReport {
  AreaUnits circuit_area = 0;         ///< Table 9 estimated area
  /// Paper accounting (Table 12): per-SCC aggregate — multiplexed cuts are
  /// Σ_λ max(0, χ(λ) − f(λ)), everything else is a retimed conversion.
  std::size_t retimable_cuts = 0;
  std::size_t multiplexed_cuts = 0;
  /// Exact legal-retiming plan (per-cycle Eq. 2 analysis; stricter than the
  /// paper's aggregate, provided for users who want a provably legal ρ).
  std::size_t exact_retimable_cuts = 0;
  std::size_t exact_multiplexed_cuts = 0;

  /// CBIT area in units: retimable*9 + multiplexed*23.
  AreaUnits cbit_area_with_retiming() const;
  /// CBIT area in units without retiming: (retimable+multiplexed)*23.
  AreaUnits cbit_area_without_retiming() const;

  /// A_CBIT / A_Total in percent, Table 12 columns.
  double pct_with_retiming() const;
  double pct_without_retiming() const;

  /// Percentage-point saving (Table 12 column difference).
  double saving_points() const { return pct_without_retiming() - pct_with_retiming(); }
  /// Relative CBIT-area reduction (the paper's "area reduction").
  double saving_relative() const;
};

/// Σ of Eq. 4: total cost of the assigned CBITs, choosing for each
/// partition the smallest standard length (4/8/12/16/24/32) that fits its
/// input count, priced by the Table 1 model. Partitions wider than 32
/// inputs are priced pro-rata at the 32-bit per-bit cost.
struct CbitAssignmentCost {
  double total_area_dff = 0;              ///< Σ p_k n_k in DFF multiples
  std::vector<std::size_t> count_by_type; ///< n_k for d1..d6 (+1 slot for >32)
  std::size_t total_cbits = 0;
};

CbitAssignmentCost assign_cbit_cost(const std::vector<std::size_t>& partition_inputs);

}  // namespace merced
