#include "core/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace merced {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TablePrinter::num(std::size_t v) { return std::to_string(v); }

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) line(row);
}

}  // namespace merced
