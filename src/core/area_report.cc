#include "core/area_report.h"

#include "bist/cbit_area.h"

namespace merced {

AreaUnits AreaReport::cbit_area_with_retiming() const {
  return static_cast<AreaUnits>(retimable_cuts) * kACellFromDffArea +
         static_cast<AreaUnits>(multiplexed_cuts) * kACellWithMuxArea;
}

AreaUnits AreaReport::cbit_area_without_retiming() const {
  return static_cast<AreaUnits>(retimable_cuts + multiplexed_cuts) * kACellWithMuxArea;
}

namespace {

double pct(AreaUnits cbit, AreaUnits circuit) {
  if (cbit == 0) return 0.0;
  return 100.0 * static_cast<double>(cbit) / static_cast<double>(circuit + cbit);
}

}  // namespace

double AreaReport::pct_with_retiming() const {
  return pct(cbit_area_with_retiming(), circuit_area);
}

double AreaReport::pct_without_retiming() const {
  return pct(cbit_area_without_retiming(), circuit_area);
}

double AreaReport::saving_relative() const {
  const AreaUnits without = cbit_area_without_retiming();
  if (without == 0) return 0.0;
  return 100.0 * static_cast<double>(without - cbit_area_with_retiming()) /
         static_cast<double>(without);
}

CbitAssignmentCost assign_cbit_cost(const std::vector<std::size_t>& partition_inputs) {
  CbitAssignmentCost cost;
  cost.count_by_type.assign(7, 0);
  for (std::size_t inputs : partition_inputs) {
    if (inputs == 0) continue;  // register-only partition: no CBIT needed
    ++cost.total_cbits;
    if (auto len = smallest_standard_length(inputs)) {
      const auto p = published_area_per_dff(*len);
      cost.total_area_dff += p ? *p : modeled_area_per_dff(*len);
      // d1..d6 index from length.
      unsigned k = 0;
      for (unsigned l : {4u, 8u, 12u, 16u, 24u, 32u}) {
        if (*len == l) break;
        ++k;
      }
      ++cost.count_by_type[k];
    } else {
      // Oversized (infeasible leftovers): pro-rata at the 32-bit rate.
      cost.total_area_dff +=
          modeled_area_per_dff(32) / 32.0 * static_cast<double>(inputs);
      ++cost.count_by_type[6];
    }
  }
  return cost;
}

}  // namespace merced
