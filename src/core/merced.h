// Merced — the BIST compiler (paper §3, Table 2).
//
//   STEP 1  Construct the graph representation G(V, E).
//   STEP 2  Identify strongly connected components, SCC(G).
//   STEP 3  Assign_CBIT(G, Δ, α, l_k) with the Eq. 6 retiming budget:
//             Saturate_Network → Make_Group → Assign_CBIT,
//           then plan legal retiming for the resulting cut set.
//   STEP 4  Return the partition, cut statistics, retiming plan and the
//           CBIT area report (with/without retiming).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "core/area_report.h"
#include "flow/saturate_network.h"
#include "graph/scc.h"
#include "netlist/stats.h"
#include "partition/clustering.h"
#include "partition/make_group.h"
#include "retiming/cut_retiming.h"
#include "verify/verify.h"

namespace merced {

struct MercedConfig {
  std::size_t lk = 16;        ///< CBIT length / input constraint (Eq. 5)
  int beta = 50;              ///< SCC cut-budget multiplier (Eq. 6, §4.1)
  SaturateParams flow;        ///< b=1, min_visit=20, α=4, Δ=0.01 (§4.1)

  /// Multi-start width K: run K independent saturations (seeded via
  /// multi_start_seed) and keep the congestion ranking whose Make_Group
  /// output wins on (feasible, fewest cut nets, fewest cut nets on SCCs,
  /// smallest max ι, lowest start index) — the documented deterministic
  /// tie-break. The SCC term prefers, at equal cut count, the candidate
  /// whose cuts avoid feedback loops (cheaper to seal by retiming; see
  /// EXPERIMENTS.md "Heuristic vs exact"). K=1 reproduces the historical
  /// single-start pipeline exactly.
  std::size_t multi_start = 1;
  /// Worker threads for the saturation/evaluation fan-out (0 = hardware).
  std::size_t jobs = 1;
};

struct MercedResult {
  CircuitStats stats;                       ///< Table 9 row of the input
  std::size_t num_sccs = 0;
  std::size_t dffs_on_scc = 0;              ///< Tables 10/11 column 3
  bool feasible = true;                     ///< all partitions meet ι ≤ lk
  Clustering partitions;                    ///< final P (after Assign_CBIT)
  std::vector<std::size_t> partition_inputs;///< ι(π) per partition
  std::vector<NetId> cut_net_ids;           ///< internal cut nets
  CutReport cuts;                           ///< nets cut / cut nets on SCC
  CutRetimingPlan retiming;                 ///< retimable vs multiplexed
  AreaReport area;                          ///< Table 12 numbers
  CbitAssignmentCost cbit_cost;             ///< Σ of Eq. 4
  double saturate_seconds = 0;
  double total_seconds = 0;                 ///< Tables 10/11 "CPU time"
  std::size_t flow_iterations = 0;
  std::size_t num_starts = 1;               ///< multi-start candidates evaluated
  std::size_t chosen_start = 0;             ///< winning start index
};

/// STEP 1–3a artifacts, reusable across lk values (the flow saturation does
/// not depend on the input constraint). Holds one saturation per multi-start
/// candidate; compile() scores all of them against the lk at hand.
struct PreparedCircuit {
  const Netlist* netlist = nullptr;
  CircuitGraph graph;
  SccInfo sccs;
  std::vector<SaturationResult> saturations;  ///< indexed by start
  double saturate_seconds = 0;                ///< wall time of the whole fan-out

  PreparedCircuit(const Netlist& nl, const SaturateParams& flow,
                  std::size_t num_starts = 1, std::size_t jobs = 1);

  /// The first (base-seed) candidate — the historical single-start result.
  const SaturationResult& saturation() const { return saturations.front(); }
};

/// Runs the full pipeline on a finalized netlist.
MercedResult compile(const Netlist& netlist, const MercedConfig& config);

/// Runs STEP 3b–4 on prepared artifacts (cheap to repeat per lk).
MercedResult compile(const PreparedCircuit& prepared, const MercedConfig& config);

/// Human-readable report (used by the CLI example).
void print_report(std::ostream& os, const MercedResult& result);

/// Static verification of a compile result (see verify/verify.h for the
/// rule catalog). Rebuilds the graph, SCC and retiming views from the
/// netlist so every count is recomputed independently of the compile that
/// produced `result`. Debug builds run the same checks inside compile()
/// and assert a clean report.
verify::Report verify_result(const Netlist& netlist, const MercedResult& result,
                             const MercedConfig& config);

}  // namespace merced
