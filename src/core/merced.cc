#include "core/merced.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <ostream>

#include "graph/circuit_graph.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "netlist/area_model.h"
#include "partition/assign_cbit.h"
#include "retiming/retime_graph.h"

namespace merced {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

verify::CompiledView make_view(const MercedResult& r, std::size_t lk) {
  verify::CompiledView view;
  view.partitions = &r.partitions;
  view.partition_inputs = r.partition_inputs;
  view.cut_net_ids = r.cut_net_ids;
  view.retiming = &r.retiming;
  view.feasible = r.feasible;
  view.lk = lk;
  view.area_retimable_cuts = r.area.retimable_cuts;
  view.area_multiplexed_cuts = r.area.multiplexed_cuts;
  view.area_exact_retimable_cuts = r.area.exact_retimable_cuts;
  view.area_exact_multiplexed_cuts = r.area.exact_multiplexed_cuts;
  return view;
}

#ifndef NDEBUG
/// Debug-build invariant: every compile result passes its own static
/// verification, so the whole test suite doubles as checker fixtures.
bool result_verifies_clean(const CircuitGraph& graph, const RetimeGraph& rgraph,
                           const SccInfo& sccs, const MercedResult& r, std::size_t lk) {
  const verify::Report report =
      verify::verify_artifact(graph, rgraph, sccs, make_view(r, lk));
  if (report.clean()) return true;
  for (const verify::Diagnostic& d : report.findings) {
    if (d.severity == verify::Severity::kError) {
      std::cerr << "[merced verify] " << verify::format_diagnostic(d) << "\n";
    }
  }
  return false;
}
#endif

}  // namespace

PreparedCircuit::PreparedCircuit(const Netlist& nl, const SaturateParams& flow,
                                 std::size_t num_starts, std::size_t jobs)
    : netlist(&nl), graph(nl), sccs(find_sccs(graph)) {
  if (num_starts == 0) throw std::invalid_argument("PreparedCircuit: num_starts must be > 0");
  MERCED_SPAN("prepare_circuit");
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool pool(std::min(resolve_jobs(jobs), num_starts));
  saturations = saturate_network_multistart(graph, flow, num_starts, pool);
  saturate_seconds = seconds_since(t0);
}

MercedResult compile(const Netlist& netlist, const MercedConfig& config) {
  const PreparedCircuit prepared(netlist, config.flow, config.multi_start, config.jobs);
  return compile(prepared, config);
}

MercedResult compile(const PreparedCircuit& prepared, const MercedConfig& config) {
  MERCED_SPAN("compile");
  const auto t_start = std::chrono::steady_clock::now();
  const bool verbose = std::getenv("MERCED_VERBOSE") != nullptr;
  auto t_stage = t_start;
  auto stage = [&](const char* name) {
    if (verbose) {
      std::cerr << "[merced] " << name << ": " << seconds_since(t_stage) << " s\n";
    }
    t_stage = std::chrono::steady_clock::now();
  };

  const Netlist& netlist = *prepared.netlist;
  const CircuitGraph& graph = prepared.graph;
  const SccInfo& sccs = prepared.sccs;

  MercedResult r;
  r.stats = compute_stats(netlist);
  r.num_sccs = sccs.count();
  r.dffs_on_scc = static_cast<std::size_t>(sccs.total_dffs_on_scc());
  r.saturate_seconds = prepared.saturate_seconds;
  r.num_starts = prepared.saturations.size();
  stage("prepare (graph+scc reused)");

  // STEP 3b+3c: clustering and CBIT assignment — once per multi-start
  // candidate. Each candidate runs the full downstream (Make_Group →
  // Assign_CBIT → cut census) because the greedy merge can reorder
  // candidates: fewer Make_Group cuts does not imply fewer final cuts. The
  // winner is chosen by a total order scanned in start-index order, so the
  // selection depends only on the saturation seeds, never on thread count
  // (DESIGN.md "Parallel runtime").
  MakeGroupParams mg;
  mg.lk = config.lk;
  mg.beta = config.beta;

  struct Candidate {
    bool feasible = true;
    AssignCbitResult assigned;
    std::vector<NetId> cut_net_ids;
    CutReport cuts;
    std::size_t max_iota = 0;
  };
  ThreadPool pool(std::min(resolve_jobs(config.jobs), prepared.saturations.size()));
  std::vector<Candidate> candidates = parallel_map<Candidate>(
      pool, prepared.saturations.size(), [&](std::size_t k) {
        MERCED_SPAN("candidate", k);
        Candidate c;
        const MakeGroupResult groups = make_group(graph, sccs, prepared.saturations[k], mg);
        c.feasible = groups.feasible;
        c.assigned = assign_cbit(graph, groups.clustering, config.lk);
        c.cut_net_ids = cut_nets(graph, c.assigned.partitions);
        c.cuts = make_cut_report(graph, c.assigned.partitions, sccs);
        for (std::size_t iota : c.assigned.input_counts) {
          c.max_iota = std::max(c.max_iota, iota);
        }
        return c;
      });

  // Deterministic merge: feasible beats infeasible, then fewest cut nets,
  // then fewest cut nets on SCCs, then smallest worst-case ι (the lk
  // slack), then lowest start index. The SCC tie-break was added after the
  // exact-solver gap study (EXPERIMENTS.md "Heuristic vs exact"): among
  // equal-cut candidates, cuts that land on feedback loops are the ones
  // Eq. 2 may force into the 23-unit multiplexed A_CELL instead of a
  // 9-unit retimed conversion, so preferring the candidate with fewer
  // SCC cuts lowers CBIT area at identical cut count.
  std::size_t best = 0;
  auto better = [](const Candidate& a, const Candidate& b) {
    if (a.feasible != b.feasible) return a.feasible;
    if (a.cuts.nets_cut != b.cuts.nets_cut) return a.cuts.nets_cut < b.cuts.nets_cut;
    if (a.cuts.cut_nets_on_scc != b.cuts.cut_nets_on_scc) {
      return a.cuts.cut_nets_on_scc < b.cuts.cut_nets_on_scc;
    }
    return a.max_iota < b.max_iota;
  };
  for (std::size_t k = 1; k < candidates.size(); ++k) {
    if (better(candidates[k], candidates[best])) best = k;
  }
  Candidate& won = candidates[best];
  r.chosen_start = best;
  r.flow_iterations = prepared.saturations[best].iterations;
  r.feasible = won.feasible;
  r.partitions = std::move(won.assigned.partitions);
  r.partition_inputs = std::move(won.assigned.input_counts);
  r.cut_net_ids = std::move(won.cut_net_ids);
  r.cuts = won.cuts;
  stage("make_group + assign_cbit (multi-start merge)");

  // STEP 3d: legal retiming plan for the cut set.
  const RetimeGraph rgraph(graph);
  r.retiming = plan_cut_retiming(graph, rgraph, sccs, r.cut_net_ids, r.partitions);
  stage("plan_cut_retiming");

  // STEP 4: area report. Table 12 uses the paper's per-SCC aggregate
  // accounting; the exact per-cycle plan is reported alongside.
  r.area.circuit_area = r.stats.estimated_area;
  const std::size_t total_cuts = r.cut_net_ids.size();
  r.area.multiplexed_cuts = std::min(total_cuts, r.retiming.scc_aggregate_demotions);
  r.area.retimable_cuts = total_cuts - r.area.multiplexed_cuts;
  r.area.exact_retimable_cuts = r.retiming.retimable.size();
  r.area.exact_multiplexed_cuts = r.retiming.multiplexed.size();
  r.cbit_cost = assign_cbit_cost(r.partition_inputs);

  r.total_seconds = prepared.saturate_seconds + seconds_since(t_start);
#ifndef NDEBUG
  assert(result_verifies_clean(graph, rgraph, sccs, r, config.lk));
#endif
  return r;
}

verify::Report verify_result(const Netlist& netlist, const MercedResult& result,
                             const MercedConfig& config) {
  MERCED_SPAN("verify_result");
  const CircuitGraph graph(netlist);
  const RetimeGraph rgraph(graph);
  const SccInfo sccs = find_sccs(graph);
  return verify::verify_artifact(graph, rgraph, sccs, make_view(result, config.lk));
}

void print_report(std::ostream& os, const MercedResult& r) {
  os << "=== Merced report: " << r.stats.name << " ===\n"
     << "  circuit: PI=" << r.stats.num_inputs << " DFF=" << r.stats.num_dffs
     << " gates=" << r.stats.num_gates << " INV=" << r.stats.num_invs
     << " area=" << r.stats.estimated_area << "\n"
     << "  SCCs: " << r.num_sccs << " (DFFs on SCC: " << r.dffs_on_scc << ")\n"
     << "  partitions: " << r.partitions.count()
     << (r.feasible ? "" : "  [INFEASIBLE: some partition exceeds lk]") << "\n"
     << "  nets cut: " << r.cuts.nets_cut << " (on SCC: " << r.cuts.cut_nets_on_scc
     << ")\n"
     << "  retiming (paper aggregate): " << r.area.retimable_cuts << " retimable, "
     << r.area.multiplexed_cuts << " multiplexed\n"
     << "  retiming (exact legal plan): " << r.area.exact_retimable_cuts
     << " retimable, " << r.area.exact_multiplexed_cuts << " multiplexed\n"
     << "  CBIT area: " << r.area.cbit_area_with_retiming() << " units w/ retiming ("
     << r.area.pct_with_retiming() << "% of total), "
     << r.area.cbit_area_without_retiming() << " units w/o ("
     << r.area.pct_without_retiming() << "%)\n"
     << "  CBITs assigned: " << r.cbit_cost.total_cbits
     << ", cost = " << r.cbit_cost.total_area_dff << " DFF-equivalents\n"
     << "  CPU: " << r.total_seconds << " s (saturation " << r.saturate_seconds
     << " s, " << r.flow_iterations << " flow trees)\n";
  if (r.num_starts > 1) {
    os << "  multi-start: " << r.num_starts << " candidates, start #" << r.chosen_start
       << " selected\n";
  }
}

}  // namespace merced
