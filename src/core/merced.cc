#include "core/merced.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <ostream>

#include "graph/circuit_graph.h"
#include "netlist/area_model.h"
#include "partition/assign_cbit.h"
#include "retiming/retime_graph.h"

namespace merced {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

PreparedCircuit::PreparedCircuit(const Netlist& nl, const SaturateParams& flow)
    : netlist(&nl), graph(nl), sccs(find_sccs(graph)) {
  const auto t0 = std::chrono::steady_clock::now();
  saturation = saturate_network(graph, flow);
  saturate_seconds = seconds_since(t0);
}

MercedResult compile(const Netlist& netlist, const MercedConfig& config) {
  const PreparedCircuit prepared(netlist, config.flow);
  return compile(prepared, config);
}

MercedResult compile(const PreparedCircuit& prepared, const MercedConfig& config) {
  const auto t_start = std::chrono::steady_clock::now();
  const bool verbose = std::getenv("MERCED_VERBOSE") != nullptr;
  auto t_stage = t_start;
  auto stage = [&](const char* name) {
    if (verbose) {
      std::cerr << "[merced] " << name << ": " << seconds_since(t_stage) << " s\n";
    }
    t_stage = std::chrono::steady_clock::now();
  };

  const Netlist& netlist = *prepared.netlist;
  const CircuitGraph& graph = prepared.graph;
  const SccInfo& sccs = prepared.sccs;
  const SaturationResult& sat = prepared.saturation;

  MercedResult r;
  r.stats = compute_stats(netlist);
  r.num_sccs = sccs.count();
  r.dffs_on_scc = static_cast<std::size_t>(sccs.total_dffs_on_scc());
  r.saturate_seconds = prepared.saturate_seconds;
  r.flow_iterations = sat.iterations;
  stage("prepare (graph+scc reused)");

  // STEP 3b: input-constraint clustering.
  MakeGroupParams mg;
  mg.lk = config.lk;
  mg.beta = config.beta;
  const MakeGroupResult groups = make_group(graph, sccs, sat, mg);
  r.feasible = groups.feasible;
  stage("make_group");

  // STEP 3c: greedy CBIT assignment (cluster merging).
  AssignCbitResult assigned = assign_cbit(graph, groups.clustering, config.lk);
  r.partitions = std::move(assigned.partitions);
  r.partition_inputs = std::move(assigned.input_counts);
  stage("assign_cbit");

  // Cut census.
  r.cut_net_ids = cut_nets(graph, r.partitions);
  r.cuts = make_cut_report(graph, r.partitions, sccs);
  stage("cut_census");

  // STEP 3d: legal retiming plan for the cut set.
  const RetimeGraph rgraph(graph);
  r.retiming = plan_cut_retiming(graph, rgraph, sccs, r.cut_net_ids, r.partitions);
  stage("plan_cut_retiming");

  // STEP 4: area report. Table 12 uses the paper's per-SCC aggregate
  // accounting; the exact per-cycle plan is reported alongside.
  r.area.circuit_area = r.stats.estimated_area;
  const std::size_t total_cuts = r.cut_net_ids.size();
  r.area.multiplexed_cuts = std::min(total_cuts, r.retiming.scc_aggregate_demotions);
  r.area.retimable_cuts = total_cuts - r.area.multiplexed_cuts;
  r.area.exact_retimable_cuts = r.retiming.retimable.size();
  r.area.exact_multiplexed_cuts = r.retiming.multiplexed.size();
  r.cbit_cost = assign_cbit_cost(r.partition_inputs);

  r.total_seconds = prepared.saturate_seconds + seconds_since(t_start);
  return r;
}

void print_report(std::ostream& os, const MercedResult& r) {
  os << "=== Merced report: " << r.stats.name << " ===\n"
     << "  circuit: PI=" << r.stats.num_inputs << " DFF=" << r.stats.num_dffs
     << " gates=" << r.stats.num_gates << " INV=" << r.stats.num_invs
     << " area=" << r.stats.estimated_area << "\n"
     << "  SCCs: " << r.num_sccs << " (DFFs on SCC: " << r.dffs_on_scc << ")\n"
     << "  partitions: " << r.partitions.count()
     << (r.feasible ? "" : "  [INFEASIBLE: some partition exceeds lk]") << "\n"
     << "  nets cut: " << r.cuts.nets_cut << " (on SCC: " << r.cuts.cut_nets_on_scc
     << ")\n"
     << "  retiming (paper aggregate): " << r.area.retimable_cuts << " retimable, "
     << r.area.multiplexed_cuts << " multiplexed\n"
     << "  retiming (exact legal plan): " << r.area.exact_retimable_cuts
     << " retimable, " << r.area.exact_multiplexed_cuts << " multiplexed\n"
     << "  CBIT area: " << r.area.cbit_area_with_retiming() << " units w/ retiming ("
     << r.area.pct_with_retiming() << "% of total), "
     << r.area.cbit_area_without_retiming() << " units w/o ("
     << r.area.pct_without_retiming() << "%)\n"
     << "  CBITs assigned: " << r.cbit_cost.total_cbits
     << ", cost = " << r.cbit_cost.total_area_dff << " DFF-equivalents\n"
     << "  CPU: " << r.total_seconds << " s (saturation " << r.saturate_seconds
     << " s, " << r.flow_iterations << " flow trees)\n";
}

}  // namespace merced
