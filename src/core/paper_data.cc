#include "core/paper_data.h"

#include <array>

namespace merced::paper {

namespace {

constexpr std::array<PartitionRow, 17> kTable10 = {{
    {"s510", 6, 6, 77, 92, 0.1},
    {"s420.1", 16, 16, 0, 8, 0.05},
    {"s641", 19, 15, 19, 28, 0.05},
    {"s713", 19, 15, 24, 34, 0.05},
    {"s820", 5, 5, 68, 88, 0.05},
    {"s832", 5, 5, 77, 96, 0.05},
    {"s838.1", 32, 32, 0, 23, 0.05},
    {"s1423", 74, 71, 53, 65, 0.05},
    {"s5378", 179, 124, 283, 420, 0.6},
    {"s9234.1", 211, 172, 497, 700, 1.2},
    {"s9234", 228, 173, 471, 649, 4.9},
    {"s13207.1", 638, 462, 794, 975, 3.3},
    {"s13207", 669, 463, 817, 978, 2.9},
    {"s15850.1", 534, 487, 720, 1014, 2.0},
    {"s35932", 1728, 1728, 2881, 2926, 191.6},
    {"s38417", 1636, 1166, 1703, 2506, 66.9},
    {"s38584.1", 1426, 1424, 3110, 3322, 97.9},
}};

constexpr std::array<PartitionRow, 10> kTable11 = {{
    {"s641", 19, 15, 12, 17, 0.05},
    {"s713", 19, 15, 32, 38, 0.05},
    {"s5378", 179, 124, 254, 392, 0.4},
    {"s9234.1", 211, 172, 379, 531, 1.0},
    {"s13207.1", 638, 462, 749, 931, 10.7},
    {"s13207", 669, 463, 689, 845, 4.8},
    {"s15850.1", 534, 487, 602, 872, 18.1},
    {"s35932", 1728, 1728, 2639, 2667, 85.4},
    {"s38417", 1636, 1166, 1555, 2279, 60.4},
    {"s38584.1", 1426, 1424, 2593, 2764, 95.0},
}};

constexpr std::array<AreaRow, 17> kTable12 = {{
    {"s510", 78.8, 80.6, 0, 0},
    {"s420.1", 19.7, 24.2, 0, 0},
    {"s641", 18.9, 45.4, 13.2, 33.5},
    {"s713", 27.4, 48.5, 33.9, 51.3},
    {"s820", 67.2, 69.7, 0, 0},
    {"s832", 69.0, 71.2, 0, 0},
    {"s838.1", 25.6, 30.9, 0, 0},
    {"s1423", 22.5, 41.8, 0, 0},
    {"s5378", 46.8, 62.4, 43.4, 60.8},
    {"s9234.1", 49.3, 60.1, 38.8, 53.4},
    {"s9234", 45.5, 57.9, 0, 0},
    {"s13207.1", 30.2, 55.7, 27.3, 54.5},
    {"s13207", 34.4, 55.4, 26.4, 51.7},
    {"s15850.1", 32.9, 54.0, 24.9, 50.3},
    {"s35932", 36.7, 58.8, 31.3, 56.5},
    {"s38417", 27.1, 54.0, 21.5, 51.6},
    {"s38584.1", 45.3, 59.8, 36.8, 55.3},
}};

template <typename Rows>
auto find_row(const Rows& rows, std::string_view name)
    -> std::optional<typename Rows::value_type> {
  for (const auto& r : rows) {
    if (r.name == name) return r;
  }
  return std::nullopt;
}

}  // namespace

std::span<const PartitionRow> table10_lk16() { return kTable10; }
std::span<const PartitionRow> table11_lk24() { return kTable11; }
std::span<const AreaRow> table12() { return kTable12; }

std::optional<PartitionRow> table10_row(std::string_view name) {
  return find_row(kTable10, name);
}
std::optional<PartitionRow> table11_row(std::string_view name) {
  return find_row(kTable11, name);
}
std::optional<AreaRow> table12_row(std::string_view name) {
  return find_row(kTable12, name);
}

}  // namespace merced::paper
