// Minimal fixed-width text table printer for benches and examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace merced {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cells are stringified by the caller.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` decimals.
  static std::string num(double v, int precision = 1);
  static std::string num(std::size_t v);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace merced
