// SIMD width model of the coverage kernel — lane batching, pattern fill,
// and runtime backend selection.
//
// The event-driven kernel sweeps 2^ι patterns in batches of W parallel
// lanes, where one "lane word" is W/64 contiguous uint64s (slot-major:
// value slot s occupies words [s*words, (s+1)*words)). W is a *semantic*
// batching width: every backend sweeps the identical pattern space and
// must produce bit-identical verdicts; wider words just cut the batch
// count by W/64 and let the hardware chew 256/512 bits per op.
//
// Lane-validity contract (generalizes cone.h's 64-lane contract): the
// pattern index of lane l in batch b is b*W + l; input bit i of that
// pattern depends only on l for i < log2(W) and only on b otherwise. For a
// CUT with n < log2(W) inputs, lane l >= 2^n replays pattern l mod 2^n
// bit-for-bit, so detection masks (wide_lane_mask_word) are hygiene, not
// semantics — exactly as at width 64.
//
// Backend selection: width 64 is always available; widths 256/512 require
// AVX2 / AVX-512F at runtime (the kernel entry points carry GCC/clang
// target attributes, so one portable binary dispatches by CPUID — no
// per-file -mavx flags, no ODR hazards). resolve_simd_width() turns a
// user request (or kAuto) into a concrete supported width, honouring the
// MERCED_SIMD environment override (used by the CI kernel matrix to force
// every backend through the same test suite).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace merced {

/// Requested or resolved lane width of the coverage kernel.
enum class SimdWidth : std::uint16_t {
  kAuto = 0,  ///< pick the widest supported backend (after MERCED_SIMD)
  k64 = 64,   ///< scalar uint64 lanes (always supported)
  k256 = 256, ///< 4x uint64 lane words, AVX2 backend
  k512 = 512, ///< 8x uint64 lane words, AVX-512F backend
};

/// Lane count of a concrete width (64/256/512). kAuto is not concrete.
constexpr std::size_t simd_lanes(SimdWidth w) noexcept {
  return static_cast<std::size_t>(w);
}

/// uint64 words per lane word (1/4/8).
constexpr std::size_t simd_words(SimdWidth w) noexcept {
  return simd_lanes(w) / 64;
}

/// "auto" / "64" / "256" / "512".
const char* to_string(SimdWidth w) noexcept;

/// Parses "auto" / "64" / "256" / "512". Returns false on anything else.
bool simd_width_from_string(std::string_view s, SimdWidth& out) noexcept;

/// True when this host can run the backend: k64 always, k256 with AVX2,
/// k512 with AVX-512F (both always false off x86-64). kAuto is "supported"
/// in the sense that it always resolves.
bool simd_width_supported(SimdWidth w) noexcept;

/// The widest supported concrete width on this host.
SimdWidth best_simd_width() noexcept;

/// Resolves `requested` to a concrete supported width. A concrete request
/// is validated and returned; kAuto consults the MERCED_SIMD environment
/// variable ("auto"/"64"/"256"/"512") and falls back to best_simd_width().
/// Throws std::invalid_argument for an unsupported width or a malformed
/// MERCED_SIMD value.
SimdWidth resolve_simd_width(SimdWidth requested);

/// Lane words of input bits 0..5 at any width: bit i of pattern index
/// b*W + l depends only on (l mod 64) for i < 6, giving fixed per-uint64
/// masks shared by every backend (and by cone.cc's 64-lane kernel).
inline constexpr std::uint64_t kSimdLaneBits[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

/// Number of W-lane batches of a full 2^n sweep: max(1, 2^n / W).
constexpr std::uint64_t wide_num_batches(std::size_t n, std::size_t words) noexcept {
  std::size_t log2_lanes = 6;
  for (std::size_t w = words; w > 1; w >>= 1) ++log2_lanes;
  return n > log2_lanes ? std::uint64_t{1} << (n - log2_lanes) : 1;
}

/// uint64 word j of the validity mask for an n-input CUT at width 64*words:
/// bit t is set iff lane 64*j + t carries a distinct pattern (index < 2^n).
constexpr std::uint64_t wide_lane_mask_word(std::size_t n, std::size_t j) noexcept {
  if (n >= 6 + 6) return ~std::uint64_t{0};  // 2^n >= 4096 covers any word
  const std::uint64_t valid = std::uint64_t{1} << n;
  const std::uint64_t lo = 64 * static_cast<std::uint64_t>(j);
  if (valid >= lo + 64) return ~std::uint64_t{0};
  if (valid <= lo) return 0;
  return (std::uint64_t{1} << (valid - lo)) - 1;
}

/// Fills `out` (n * words uint64s, slot-major) with the W = 64*words
/// patterns of `batch`: lane l of input bit i carries bit i of pattern
/// index batch*W + l. The width-64 fill_batch_inputs (cone.h) is the
/// words == 1 case; every backend and oracle shares this stimulus, so all
/// paths see bit-identical patterns.
void fill_batch_inputs_wide(std::size_t n, std::uint64_t batch, std::size_t words,
                            std::span<std::uint64_t> out) noexcept;

}  // namespace merced
