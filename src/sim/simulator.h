// Cycle-accurate two-valued logic simulation of a finalized Netlist.
//
// Semantics: step(t) evaluates all combinational logic from the current
// register state and the cycle-t primary inputs, then clocks every DFF with
// the value on its D net. Bit-parallel variants run 64 independent pattern
// streams per call (each std::uint64_t lane is one stream).
#pragma once

#include <cstdint>
#include <type_traits>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace merced {

template <typename Word>
class BasicSimulator {
 public:
  /// std::vector<bool> is bit-packed, so the bool instantiation takes
  /// vector views instead of spans.
  using InputView = std::conditional_t<std::is_same_v<Word, bool>,
                                       const std::vector<bool>&, std::span<const Word>>;

  explicit BasicSimulator(const Netlist& netlist);

  const Netlist& netlist() const noexcept { return *netlist_; }

  /// Sets register state, one value per DFF in netlist().dffs() order.
  void set_state(InputView dff_values);

  /// Current register state in netlist().dffs() order.
  std::vector<Word> state() const;

  /// Runs one clock cycle. `inputs` follow netlist().inputs() order.
  void step(InputView inputs);

  /// Value of a net after the latest step() (combinational value for gates,
  /// the *pre-clock* state for DFFs, the applied value for inputs).
  Word value(GateId id) const { return values_.at(id); }

  /// Values of the primary outputs after the latest step().
  std::vector<Word> output_values() const;

 private:
  const Netlist* netlist_;
  std::vector<Word> values_;  ///< per gate, combinational snapshot of the last cycle
  std::vector<Word> state_;   ///< per DFF (dffs() order)
  std::vector<Word> scratch_; ///< fanin gather buffer reused across steps
};

using Simulator = BasicSimulator<bool>;
using Simulator64 = BasicSimulator<std::uint64_t>;

extern template class BasicSimulator<bool>;
extern template class BasicSimulator<std::uint64_t>;

}  // namespace merced
