// Single stuck-at fault model.
//
// Faults live on gate output stems and on gate input pins (branches), the
// classic structural fault universe. Equivalent-fault collapsing implements
// the standard dominance-free rules for simple gates (e.g. any input s-a-0
// of an AND is equivalent to the output s-a-0).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "netlist/netlist.h"

namespace merced {

struct Fault {
  enum class Site : std::uint8_t { kOutput, kInputPin };
  GateId gate = kNoGate;   ///< faulty gate
  Site site = Site::kOutput;
  std::uint16_t pin = 0;   ///< fanin pin index when site == kInputPin
  bool stuck_value = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

std::ostream& operator<<(std::ostream& os, const Fault& f);

/// Full single-stuck-at fault universe of `netlist`: two faults per gate
/// output stem (combinational gates, DFF outputs and PIs) and two per gate
/// input pin of multi-fanout nets.
std::vector<Fault> enumerate_faults(const Netlist& netlist);

/// Structural equivalence collapsing: for an n-input AND/NAND/OR/NOR gate
/// the controlled-value input faults collapse onto the output fault;
/// NOT/BUF input faults collapse onto output faults. Returns a reduced list
/// that still detects the same fault set.
std::vector<Fault> collapse_faults(const Netlist& netlist, std::vector<Fault> faults);

}  // namespace merced
