// Single stuck-at fault model.
//
// Faults live on gate output stems and on gate input pins (branches), the
// classic structural fault universe. Equivalent-fault collapsing implements
// the standard dominance-free rules for simple gates (e.g. any input s-a-0
// of an AND is equivalent to the output s-a-0).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "netlist/netlist.h"

namespace merced {

struct Fault {
  enum class Site : std::uint8_t { kOutput, kInputPin };
  GateId gate = kNoGate;   ///< faulty gate
  Site site = Site::kOutput;
  std::uint16_t pin = 0;   ///< fanin pin index when site == kInputPin
  bool stuck_value = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

std::ostream& operator<<(std::ostream& os, const Fault& f);

/// Full single-stuck-at fault universe of `netlist`: two faults per gate
/// output stem (combinational gates, DFF outputs and PIs) and two per gate
/// input pin of multi-fanout nets.
std::vector<Fault> enumerate_faults(const Netlist& netlist);

/// Structural equivalence collapsing: for an n-input AND/NAND/OR/NOR gate
/// the controlled-value input faults collapse onto the output fault;
/// NOT/BUF input faults collapse onto output faults. Returns a reduced list
/// that still detects the same fault set.
std::vector<Fault> collapse_faults(const Netlist& netlist, std::vector<Fault> faults);

/// A static sweep plan over one CUT's cluster_faults() universe, produced
/// by the analyzer (src/analyze) and consumed by exhaustive_coverage /
/// PpetSession::measure_coverage. Every entry prescribes how that fault's
/// verdict is obtained; the plan's soundness contract is that resolving it
/// yields verdicts bit-identical to sweeping the full list:
///
///  * kSweep      — simulate the fault (it is on the compacted sweep list);
///  * kCopyRep    — the fault is functionally equivalent (as a faulty
///                  machine) to fault rep[i]; copy that verdict;
///  * kUntestable — statically proved untestable: verdict is "undetected"
///                  with no simulation (cross-checked against the SAT
///                  redundancy prover by the callers that trust it);
///  * kInfer      — fault dominance under an *exhaustive* sweep: if any
///                  witness fault is detected, this fault is detected too.
///                  If every witness comes back undetected nothing is
///                  implied, and the fault joins a residue re-simulation —
///                  inference never weakens the verdict.
struct FaultPlan {
  enum class Action : std::uint8_t { kSweep, kCopyRep, kUntestable, kInfer };
  std::vector<Action> action;            ///< one per cluster_faults() entry
  std::vector<std::uint32_t> rep;        ///< kCopyRep: fault index to copy from
  std::vector<std::uint32_t> witness_offset;  ///< CSR (size()+1) into witness
  std::vector<std::uint32_t> witness;    ///< kSweep fault indices

  std::size_t size() const noexcept { return action.size(); }
  /// Number of kSweep entries (the compacted sweep list length).
  std::size_t sweep_count() const noexcept;
  /// Structural validity against a fault universe of `num_faults` entries:
  /// sizes line up, every rep targets a kSweep or kInfer fault, every
  /// witness targets a kSweep fault, and the witness CSR is monotone.
  bool valid_for(std::size_t num_faults) const noexcept;
};

}  // namespace merced
