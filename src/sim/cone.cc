#include "sim/cone.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

#include "netlist/netlist.h"
#include "obs/obs.h"
#include "runtime/work_steal.h"

namespace merced {

namespace {

bool is_comb_gate(const CircuitGraph& g, NodeId v) {
  return !g.is_pi(v) && !g.is_register(v);
}

/// Evaluates one CSR gate, reading fanin pin k's word through `get(k)`.
/// Mirrors eval_gate_u64 but folds straight off value slots, so the kernel
/// never materializes a fanin vector.
template <typename GetPin>
std::uint64_t eval_csr_gate(GateType type, std::size_t num_fanins, GetPin&& get) {
  constexpr std::uint64_t kOnes = ~std::uint64_t{0};
  switch (type) {
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return kOnes;
    case GateType::kBuf:
      return get(0);
    case GateType::kNot:
      return ~get(0);
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t acc = kOnes;
      for (std::size_t k = 0; k < num_fanins; ++k) acc &= get(k);
      return type == GateType::kAnd ? acc : ~acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t acc = 0;
      for (std::size_t k = 0; k < num_fanins; ++k) acc |= get(k);
      return type == GateType::kOr ? acc : ~acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint64_t acc = 0;
      for (std::size_t k = 0; k < num_fanins; ++k) acc ^= get(k);
      return type == GateType::kXor ? acc : ~acc;
    }
    case GateType::kMux: {
      const std::uint64_t sel = get(0);
      return (~sel & get(1)) | (sel & get(2));
    }
    case GateType::kInput:
    case GateType::kDff:
      break;  // never appear among a cluster's combinational gates
  }
  throw std::logic_error("ConeSimulator: non-evaluable gate type in cone");
}

/// Lane words of input bits 0..5: bit i of pattern index b*64 + l depends
/// only on l for i < 6, giving fixed 64-lane masks.
constexpr std::uint64_t kLaneBits[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

}  // namespace

void fill_batch_inputs(std::size_t n, std::uint64_t batch,
                       std::span<std::uint64_t> words) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (i < 6) {
      words[i] = kLaneBits[i];
    } else {
      words[i] = (batch >> (i - 6)) & 1 ? ~std::uint64_t{0} : 0;
    }
  }
}

ConeSimulator::ConeSimulator(const CircuitGraph& g, const Clustering& c,
                             std::size_t cluster_index)
    : graph_(&g) {
  const auto ci = static_cast<std::int32_t>(cluster_index);
  in_cluster_.assign(g.num_nodes(), false);
  for (NodeId v : c.clusters.at(cluster_index)) in_cluster_[v] = true;

  inputs_ = input_nets(g, c, cluster_index);
  input_slot_.assign(g.num_nodes(), -1);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    input_slot_[g.driver(inputs_[i])] = static_cast<std::int32_t>(i);
  }

  // Observed outputs: cluster-gate nets that reach a register D pin, a gate
  // of another cluster, or are primary outputs.
  const Netlist& nl = g.netlist();
  for (NodeId v : c.clusters.at(cluster_index)) {
    if (!is_comb_gate(g, v)) continue;
    bool observed = nl.is_output(v);
    for (BranchId b : g.out_branches(v)) {
      const Branch& br = g.branch(b);
      if (g.is_register(br.sink) || c.cluster_of[br.sink] != ci) {
        observed = true;
        break;
      }
    }
    if (observed) outputs_.push_back(g.net_of(v));
  }
  std::sort(outputs_.begin(), outputs_.end());

  // Topological order of the cluster's combinational gates: Kahn over
  // intra-cluster gate→gate dependencies whose source is not a CUT input.
  std::vector<std::size_t> pending(g.num_nodes(), 0);
  std::vector<NodeId> members;
  for (NodeId v : c.clusters.at(cluster_index)) {
    if (!is_comb_gate(g, v)) continue;
    members.push_back(v);
    for (BranchId b : g.in_branches(v)) {
      const NodeId d = g.branch(b).source;
      if (in_cluster_[d] && is_comb_gate(g, d) && input_slot_[d] < 0) ++pending[v];
    }
  }
  std::vector<NodeId> ready;
  for (NodeId v : members) {
    if (pending[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    topo_.push_back(v);
    for (BranchId b : g.out_branches(v)) {
      const NodeId s = g.branch(b).sink;
      if (in_cluster_[s] && is_comb_gate(g, s) && pending[s] > 0 && --pending[s] == 0) {
        ready.push_back(s);
      }
    }
  }
  if (topo_.size() != members.size()) {
    throw std::runtime_error("ConeSimulator: cluster has a combinational cycle");
  }

  // --- CSR build: unified value-slot space [inputs | topo gates] --------
  const std::size_t num_inputs = inputs_.size();
  pos_of_node_.assign(g.num_nodes(), -1);
  for (std::size_t t = 0; t < topo_.size(); ++t) {
    pos_of_node_[topo_[t]] = static_cast<std::int32_t>(t);
  }
  const auto slot_of = [&](NodeId d) -> std::uint32_t {
    if (input_slot_[d] >= 0) return static_cast<std::uint32_t>(input_slot_[d]);
    if (pos_of_node_[d] >= 0) {
      return static_cast<std::uint32_t>(num_inputs) +
             static_cast<std::uint32_t>(pos_of_node_[d]);
    }
    throw std::logic_error("ConeSimulator: fanin is neither CUT input nor cluster gate");
  };

  type_.reserve(topo_.size());
  fanin_offset_.reserve(topo_.size() + 1);
  fanin_offset_.push_back(0);
  fanout_offset_.reserve(topo_.size() + 1);
  observed_index_.assign(topo_.size(), -1);
  for (std::size_t t = 0; t < topo_.size(); ++t) {
    const Gate& gate = nl.gate(topo_[t]);
    type_.push_back(gate.type);
    for (GateId f : gate.fanins) fanin_slot_.push_back(slot_of(f));
    fanin_offset_.push_back(static_cast<std::uint32_t>(fanin_slot_.size()));
  }
  fanout_offset_.push_back(0);
  for (std::size_t t = 0; t < topo_.size(); ++t) {
    const NodeId v = topo_[t];
    for (BranchId b : g.out_branches(v)) {
      const NodeId s = g.branch(b).sink;
      // Intra-cone propagation edges only; a sink reading the net on
      // several pins contributes duplicates, which the queued-stamp check
      // in fault_observable() absorbs.
      if (in_cluster_[s] && is_comb_gate(g, s) && input_slot_[s] < 0) {
        fanout_pos_.push_back(static_cast<std::uint32_t>(pos_of_node_[s]));
      }
    }
    fanout_offset_.push_back(static_cast<std::uint32_t>(fanout_pos_.size()));
  }
  output_slot_.reserve(outputs_.size());
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    const std::int32_t pos = pos_of_node_[g.driver(outputs_[o])];
    observed_index_[static_cast<std::size_t>(pos)] = static_cast<std::int32_t>(o);
    output_slot_.push_back(static_cast<std::uint32_t>(num_inputs) +
                           static_cast<std::uint32_t>(pos));
  }
}

std::size_t ConeSimulator::Workspace::capacity_bytes() const noexcept {
  return values.capacity() * sizeof(std::uint64_t) +
         faulty.capacity() * sizeof(std::uint64_t) +
         dirty.capacity() * sizeof(std::uint64_t) +
         queued.capacity() * sizeof(std::uint64_t) +
         heap.capacity() * sizeof(std::uint32_t) +
         observed.capacity() * sizeof(std::uint64_t) +
         wide_values.capacity() * sizeof(std::uint64_t) +
         wide_faulty.capacity() * sizeof(std::uint64_t) +
         member_bits.capacity() * sizeof(std::uint32_t) +
         groups.capacity() * sizeof(ConeFaultGroup);
}

void ConeSimulator::prepare(Workspace& ws) const {
  const std::size_t slots = inputs_.size() + topo_.size();
  if (ws.values.size() == slots && ws.queued.size() == topo_.size() &&
      ws.observed.size() == outputs_.size()) {
    return;
  }
  ws.values.assign(slots, 0);
  ws.faulty.assign(slots, 0);
  ws.dirty.assign(slots, 0);
  ws.queued.assign(topo_.size(), 0);
  ws.heap.clear();
  ws.heap.reserve(topo_.size());
  ws.observed.assign(outputs_.size(), 0);
  ws.epoch = 0;
}

std::uint64_t ConeSimulator::fault_site_value(std::size_t t, const Fault& fault,
                                              const std::uint64_t* value) const {
  const std::uint64_t stuck = fault.stuck_value ? ~std::uint64_t{0} : 0;
  if (fault.site == Fault::Site::kOutput) return stuck;
  const std::uint32_t* fanin = fanin_slot_.data() + fanin_offset_[t];
  const std::size_t nf = fanin_offset_[t + 1] - fanin_offset_[t];
  return eval_csr_gate(type_[t], nf, [&](std::size_t k) {
    return k == fault.pin ? stuck : value[fanin[k]];
  });
}

void ConeSimulator::eval_good(std::span<const std::uint64_t> input_values,
                              Workspace& ws, const Fault* fault) const {
  const std::size_t num_inputs = inputs_.size();
  std::uint64_t* value = ws.values.data();
  std::copy(input_values.begin(), input_values.end(), value);

  const std::int32_t fault_pos =
      fault ? pos_of_node_[fault->gate] : std::int32_t{-1};
  for (std::size_t t = 0; t < topo_.size(); ++t) {
    std::uint64_t out;
    if (fault_pos == static_cast<std::int32_t>(t)) {
      out = fault_site_value(t, *fault, value);
    } else {
      const std::uint32_t* fanin = fanin_slot_.data() + fanin_offset_[t];
      const std::size_t nf = fanin_offset_[t + 1] - fanin_offset_[t];
      out = eval_csr_gate(type_[t], nf,
                          [&](std::size_t k) { return value[fanin[k]]; });
    }
    value[num_inputs + t] = out;
  }
}

std::span<const std::uint64_t> ConeSimulator::eval(
    std::span<const std::uint64_t> input_values, Workspace& ws,
    const Fault* fault) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("ConeSimulator::eval: expected " +
                                std::to_string(inputs_.size()) + " input values");
  }
  prepare(ws);
  eval_good(input_values, ws, fault);
  for (std::size_t o = 0; o < output_slot_.size(); ++o) {
    ws.observed[o] = ws.values[output_slot_[o]];
  }
  return ws.observed;
}

std::vector<std::uint64_t> ConeSimulator::eval(
    std::span<const std::uint64_t> input_values, const Fault* fault) const {
  Workspace ws;
  const auto out = eval(input_values, ws, fault);
  return std::vector<std::uint64_t>(out.begin(), out.end());
}

bool ConeSimulator::fault_observable(Workspace& ws, const Fault& fault,
                                     std::uint64_t mask) const {
  const std::size_t num_inputs = inputs_.size();
  if (ws.values.size() != num_inputs + topo_.size() ||
      ws.queued.size() != topo_.size()) {
    throw std::logic_error(
        "ConeSimulator::fault_observable: workspace holds no good-machine "
        "state for this cone (call eval(inputs, ws) first)");
  }
  const std::uint64_t* value = ws.values.data();
  const std::uint64_t epoch = ++ws.epoch;

  const std::int32_t pos0 = pos_of_node_[fault.gate];
  if (pos0 < 0) {
    throw std::invalid_argument("ConeSimulator::fault_observable: fault not on a cluster gate");
  }
  const auto t0 = static_cast<std::size_t>(pos0);

  // Faulty value at the fault site itself.
  const std::uint64_t out0 = fault_site_value(t0, fault, value);
  const std::uint64_t diff0 = (out0 ^ value[num_inputs + t0]) & mask;
  if (diff0 == 0) return false;  // no fault effect on any valid lane
  ws.faulty[num_inputs + t0] = out0;
  ws.dirty[num_inputs + t0] = epoch;
  if (observed_index_[t0] >= 0) {
    ++ws.counters.early_exits;
    return true;
  }

  // Event wave through the downstream fanout cone in topo order: the heap
  // realizes the fault site's topo suffix lazily, and value-identical
  // recomputation (diff == 0) stops propagation early.
  auto& heap = ws.heap;
  heap.clear();
  const auto push = [&](std::size_t t) {
    for (std::uint32_t i = fanout_offset_[t]; i < fanout_offset_[t + 1]; ++i) {
      const std::uint32_t s = fanout_pos_[i];
      if (ws.queued[s] != epoch) {
        ws.queued[s] = epoch;
        heap.push_back(s);
        std::push_heap(heap.begin(), heap.end(), std::greater<std::uint32_t>{});
      }
    }
  };
  push(t0);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<std::uint32_t>{});
    const std::uint32_t t = heap.back();
    heap.pop_back();
    ++ws.counters.events_popped;
    const std::uint32_t* fanin = fanin_slot_.data() + fanin_offset_[t];
    const std::size_t nf = fanin_offset_[t + 1] - fanin_offset_[t];
    const std::uint64_t out = eval_csr_gate(type_[t], nf, [&](std::size_t k) {
      const std::uint32_t slot = fanin[k];
      return ws.dirty[slot] == epoch ? ws.faulty[slot] : value[slot];
    });
    const std::uint64_t diff = out ^ value[num_inputs + t];
    if (diff == 0) {
      ++ws.counters.events_suppressed;
      continue;  // event suppressed, wave stops here
    }
    ws.faulty[num_inputs + t] = out;
    ws.dirty[num_inputs + t] = epoch;
    if (observed_index_[t] >= 0 && (diff & mask) != 0) {
      heap.clear();
      ++ws.counters.early_exits;
      return true;
    }
    push(t);
  }
  return false;
}

std::vector<Fault> ConeSimulator::cluster_faults() const {
  const Netlist& nl = graph_->netlist();
  std::vector<Fault> faults;
  for (NodeId v : topo_) {
    const Gate& gate = nl.gate(v);
    for (bool sv : {false, true}) faults.push_back(Fault{v, Fault::Site::kOutput, 0, sv});
    for (std::uint16_t pin = 0; pin < gate.fanins.size(); ++pin) {
      if (nl.fanouts(gate.fanins[pin]).size() > 1) {
        for (bool sv : {false, true}) {
          faults.push_back(Fault{v, Fault::Site::kInputPin, pin, sv});
        }
      }
    }
  }
  return collapse_faults(nl, std::move(faults));
}

namespace {

std::uint64_t num_batches(std::size_t n) {
  return n >= 6 ? std::uint64_t{1} << (n - 6) : 1;
}

/// The pre-kernel path, kept verbatim as the conformance oracle: full cone
/// re-evaluation per fault per batch, fresh vectors per eval.
CoverageResult naive_coverage(const ConeSimulator& cone) {
  const std::size_t n = cone.cut_inputs().size();
  const std::uint64_t batches = num_batches(n);
  const std::uint64_t mask = lane_mask(n);

  const std::vector<Fault> faults = cone.cluster_faults();
  CoverageResult result;
  result.total_faults = faults.size();
  std::vector<bool> detected(faults.size(), false);

  std::vector<std::uint64_t> inputs(n, 0);
  for (std::uint64_t batch = 0; batch < batches; ++batch) {
    fill_batch_inputs(n, batch, inputs);
    const std::vector<std::uint64_t> good = cone.eval(inputs);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (detected[fi]) continue;
      const std::vector<std::uint64_t> bad = cone.eval(inputs, &faults[fi]);
      for (std::size_t o = 0; o < good.size(); ++o) {
        if (((good[o] ^ bad[o]) & mask) != 0) {
          detected[fi] = true;
          break;
        }
      }
    }
  }
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (detected[fi]) {
      ++result.detected;
    } else {
      result.undetected.push_back(faults[fi]);
    }
  }
  return result;
}

/// The kernel-dispatch core shared by the plain and planned coverage paths:
/// decides every verdict in `faults` into `detected` using the options'
/// kernel selection (u64 oracle or SIMD production kernel) and job count.
/// `detected` must have faults.size() zero-initialized slots.
StealStats run_kernel_sweep(const ConeSimulator& cone, std::span<const Fault> faults,
                            const CoverageOptions& opt, std::uint8_t* detected) {
  StealStats sched;
  if (faults.empty()) return sched;
  const std::size_t jobs = resolve_jobs(opt.jobs);
  if (opt.u64_oracle) {
    // Legacy 64-lane, one-fault-at-a-time kernel: contiguous ranges on the
    // shared-counter pool. Retained as the conformance oracle.
    const auto ranges = split_ranges(faults.size(), jobs);
    if (ranges.size() <= 1) {
      exhaustive_detect_range(cone, faults, ranges[0], detected);
    } else {
      ThreadPool pool(ranges.size());
      pool.parallel_for(ranges.size(), [&](std::size_t r) {
        MERCED_SPAN("fault_range", r);
        exhaustive_detect_range(cone, faults, ranges[r], detected);
      });
    }
    return sched;
  }
  // Production path: SIMD fault-group kernel over work-stolen fault
  // chunks. Per-fault verdict slots are disjoint across chunks and
  // verdicts are chunk-independent, so the result is bit-identical for
  // every jobs value and every width.
  const SimdWidth width = resolve_simd_width(opt.simd);
  const auto ranges = split_ranges(faults.size(), coverage_chunks(faults.size(), jobs));
  if (ranges.size() <= 1) {
    ConeSimulator::Workspace ws;
    exhaustive_detect_range_simd(cone, faults, ranges[0], detected, width, ws);
  } else {
    ThreadPool pool(std::min(jobs, ranges.size()));
    std::vector<ConeSimulator::Workspace> workspaces(pool.size());
    sched = parallel_for_stealing(
        pool, ranges.size(), [&](std::size_t r, std::size_t slot) {
          MERCED_SPAN("fault_chunk", r);
          exhaustive_detect_range_simd(cone, faults, ranges[r], detected,
                                       width, workspaces[slot]);
        });
  }
  return sched;
}

/// Resolves a FaultPlan: sweeps the compacted kSweep list, expands
/// equivalence-class verdicts, applies dominance inference (re-simulating
/// the residue whose witnesses all came back undetected), and skips
/// statically-proved-untestable faults. The verdict triple
/// (total, detected, undetected) is bit-identical to the plain sweep —
/// see DESIGN.md "Static analysis layer" for the collapse theorem.
CoverageResult planned_coverage(const ConeSimulator& cone, const CoverageOptions& opt,
                                const std::vector<Fault>& faults) {
  const FaultPlan& plan = *opt.plan;
  if (!plan.valid_for(faults.size())) {
    throw std::invalid_argument(
        "exhaustive_coverage: FaultPlan does not fit this cone's fault universe");
  }
  using Action = FaultPlan::Action;

  std::vector<Fault> sweep_faults;
  std::vector<std::uint32_t> sweep_index;  // sweep slot -> universe index
  sweep_faults.reserve(plan.sweep_count());
  sweep_index.reserve(plan.sweep_count());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (plan.action[i] == Action::kSweep) {
      sweep_faults.push_back(faults[i]);
      sweep_index.push_back(static_cast<std::uint32_t>(i));
    }
  }

  CoverageResult result;
  result.total_faults = faults.size();
  std::vector<std::uint8_t> sub(sweep_faults.size(), 0);
  result.sched = run_kernel_sweep(cone, sweep_faults, opt, sub.data());

  std::vector<std::uint8_t> detected(faults.size(), 0);
  for (std::size_t s = 0; s < sweep_index.size(); ++s) detected[sweep_index[s]] = sub[s];

  resolve_fault_plan(cone, plan, faults, detected.data(), opt, result);

  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (detected[fi]) {
      ++result.detected;
    } else {
      result.undetected.push_back(faults[fi]);
    }
  }
  return result;
}

}  // namespace

void resolve_fault_plan(const ConeSimulator& cone, const FaultPlan& plan,
                        std::span<const Fault> faults, std::uint8_t* detected,
                        const CoverageOptions& residue_opt, CoverageResult& out) {
  using Action = FaultPlan::Action;

  // Dominance inference: a detected witness proves detection (the witness's
  // detecting pattern is in the exhaustive pattern set and detects this
  // fault too). All-undetected witnesses prove nothing — re-simulate.
  std::vector<Fault> residue;
  std::vector<std::uint32_t> residue_index;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (plan.action[i] != Action::kInfer) continue;
    bool inferred = false;
    for (std::uint32_t w = plan.witness_offset[i]; w < plan.witness_offset[i + 1]; ++w) {
      if (detected[plan.witness[w]] != 0) {
        inferred = true;
        break;
      }
    }
    if (inferred) {
      detected[i] = 1;
    } else {
      residue.push_back(faults[i]);
      residue_index.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (!residue.empty()) {
    std::vector<std::uint8_t> rsub(residue.size(), 0);
    run_kernel_sweep(cone, residue, residue_opt, rsub.data());
    for (std::size_t r = 0; r < residue_index.size(); ++r) {
      detected[residue_index[r]] = rsub[r];
    }
  }

  // Equivalence expansion last: reps are kSweep or kInfer, both decided now.
  std::size_t copied = 0, inferred_count = 0, untestable = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    switch (plan.action[i]) {
      case Action::kCopyRep:
        detected[i] = detected[plan.rep[i]];
        ++copied;
        break;
      case Action::kInfer:
        ++inferred_count;
        break;
      case Action::kUntestable:
        ++untestable;
        break;
      case Action::kSweep:
        break;
    }
  }

  out.swept_faults = plan.sweep_count();
  out.collapsed_faults = copied + (inferred_count - residue.size());
  out.proved_untestable = untestable;
  out.residue_resims = residue.size();
  // One KernelCounters flush for the whole resolution, mirroring the
  // per-range flush style of the kernels themselves.
  ConeSimulator::Workspace::KernelCounters plan_counters;
  plan_counters.collapsed_faults = out.collapsed_faults;
  plan_counters.proved_untestable = out.proved_untestable;
  if (obs::enabled()) {
    obs::add(obs::Counter::kAnalyzeCollapsedFaults, plan_counters.collapsed_faults);
    obs::add(obs::Counter::kAnalyzeProvedUntestable, plan_counters.proved_untestable);
    obs::add(obs::Counter::kAnalyzeResidueResims, out.residue_resims);
  }
}

void exhaustive_detect_range(const ConeSimulator& cone, std::span<const Fault> faults,
                             IndexRange range, std::uint8_t* detected) {
  const std::size_t n = cone.cut_inputs().size();
  const std::uint64_t batches = num_batches(n);
  const std::uint64_t mask = lane_mask(n);

  std::size_t remaining = 0;
  for (std::size_t fi = range.begin; fi < range.end; ++fi) {
    if (!detected[fi]) ++remaining;
  }

  const std::size_t live_at_entry = remaining;
  ConeSimulator::Workspace ws;
  std::vector<std::uint64_t> inputs(n, 0);
  std::uint64_t batches_run = 0;
  for (std::uint64_t batch = 0; batch < batches && remaining > 0; ++batch) {
    fill_batch_inputs(n, batch, inputs);
    cone.eval(inputs, ws);  // good machine for this batch
    ++batches_run;
    for (std::size_t fi = range.begin; fi < range.end; ++fi) {
      if (detected[fi]) continue;  // dropped in an earlier batch
      if (cone.fault_observable(ws, faults[fi], mask)) {
        detected[fi] = 1;
        --remaining;
      }
    }
  }
  // One flush per range keeps the batch/fault loops free of instrumentation;
  // ws is fresh above, so its counters are exactly this range's work.
  if (obs::enabled()) {
    obs::add(obs::Counter::kKernelRangesRun, 1);
    obs::add(obs::Counter::kKernelBatches, batches_run);
    obs::add(obs::Counter::kKernelFaultsDropped, live_at_entry - remaining);
    obs::add(obs::Counter::kKernelEventsPopped, ws.counters.events_popped);
    obs::add(obs::Counter::kKernelEventsSuppressed, ws.counters.events_suppressed);
    obs::add(obs::Counter::kKernelEarlyExits, ws.counters.early_exits);
    // Per-range event-count distribution: the spread (not just the total)
    // is what shows whether chunking keeps range costs balanced.
    obs::hist_record("kernel.range_events", ws.counters.events_popped);
  }
}

std::size_t coverage_chunks(std::size_t num_faults, std::size_t jobs) noexcept {
  if (jobs <= 1 || num_faults <= 1) return 1;
  constexpr std::size_t kMinChunkFaults = 64;
  const std::size_t chunks =
      std::clamp(num_faults / kMinChunkFaults, jobs, jobs * 4);
  return std::min(chunks, num_faults);
}

CoverageResult exhaustive_coverage(const ConeSimulator& cone, const CoverageOptions& opt) {
  MERCED_SPAN("exhaustive_coverage");
  const std::size_t n = cone.cut_inputs().size();
  if (n > opt.max_inputs) {
    throw std::invalid_argument("exhaustive_coverage: CUT has " + std::to_string(n) +
                                " inputs, cap is " + std::to_string(opt.max_inputs));
  }
  if (opt.naive) return naive_coverage(cone);

  const std::vector<Fault> faults = cone.cluster_faults();
  if (opt.plan != nullptr) {
    return planned_coverage(cone, opt, faults);
  }

  CoverageResult result;
  result.total_faults = faults.size();
  result.swept_faults = faults.size();
  std::vector<std::uint8_t> detected(faults.size(), 0);
  result.sched = run_kernel_sweep(cone, faults, opt, detected.data());

  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (detected[fi]) {
      ++result.detected;
    } else {
      result.undetected.push_back(faults[fi]);
    }
  }
  return result;
}

CoverageResult exhaustive_coverage(const ConeSimulator& cone, std::size_t max_inputs) {
  CoverageOptions opt;
  opt.max_inputs = max_inputs;
  return exhaustive_coverage(cone, opt);
}

bool detects_pattern(const ConeSimulator& cone, const Fault& fault,
                     const std::vector<bool>& pattern) {
  if (pattern.size() != cone.cut_inputs().size()) {
    throw std::invalid_argument("detects_pattern: pattern width != CUT input count");
  }
  // Broadcast the single pattern across all 64 lanes and probe lane 0 only;
  // identical lanes keep the kernel's word-parallel path untouched.
  std::vector<std::uint64_t> inputs(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    inputs[i] = pattern[i] ? ~std::uint64_t{0} : 0;
  }
  ConeSimulator::Workspace ws;
  cone.eval(inputs, ws);
  return cone.fault_observable(ws, fault, std::uint64_t{1});
}

}  // namespace merced
