#include "sim/cone.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "netlist/netlist.h"

namespace merced {

namespace {

bool is_comb_gate(const CircuitGraph& g, NodeId v) {
  return !g.is_pi(v) && !g.is_register(v);
}

}  // namespace

ConeSimulator::ConeSimulator(const CircuitGraph& g, const Clustering& c,
                             std::size_t cluster_index)
    : graph_(&g) {
  const auto ci = static_cast<std::int32_t>(cluster_index);
  in_cluster_.assign(g.num_nodes(), false);
  for (NodeId v : c.clusters.at(cluster_index)) in_cluster_[v] = true;

  inputs_ = input_nets(g, c, cluster_index);
  input_slot_.assign(g.num_nodes(), -1);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    input_slot_[g.driver(inputs_[i])] = static_cast<std::int32_t>(i);
  }

  // Observed outputs: cluster-gate nets that reach a register D pin, a gate
  // of another cluster, or are primary outputs.
  const Netlist& nl = g.netlist();
  for (NodeId v : c.clusters.at(cluster_index)) {
    if (!is_comb_gate(g, v)) continue;
    bool observed = nl.is_output(v);
    for (BranchId b : g.out_branches(v)) {
      const Branch& br = g.branch(b);
      if (g.is_register(br.sink) || c.cluster_of[br.sink] != ci) {
        observed = true;
        break;
      }
    }
    if (observed) outputs_.push_back(g.net_of(v));
  }
  std::sort(outputs_.begin(), outputs_.end());

  // Topological order of the cluster's combinational gates: Kahn over
  // intra-cluster gate→gate dependencies whose source is not a CUT input.
  std::vector<std::size_t> pending(g.num_nodes(), 0);
  std::vector<NodeId> members;
  for (NodeId v : c.clusters.at(cluster_index)) {
    if (!is_comb_gate(g, v)) continue;
    members.push_back(v);
    for (BranchId b : g.in_branches(v)) {
      const NodeId d = g.branch(b).source;
      if (in_cluster_[d] && is_comb_gate(g, d) && input_slot_[d] < 0) ++pending[v];
    }
  }
  std::vector<NodeId> ready;
  for (NodeId v : members) {
    if (pending[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    topo_.push_back(v);
    for (BranchId b : g.out_branches(v)) {
      const NodeId s = g.branch(b).sink;
      if (in_cluster_[s] && is_comb_gate(g, s) && pending[s] > 0 && --pending[s] == 0) {
        ready.push_back(s);
      }
    }
  }
  if (topo_.size() != members.size()) {
    throw std::runtime_error("ConeSimulator: cluster has a combinational cycle");
  }
}

std::vector<std::uint64_t> ConeSimulator::eval(std::span<const std::uint64_t> input_values,
                                               const Fault* fault) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("ConeSimulator::eval: expected " +
                                std::to_string(inputs_.size()) + " input values");
  }
  const CircuitGraph& g = *graph_;
  const Netlist& nl = g.netlist();

  std::vector<std::uint64_t> value(g.num_nodes(), 0);
  auto net_value = [&](NodeId d) -> std::uint64_t {
    const std::int32_t slot = input_slot_[d];
    return slot >= 0 ? input_values[static_cast<std::size_t>(slot)] : value[d];
  };

  std::vector<std::uint64_t> fanin_vals;
  for (NodeId v : topo_) {
    const Gate& gate = nl.gate(v);
    fanin_vals.clear();
    for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
      std::uint64_t fv = net_value(gate.fanins[pin]);
      if (fault && fault->gate == v && fault->site == Fault::Site::kInputPin &&
          fault->pin == pin) {
        fv = fault->stuck_value ? ~std::uint64_t{0} : 0;
      }
      fanin_vals.push_back(fv);
    }
    std::uint64_t out = eval_gate_u64(gate.type, fanin_vals);
    if (fault && fault->gate == v && fault->site == Fault::Site::kOutput) {
      out = fault->stuck_value ? ~std::uint64_t{0} : 0;
    }
    value[v] = out;
  }

  std::vector<std::uint64_t> observed;
  observed.reserve(outputs_.size());
  for (NetId net : outputs_) observed.push_back(net_value(g.driver(net)));
  return observed;
}

std::vector<Fault> ConeSimulator::cluster_faults() const {
  const Netlist& nl = graph_->netlist();
  std::vector<Fault> faults;
  for (NodeId v : topo_) {
    const Gate& gate = nl.gate(v);
    for (bool sv : {false, true}) faults.push_back(Fault{v, Fault::Site::kOutput, 0, sv});
    for (std::uint16_t pin = 0; pin < gate.fanins.size(); ++pin) {
      if (nl.fanouts(gate.fanins[pin]).size() > 1) {
        for (bool sv : {false, true}) {
          faults.push_back(Fault{v, Fault::Site::kInputPin, pin, sv});
        }
      }
    }
  }
  return collapse_faults(nl, std::move(faults));
}

CoverageResult exhaustive_coverage(const ConeSimulator& cone, std::size_t max_inputs) {
  const std::size_t n = cone.cut_inputs().size();
  if (n > max_inputs) {
    throw std::invalid_argument("exhaustive_coverage: CUT has " + std::to_string(n) +
                                " inputs, cap is " + std::to_string(max_inputs));
  }
  const std::uint64_t patterns = n >= 6 ? (std::uint64_t{1} << n) : 64;
  const std::uint64_t batches = std::max<std::uint64_t>(1, patterns >> 6);

  const std::vector<Fault> faults = cone.cluster_faults();
  CoverageResult result;
  result.total_faults = faults.size();
  std::vector<bool> detected(faults.size(), false);

  std::vector<std::uint64_t> inputs(n, 0);
  for (std::uint64_t batch = 0; batch < batches; ++batch) {
    // Lane l of batch b carries pattern index b*64 + l; input bit i of
    // pattern p is bit i of p.
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t word = 0;
      for (std::uint64_t lane = 0; lane < 64; ++lane) {
        const std::uint64_t p = batch * 64 + lane;
        if ((p >> i) & 1) word |= std::uint64_t{1} << lane;
      }
      inputs[i] = word;
    }
    const std::vector<std::uint64_t> good = cone.eval(inputs);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (detected[fi]) continue;
      const std::vector<std::uint64_t> bad = cone.eval(inputs, &faults[fi]);
      for (std::size_t o = 0; o < good.size(); ++o) {
        if (good[o] != bad[o]) {
          detected[fi] = true;
          break;
        }
      }
    }
  }
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (detected[fi]) {
      ++result.detected;
    } else {
      result.undetected.push_back(faults[fi]);
    }
  }
  return result;
}

}  // namespace merced
