#include "sim/simulator.h"

#include <stdexcept>

namespace merced {

template <typename Word>
BasicSimulator<Word>::BasicSimulator(const Netlist& netlist) : netlist_(&netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("Simulator: netlist must be finalized");
  }
  values_.assign(netlist.size(), Word{});
  state_.assign(netlist.dffs().size(), Word{});
}

template <typename Word>
void BasicSimulator<Word>::set_state(InputView dff_values) {
  if (dff_values.size() != state_.size()) {
    throw std::invalid_argument("Simulator::set_state: size mismatch");
  }
  std::copy(dff_values.begin(), dff_values.end(), state_.begin());
}

template <typename Word>
std::vector<Word> BasicSimulator<Word>::state() const {
  return state_;
}

template <typename Word>
void BasicSimulator<Word>::step(InputView inputs) {
  const Netlist& nl = *netlist_;
  if (inputs.size() != nl.inputs().size()) {
    throw std::invalid_argument("Simulator::step: input count mismatch");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) values_[nl.inputs()[i]] = inputs[i];
  for (std::size_t i = 0; i < state_.size(); ++i) values_[nl.dffs()[i]] = state_[i];

  for (GateId id : nl.combinational_topo_order()) {
    const Gate& g = nl.gate(id);
    scratch_.clear();
    for (GateId f : g.fanins) scratch_.push_back(values_[f]);
    if constexpr (std::is_same_v<Word, bool>) {
      values_[id] = eval_gate(g.type, scratch_);
    } else {
      values_[id] = eval_gate_u64(g.type, scratch_);
    }
  }

  // Clock the registers.
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = values_[nl.gate(nl.dffs()[i]).fanins.at(0)];
  }
}

template <typename Word>
std::vector<Word> BasicSimulator<Word>::output_values() const {
  std::vector<Word> out;
  out.reserve(netlist_->outputs().size());
  for (GateId id : netlist_->outputs()) out.push_back(values_[id]);
  return out;
}

template class BasicSimulator<bool>;
template class BasicSimulator<std::uint64_t>;

}  // namespace merced
