// Combinational cone evaluation for one cluster (CUT) — the object PPET
// tests exhaustively.
//
// A cluster's combinational CUT has ι input nets (PIs, DFF outputs, cut
// nets — exactly partition/clustering.h's input_nets) and a set of observed
// output nets (nets leaving the cluster into a register D pin, another
// cluster, or a primary output — i.e. nets a PSA-mode CBIT captures).
// Pseudo-exhaustive testing applies all 2^ι patterns to the inputs and
// watches the outputs; this file provides the 64-pattern-parallel evaluator
// and the coverage measurement backing the paper's fault-coverage claim.
//
// Data layout (see DESIGN.md "Event-driven coverage kernel"): the
// constructor flattens the cluster into a CSR form over a unified *value
// slot* space — slots [0, ι) are the CUT inputs in cut_inputs() order,
// slots [ι, ι + |gates|) are the cluster's combinational gates in topo
// order. Per-gate fanin slots and intra-cone fanout targets live in
// contiguous arrays, so evaluation is a single linear pass with no hash
// lookups and — given a reusable Workspace — no heap allocation.
//
// Lane-validity contract: eval() always computes 64 lanes, but for a CUT
// with n < 6 inputs only the first 2^n lanes carry distinct patterns; lane
// l >= 2^n replays pattern l mod 2^n (the pattern index of lane l in batch
// b is b*64 + l, and only its low n bits reach the inputs). Detection
// decisions therefore mask comparisons with lane_mask(n); the padded lanes
// mirror valid lanes bit-for-bit, so the mask is hygiene, not semantics.
//
// Two kernels share this CSR form. exhaustive_detect_range is the original
// 64-lane, one-fault-at-a-time event kernel, retained byte-for-byte as a
// conformance oracle. exhaustive_detect_range_simd (cone_simd.cc) is the
// production kernel: W-bit lane words (W = 64/256/512 via sim/simd.h) and
// per-gate fault groups that amortize one event wave over up to
// kFaultGroupCap stuck-at faults. Both produce bit-identical verdicts —
// the lane contract generalizes (simd.h), and a fault's verdict is
// independent of which faults share its wave.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/circuit_graph.h"
#include "partition/clustering.h"
#include "runtime/thread_pool.h"
#include "runtime/work_steal.h"
#include "sim/fault.h"
#include "sim/simd.h"

namespace merced {

/// Mask of the lanes that carry distinct patterns for an n-input CUT (all
/// 64 when n >= 6, the low 2^n otherwise). See the lane-validity contract
/// in the file comment.
constexpr std::uint64_t lane_mask(std::size_t n) noexcept {
  return n >= 6 ? ~std::uint64_t{0}
                : (std::uint64_t{1} << (std::uint64_t{1} << n)) - 1;
}

/// Cap on faults sharing one event wave in the SIMD kernel. Groups are runs
/// of consecutive cluster_faults() entries on the same gate (fault order is
/// gate-major), so membership is deterministic and verdict slots stay
/// index-addressed.
inline constexpr std::size_t kFaultGroupCap = 16;

/// One same-gate fault group of the SIMD kernel, built once per range so
/// the batch loop never rescans the fault list: `live` tracks undetected
/// members and a group whose mask empties is swap-removed from the sweep.
struct ConeFaultGroup {
  std::uint32_t begin;  ///< first member's index into the faults span
  std::uint32_t size;   ///< member count (<= kFaultGroupCap)
  std::uint32_t pos;    ///< fault gate's topo position in the cone
  std::uint32_t live;   ///< bitmask of members still undetected
};

class ConeSimulator {
 public:
  /// Reusable per-thread scratch memory for eval()/fault_observable().
  /// Sized on first use with a given cone; subsequent calls against a cone
  /// of the same shape perform no heap allocation. A Workspace must not be
  /// shared between threads.
  class Workspace {
   public:
    /// Total bytes currently reserved. Stable across steady-state use — the
    /// no-allocation guarantee is testable as capacity stability.
    std::size_t capacity_bytes() const noexcept;

    /// Kernel work counters, incremented by fault_observable() as plain
    /// (non-atomic) adds on this already-hot struct — cheap enough to stay
    /// compiled in unconditionally. They accumulate across calls; callers
    /// that publish them (exhaustive_detect_range) flush the per-range
    /// delta into the obs layer and tests may read them directly.
    struct KernelCounters {
      std::uint64_t events_popped = 0;     ///< gates popped off the wave heap
      std::uint64_t events_suppressed = 0; ///< popped gates with no value change
      std::uint64_t early_exits = 0;       ///< probes ended at an observed output
      std::uint64_t batches = 0;           ///< lane-word batches swept (SIMD kernel)
      std::uint64_t lanes_swept = 0;       ///< pattern lanes swept (batches x width)
      std::uint64_t fault_groups = 0;      ///< same-gate groups probed by one wave
      std::uint64_t faults_dropped = 0;    ///< faults detected (SIMD kernel)
      std::uint64_t collapsed_faults = 0;  ///< verdicts resolved without simulation
                                           ///  (FaultPlan copy/inference)
      std::uint64_t proved_untestable = 0; ///< faults skipped as statically untestable
    };
    KernelCounters counters;

   private:
    friend class ConeSimulator;
    friend void exhaustive_detect_range_simd(const ConeSimulator& cone,
                                             std::span<const Fault> faults,
                                             IndexRange range, std::uint8_t* detected,
                                             SimdWidth width, Workspace& ws);
    std::vector<std::uint64_t> values;    ///< good-machine value per slot
    std::vector<std::uint64_t> faulty;    ///< faulty value per dirty slot
    std::vector<std::uint64_t> dirty;     ///< epoch stamp: faulty[] valid
    std::vector<std::uint64_t> queued;    ///< epoch stamp: gate in heap
    std::vector<std::uint32_t> heap;      ///< pending gates (topo min-heap)
    std::vector<std::uint64_t> observed;  ///< eval() output buffer
    std::uint64_t epoch = 0;              ///< bumped per fault_observable()
    // --- SIMD kernel state (sized by exhaustive_detect_range_simd) -------
    std::vector<std::uint64_t> wide_values;  ///< good machine, slot-major words
    std::vector<std::uint64_t> wide_faulty;  ///< per (slot, group member) words
    std::vector<std::uint32_t> member_bits;  ///< per slot: members with an effect
    std::vector<ConeFaultGroup> groups;      ///< per-range live fault groups
    std::size_t wide_words = 0;              ///< words the wide arrays are sized for
  };

  ConeSimulator(const CircuitGraph& graph, const Clustering& clustering,
                std::size_t cluster_index);

  /// The circuit graph this cone was built over.
  const CircuitGraph& graph() const noexcept { return *graph_; }

  /// Input nets of the CUT, sorted ascending; ι = size().
  std::span<const NetId> cut_inputs() const noexcept { return inputs_; }

  /// Observed output nets (driven by cluster gates, captured by a CBIT).
  std::span<const NetId> observed_outputs() const noexcept { return outputs_; }

  /// Combinational gates of the cluster in evaluation order.
  std::span<const NodeId> gates() const noexcept { return topo_; }

  /// Evaluates the cone on 64 parallel patterns. `input_values` follows
  /// cut_inputs() order. Returns observed_outputs() values. If `fault` is
  /// non-null it must sit on a cluster gate and is injected on all lanes.
  /// Convenience form; allocates the result. Hot paths use the Workspace
  /// overload below.
  std::vector<std::uint64_t> eval(std::span<const std::uint64_t> input_values,
                                  const Fault* fault = nullptr) const;

  /// Allocation-free evaluation into a reusable Workspace. The returned
  /// span (observed_outputs() order) aliases `ws` and is valid until the
  /// next call with `ws`. After this call `ws` holds the full good-machine
  /// (or faulty-machine, if `fault` was injected) value state for these
  /// inputs — fault_observable() builds on the fault-free state.
  std::span<const std::uint64_t> eval(std::span<const std::uint64_t> input_values,
                                      Workspace& ws, const Fault* fault = nullptr) const;

  /// Event-driven single-fault probe: requires that the most recent
  /// eval(inputs, ws) on this cone was fault-free, so ws holds good-machine
  /// values. Propagates `fault` through its downstream fanout cone only,
  /// early-exiting the moment an observed output word differs on a lane in
  /// `mask` (pass lane_mask(cut_inputs().size())). Gates whose recomputed
  /// word equals the good word stop the event wave, so the per-fault cost
  /// is the *active* part of the fanout cone, not the whole CUT. No heap
  /// allocation in steady state. Returns true iff the fault is observable
  /// on these 64 patterns.
  bool fault_observable(Workspace& ws, const Fault& fault, std::uint64_t mask) const;

  /// Single-stuck-at fault universe of the cluster's gates (collapsed).
  std::vector<Fault> cluster_faults() const;

 private:
  friend void exhaustive_detect_range_simd(const ConeSimulator& cone,
                                           std::span<const Fault> faults,
                                           IndexRange range, std::uint8_t* detected,
                                           SimdWidth width, Workspace& ws);
  void prepare(Workspace& ws) const;
  void eval_good(std::span<const std::uint64_t> input_values, Workspace& ws,
                 const Fault* fault) const;
  /// Faulty output word of the fault-site gate at topo position `t` given
  /// the slot values in `value` — the one place the stuck-output /
  /// stuck-pin semantics live (shared by eval_good and fault_observable).
  std::uint64_t fault_site_value(std::size_t t, const Fault& fault,
                                 const std::uint64_t* value) const;

  const CircuitGraph* graph_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<NodeId> topo_;              ///< cluster comb gates, topo order
  std::vector<std::int32_t> input_slot_;  ///< per node: index into inputs_, or -1
  std::vector<bool> in_cluster_;

  // --- flat CSR kernel representation (built once by the constructor) ---
  std::vector<GateType> type_;              ///< per topo position
  std::vector<std::uint32_t> fanin_offset_; ///< per topo position, into fanin_slot_
  std::vector<std::uint32_t> fanin_slot_;   ///< value-slot per fanin pin
  std::vector<std::uint32_t> fanout_offset_;///< per topo position, into fanout_pos_
  std::vector<std::uint32_t> fanout_pos_;   ///< intra-cone sink topo positions
  std::vector<std::int32_t> pos_of_node_;   ///< per graph node: topo position or -1
  std::vector<std::int32_t> observed_index_;///< per topo position: output index or -1
  std::vector<std::uint32_t> output_slot_;  ///< per observed output: value slot
};

/// Pseudo-exhaustive coverage: applies all 2^ι patterns and reports how many
/// faults produce an observable difference. ι is capped (default 22) to
/// bound runtime; larger CUTs throw.
struct CoverageResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  double coverage() const {
    return total_faults == 0 ? 1.0 : static_cast<double>(detected) / total_faults;
  }
  std::vector<Fault> undetected;  ///< combinationally redundant faults
  /// Static-plan resolution stats (all zero when no FaultPlan was supplied).
  /// NOT part of the verdict: same_coverage-style comparisons ignore them —
  /// the bit-identity contract is about total/detected/undetected only.
  std::size_t swept_faults = 0;      ///< faults actually simulated
  std::size_t collapsed_faults = 0;  ///< verdicts copied or inferred, no simulation
  std::size_t proved_untestable = 0; ///< faults skipped as statically untestable
  std::size_t residue_resims = 0;    ///< kInfer faults re-simulated individually
  /// Scheduler diagnostics of the sweep that produced this result (zeros on
  /// the single-chunk and oracle paths, which never steal). NOT part of the
  /// verdict: same_coverage-style comparisons and the bit-identical
  /// determinism contract ignore it, because steal counts are
  /// scheduling-dependent by design.
  StealStats sched;
};

struct CoverageOptions {
  std::size_t max_inputs = 22;  ///< ι cap; wider CUTs throw
  /// Worker threads sharding the fault list of this one CUT (0 = all
  /// hardware threads). Verdicts are per-fault and land in index-addressed
  /// slots, so the result is bit-identical for every jobs value.
  std::size_t jobs = 1;
  /// Run the pre-kernel re-evaluate-everything path instead of the
  /// event-driven kernel. Kept as the conformance oracle: the kernel must
  /// match it fault-for-fault (same detected set, same undetected order).
  bool naive = false;
  /// Lane width of the SIMD kernel; resolved via resolve_simd_width (kAuto
  /// honours MERCED_SIMD, then picks the widest supported backend).
  SimdWidth simd = SimdWidth::kAuto;
  /// Force the original 64-lane one-fault-at-a-time kernel
  /// (exhaustive_detect_range). Kept as the second conformance oracle; the
  /// SIMD fault-group kernel must match it verdict-for-verdict.
  bool u64_oracle = false;
  /// Optional static sweep plan over this cone's cluster_faults() universe
  /// (see FaultPlan in sim/fault.h). When set, only the plan's kSweep
  /// faults are simulated; the remaining verdicts are expanded back
  /// (equivalence copy, dominance inference with residue re-simulation,
  /// untestable skip), producing total/detected/undetected bit-identical
  /// to the full sweep. The plan must outlive the call; an invalid plan
  /// throws. Ignored on the naive oracle path, which stays the
  /// plan-free conformance reference.
  const FaultPlan* plan = nullptr;
};

CoverageResult exhaustive_coverage(const ConeSimulator& cone, const CoverageOptions& opt);

/// Post-sweep FaultPlan resolution, shared by exhaustive_coverage and
/// PpetSession::measure_coverage. On entry `detected` (slots indexed like
/// `faults`, which must be the cone's cluster_faults() universe) holds the
/// sweep verdicts of the plan's kSweep entries and zeros everywhere else.
/// Resolves the remaining actions in place: dominance inference (witness
/// OR; the all-undetected residue is re-simulated through `residue_opt`'s
/// kernel selection), then equivalence copies, with untestable slots left
/// undetected. Fills the stats fields of `out` (swept_faults,
/// collapsed_faults, proved_untestable, residue_resims — total/detected/
/// undetected are untouched) and flushes the analyze.* obs counters. The
/// plan must be valid_for(faults.size()); callers validate before sweeping.
void resolve_fault_plan(const ConeSimulator& cone, const FaultPlan& plan,
                        std::span<const Fault> faults, std::uint8_t* detected,
                        const CoverageOptions& residue_opt, CoverageResult& out);

/// Number of chunks a fault list is split into for the work-stealing sweep:
/// 1 for jobs <= 1, else clamped to [jobs, 4*jobs] targeting >= 64 faults
/// per chunk (and never more chunks than faults). A pure function of
/// (num_faults, jobs), so the task grid — and through it the obs counter
/// totals — never depends on timing. Verdicts are chunk-independent either
/// way: fault dropping only skips batches *after* a fault's verdict is
/// already decided.
std::size_t coverage_chunks(std::size_t num_faults, std::size_t jobs) noexcept;

/// Back-compatible form: event-driven kernel, single thread.
CoverageResult exhaustive_coverage(const ConeSimulator& cone, std::size_t max_inputs = 22);

/// Kernel building block: one full 2^ι sweep deciding the verdicts of
/// faults[range] only, with fault dropping (a detected fault is skipped in
/// all later batches) and early exit once every fault in the range is
/// detected. Sets detected[i] = 1 (slots indexed like `faults`; slots
/// outside the range are never touched, so disjoint ranges may run
/// concurrently on the same array). `faults` must come from
/// cone.cluster_faults(); the sweep length is not capped here — callers
/// enforce their max_inputs policy.
void exhaustive_detect_range(const ConeSimulator& cone, std::span<const Fault> faults,
                             IndexRange range, std::uint8_t* detected);

/// The production kernel (cone_simd.cc): same contract as
/// exhaustive_detect_range, but sweeps `width`-bit lane words (width must
/// be a concrete resolved SimdWidth the host supports) and probes same-gate
/// fault groups of up to kFaultGroupCap members with one shared event wave.
/// `ws` is per-caller scratch: after the first call with a given cone and
/// width, further calls perform no heap allocation. Verdicts are
/// bit-identical to the 64-lane oracle for every width.
void exhaustive_detect_range_simd(const ConeSimulator& cone, std::span<const Fault> faults,
                                  IndexRange range, std::uint8_t* detected,
                                  SimdWidth width, ConeSimulator::Workspace& ws);

/// Replays one concrete input pattern (cut_inputs() order) on the
/// event-driven kernel and reports whether `fault` is observable on it.
/// This is the bridge the SAT redundancy prover crosses back over: a SAT
/// model of the fault miter becomes a pattern the kernel must confirm.
bool detects_pattern(const ConeSimulator& cone, const Fault& fault,
                     const std::vector<bool>& pattern);

/// Fills `words` (size n = cut_inputs().size()) with the 64 patterns of
/// `batch`: lane l of input bit i carries bit i of pattern index
/// batch*64 + l. Shared by the kernel, the naive oracle and the benches so
/// every path sees bit-identical stimulus.
void fill_batch_inputs(std::size_t n, std::uint64_t batch,
                       std::span<std::uint64_t> words) noexcept;

}  // namespace merced
