// Combinational cone evaluation for one cluster (CUT) — the object PPET
// tests exhaustively.
//
// A cluster's combinational CUT has ι input nets (PIs, DFF outputs, cut
// nets — exactly partition/clustering.h's input_nets) and a set of observed
// output nets (nets leaving the cluster into a register D pin, another
// cluster, or a primary output — i.e. nets a PSA-mode CBIT captures).
// Pseudo-exhaustive testing applies all 2^ι patterns to the inputs and
// watches the outputs; this file provides the 64-pattern-parallel evaluator
// and the coverage measurement backing the paper's fault-coverage claim.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/circuit_graph.h"
#include "partition/clustering.h"
#include "sim/fault.h"

namespace merced {

class ConeSimulator {
 public:
  ConeSimulator(const CircuitGraph& graph, const Clustering& clustering,
                std::size_t cluster_index);

  /// Input nets of the CUT, sorted ascending; ι = size().
  std::span<const NetId> cut_inputs() const noexcept { return inputs_; }

  /// Observed output nets (driven by cluster gates, captured by a CBIT).
  std::span<const NetId> observed_outputs() const noexcept { return outputs_; }

  /// Combinational gates of the cluster in evaluation order.
  std::span<const NodeId> gates() const noexcept { return topo_; }

  /// Evaluates the cone on 64 parallel patterns. `input_values` follows
  /// cut_inputs() order. Returns observed_outputs() values. If `fault` is
  /// non-null it must sit on a cluster gate and is injected on all lanes.
  std::vector<std::uint64_t> eval(std::span<const std::uint64_t> input_values,
                                  const Fault* fault = nullptr) const;

  /// Single-stuck-at fault universe of the cluster's gates (collapsed).
  std::vector<Fault> cluster_faults() const;

 private:
  const CircuitGraph* graph_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<NodeId> topo_;              ///< cluster comb gates, topo order
  std::vector<std::int32_t> input_slot_;  ///< per node: index into inputs_, or -1
  std::vector<bool> in_cluster_;
};

/// Pseudo-exhaustive coverage: applies all 2^ι patterns and reports how many
/// faults produce an observable difference. ι is capped (default 22) to
/// bound runtime; larger CUTs throw.
struct CoverageResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  double coverage() const {
    return total_faults == 0 ? 1.0 : static_cast<double>(detected) / total_faults;
  }
  std::vector<Fault> undetected;  ///< combinationally redundant faults
};

CoverageResult exhaustive_coverage(const ConeSimulator& cone, std::size_t max_inputs = 22);

}  // namespace merced
