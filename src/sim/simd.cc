#include "sim/simd.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace merced {

namespace {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512f() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

}  // namespace

const char* to_string(SimdWidth w) noexcept {
  switch (w) {
    case SimdWidth::kAuto: return "auto";
    case SimdWidth::k64: return "64";
    case SimdWidth::k256: return "256";
    case SimdWidth::k512: return "512";
  }
  return "?";
}

bool simd_width_from_string(std::string_view s, SimdWidth& out) noexcept {
  if (s == "auto") {
    out = SimdWidth::kAuto;
  } else if (s == "64") {
    out = SimdWidth::k64;
  } else if (s == "256") {
    out = SimdWidth::k256;
  } else if (s == "512") {
    out = SimdWidth::k512;
  } else {
    return false;
  }
  return true;
}

bool simd_width_supported(SimdWidth w) noexcept {
  switch (w) {
    case SimdWidth::kAuto:
    case SimdWidth::k64:
      return true;
    case SimdWidth::k256:
      return cpu_has_avx2();
    case SimdWidth::k512:
      return cpu_has_avx512f();
  }
  return false;
}

SimdWidth best_simd_width() noexcept {
  if (cpu_has_avx512f()) return SimdWidth::k512;
  if (cpu_has_avx2()) return SimdWidth::k256;
  return SimdWidth::k64;
}

SimdWidth resolve_simd_width(SimdWidth requested) {
  if (requested == SimdWidth::kAuto) {
    if (const char* env = std::getenv("MERCED_SIMD"); env != nullptr && *env != '\0') {
      if (!simd_width_from_string(env, requested)) {
        throw std::invalid_argument(
            "MERCED_SIMD expects auto, 64, 256 or 512, got '" + std::string(env) + "'");
      }
    }
  }
  if (requested == SimdWidth::kAuto) return best_simd_width();
  if (!simd_width_supported(requested)) {
    throw std::invalid_argument("simd width " + std::string(to_string(requested)) +
                                " is not supported on this host");
  }
  return requested;
}

void fill_batch_inputs_wide(std::size_t n, std::uint64_t batch, std::size_t words,
                            std::span<std::uint64_t> out) noexcept {
  std::size_t log2_words = 0;
  for (std::size_t w = words; w > 1; w >>= 1) ++log2_words;
  const std::size_t log2_lanes = 6 + log2_words;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t* word = out.data() + i * words;
    if (i < 6) {
      for (std::size_t j = 0; j < words; ++j) word[j] = kSimdLaneBits[i];
    } else if (i < log2_lanes) {
      for (std::size_t j = 0; j < words; ++j) {
        word[j] = (j >> (i - 6)) & 1 ? ~std::uint64_t{0} : 0;
      }
    } else {
      const std::uint64_t fill = (batch >> (i - log2_lanes)) & 1 ? ~std::uint64_t{0} : 0;
      for (std::size_t j = 0; j < words; ++j) word[j] = fill;
    }
  }
}

}  // namespace merced
