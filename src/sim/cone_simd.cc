// The production coverage kernel: W-bit lane words and same-gate fault
// groups over the CSR cone of cone.cc.
//
// One width-generic kernel template (kWords uint64s per lane word) is
// instantiated three times, inside entry points carrying GCC/clang target
// attributes — [[gnu::target("avx2")]] / [[gnu::target("avx512f")]] — and
// dispatched at runtime by CPUID (sim/simd.h). The whole file compiles
// without -mavx flags: only code lexically inside the attributed functions
// (plus the [[gnu::always_inline]] helpers forced into them) may use the
// wider ISA, so no AVX instruction can leak into a function some other TU
// links against. At -O3 the fixed-trip-count kWords loops autovectorize to
// one ymm/zmm op each; there are no intrinsics to keep the scalar and wide
// paths from drifting apart.
//
// Fault batching: cluster_faults() is gate-major, so runs of up to
// kFaultGroupCap consecutive faults share a fault site gate. The kernel
// probes such a group with ONE event wave — heap pops, queued stamps and
// fanout walks are paid once per group, while faulty values are tracked
// per (slot, member) with a per-slot member bitmask. A member whose
// recomputed word matches the good machine simply drops out of the slot's
// bitmask, so per-member suppression is exactly the scalar kernel's rule
// and verdicts are independent of grouping.
#include "sim/cone.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <stdexcept>

#include "obs/obs.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MERCED_TARGET_AVX2 [[gnu::target("avx2")]]
// prefer-vector-width=512 overrides the generic 256-bit tuning preference;
// without it the autovectorizer emits ymm ops inside the avx512f function
// and the 512-bit backend degenerates into a second 256-bit one.
#define MERCED_TARGET_AVX512 [[gnu::target("avx512f,prefer-vector-width=512")]]
#else
// Off x86-64 the wide entry points are never dispatched to
// (simd_width_supported is false), but they must still compile.
#define MERCED_TARGET_AVX2
#define MERCED_TARGET_AVX512
#endif

namespace merced {

namespace {

/// Raw-pointer view of a ConeSimulator's CSR arrays (built by the friend
/// entry point, so the kernel templates need no friendship of their own).
struct ConeView {
  const GateType* type;
  const std::uint32_t* fanin_offset;
  const std::uint32_t* fanin_slot;
  const std::uint32_t* fanout_offset;
  const std::uint32_t* fanout_pos;
  const std::int32_t* observed_index;
  const std::int32_t* pos_of_node;
  std::size_t num_inputs;
  std::size_t num_gates;
};

/// Raw-pointer view of the Workspace's SIMD state (pre-sized by the entry
/// point; the kernel itself never allocates).
struct WsView {
  std::uint64_t* values;       ///< slots * kWords, slot-major
  std::uint64_t* faulty;       ///< slots * kFaultGroupCap * kWords
  std::uint32_t* member_bits;  ///< per slot: members with a fault effect
  std::uint64_t* dirty;        ///< per slot: epoch stamp
  std::uint64_t* queued;       ///< per gate: epoch stamp
  std::vector<std::uint32_t>* heap;
  std::uint64_t* epoch;
  ConeSimulator::Workspace::KernelCounters* counters;
};

/// eval_csr_gate over kWords-wide lane words. get(k) returns fanin pin k's
/// word array; out must not alias any fanin (gate outputs are distinct
/// slots). Forced inline so each instantiation compiles with the ISA of the
/// enclosing target-attributed entry point.
template <std::size_t kWords, typename GetPin>
[[gnu::always_inline]] inline void eval_gate_w(GateType type, std::size_t num_fanins,
                                               GetPin&& get, std::uint64_t* out) {
  constexpr std::uint64_t kOnes = ~std::uint64_t{0};
  switch (type) {
    case GateType::kConst0:
      for (std::size_t j = 0; j < kWords; ++j) out[j] = 0;
      return;
    case GateType::kConst1:
      for (std::size_t j = 0; j < kWords; ++j) out[j] = kOnes;
      return;
    case GateType::kBuf: {
      const std::uint64_t* a = get(0);
      for (std::size_t j = 0; j < kWords; ++j) out[j] = a[j];
      return;
    }
    case GateType::kNot: {
      const std::uint64_t* a = get(0);
      for (std::size_t j = 0; j < kWords; ++j) out[j] = ~a[j];
      return;
    }
    case GateType::kAnd:
    case GateType::kNand: {
      for (std::size_t j = 0; j < kWords; ++j) out[j] = kOnes;
      for (std::size_t k = 0; k < num_fanins; ++k) {
        const std::uint64_t* a = get(k);
        for (std::size_t j = 0; j < kWords; ++j) out[j] &= a[j];
      }
      if (type == GateType::kNand) {
        for (std::size_t j = 0; j < kWords; ++j) out[j] = ~out[j];
      }
      return;
    }
    case GateType::kOr:
    case GateType::kNor: {
      for (std::size_t j = 0; j < kWords; ++j) out[j] = 0;
      for (std::size_t k = 0; k < num_fanins; ++k) {
        const std::uint64_t* a = get(k);
        for (std::size_t j = 0; j < kWords; ++j) out[j] |= a[j];
      }
      if (type == GateType::kNor) {
        for (std::size_t j = 0; j < kWords; ++j) out[j] = ~out[j];
      }
      return;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      for (std::size_t j = 0; j < kWords; ++j) out[j] = 0;
      for (std::size_t k = 0; k < num_fanins; ++k) {
        const std::uint64_t* a = get(k);
        for (std::size_t j = 0; j < kWords; ++j) out[j] ^= a[j];
      }
      if (type == GateType::kXnor) {
        for (std::size_t j = 0; j < kWords; ++j) out[j] = ~out[j];
      }
      return;
    }
    case GateType::kMux: {
      const std::uint64_t* s = get(0);
      const std::uint64_t* a = get(1);
      const std::uint64_t* b = get(2);
      for (std::size_t j = 0; j < kWords; ++j) out[j] = (~s[j] & a[j]) | (s[j] & b[j]);
      return;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;  // never appear among a cluster's combinational gates
  }
  throw std::logic_error("cone_simd: non-evaluable gate type in cone");
}

/// Wide good-machine pass: one linear sweep of the CSR gates.
template <std::size_t kWords>
[[gnu::always_inline]] inline void eval_good_w(const ConeView& c, std::uint64_t* values) {
  for (std::size_t t = 0; t < c.num_gates; ++t) {
    const std::uint32_t* fanin = c.fanin_slot + c.fanin_offset[t];
    const std::size_t nf = c.fanin_offset[t + 1] - c.fanin_offset[t];
    eval_gate_w<kWords>(
        c.type[t], nf,
        [&](std::size_t k) -> const std::uint64_t* {
          return values + std::size_t{fanin[k]} * kWords;
        },
        values + (c.num_inputs + t) * kWords);
  }
}

/// Faulty value at the fault site itself (stuck output, or the gate
/// re-evaluated with one pin stuck).
template <std::size_t kWords>
[[gnu::always_inline]] inline void eval_site_w(const ConeView& c,
                                               const std::uint64_t* values,
                                               std::size_t t0, const Fault& fault,
                                               std::uint64_t* out) {
  const std::uint64_t stuck = fault.stuck_value ? ~std::uint64_t{0} : 0;
  if (fault.site == Fault::Site::kOutput) {
    for (std::size_t j = 0; j < kWords; ++j) out[j] = stuck;
    return;
  }
  std::uint64_t stuck_word[kWords];
  for (std::size_t j = 0; j < kWords; ++j) stuck_word[j] = stuck;
  const std::uint32_t* fanin = c.fanin_slot + c.fanin_offset[t0];
  const std::size_t nf = c.fanin_offset[t0 + 1] - c.fanin_offset[t0];
  eval_gate_w<kWords>(
      c.type[t0], nf,
      [&](std::size_t k) -> const std::uint64_t* {
        return k == fault.pin ? stuck_word : values + std::size_t{fanin[k]} * kWords;
      },
      out);
}

/// The kernel body: full 2^n sweep deciding the prebuilt fault groups with
/// fault dropping, early exit, and one event wave per group. `groups` is
/// the entry point's per-range group list (only live groups); a group whose
/// live mask empties is swap-removed, so late batches visit only the faults
/// that still need patterns. Group order within a batch is irrelevant —
/// groups touch disjoint verdict slots and the epoch stamp isolates waves.
template <std::size_t kWords>
[[gnu::always_inline]] inline void detect_range_w(const ConeView& c, const Fault* faults,
                                                  std::uint8_t* detected, const WsView& ws,
                                                  ConeFaultGroup* groups,
                                                  std::size_t num_live,
                                                  std::size_t remaining) {
  const std::size_t n = c.num_inputs;
  const std::uint64_t batches = wide_num_batches(n, kWords);
  std::uint64_t maskw[kWords];
  bool full_mask = true;
  for (std::size_t j = 0; j < kWords; ++j) {
    maskw[j] = wide_lane_mask_word(n, j);
    full_mask = full_mask && maskw[j] == ~std::uint64_t{0};
  }

  auto& counters = *ws.counters;
  std::uint64_t* values = ws.values;

  for (std::uint64_t batch = 0; batch < batches && remaining > 0; ++batch) {
    fill_batch_inputs_wide(n, batch, kWords,
                           std::span<std::uint64_t>(values, n * kWords));
    eval_good_w<kWords>(c, values);
    ++counters.batches;
    counters.lanes_swept += 64 * kWords;

    for (std::size_t gi = 0; gi < num_live;) {
      ConeFaultGroup& g = groups[gi];
      const std::size_t gb = g.begin;
      ++counters.fault_groups;

      const auto t0 = static_cast<std::size_t>(g.pos);
      const std::size_t slot0 = c.num_inputs + t0;
      const std::uint64_t epoch = ++*ws.epoch;

      // Per-member faulty value at the site; members with no effect on a
      // valid lane sit this batch out.
      std::uint32_t active = 0;
      for (std::uint32_t rem = g.live; rem != 0; rem &= rem - 1) {
        const auto m = static_cast<std::size_t>(std::countr_zero(rem));
        std::uint64_t* fo = ws.faulty + (slot0 * kFaultGroupCap + m) * kWords;
        eval_site_w<kWords>(c, values, t0, faults[gb + m], fo);
        std::uint64_t diff_masked = 0;
        if (full_mask) {
          for (std::size_t j = 0; j < kWords; ++j) {
            diff_masked |= fo[j] ^ values[slot0 * kWords + j];
          }
        } else {
          for (std::size_t j = 0; j < kWords; ++j) {
            diff_masked |= (fo[j] ^ values[slot0 * kWords + j]) & maskw[j];
          }
        }
        if (diff_masked != 0) active |= std::uint32_t{1} << m;
      }
      if (active == 0) {
        ++gi;
        continue;
      }
      ws.member_bits[slot0] = active;
      ws.dirty[slot0] = epoch;

      if (c.observed_index[t0] >= 0) {
        // The site drives an observed output: every member with an effect
        // is detected without any wave.
        const auto hits = static_cast<std::uint64_t>(std::popcount(active));
        counters.early_exits += hits;
        counters.faults_dropped += hits;
        for (std::uint32_t rem = active; rem != 0; rem &= rem - 1) {
          detected[gb + static_cast<std::size_t>(std::countr_zero(rem))] = 1;
          --remaining;
        }
        g.live &= ~active;
      } else {
        // Shared event wave through the downstream fanout cone: one heap,
        // one queued-stamp pass; per-member values, per-slot member masks.
        auto& heap = *ws.heap;
        heap.clear();
        const auto push = [&](std::size_t t) {
          for (std::uint32_t i = c.fanout_offset[t]; i < c.fanout_offset[t + 1]; ++i) {
            const std::uint32_t s = c.fanout_pos[i];
            if (ws.queued[s] != epoch) {
              ws.queued[s] = epoch;
              heap.push_back(s);
              std::push_heap(heap.begin(), heap.end(), std::greater<std::uint32_t>{});
            }
          }
        };
        push(t0);
        while (!heap.empty()) {
          std::pop_heap(heap.begin(), heap.end(), std::greater<std::uint32_t>{});
          const std::uint32_t t = heap.back();
          heap.pop_back();
          ++counters.events_popped;
          const std::uint32_t* fanin = c.fanin_slot + c.fanin_offset[t];
          const std::size_t nf = c.fanin_offset[t + 1] - c.fanin_offset[t];
          // Members worth recomputing here: those with a fault effect on at
          // least one fanin, minus members already detected.
          std::uint32_t need = 0;
          for (std::size_t k = 0; k < nf; ++k) {
            const std::uint32_t slot = fanin[k];
            if (ws.dirty[slot] == epoch) need |= ws.member_bits[slot];
          }
          need &= active;
          if (need == 0) {
            ++counters.events_suppressed;
            continue;
          }
          const std::size_t slot_t = c.num_inputs + t;
          std::uint32_t new_bits = 0;
          for (std::uint32_t remm = need; remm != 0; remm &= remm - 1) {
            const auto m = static_cast<std::size_t>(std::countr_zero(remm));
            std::uint64_t* fo = ws.faulty + (slot_t * kFaultGroupCap + m) * kWords;
            eval_gate_w<kWords>(
                c.type[t], nf,
                [&](std::size_t k) -> const std::uint64_t* {
                  const std::uint32_t slot = fanin[k];
                  return (ws.dirty[slot] == epoch && ((ws.member_bits[slot] >> m) & 1))
                             ? ws.faulty + (std::size_t{slot} * kFaultGroupCap + m) * kWords
                             : values + std::size_t{slot} * kWords;
                },
                fo);
            std::uint64_t diff_any = 0;
            std::uint64_t diff_masked = 0;
            if (full_mask) {
              for (std::size_t j = 0; j < kWords; ++j) {
                diff_any |= fo[j] ^ values[slot_t * kWords + j];
              }
              diff_masked = diff_any;
            } else {
              for (std::size_t j = 0; j < kWords; ++j) {
                const std::uint64_t d = fo[j] ^ values[slot_t * kWords + j];
                diff_any |= d;
                diff_masked |= d & maskw[j];
              }
            }
            if (diff_any == 0) continue;  // this member's wave stops here
            new_bits |= std::uint32_t{1} << m;
            if (c.observed_index[t] >= 0 && diff_masked != 0) {
              detected[gb + m] = 1;
              --remaining;
              ++counters.faults_dropped;
              ++counters.early_exits;
              active &= ~(std::uint32_t{1} << m);
              g.live &= ~(std::uint32_t{1} << m);
            }
          }
          if (new_bits == 0) {
            ++counters.events_suppressed;
            continue;
          }
          ws.member_bits[slot_t] = new_bits;
          ws.dirty[slot_t] = epoch;
          if (active == 0) break;  // every member verdicted; wave done
          if ((new_bits & active) != 0) push(t);
        }
      }
      if (g.live == 0) {
        g = groups[--num_live];  // swap-remove: this group is fully decided
      } else {
        ++gi;
      }
    }
  }
}

// --- target-attributed entry points ------------------------------------
// Each instantiates the kernel template with its word count; the target
// attribute makes the fixed-count word loops eligible for 256/512-bit
// autovectorization without flagging the TU.

void detect_range_u64(const ConeView& c, const Fault* faults, std::uint8_t* detected,
                      const WsView& ws, ConeFaultGroup* groups, std::size_t num_live,
                      std::size_t remaining) {
  detect_range_w<1>(c, faults, detected, ws, groups, num_live, remaining);
}

MERCED_TARGET_AVX2
void detect_range_avx2(const ConeView& c, const Fault* faults, std::uint8_t* detected,
                       const WsView& ws, ConeFaultGroup* groups, std::size_t num_live,
                       std::size_t remaining) {
  detect_range_w<4>(c, faults, detected, ws, groups, num_live, remaining);
}

MERCED_TARGET_AVX512
void detect_range_avx512(const ConeView& c, const Fault* faults, std::uint8_t* detected,
                         const WsView& ws, ConeFaultGroup* groups, std::size_t num_live,
                         std::size_t remaining) {
  detect_range_w<8>(c, faults, detected, ws, groups, num_live, remaining);
}

}  // namespace

void exhaustive_detect_range_simd(const ConeSimulator& cone, std::span<const Fault> faults,
                                  IndexRange range, std::uint8_t* detected,
                                  SimdWidth width, ConeSimulator::Workspace& ws) {
  if (width == SimdWidth::kAuto || !simd_width_supported(width)) {
    throw std::invalid_argument(
        "exhaustive_detect_range_simd: width must be a concrete supported "
        "SimdWidth (resolve_simd_width first)");
  }
  const std::size_t words = simd_words(width);
  const std::size_t slots = cone.inputs_.size() + cone.topo_.size();

  // Size the SIMD scratch once per (cone shape, width); steady-state calls
  // allocate nothing. dirty/queued/heap are shared with the scalar kernel —
  // stamps from any earlier use are strictly below the monotonically
  // bumped epoch, so no clearing is needed.
  if (ws.wide_values.size() != slots * words || ws.wide_words != words) {
    ws.wide_values.assign(slots * words, 0);
    ws.wide_faulty.assign(slots * kFaultGroupCap * words, 0);
    ws.wide_words = words;
  }
  if (ws.member_bits.size() != slots) ws.member_bits.assign(slots, 0);
  if (ws.dirty.size() != slots) ws.dirty.assign(slots, 0);
  if (ws.queued.size() != cone.topo_.size()) ws.queued.assign(cone.topo_.size(), 0);
  if (ws.heap.capacity() < cone.topo_.size()) ws.heap.reserve(cone.topo_.size());

  // Group formation, once per range: runs of consecutive same-gate faults
  // capped at kFaultGroupCap, keeping only groups with undetected members.
  // The batch loop then iterates this compact list instead of rescanning
  // the fault span, and swap-removes groups as their members are decided.
  ws.groups.clear();
  std::size_t remaining = 0;
  for (std::size_t gb = range.begin; gb < range.end;) {
    std::size_t ge = gb + 1;
    while (ge < range.end && ge - gb < kFaultGroupCap &&
           faults[ge].gate == faults[gb].gate) {
      ++ge;
    }
    const std::int32_t pos = cone.pos_of_node_[faults[gb].gate];
    if (pos < 0) {
      throw std::invalid_argument(
          "exhaustive_detect_range_simd: fault not on a cluster gate");
    }
    std::uint32_t live = 0;
    for (std::size_t m = 0; m < ge - gb; ++m) {
      if (!detected[gb + m]) live |= std::uint32_t{1} << m;
    }
    if (live != 0) {
      ws.groups.push_back({static_cast<std::uint32_t>(gb),
                           static_cast<std::uint32_t>(ge - gb),
                           static_cast<std::uint32_t>(pos), live});
      remaining += static_cast<std::size_t>(std::popcount(live));
    }
    gb = ge;
  }

  const ConeView cv{cone.type_.data(),          cone.fanin_offset_.data(),
                    cone.fanin_slot_.data(),    cone.fanout_offset_.data(),
                    cone.fanout_pos_.data(),    cone.observed_index_.data(),
                    cone.pos_of_node_.data(),   cone.inputs_.size(),
                    cone.topo_.size()};
  const WsView wv{ws.wide_values.data(), ws.wide_faulty.data(), ws.member_bits.data(),
                  ws.dirty.data(),       ws.queued.data(),      &ws.heap,
                  &ws.epoch,             &ws.counters};

  const auto before = ws.counters;
  switch (words) {
    case 1:
      detect_range_u64(cv, faults.data(), detected, wv, ws.groups.data(),
                       ws.groups.size(), remaining);
      break;
    case 4:
      detect_range_avx2(cv, faults.data(), detected, wv, ws.groups.data(),
                        ws.groups.size(), remaining);
      break;
    case 8:
      detect_range_avx512(cv, faults.data(), detected, wv, ws.groups.data(),
                          ws.groups.size(), remaining);
      break;
    default:
      throw std::logic_error("exhaustive_detect_range_simd: unreachable width");
  }

  // One flush per range keeps the batch/fault loops free of
  // instrumentation; ws accumulates across calls, so publish the delta.
  if (obs::enabled()) {
    const auto& after = ws.counters;
    obs::add(obs::Counter::kKernelRangesRun, 1);
    obs::add(obs::Counter::kKernelBatches, after.batches - before.batches);
    obs::add(obs::Counter::kKernelLanesSwept, after.lanes_swept - before.lanes_swept);
    obs::add(obs::Counter::kKernelFaultGroups, after.fault_groups - before.fault_groups);
    obs::add(obs::Counter::kKernelFaultsDropped,
             after.faults_dropped - before.faults_dropped);
    obs::add(obs::Counter::kKernelEventsPopped,
             after.events_popped - before.events_popped);
    obs::add(obs::Counter::kKernelEventsSuppressed,
             after.events_suppressed - before.events_suppressed);
    obs::add(obs::Counter::kKernelEarlyExits, after.early_exits - before.early_exits);
    // Per-range event-count distribution, same name as the u64 oracle's so
    // either kernel feeds one "kernel.range_events" histogram.
    obs::hist_record("kernel.range_events", after.events_popped - before.events_popped);
  }
}

}  // namespace merced
