#include "sim/fault_sim.h"

#include <bit>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace merced {

namespace {

/// Spreads a bool to a 64-bit mask.
constexpr std::uint64_t spread(bool v) { return v ? ~std::uint64_t{0} : 0; }

/// Simulates one group of up to 63 faults (lane 0 = good machine), writing
/// per-fault verdicts to result slots [base, base+group). Groups touch
/// disjoint slots, so they run concurrently without synchronization.
void simulate_group(const Netlist& nl, std::span<const Fault> faults,
                    std::span<const std::vector<bool>> input_stream,
                    const std::vector<bool>& initial_state, std::size_t base,
                    std::vector<std::uint8_t>& detected,
                    std::vector<std::uint32_t>& detect_cycle) {
  const std::size_t group = std::min<std::size_t>(63, faults.size() - base);

  // Per-gate fault patch masks for this group.
  // output patch: value = (value & ~mask) | set_bits
  std::vector<std::uint64_t> out_clear(nl.size(), 0), out_set(nl.size(), 0);
  struct PinPatch {
    GateId gate;
    std::uint16_t pin;
    std::uint64_t clear, set;
  };
  std::vector<PinPatch> pin_patches;
  for (std::size_t k = 0; k < group; ++k) {
    const Fault& f = faults[base + k];
    const std::uint64_t lane_bit = std::uint64_t{1} << (k + 1);
    if (f.site == Fault::Site::kOutput) {
      out_clear[f.gate] |= lane_bit;
      if (f.stuck_value) out_set[f.gate] |= lane_bit;
    } else {
      pin_patches.push_back(
          PinPatch{f.gate, f.pin, lane_bit, f.stuck_value ? lane_bit : 0});
    }
  }
  // Index pin patches per gate for quick lookup.
  std::vector<std::int32_t> first_pin_patch(nl.size(), -1);
  std::vector<std::int32_t> next_patch(pin_patches.size(), -1);
  for (std::size_t i = 0; i < pin_patches.size(); ++i) {
    next_patch[i] = first_pin_patch[pin_patches[i].gate];
    first_pin_patch[pin_patches[i].gate] = static_cast<std::int32_t>(i);
  }

  std::vector<std::uint64_t> value(nl.size(), 0);
  std::vector<std::uint64_t> state(nl.dffs().size());
  for (std::size_t i = 0; i < state.size(); ++i) state[i] = spread(initial_state[i]);

  std::vector<std::uint64_t> fanin_vals;
  for (std::size_t cycle = 0; cycle < input_stream.size(); ++cycle) {
    // Input widths are validated once in simulate_faults, not per cycle.
    const std::vector<bool>& in = input_stream[cycle];
    for (std::size_t i = 0; i < in.size(); ++i) value[nl.inputs()[i]] = spread(in[i]);
    for (std::size_t i = 0; i < state.size(); ++i) value[nl.dffs()[i]] = state[i];
    // Stem faults on PIs/DFF outputs apply too.
    for (GateId id : nl.inputs()) value[id] = (value[id] & ~out_clear[id]) | out_set[id];
    for (GateId id : nl.dffs()) value[id] = (value[id] & ~out_clear[id]) | out_set[id];

    for (GateId id : nl.combinational_topo_order()) {
      const Gate& g = nl.gate(id);
      fanin_vals.clear();
      for (GateId f : g.fanins) fanin_vals.push_back(value[f]);
      for (std::int32_t pi = first_pin_patch[id]; pi >= 0; pi = next_patch[pi]) {
        const PinPatch& p = pin_patches[static_cast<std::size_t>(pi)];
        fanin_vals[p.pin] = (fanin_vals[p.pin] & ~p.clear) | p.set;
      }
      std::uint64_t out = eval_gate_u64(g.type, fanin_vals);
      out = (out & ~out_clear[id]) | out_set[id];
      value[id] = out;
    }

    // Detection: lane k differs from lane 0 on any PO.
    for (GateId out_id : nl.outputs()) {
      const std::uint64_t v = value[out_id];
      const std::uint64_t good = (v & 1) ? ~std::uint64_t{0} : 0;
      std::uint64_t diff = v ^ good;
      while (diff != 0) {
        const int lane = std::countr_zero(diff);
        diff &= diff - 1;
        if (lane == 0 || static_cast<std::size_t>(lane) > group) continue;
        const std::size_t fi = base + static_cast<std::size_t>(lane) - 1;
        if (!detected[fi]) {
          detected[fi] = 1;
          detect_cycle[fi] = static_cast<std::uint32_t>(cycle);
        }
      }
    }

    // Clock registers (fault effects propagate through state). DFF input
    // pin faults are applied here — the D pin is read only at the clock.
    for (std::size_t i = 0; i < state.size(); ++i) {
      const GateId dff = nl.dffs()[i];
      std::uint64_t d_val = value[nl.gate(dff).fanins.at(0)];
      for (std::int32_t pi = first_pin_patch[dff]; pi >= 0; pi = next_patch[pi]) {
        const PinPatch& p = pin_patches[static_cast<std::size_t>(pi)];
        d_val = (d_val & ~p.clear) | p.set;
      }
      state[i] = d_val;
    }
  }
}

}  // namespace

FaultSimResult simulate_faults(const Netlist& nl, std::span<const Fault> faults,
                               std::span<const std::vector<bool>> input_stream,
                               const std::vector<bool>& initial_state,
                               std::size_t jobs) {
  MERCED_SPAN("simulate_faults");
  if (!nl.finalized()) throw std::logic_error("simulate_faults: netlist not finalized");
  if (initial_state.size() != nl.dffs().size()) {
    throw std::invalid_argument("simulate_faults: initial_state size mismatch");
  }
  // Validate the whole stimulus up front: one pass here instead of one
  // check per cycle per fault group inside simulate_group.
  for (const std::vector<bool>& in : input_stream) {
    if (in.size() != nl.inputs().size()) {
      throw std::invalid_argument("simulate_faults: input vector size mismatch");
    }
  }

  FaultSimResult result;
  result.detected.assign(faults.size(), false);
  result.detect_cycle.assign(faults.size(), std::numeric_limits<std::uint32_t>::max());

  if (faults.empty()) return result;

  // Per-fault scratch slots (bytes, not vector<bool> — neighbouring bits of
  // a packed vector share words, which concurrent groups must not).
  std::vector<std::uint8_t> detected(faults.size(), 0);
  std::vector<std::uint32_t> detect_cycle(faults.size(),
                                          std::numeric_limits<std::uint32_t>::max());

  const std::size_t num_groups = (faults.size() + 62) / 63;
  ThreadPool pool(std::min(resolve_jobs(jobs), num_groups));
  pool.parallel_for(num_groups, [&](std::size_t gi) {
    MERCED_SPAN("fault_group", gi);
    simulate_group(nl, faults, input_stream, initial_state, gi * 63, detected,
                   detect_cycle);
  });

  // Deterministic reduction in fault order.
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (detected[fi]) {
      result.detected[fi] = true;
      result.detect_cycle[fi] = detect_cycle[fi];
      ++result.num_detected;
    }
  }
  MERCED_COUNT(obs::Counter::kFaultSimGroups, num_groups);
  MERCED_COUNT(obs::Counter::kFaultSimFaultsDetected, result.num_detected);
  return result;
}

}  // namespace merced
