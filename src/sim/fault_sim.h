// Sequential stuck-at fault simulation, parallel across faults.
//
// Classic parallel-fault simulation: each 64-bit lane simulates one machine
// — lane 0 is the fault-free circuit, lanes 1..63 carry one fault each. A
// fault is detected the first cycle its lane's primary outputs differ from
// lane 0.
//
// Fault groups (63 faults per machine word) are mutually independent, so
// they also shard across threads: with `jobs` > 1 each group is one work
// item on a fixed pool and writes its per-fault verdicts to disjoint,
// index-addressed slots. Results are bit-identical for every jobs value —
// detection is decided inside a group by lane arithmetic alone, and the
// summary count is reduced in fault order on the caller.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sim/fault.h"

namespace merced {

struct FaultSimResult {
  std::vector<bool> detected;        ///< per fault (input order)
  std::size_t num_detected = 0;
  std::vector<std::uint32_t> detect_cycle;  ///< first detecting cycle, or UINT32_MAX
};

/// Simulates `faults` against `input_stream` (one vector per cycle, each of
/// netlist().inputs() size). All machines start from `initial_state`
/// (netlist().dffs() order). `jobs` worker threads shard the 63-fault
/// groups (0 = all hardware threads); the result is independent of `jobs`.
FaultSimResult simulate_faults(const Netlist& netlist, std::span<const Fault> faults,
                               std::span<const std::vector<bool>> input_stream,
                               const std::vector<bool>& initial_state,
                               std::size_t jobs = 1);

}  // namespace merced
