// Sequential stuck-at fault simulation, parallel across faults.
//
// Classic parallel-fault simulation: each 64-bit lane simulates one machine
// — lane 0 is the fault-free circuit, lanes 1..63 carry one fault each. A
// fault is detected the first cycle its lane's primary outputs differ from
// lane 0.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sim/fault.h"

namespace merced {

struct FaultSimResult {
  std::vector<bool> detected;        ///< per fault (input order)
  std::size_t num_detected = 0;
  std::vector<std::uint32_t> detect_cycle;  ///< first detecting cycle, or UINT32_MAX
};

/// Simulates `faults` against `input_stream` (one vector per cycle, each of
/// netlist().inputs() size). All machines start from `initial_state`
/// (netlist().dffs() order).
FaultSimResult simulate_faults(const Netlist& netlist, std::span<const Fault> faults,
                               std::span<const std::vector<bool>> input_stream,
                               const std::vector<bool>& initial_state);

}  // namespace merced
