#include "sim/fault.h"

#include <algorithm>
#include <ostream>

namespace merced {

std::ostream& operator<<(std::ostream& os, const Fault& f) {
  os << "gate#" << f.gate;
  if (f.site == Fault::Site::kInputPin) os << ".pin" << f.pin;
  return os << "/s-a-" << (f.stuck_value ? 1 : 0);
}

std::vector<Fault> enumerate_faults(const Netlist& nl) {
  std::vector<Fault> faults;
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    for (bool v : {false, true}) {
      faults.push_back(Fault{id, Fault::Site::kOutput, 0, v});
    }
    if (is_combinational(g.type) || is_sequential(g.type)) {
      // Input-pin faults only matter on fanout branches: if the driver has a
      // single sink, the pin fault is equivalent to the driver's stem fault.
      for (std::uint16_t pin = 0; pin < g.fanins.size(); ++pin) {
        if (nl.fanouts(g.fanins[pin]).size() > 1) {
          for (bool v : {false, true}) {
            faults.push_back(Fault{id, Fault::Site::kInputPin, pin, v});
          }
        }
      }
    }
  }
  return faults;
}

std::vector<Fault> collapse_faults(const Netlist& nl, std::vector<Fault> faults) {
  // A fault on the controlled input value of AND/NAND/OR/NOR is equivalent
  // to the corresponding output fault; NOT/BUF input faults are equivalent
  // to output faults. Remove the input-side member of each class.
  auto controlled_value = [](GateType t, bool& v) {
    switch (t) {
      case GateType::kAnd:
      case GateType::kNand: v = false; return true;  // input s-a-0 ≡ output fault
      case GateType::kOr:
      case GateType::kNor: v = true; return true;    // input s-a-1 ≡ output fault
      default: return false;
    }
  };
  std::vector<Fault> kept;
  kept.reserve(faults.size());
  for (const Fault& f : faults) {
    if (f.site == Fault::Site::kInputPin) {
      const GateType t = nl.gate(f.gate).type;
      bool cv = false;
      if (controlled_value(t, cv) && f.stuck_value == cv) continue;
      if (t == GateType::kNot || t == GateType::kBuf || t == GateType::kDff) continue;
    }
    kept.push_back(f);
  }
  return kept;
}

std::size_t FaultPlan::sweep_count() const noexcept {
  std::size_t n = 0;
  for (const Action a : action) {
    if (a == Action::kSweep) ++n;
  }
  return n;
}

bool FaultPlan::valid_for(std::size_t num_faults) const noexcept {
  if (action.size() != num_faults || rep.size() != num_faults) return false;
  if (witness_offset.size() != num_faults + 1 || witness_offset[0] != 0) return false;
  if (witness_offset[num_faults] != witness.size()) return false;
  for (std::size_t i = 0; i < num_faults; ++i) {
    if (witness_offset[i] > witness_offset[i + 1]) return false;
    switch (action[i]) {
      case Action::kSweep:
      case Action::kUntestable:
        break;
      case Action::kCopyRep: {
        const std::uint32_t r = rep[i];
        if (r >= num_faults || r == i) return false;
        if (action[r] != Action::kSweep && action[r] != Action::kInfer) return false;
        break;
      }
      case Action::kInfer: {
        if (witness_offset[i] == witness_offset[i + 1]) return false;
        for (std::uint32_t w = witness_offset[i]; w < witness_offset[i + 1]; ++w) {
          if (witness[w] >= num_faults || action[witness[w]] != Action::kSweep) {
            return false;
          }
        }
        break;
      }
    }
  }
  return true;
}

}  // namespace merced
