#include "bist/lfsr.h"

#include <bit>
#include <stdexcept>

namespace merced {

Lfsr::Lfsr(unsigned degree, bool complete_cycle, std::uint64_t initial_state)
    : degree_(degree),
      complete_cycle_(complete_cycle),
      taps_(primitive_tap_mask(degree)),
      mask_(degree == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << degree) - 1),
      state_(initial_state & mask_) {
  if (!complete_cycle && state_ == 0) {
    throw std::invalid_argument("Lfsr: all-zero state is absorbing without the "
                                "complete-cycle modification");
  }
}

std::uint64_t Lfsr::step() {
  // Fibonacci form, shifting towards the MSB: the new bit 0 is the XOR of
  // the tapped bits.
  std::uint64_t fb = std::popcount(state_ & taps_) & 1u;
  if (complete_cycle_) {
    // Invert feedback when bits [0, n-2] are all zero (state is 0...0 or
    // 10...0): splices the all-zero state after 10...0.
    const std::uint64_t low = state_ & (mask_ >> 1);
    if (low == 0) fb ^= 1u;
  }
  state_ = ((state_ << 1) | fb) & mask_;
  return state_;
}

std::uint64_t Lfsr::period() const noexcept {
  const std::uint64_t full = (degree_ == 64) ? 0 : (std::uint64_t{1} << degree_);
  return complete_cycle_ ? full : full - 1;
}

}  // namespace merced
