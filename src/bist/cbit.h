// CBIT — Cascadable Built-In Tester (paper §1, after Lin/Liou [8]).
//
// A CBIT is a register of A_CELLs with four modes:
//  * kNormal — transparent pipeline register (system operation);
//  * kTpg    — exhaustive test-pattern generation: data inputs are gated
//              off (the A_CELL's AND), the register free-runs as a
//              complete-cycle LFSR through all 2^n states;
//  * kPsa    — parallel signature analysis: a MISR compacting the CUT's
//              outputs;
//  * kScan   — serial shift for initialization and signature read-out.
//
// The dual TPG/PSA capability is what makes PPET pipelines work: the CBIT
// that captures CUT_i's responses is simultaneously the generator for
// CUT_{i+1} — its MISR state sequence doubles as a pseudo-exhaustive-like
// stimulus, and every CUT's *generating* CBIT runs in TPG mode in some test
// session so that each CUT observes all 2^ι patterns across the schedule.
#pragma once

#include <cstdint>

#include "bist/lfsr.h"
#include "bist/misr.h"

namespace merced {

enum class CbitMode : std::uint8_t { kNormal, kTpg, kPsa, kScan };

class Cbit {
 public:
  /// Width in [2, 32] (the paper's d1..d6 lengths are 4..32).
  explicit Cbit(unsigned width);

  unsigned width() const noexcept { return width_; }
  CbitMode mode() const noexcept { return mode_; }
  void set_mode(CbitMode m) noexcept { mode_ = m; }

  std::uint64_t state() const noexcept { return state_; }
  void set_state(std::uint64_t s) noexcept { state_ = s & mask_; }

  /// One clock. `parallel_in` is the data word at the D inputs (used in
  /// kNormal and kPsa); `scan_in` feeds the chain in kScan. Returns the new
  /// parallel output word.
  std::uint64_t step(std::uint64_t parallel_in, bool scan_in = false);

  /// Serial output (MSB of the chain), valid in kScan.
  bool scan_out() const noexcept { return (state_ >> (width_ - 1)) & 1u; }

  /// Clock cycles for one full TPG sweep: 2^width (Figure 1b / Figure 4).
  std::uint64_t tpg_cycles() const noexcept { return std::uint64_t{1} << width_; }

 private:
  unsigned width_;
  std::uint64_t mask_;
  std::uint64_t taps_;
  std::uint64_t state_ = 0;
  CbitMode mode_ = CbitMode::kNormal;
};

/// Testing time of one PPET pipe: dominated by its widest CBIT (Fig. 1b).
std::uint64_t pipe_testing_time(std::uint64_t widest_cbit_width);

}  // namespace merced
