#include "bist/misr.h"

#include <bit>

namespace merced {

Misr::Misr(unsigned degree, std::uint64_t initial_state)
    : degree_(degree),
      taps_(primitive_tap_mask(degree)),
      mask_(degree == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << degree) - 1),
      state_(initial_state & mask_) {}

void Misr::step(std::uint64_t inputs) {
  const std::uint64_t fb = std::popcount(state_ & taps_) & 1u;
  state_ = (((state_ << 1) | fb) ^ inputs) & mask_;
}

}  // namespace merced
