#include "bist/cbit.h"

#include <bit>
#include <stdexcept>
#include <string>

namespace merced {

Cbit::Cbit(unsigned width)
    : width_(width),
      mask_(width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1),
      taps_(primitive_tap_mask(width)) {
  if (width < kMinLfsrDegree || width > kMaxLfsrDegree) {
    throw std::invalid_argument("Cbit: unsupported width " + std::to_string(width));
  }
}

std::uint64_t Cbit::step(std::uint64_t parallel_in, bool scan_in) {
  switch (mode_) {
    case CbitMode::kNormal:
      state_ = parallel_in & mask_;
      break;
    case CbitMode::kTpg: {
      // Complete-cycle LFSR: data gated off by the A_CELL AND gates.
      std::uint64_t fb = std::popcount(state_ & taps_) & 1u;
      if ((state_ & (mask_ >> 1)) == 0) fb ^= 1u;  // NOR zero-splice
      state_ = ((state_ << 1) | fb) & mask_;
      break;
    }
    case CbitMode::kPsa: {
      const std::uint64_t fb = std::popcount(state_ & taps_) & 1u;
      state_ = (((state_ << 1) | fb) ^ parallel_in) & mask_;
      break;
    }
    case CbitMode::kScan:
      state_ = ((state_ << 1) | (scan_in ? 1u : 0u)) & mask_;
      break;
  }
  return state_;
}

std::uint64_t pipe_testing_time(std::uint64_t widest_cbit_width) {
  return std::uint64_t{1} << widest_cbit_width;
}

}  // namespace merced
