#include "bist/polynomials.h"

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

namespace merced {

namespace {

// Maximal-length LFSR taps (XAPP052-style table), degree 2..32.
const std::array<std::vector<std::uint8_t>, 33>& tap_table() {
  static const std::array<std::vector<std::uint8_t>, 33> kTaps = [] {
    std::array<std::vector<std::uint8_t>, 33> t{};
    t[2] = {2, 1};
    t[3] = {3, 2};
    t[4] = {4, 3};
    t[5] = {5, 3};
    t[6] = {6, 5};
    t[7] = {7, 6};
    t[8] = {8, 6, 5, 4};
    t[9] = {9, 5};
    t[10] = {10, 7};
    t[11] = {11, 9};
    t[12] = {12, 6, 4, 1};
    t[13] = {13, 4, 3, 1};
    t[14] = {14, 5, 3, 1};
    t[15] = {15, 14};
    t[16] = {16, 15, 13, 4};
    t[17] = {17, 14};
    t[18] = {18, 11};
    t[19] = {19, 6, 2, 1};
    t[20] = {20, 17};
    t[21] = {21, 19};
    t[22] = {22, 21};
    t[23] = {23, 18};
    t[24] = {24, 23, 22, 17};
    t[25] = {25, 22};
    t[26] = {26, 6, 2, 1};
    t[27] = {27, 5, 2, 1};
    t[28] = {28, 25};
    t[29] = {29, 27};
    t[30] = {30, 6, 4, 1};
    t[31] = {31, 28};
    t[32] = {32, 22, 2, 1};
    return t;
  }();
  return kTaps;
}

}  // namespace

std::span<const std::uint8_t> primitive_taps(unsigned degree) {
  if (degree < kMinLfsrDegree || degree > kMaxLfsrDegree) {
    throw std::invalid_argument("primitive_taps: unsupported degree " +
                                std::to_string(degree));
  }
  return tap_table()[degree];
}

std::uint64_t primitive_tap_mask(unsigned degree) {
  std::uint64_t mask = 0;
  for (std::uint8_t t : primitive_taps(degree)) mask |= std::uint64_t{1} << (t - 1);
  return mask;
}

unsigned feedback_xor_count(unsigned degree) {
  return static_cast<unsigned>(primitive_taps(degree).size()) - 1;
}

}  // namespace merced
