// CBIT area model — paper Table 1 and Figure 4.
//
// Two views are provided:
//  * the *published* Table 1 values (d1..d6), carried verbatim so benches
//    can print the paper's numbers next to ours;
//  * a *first-principles* model derived from the unit-area library:
//
//      area(l) = l · A_CELL(19) + (taps(l) − 1) · XOR2(4) + l · 0.35
//
//    — l A_CELLs, the feedback XOR network of the primitive polynomial,
//    and a per-bit 0.35-unit overhead for the zero-detect NOR tree and
//    cascade/mode steering that the paper's Table 1 includes implicitly
//    (fitting the published values to within ~2 %).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netlist/area_model.h"

namespace merced {

/// One row of Table 1.
struct CbitAreaRow {
  unsigned type_index;    ///< k of d_k (1-based)
  unsigned length;        ///< l_k
  double area_per_dff;    ///< p_k  (CBIT area / DFF area)
  double area_per_bit;    ///< σ_k = p_k / l_k
};

/// The six published rows (d1..d6).
std::span<const CbitAreaRow> published_cbit_areas();

/// Published p_k for a given length, if that length is one of d1..d6.
std::optional<double> published_area_per_dff(unsigned length);

/// First-principles model, in raw area units.
double modeled_cbit_area_units(unsigned length);

/// First-principles model as DFF multiples (comparable to Table 1 col 3).
double modeled_area_per_dff(unsigned length);

/// Testing time in clock cycles for CBIT length l: 2^l (Figure 4 x-axis).
std::uint64_t testing_time_cycles(unsigned length);

/// Area of the test hardware for one cut net (DFF multiples):
///   retimed conversion: 0.9   — Fig. 3(b)
///   new multiplexed A_CELL: 2.3 — Fig. 3(c)
double cut_cell_area_per_dff(bool retimed);

/// Smallest standard CBIT length (4,8,12,16,24,32) that fits `inputs`
/// inputs; returns nullopt when inputs > 32.
std::optional<unsigned> smallest_standard_length(std::size_t inputs);

}  // namespace merced
