// Primitive feedback polynomials for maximal-length LFSRs/MISRs, degrees
// 2..32 — the "simple primitive feedback polynomial" of the paper's Table 1.
//
// Taps follow the standard maximal-length table (two- or four-tap
// pentanomial forms): an LFSR of degree n with these taps cycles through
// all 2^n − 1 nonzero states.
#pragma once

#include <cstdint>
#include <span>

namespace merced {

inline constexpr unsigned kMinLfsrDegree = 2;
inline constexpr unsigned kMaxLfsrDegree = 32;

/// Tap positions (1-indexed bit numbers, descending, first element == n)
/// of a primitive polynomial of degree n. Throws for unsupported degrees.
std::span<const std::uint8_t> primitive_taps(unsigned degree);

/// Same information as a bit mask: bit (t-1) set for each tap t.
std::uint64_t primitive_tap_mask(unsigned degree);

/// Number of 2-input XOR gates the feedback network needs (#taps − 1).
unsigned feedback_xor_count(unsigned degree);

}  // namespace merced
