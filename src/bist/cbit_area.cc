#include "bist/cbit_area.h"

#include <array>

#include "bist/polynomials.h"

namespace merced {

namespace {

constexpr std::array<CbitAreaRow, 6> kPublished = {{
    {1, 4, 8.14, 2.04},
    {2, 8, 16.68, 2.09},
    {3, 12, 24.48, 2.04},
    {4, 16, 32.21, 2.01},
    {5, 24, 47.66, 1.99},
    {6, 32, 63.12, 1.97},
}};

/// Per-bit overhead (area units) for zero-detect NOR tree + cascade/mode
/// steering, fitted to Table 1 (see header).
constexpr double kPerBitOverhead = 0.35;

}  // namespace

std::span<const CbitAreaRow> published_cbit_areas() { return kPublished; }

std::optional<double> published_area_per_dff(unsigned length) {
  for (const auto& row : kPublished) {
    if (row.length == length) return row.area_per_dff;
  }
  return std::nullopt;
}

double modeled_cbit_area_units(unsigned length) {
  const double acell = static_cast<double>(length) * static_cast<double>(kACellArea);
  const double fb = static_cast<double>(feedback_xor_count(length)) * 4.0;
  return acell + fb + kPerBitOverhead * static_cast<double>(length);
}

double modeled_area_per_dff(unsigned length) {
  return modeled_cbit_area_units(length) / static_cast<double>(kDffArea);
}

std::uint64_t testing_time_cycles(unsigned length) {
  return std::uint64_t{1} << length;
}

double cut_cell_area_per_dff(bool retimed) {
  return retimed ? static_cast<double>(kACellFromDffArea) / kDffArea
                 : static_cast<double>(kACellWithMuxArea) / kDffArea;
}

std::optional<unsigned> smallest_standard_length(std::size_t inputs) {
  for (unsigned l : {4u, 8u, 12u, 16u, 24u, 32u}) {
    if (inputs <= l) return l;
  }
  return std::nullopt;
}

}  // namespace merced
