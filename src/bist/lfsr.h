// Fibonacci LFSR with optional complete-cycle (de Bruijn) modification.
//
// In TPG mode a CBIT must apply *all* 2^n input combinations to its CUT —
// including the all-zero vector. The A_CELL's NOR gate implements the
// classic de Bruijn modification: the feedback bit is inverted exactly when
// the low n−1 state bits are zero, splicing the all-zero state into the
// maximal-length sequence, giving period 2^n.
#pragma once

#include <cstdint>

#include "bist/polynomials.h"

namespace merced {

class Lfsr {
 public:
  /// `degree` in [2, 32]; `complete_cycle` enables the de Bruijn splice.
  explicit Lfsr(unsigned degree, bool complete_cycle = true,
                std::uint64_t initial_state = 1);

  unsigned degree() const noexcept { return degree_; }
  std::uint64_t state() const noexcept { return state_; }
  void set_state(std::uint64_t s) noexcept { state_ = s & mask_; }

  /// Advances one clock; returns the new state.
  std::uint64_t step();

  /// Period of the configured register: 2^n (complete) or 2^n − 1.
  std::uint64_t period() const noexcept;

 private:
  unsigned degree_;
  bool complete_cycle_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

}  // namespace merced
