// Multiple-input signature register (MISR) for parallel signature analysis.
//
// Each clock the register shifts with primitive-polynomial feedback and
// XORs the parallel input word into the state; after T cycles the state is
// the test signature. A single-bit error stream is missed with probability
// ~2^-n (aliasing), the standard PSA argument.
#pragma once

#include <cstdint>

#include "bist/polynomials.h"

namespace merced {

class Misr {
 public:
  explicit Misr(unsigned degree, std::uint64_t initial_state = 0);

  unsigned degree() const noexcept { return degree_; }
  std::uint64_t signature() const noexcept { return state_; }
  void set_state(std::uint64_t s) noexcept { state_ = s & mask_; }

  /// Compacts one parallel input word (low `degree` bits used).
  void step(std::uint64_t inputs);

 private:
  unsigned degree_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

}  // namespace merced
