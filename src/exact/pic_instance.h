// Reduced PIC instance for the exact solver — the input of src/exact's
// branch-and-bound (DESIGN.md "Exact solver and certifying compilation").
//
// Two loss-free reductions shrink the NP-complete partition-with-input-
// constraint problem (paper §2.3, Eq. 5) before any search happens:
//
//  * Registers are irrelevant to both the objective and the constraint: a
//    DFF inside a cluster neither consumes test inputs (only combinational
//    gates do — partition/clustering.h) nor changes any net's cut status
//    (DFF-driven nets and nets into DFF D-pins are never cuts). Only the
//    combinational gates need to be partitioned; DFFs re-attach to any
//    cluster afterwards without changing a single count.
//
//  * An optimal partition exists whose clusters are weakly connected over
//    comb→comb branches: splitting a disconnected cluster into its
//    connected parts changes no net's cut status (no branch runs between
//    the parts) and can only shrink each part's ι. The solver therefore
//    decides merge/separate per comb→comb branch and reads clusters off a
//    union-find — and the branch graph's weak components are fully
//    independent subproblems whose optimal costs add up.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/circuit_graph.h"

namespace merced::exact {

/// One comb→comb fanout branch, deduplicated per (net, sink) pair (a gate
/// using the same net on two pins is one merge/separate decision, and ι
/// counts distinct nets).
struct PicBranch {
  std::uint32_t net = 0;   ///< index into PicInstance::nets
  std::uint32_t from = 0;  ///< comb index of the driving gate
  std::uint32_t to = 0;    ///< comb index of the sink gate
};

/// One cuttable net: a comb-driven net with at least one comb sink.
struct PicNet {
  NetId id = kNoNet;
  std::uint32_t first_branch = 0;  ///< CSR range into PicInstance::branches
  std::uint32_t num_branches = 0;
};

struct PicInstance {
  std::vector<NodeId> gate_of;        ///< comb index → circuit node
  std::vector<std::int32_t> comb_of;  ///< circuit node → comb index, −1 otherwise
  /// Per comb gate: sorted distinct PI/DFF source nets feeding it. These
  /// count toward ι of every cluster containing the gate, no matter how the
  /// partition falls — the irreducible part of the input count.
  std::vector<std::vector<NetId>> fixed_inputs;
  std::vector<PicNet> nets;        ///< cuttable nets
  std::vector<PicBranch> branches; ///< grouped by net (CSR via PicNet)
  std::size_t max_fixed = 0;       ///< max |fixed_inputs[g]| (root feasibility test)

  std::size_t num_gates() const noexcept { return gate_of.size(); }
};

PicInstance build_pic_instance(const CircuitGraph& graph);

}  // namespace merced::exact
