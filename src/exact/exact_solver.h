// merced_exact — branch-and-bound exact PIC solver and optimality prover
// (ROADMAP item 2; DESIGN.md "Exact solver and certifying compilation").
//
// Solves the partition-with-input-constraint problem exactly: minimize the
// number of cut nets subject to ι(π) ≤ lk for every cluster π, over the
// same ι/cut semantics as partition/clustering.h. Note the Eq. 6 SCC cut
// *budget* is deliberately NOT a constraint here — it is a heuristic
// throttle on Make_Group, not part of the problem statement — so every
// heuristic result lies inside the exact solver's feasible space and
// "heuristic cost ≥ exact cost" is a sound fuzzing oracle.
//
// Search design (see pic_instance.h for the two loss-free reductions):
//  * decisions are merge/separate per comb→comb branch, clusters are
//    union-find components; cost counts nets with ≥ 1 separated branch;
//  * each component of the branch graph is an independent subproblem —
//    optimal costs and lower bounds add across components;
//  * incremental pruning: a merge is refused when the merged cluster's
//    admissible ι floor (fixed PI/DFF inputs ∪ nets already separated into
//    it) exceeds lk or when a separated branch forbids it; a separate is
//    refused when it overflows the sink's ι floor, and pruned when the cut
//    count reaches the incumbent;
//  * the multi-start heuristic result seeds the incumbent and the value
//    ordering (merge first where the heuristic merged), so a completed
//    search is an optimality *proof* for the heuristic cost;
//  * budgets are honest: exhausting the node/time budget reports
//    kBudgetExhausted plus a proven lower bound (the cheapest abandoned
//    subtree), never a silent "optimal".
//
// Determinism: with max_seconds == 0 the outcome depends only on
// (netlist, options, incumbent) — the node budget is the only throttle.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/merced.h"
#include "exact/pic_instance.h"
#include "flow/saturate_network.h"
#include "partition/clustering.h"

namespace merced::exact {

struct ExactOptions {
  std::size_t lk = 16;                  ///< input constraint (Eq. 5)
  std::uint64_t max_nodes = 1'000'000;  ///< B&B decision-node budget
  /// Wall-clock cap in seconds; 0 disables it. Tests and oracles keep this
  /// at 0 so outcomes are node-bounded and machine-independent.
  double max_seconds = 0;
};

enum class ExactStatus : std::uint8_t {
  kOptimal,          ///< best_cost is the proven optimum
  kInfeasible,       ///< proven: no partition satisfies ι ≤ lk
  kBudgetExhausted,  ///< bounded gap: optimum ∈ [lower_bound, best_cost]
};

std::string_view to_string(ExactStatus status) noexcept;

struct ExactResult {
  ExactStatus status = ExactStatus::kBudgetExhausted;
  bool found_solution = false;   ///< partitions/cut_net_ids are valid
  std::size_t best_cost = 0;     ///< cut nets of the best found partition
  std::size_t lower_bound = 0;   ///< proven: optimum ≥ lower_bound
  Clustering partitions;         ///< full node space (DFFs re-attached)
  std::vector<std::size_t> partition_inputs;  ///< ι(π), recomputed via clustering.h
  std::vector<NetId> cut_net_ids;             ///< sorted, via clustering.h
  std::uint64_t nodes = 0;       ///< decision nodes explored
  std::uint64_t components = 0;  ///< independent branch-graph components solved
  double seconds = 0;
  bool improved_incumbent = false;  ///< found strictly fewer cuts than the seed

  bool optimal() const noexcept { return status == ExactStatus::kOptimal; }
};

/// Solves the instance exactly (or up to the budget). `incumbent` seeds the
/// upper bound and the value ordering; pass the heuristic's partitions only
/// when that compile was feasible. `congestion` orders the branch decisions
/// by saturation distance (most contended nets first); nullptr falls back
/// to net-id order.
ExactResult solve_exact(const CircuitGraph& graph, const ExactOptions& opt,
                        const Clustering* incumbent = nullptr,
                        const SaturationResult* congestion = nullptr);

/// Heuristic-then-exact compile: runs the standard multi-start compile,
/// uses it as the incumbent for the B&B, and returns the winning artifact
/// in the standard result shape so verify/certificate tooling applies
/// unchanged. `proof` carries the optimality status and the bound.
struct ExactCompileResult {
  MercedResult result;          ///< best known artifact
  ExactResult proof;
  std::size_t heuristic_cost = 0;
  bool heuristic_feasible = false;

  /// Proven optimality gap of the *heuristic*: heuristic_cost − lower_bound
  /// (0 when the heuristic is proven optimal). Meaningless when the
  /// heuristic was infeasible.
  std::size_t heuristic_gap() const noexcept {
    return heuristic_cost > proof.lower_bound ? heuristic_cost - proof.lower_bound : 0;
  }
};

ExactCompileResult exact_compile(const Netlist& netlist, const MercedConfig& config,
                                 const ExactOptions& opt);

}  // namespace merced::exact
