#include "exact/pic_instance.h"

#include <algorithm>

#include "partition/clustering.h"

namespace merced::exact {

PicInstance build_pic_instance(const CircuitGraph& g) {
  PicInstance inst;
  inst.comb_of.assign(g.num_nodes(), -1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!is_comb_node(g, v)) continue;
    inst.comb_of[v] = static_cast<std::int32_t>(inst.gate_of.size());
    inst.gate_of.push_back(v);
  }

  inst.fixed_inputs.resize(inst.num_gates());
  for (std::size_t ci = 0; ci < inst.num_gates(); ++ci) {
    const NodeId v = inst.gate_of[ci];
    std::vector<NetId>& fixed = inst.fixed_inputs[ci];
    for (BranchId b : g.in_branches(v)) {
      const Branch& br = g.branch(b);
      if (g.is_pi(br.source) || g.is_register(br.source)) fixed.push_back(br.net);
    }
    std::sort(fixed.begin(), fixed.end());
    fixed.erase(std::unique(fixed.begin(), fixed.end()), fixed.end());
    inst.max_fixed = std::max(inst.max_fixed, fixed.size());
  }

  // Cuttable nets and their comb→comb branches, deduplicated per sink.
  for (NodeId d = 0; d < g.num_nodes(); ++d) {
    if (inst.comb_of[d] < 0) continue;
    std::vector<std::uint32_t> sinks;
    for (BranchId b : g.out_branches(d)) {
      const Branch& br = g.branch(b);
      if (inst.comb_of[br.sink] >= 0) sinks.push_back(static_cast<std::uint32_t>(
          inst.comb_of[br.sink]));
    }
    if (sinks.empty()) continue;
    std::sort(sinks.begin(), sinks.end());
    sinks.erase(std::unique(sinks.begin(), sinks.end()), sinks.end());
    PicNet net;
    net.id = g.net_of(d);
    net.first_branch = static_cast<std::uint32_t>(inst.branches.size());
    net.num_branches = static_cast<std::uint32_t>(sinks.size());
    const auto net_idx = static_cast<std::uint32_t>(inst.nets.size());
    for (std::uint32_t s : sinks) {
      inst.branches.push_back(
          {net_idx, static_cast<std::uint32_t>(inst.comb_of[d]), s});
    }
    inst.nets.push_back(net);
  }
  return inst;
}

}  // namespace merced::exact
