#include "exact/exact_solver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <queue>
#include <utility>

#include "obs/obs.h"
#include "retiming/retime_graph.h"

namespace merced::exact {

namespace {

constexpr std::size_t kNoCost = std::numeric_limits<std::size_t>::max();
constexpr std::uint32_t kNone32 = std::numeric_limits<std::uint32_t>::max();

template <typename T>
std::size_t union_size(const std::vector<T>& a, const std::vector<T>& b) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    ++n;
    if (a[i] < b[j]) ++i;
    else if (b[j] < a[i]) ++j;
    else { ++i; ++j; }
  }
  return n + (a.size() - i) + (b.size() - j);
}

template <typename T>
std::vector<T> merge_sorted(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Per union-find root: the cluster-in-progress. `fixed` and `in_nets`
/// together are the cluster's admissible ι floor — both only ever grow on
/// the way down the search tree, which is what makes pruning on them sound.
struct Group {
  std::vector<NetId> fixed;            ///< sorted distinct PI/DFF input nets
  std::vector<std::uint32_t> in_nets;  ///< sorted net indices separated into the group
  std::vector<std::uint32_t> sep;      ///< separated branch ids touching the group
};

enum class Opt : std::uint8_t { kMerge, kSeparate, kNone };

struct MergeUndo {
  std::uint32_t child = kNone32;
  std::uint32_t parent = kNone32;
  Group saved;  ///< parent's group before the merge
};

struct SepUndo {
  std::uint32_t net = kNone32;
  std::uint32_t ru = kNone32, rv = kNone32;
  bool inserted = false;  ///< net was new in rv's in_nets
  bool first_cut = false; ///< this separation made the net a cut
};

struct Frame {
  std::uint32_t depth = 0;
  std::uint8_t next_opt = 0;
  std::uint8_t n_opts = 0;
  Opt opts[2] = {Opt::kNone, Opt::kNone};
  Opt applied = Opt::kNone;
  bool forced = false;  ///< endpoints already in one component (no-op merge)
  std::size_t lb = 0;   ///< admissible bound on any leaf below this frame
  MergeUndo mu;
  SepUndo su;
};

/// One DFS over all components, sequentially, sharing the union-find and
/// group state (components are disjoint, and every decision is undone on
/// backtrack, so state never leaks between components).
class Search {
 public:
  Search(const PicInstance& inst, const ExactOptions& opt,
         const std::vector<std::int32_t>* inc_label)
      : inst_(inst), opt_(opt), inc_label_(inc_label) {
    const std::size_t n = inst_.num_gates();
    uf_parent_.resize(n);
    uf_size_.assign(n, 1);
    group_.resize(n);
    for (std::uint32_t g = 0; g < n; ++g) {
      uf_parent_[g] = g;
      group_[g].fixed = inst_.fixed_inputs[g];
    }
    net_sep_count_.assign(inst_.nets.size(), 0);
    lb_mark_.assign(inst_.nets.size(), 0);
    if (opt_.max_seconds > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(opt_.max_seconds));
      have_deadline_ = true;
    }
  }

  std::uint64_t nodes() const noexcept { return nodes_; }

  struct RunOutcome {
    bool completed = false;       ///< search exhausted (not budget-stopped)
    bool have_leaf = false;       ///< a real solution was reached
    std::size_t best = kNoCost;   ///< final upper bound (artificial or real)
    std::size_t open_lb = kNoCost;///< min bound over abandoned subtrees
    std::vector<std::uint32_t> label;  ///< per member (valid when have_leaf)
  };

  /// One bounded B&B pass over a component. `initial_best` seeds the
  /// pruning bound: the heuristic incumbent's cost in an optimization pass,
  /// or an artificial bound L in a destructive "is there a solution < L?"
  /// pass (a completed run with no leaf then proves optimum ≥ L, and a
  /// completed run is always exhaustive below its final bound). `node_cap`
  /// is an absolute cap on the shared node counter.
  RunOutcome run(const std::vector<std::uint32_t>& members,
                 const std::vector<std::uint32_t>& order,
                 std::size_t initial_best, std::uint64_t node_cap) {
    best_ = initial_best;
    have_leaf_ = false;
    open_lb_ = kNoCost;
    best_label_.clear();
    node_cap_ = node_cap;
    aborted_ = false;
    assert(cost_ == 0);

    std::vector<Frame> stack;
    stack.reserve(order.size() + 1);
    try_push(stack, order, 0);
    while (!stack.empty()) {
      {
        Frame& f = stack.back();
        if (f.applied != Opt::kNone) {
          undo(f);
          f.applied = Opt::kNone;
        }
        if (aborted_) {
          // Every untried alternative of this frame roots an unexplored
          // subtree; its cost floor joins the proven lower bound.
          for (std::uint8_t i = f.next_opt; i < f.n_opts; ++i) {
            open_lb_ = std::min(
                open_lb_, std::max(f.lb, cost_ + opt_delta(f, f.opts[i])));
          }
          stack.pop_back();
          continue;
        }
        if (f.next_opt >= f.n_opts) {
          stack.pop_back();
          continue;
        }
      }
      const std::size_t fi = stack.size() - 1;
      const Opt o = stack[fi].opts[stack[fi].next_opt++];
      // Re-check the bound: `best_` may have improved since enumeration.
      if (best_ != kNoCost &&
          std::max(stack[fi].lb, cost_ + opt_delta(stack[fi], o)) >= best_) {
        continue;
      }
      apply(stack[fi], o);
      stack[fi].applied = o;
      const std::uint32_t next_depth = stack[fi].depth + 1;
      if (next_depth == order.size()) {
        record_leaf(members);
        continue;  // the applied decision is undone on the next iteration
      }
      try_push(stack, order, next_depth);
    }

    RunOutcome out;
    out.completed = !aborted_;
    out.have_leaf = have_leaf_;
    out.best = best_;
    out.open_lb = open_lb_;
    if (have_leaf_) out.label = std::move(best_label_);
    return out;
  }

  std::vector<std::uint32_t> incumbent_labels(
      const std::vector<std::uint32_t>& members) const {
    std::vector<std::uint32_t> label(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      label[i] = static_cast<std::uint32_t>((*inc_label_)[members[i]]);
    }
    return label;
  }

 private:
  std::uint32_t find(std::uint32_t g) const {
    while (uf_parent_[g] != g) g = uf_parent_[g];
    return g;
  }

  std::size_t opt_delta(const Frame& f, Opt o) const {
    if (o != Opt::kSeparate) return 0;
    return net_sep_count_[inst_.branches[f_branch(f)].net] > 0 ? 0 : 1;
  }

  std::uint32_t f_branch(const Frame& f) const { return order_ptr_[f.depth]; }

  bool merge_allowed(std::uint32_t ru, std::uint32_t rv) const {
    const Group& a = group_[ru];
    const Group& b = group_[rv];
    const Group& small = a.sep.size() <= b.sep.size() ? a : b;
    for (std::uint32_t bid : small.sep) {
      const PicBranch& br = inst_.branches[bid];
      const std::uint32_t x = find(br.from);
      const std::uint32_t y = find(br.to);
      if ((x == ru && y == rv) || (x == rv && y == ru)) return false;
    }
    return union_size(a.fixed, b.fixed) + union_size(a.in_nets, b.in_nets) <= opt_.lk;
  }

  /// Admissible lower bound on *additional* cuts below the current node:
  /// counts distinct uncut nets with an already-merge-impossible branch.
  /// Both refusal conditions are monotone down the tree (separation pairs
  /// only accumulate, fixed∪in_cut floors only grow), so such a net is cut
  /// at every descendant leaf. Stops counting at `threshold` (enough to
  /// prune). `lb_mark_` keeps each net counted at most once per scan.
  std::size_t forced_extra(const std::vector<std::uint32_t>& order,
                           std::uint32_t depth, std::size_t threshold) {
    std::size_t forced = 0;
    ++lb_epoch_;
    for (std::size_t i = depth; i < order.size(); ++i) {
      const PicBranch& br = inst_.branches[order[i]];
      if (lb_mark_[br.net] == lb_epoch_) continue;  // resolved this scan
      if (net_sep_count_[br.net] > 0) {
        lb_mark_[br.net] = lb_epoch_;  // already in cost_
        continue;
      }
      const std::uint32_t ru = find(br.from);
      const std::uint32_t rv = find(br.to);
      if (ru == rv) continue;
      if (!merge_allowed(ru, rv)) {
        lb_mark_[br.net] = lb_epoch_;
        if (++forced >= threshold) return forced;
      }
    }
    return forced;
  }

  void try_push(std::vector<Frame>& stack, const std::vector<std::uint32_t>& order,
                std::uint32_t depth) {
    order_ptr_ = order.data();
    ++nodes_;
    if (nodes_ > node_cap_ || time_exceeded()) {
      aborted_ = true;
      open_lb_ = std::min(open_lb_, cost_);
      return;
    }
    Frame f;
    f.depth = depth;
    if (best_ != kNoCost && cost_ >= best_) {
      f.lb = cost_;
      stack.push_back(std::move(f));  // bound-pruned: no options, pops at once
      return;
    }
    const std::size_t threshold = best_ == kNoCost ? kNoCost : best_ - cost_;
    f.lb = cost_ + forced_extra(order, depth, threshold);
    if (best_ != kNoCost && f.lb >= best_) {
      f.n_opts = 0;  // bound-pruned by the admissible lower bound
      stack.push_back(std::move(f));
      return;
    }
    const PicBranch& br = inst_.branches[order[depth]];
    const std::uint32_t ru = find(br.from);
    const std::uint32_t rv = find(br.to);
    if (ru == rv) {
      f.forced = true;
      f.opts[f.n_opts++] = Opt::kMerge;
      stack.push_back(std::move(f));
      return;
    }
    const bool merge_ok = merge_allowed(ru, rv);
    const Group& sink = group_[rv];
    const bool in_already =
        std::binary_search(sink.in_nets.begin(), sink.in_nets.end(), br.net);
    const bool sep_fits =
        sink.fixed.size() + sink.in_nets.size() + (in_already ? 0 : 1) <= opt_.lk;
    const std::size_t sep_delta = net_sep_count_[br.net] > 0 ? 0 : 1;
    const bool sep_ok =
        sep_fits && !(best_ != kNoCost && cost_ + sep_delta >= best_);
    // Value ordering: follow the incumbent where there is one (merge first
    // where the heuristic merged), otherwise merge-first greed.
    const bool merge_first =
        inc_label_ == nullptr ||
        (*inc_label_)[br.from] == (*inc_label_)[br.to];
    auto push_opt = [&](Opt o) { f.opts[f.n_opts++] = o; };
    if (merge_first) {
      if (merge_ok) push_opt(Opt::kMerge);
      if (sep_ok) push_opt(Opt::kSeparate);
    } else {
      if (sep_ok) push_opt(Opt::kSeparate);
      if (merge_ok) push_opt(Opt::kMerge);
    }
    stack.push_back(std::move(f));
  }

  void apply(Frame& f, Opt o) {
    const PicBranch& br = inst_.branches[f_branch(f)];
    if (o == Opt::kMerge) {
      if (f.forced) return;
      std::uint32_t ru = find(br.from);
      std::uint32_t rv = find(br.to);
      if (uf_size_[ru] < uf_size_[rv]) std::swap(ru, rv);
      f.mu.parent = ru;
      f.mu.child = rv;
      f.mu.saved = std::move(group_[ru]);
      Group merged;
      merged.fixed = merge_sorted(f.mu.saved.fixed, group_[rv].fixed);
      merged.in_nets = merge_sorted(f.mu.saved.in_nets, group_[rv].in_nets);
      merged.sep = f.mu.saved.sep;
      merged.sep.insert(merged.sep.end(), group_[rv].sep.begin(), group_[rv].sep.end());
      group_[ru] = std::move(merged);
      uf_parent_[rv] = ru;
      uf_size_[ru] += uf_size_[rv];
      return;
    }
    SepUndo& su = f.su;
    su.net = br.net;
    su.ru = find(br.from);
    su.rv = find(br.to);
    group_[su.ru].sep.push_back(f_branch(f));
    group_[su.rv].sep.push_back(f_branch(f));
    auto& in = group_[su.rv].in_nets;
    const auto it = std::lower_bound(in.begin(), in.end(), br.net);
    su.inserted = (it == in.end() || *it != br.net);
    if (su.inserted) in.insert(it, br.net);
    su.first_cut = (net_sep_count_[br.net]++ == 0);
    if (su.first_cut) ++cost_;
  }

  void undo(Frame& f) {
    if (f.applied == Opt::kMerge) {
      if (f.forced) return;
      uf_size_[f.mu.parent] -= uf_size_[f.mu.child];
      uf_parent_[f.mu.child] = f.mu.child;
      group_[f.mu.parent] = std::move(f.mu.saved);
      return;
    }
    SepUndo& su = f.su;
    if (su.first_cut) --cost_;
    --net_sep_count_[su.net];
    if (su.inserted) {
      auto& in = group_[su.rv].in_nets;
      in.erase(std::lower_bound(in.begin(), in.end(), su.net));
    }
    group_[su.rv].sep.pop_back();
    group_[su.ru].sep.pop_back();
  }

  void record_leaf(const std::vector<std::uint32_t>& members) {
    // Reaching a leaf implies cost_ < best_ (both pushes and applies prune
    // at >=), so this is always a strict improvement.
    best_ = cost_;
    have_leaf_ = true;
    best_label_.resize(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) best_label_[i] = find(members[i]);
  }

  bool time_exceeded() {
    if (!have_deadline_ || (nodes_ & 0xfff) != 0) return false;
    return std::chrono::steady_clock::now() > deadline_;
  }

  const PicInstance& inst_;
  const ExactOptions& opt_;
  const std::vector<std::int32_t>* inc_label_;
  const std::uint32_t* order_ptr_ = nullptr;

  std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint32_t> uf_size_;
  std::vector<Group> group_;
  std::vector<std::uint32_t> net_sep_count_;
  std::vector<std::uint64_t> lb_mark_;
  std::uint64_t lb_epoch_ = 0;
  std::size_t cost_ = 0;

  std::size_t best_ = kNoCost;
  bool have_leaf_ = false;
  std::size_t open_lb_ = kNoCost;
  std::vector<std::uint32_t> best_label_;

  std::uint64_t nodes_ = 0;
  std::uint64_t node_cap_ = 0;
  bool aborted_ = false;
  bool have_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

/// Weak components of the comb→comb branch graph, each with its members and
/// its branch decision order (nets by congestion rank, branches CSR-order
/// within a net). Deterministic: components keyed by smallest member.
struct Component {
  std::vector<std::uint32_t> members;   ///< comb indices, ascending
  std::vector<std::uint32_t> order;     ///< branch ids in decision order
  std::vector<std::uint32_t> nets;      ///< net indices, in decision order
};

std::vector<Component> split_components(const PicInstance& inst,
                                        const SaturationResult* congestion) {
  const std::size_t n = inst.num_gates();
  std::vector<std::uint32_t> comp_of(n, kNone32);
  std::vector<Component> comps;
  std::vector<std::vector<std::uint32_t>> adj(n);  // branch ids per endpoint
  for (std::uint32_t b = 0; b < inst.branches.size(); ++b) {
    adj[inst.branches[b].from].push_back(b);
    adj[inst.branches[b].to].push_back(b);
  }
  std::vector<std::uint32_t> dfs;
  for (std::uint32_t g = 0; g < n; ++g) {
    if (comp_of[g] != kNone32) continue;
    const auto ci = static_cast<std::uint32_t>(comps.size());
    comps.emplace_back();
    comp_of[g] = ci;
    dfs.push_back(g);
    while (!dfs.empty()) {
      const std::uint32_t v = dfs.back();
      dfs.pop_back();
      comps[ci].members.push_back(v);
      for (std::uint32_t b : adj[v]) {
        const PicBranch& br = inst.branches[b];
        for (std::uint32_t w : {br.from, br.to}) {
          if (comp_of[w] == kNone32) {
            comp_of[w] = ci;
            dfs.push_back(w);
          }
        }
      }
    }
    std::sort(comps[ci].members.begin(), comps[ci].members.end());
  }

  // Net rank: congestion distance (descending) when available, id order
  // otherwise. congestion_ranking is the same ordering Make_Group cuts by.
  std::vector<std::uint32_t> rank(inst.nets.size());
  for (std::uint32_t i = 0; i < rank.size(); ++i) rank[i] = i;
  if (congestion != nullptr) {
    std::vector<std::uint32_t> net_rank_by_id(congestion->distance.size(), 0);
    const std::vector<NetId> ranked = congestion_ranking(*congestion);
    for (std::uint32_t pos = 0; pos < ranked.size(); ++pos) {
      net_rank_by_id[ranked[pos]] = pos;
    }
    std::sort(rank.begin(), rank.end(), [&](std::uint32_t a, std::uint32_t b) {
      const std::uint32_t ra = net_rank_by_id[inst.nets[a].id];
      const std::uint32_t rb = net_rank_by_id[inst.nets[b].id];
      if (ra != rb) return ra < rb;
      return a < b;
    });
  }
  std::vector<std::uint32_t> net_prio(inst.nets.size(), 0);
  for (std::uint32_t pos = 0; pos < rank.size(); ++pos) net_prio[rank[pos]] = pos;
  for (std::uint32_t net_idx : rank) {
    const std::uint32_t owner = comp_of[inst.branches[inst.nets[net_idx].first_branch].from];
    comps[owner].nets.push_back(net_idx);  // rank order
  }

  // Decision order: frontier growth. Each next branch touches the already-
  // ordered region, so cluster ι floors accumulate quickly and the search
  // hits merge-impossible contradictions early — that is what powers both
  // pruning and the forced-cut lower bound. The congestion rank picks which
  // frontier branch comes next (most contended first). Branches and gates
  // belong to exactly one component, so the scratch arrays need no reset.
  std::vector<char> added(inst.branches.size(), 0);
  std::vector<char> in_region(n, 0);
  using Prio = std::pair<std::uint32_t, std::uint32_t>;  // (net rank pos, branch)
  std::priority_queue<Prio, std::vector<Prio>, std::greater<>> frontier;
  for (auto& comp : comps) {
    if (comp.nets.empty()) continue;
    const std::uint32_t seed = inst.nets[comp.nets.front()].first_branch;
    added[seed] = 1;
    frontier.push({net_prio[inst.branches[seed].net], seed});
    auto add_gate = [&](std::uint32_t g) {
      if (in_region[g]) return;
      in_region[g] = 1;
      for (std::uint32_t b : adj[g]) {
        if (!added[b]) {
          added[b] = 1;
          frontier.push({net_prio[inst.branches[b].net], b});
        }
      }
    };
    while (!frontier.empty()) {
      const auto [prio, b] = frontier.top();
      frontier.pop();
      comp.order.push_back(b);
      add_gate(inst.branches[b].from);
      add_gate(inst.branches[b].to);
    }
  }
  return comps;
}

}  // namespace

std::string_view to_string(ExactStatus status) noexcept {
  switch (status) {
    case ExactStatus::kOptimal: return "optimal";
    case ExactStatus::kInfeasible: return "infeasible";
    case ExactStatus::kBudgetExhausted: return "budget-exhausted";
  }
  return "unknown";
}

ExactResult solve_exact(const CircuitGraph& graph, const ExactOptions& opt,
                        const Clustering* incumbent,
                        const SaturationResult* congestion) {
  MERCED_SPAN("solve_exact");
  const auto t0 = std::chrono::steady_clock::now();
  ExactResult r;
  const PicInstance inst = build_pic_instance(graph);

  if (opt.lk == 0 || inst.max_fixed > opt.lk) {
    // Some gate's irreducible PI/DFF inputs already exceed lk: every
    // cluster containing it violates Eq. 5, no matter the partition.
    r.status = ExactStatus::kInfeasible;
    r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return r;
  }

  // Incumbent labels per comb gate (the value-ordering and upper-bound seed).
  std::vector<std::int32_t> inc_label;
  if (incumbent != nullptr) {
    inc_label.resize(inst.num_gates());
    for (std::size_t g = 0; g < inst.num_gates(); ++g) {
      inc_label[g] = incumbent->cluster_of[inst.gate_of[g]];
    }
  }

  std::vector<Component> comps = split_components(inst, congestion);
  r.components = comps.size();

  // Small components first: cheap optimality proofs land before the node
  // budget runs out on the big ones. Deterministic tie-break by member id.
  std::vector<std::size_t> comp_order(comps.size());
  for (std::size_t i = 0; i < comp_order.size(); ++i) comp_order[i] = i;
  std::sort(comp_order.begin(), comp_order.end(), [&](std::size_t a, std::size_t b) {
    if (comps[a].order.size() != comps[b].order.size()) {
      return comps[a].order.size() < comps[b].order.size();
    }
    return comps[a].members.front() < comps[b].members.front();
  });

  Search search(inst, opt, incumbent != nullptr ? &inc_label : nullptr);

  struct CompOutcome {
    bool completed = false;            ///< optimum proven (or infeasibility)
    std::size_t best = kNoCost;        ///< best known cost (kNoCost = none)
    std::size_t lower_bound = 0;       ///< proven: component optimum ≥ this
    std::vector<std::uint32_t> label;  ///< per member (valid when best != kNoCost)
  };
  std::vector<CompOutcome> outcomes(comps.size());

  // Phase 1 — optimization passes, seeded by the incumbent. Reserve a
  // quarter of the node budget for phase 2's bound strengthening.
  const std::uint64_t opt_budget = opt.max_nodes - opt.max_nodes / 4;
  std::size_t inc_total = 0;
  bool any_infeasible = false;
  for (std::size_t oi : comp_order) {
    const Component& comp = comps[oi];
    std::size_t inc_cost = kNoCost;
    if (incumbent != nullptr) {
      inc_cost = 0;
      for (std::uint32_t net_idx : comp.nets) {
        const PicNet& net = inst.nets[net_idx];
        for (std::uint32_t b = 0; b < net.num_branches; ++b) {
          const PicBranch& br = inst.branches[net.first_branch + b];
          if (inc_label[br.from] != inc_label[br.to]) {
            ++inc_cost;
            break;
          }
        }
      }
      inc_total += inc_cost;
    }
    CompOutcome& out = outcomes[oi];
    if (comp.order.empty()) {
      // Isolated gate (or batch of them): singleton clusters, zero cuts.
      out.completed = true;
      out.best = 0;
      out.lower_bound = 0;
      out.label = comp.members;
      continue;
    }
    if (inc_cost != kNoCost) {
      out.best = inc_cost;
      out.label = search.incumbent_labels(comp.members);
    }
    if (search.nodes() >= opt_budget) continue;  // phase 2 may still bound it
    const Search::RunOutcome run =
        search.run(comp.members, comp.order, inc_cost, opt_budget);
    if (run.have_leaf) {
      out.best = run.best;
      out.label = run.label;
    }
    if (run.completed) {
      out.completed = true;
      out.lower_bound = out.best == kNoCost ? 0 : out.best;
      if (out.best == kNoCost) any_infeasible = true;
    } else {
      out.lower_bound = std::min(run.open_lb, out.best);
      if (out.lower_bound == kNoCost) out.lower_bound = 0;
    }
  }

  // Phase 2 — destructive bound strengthening for unproven components: a
  // completed run with artificial bound L and no leaf proves optimum ≥ L.
  // When L meets the known upper bound the component is proven optimal;
  // when L passes the component's net count with no solution at all, it is
  // proven infeasible. Budget slices keep one component from starving the
  // rest; every run still draws from the one global node pool.
  const std::uint64_t slice =
      std::max<std::uint64_t>(4096, opt.max_nodes / 16);
  for (std::size_t oi : comp_order) {
    CompOutcome& out = outcomes[oi];
    const Component& comp = comps[oi];
    if (out.completed || any_infeasible) continue;
    while (search.nodes() < opt.max_nodes) {
      const std::size_t target = out.lower_bound + 1;
      if (out.best != kNoCost && target > out.best) break;  // nothing to prove
      if (out.best == kNoCost && target > comp.nets.size()) {
        // Even cutting every net admits no partition: infeasible.
        out.completed = true;
        any_infeasible = true;
        break;
      }
      const std::uint64_t cap =
          std::min<std::uint64_t>(opt.max_nodes, search.nodes() + slice);
      const Search::RunOutcome run =
          search.run(comp.members, comp.order, target, cap);
      if (!run.completed) break;
      if (run.have_leaf) {
        // Exhaustive below the final bound: run.best is the optimum.
        out.best = run.best;
        out.label = run.label;
        out.lower_bound = run.best;
        out.completed = true;
        break;
      }
      out.lower_bound = target;
      if (out.best != kNoCost && out.lower_bound >= out.best) {
        out.completed = true;  // incumbent proven optimal
        out.lower_bound = out.best;
        break;
      }
    }
  }
  r.nodes = search.nodes();

  bool all_solved = true;
  bool all_optimal = true;
  std::size_t total_best = 0;
  std::size_t total_lb = 0;
  for (const auto& out : outcomes) {
    if (out.best == kNoCost) all_solved = false;
    else total_best += out.best;
    if (!out.completed) all_optimal = false;
    total_lb += out.lower_bound;
  }

  if (any_infeasible) {
    r.status = ExactStatus::kInfeasible;
  } else if (all_optimal) {
    r.status = all_solved ? ExactStatus::kOptimal : ExactStatus::kBudgetExhausted;
    // all_optimal && !all_solved cannot happen: a completed component
    // without a solution is infeasible, caught above.
  } else {
    r.status = ExactStatus::kBudgetExhausted;
  }
  r.found_solution = all_solved && !any_infeasible;
  r.best_cost = r.found_solution ? total_best : 0;
  r.lower_bound = any_infeasible ? 0 : total_lb;
  r.improved_incumbent =
      incumbent != nullptr && r.found_solution && r.best_cost < inc_total;

  if (r.found_solution) {
    // Assemble the full clustering: (component, label) pairs become
    // clusters in order of first appearance by node id; DFFs re-attach to
    // the cluster of their D driver (or first comb fanout, or cluster 0).
    std::vector<std::int32_t> comb_cluster(inst.num_gates(), kNoCluster);
    Clustering& c = r.partitions;
    c.cluster_of.assign(graph.num_nodes(), kNoCluster);
    c.clusters.clear();
    for (std::size_t ci = 0; ci < comps.size(); ++ci) {
      // label → cluster index, scoped to this component.
      std::vector<std::pair<std::uint32_t, std::int32_t>> local;
      for (std::size_t i = 0; i < comps[ci].members.size(); ++i) {
        const std::uint32_t label = outcomes[ci].label[i];
        std::int32_t cluster = kNoCluster;
        for (const auto& [l, cl] : local) {
          if (l == label) { cluster = cl; break; }
        }
        if (cluster == kNoCluster) {
          cluster = static_cast<std::int32_t>(c.clusters.size());
          c.clusters.emplace_back();
          local.emplace_back(label, cluster);
        }
        comb_cluster[comps[ci].members[i]] = cluster;
      }
    }
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (inst.comb_of[v] >= 0) c.cluster_of[v] = comb_cluster[inst.comb_of[v]];
    }
    std::vector<NodeId> orphan_dffs;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (!graph.is_register(v)) continue;
      std::int32_t home = kNoCluster;
      for (BranchId b : graph.in_branches(v)) {
        const NodeId d = graph.branch(b).source;
        if (inst.comb_of[d] >= 0) home = comb_cluster[inst.comb_of[d]];
      }
      if (home == kNoCluster) {
        for (BranchId b : graph.out_branches(v)) {
          const NodeId s = graph.branch(b).sink;
          if (inst.comb_of[s] >= 0) { home = comb_cluster[inst.comb_of[s]]; break; }
        }
      }
      if (home == kNoCluster) {
        if (!c.clusters.empty()) home = 0;
        else { orphan_dffs.push_back(v); continue; }
      }
      c.cluster_of[v] = home;
    }
    if (!orphan_dffs.empty()) {
      const auto idx = static_cast<std::int32_t>(c.clusters.size());
      c.clusters.emplace_back();
      for (NodeId v : orphan_dffs) c.cluster_of[v] = idx;
    }
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (c.cluster_of[v] != kNoCluster) {
        c.clusters[static_cast<std::size_t>(c.cluster_of[v])].push_back(v);
      }
    }
    c.validate(graph);

    // Recompute ι and the cut set with the authoritative clustering.h
    // accounting — the solver's incremental counts must agree exactly.
    r.partition_inputs.resize(c.count());
    for (std::size_t ci = 0; ci < c.count(); ++ci) {
      r.partition_inputs[ci] = input_count(graph, c, ci);
      assert(r.partition_inputs[ci] <= opt.lk);
    }
    r.cut_net_ids = cut_nets(graph, c);
    assert(r.cut_net_ids.size() == r.best_cost);
  }

  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return r;
}

ExactCompileResult exact_compile(const Netlist& netlist, const MercedConfig& config,
                                 const ExactOptions& opt) {
  MERCED_SPAN("exact_compile");
  ExactCompileResult out;
  const PreparedCircuit prepared(netlist, config.flow, config.multi_start, config.jobs);
  out.result = compile(prepared, config);
  out.heuristic_cost = out.result.cuts.nets_cut;
  out.heuristic_feasible = out.result.feasible;

  ExactOptions eopt = opt;
  eopt.lk = config.lk;
  out.proof = solve_exact(prepared.graph, eopt,
                          out.heuristic_feasible ? &out.result.partitions : nullptr,
                          &prepared.saturation());

  if (out.proof.found_solution &&
      (!out.heuristic_feasible || out.proof.improved_incumbent)) {
    // Adopt the exact partition and rebuild the standard artifact around it.
    MercedResult& r = out.result;
    r.feasible = true;
    r.partitions = out.proof.partitions;
    r.partition_inputs = out.proof.partition_inputs;
    r.cut_net_ids = out.proof.cut_net_ids;
    r.cuts = make_cut_report(prepared.graph, r.partitions, prepared.sccs);
    const RetimeGraph rgraph(prepared.graph);
    r.retiming = plan_cut_retiming(prepared.graph, rgraph, prepared.sccs,
                                   r.cut_net_ids, r.partitions);
    const std::size_t total = r.cut_net_ids.size();
    r.area.multiplexed_cuts = std::min(total, r.retiming.scc_aggregate_demotions);
    r.area.retimable_cuts = total - r.area.multiplexed_cuts;
    r.area.exact_retimable_cuts = r.retiming.retimable.size();
    r.area.exact_multiplexed_cuts = r.retiming.multiplexed.size();
    r.cbit_cost = assign_cbit_cost(r.partition_inputs);
  }
  return out;
}

}  // namespace merced::exact
