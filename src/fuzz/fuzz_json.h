// merced-fuzz-v1 — one fuzz campaign's run report as a versioned JSON
// artifact, in the same family as merced-metrics-v1 and merced-verify-v1:
//
//   { "schema": "merced-fuzz-v1",
//     "run": {"tool": "merced_fuzz", "seed": N, "runs": N, "jobs": N,
//             "defect": "none", "minimize": true/false, "corpus": "..."},
//     "summary": {"runs_executed": N, "failures": N,
//                 "unique_signatures": N, "minimized": N,
//                 "corpus_new": N, "corpus_dupes": N,
//                 "clean": true/false, "elapsed_seconds": X},
//     "failures": [{"run": N, "seed": N, "oracle": "...",
//                   "signature": "...", "detail": "...",
//                   "gates_before": N, "gates_after": N,
//                   "minimized": true/false, "corpus_path": "..."}, ...] }
//
// Failures keep run order (deterministic: the driver aggregates parallel
// results in index order), so two campaigns with the same seed and runs
// diff cleanly. The validator cross-checks summary counts against the
// failures array, exactly like validate_verify_json — a drifted summary is
// rejected, not trusted. metrics_check --fuzz runs it in CI against every
// freshly produced report.
#pragma once

#include <iosfwd>
#include <string>

#include "fuzz/fuzzer.h"
#include "obs/json.h"

namespace merced::fuzz {

inline constexpr const char* kFuzzSchema = "merced-fuzz-v1";

/// Serializes the versioned artifact described in the file comment.
void write_fuzz_json(std::ostream& os, const FuzzReport& report);

/// Validates a parsed fuzz artifact against merced-fuzz-v1. Returns an
/// empty string when valid, else a description of the first violation.
std::string validate_fuzz_json(const obs::JsonValue& doc);

}  // namespace merced::fuzz
