#include "fuzz/minimizer.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"

namespace merced::fuzz {

namespace {

/// True when `soft` still reproduces the target signature. Invalid circuits
/// (to_netlist throws) simply don't reproduce.
bool reproduces(const SoftNetlist& soft, const OracleOptions& opt,
                const std::string& signature, std::size_t& attempts) {
  ++attempts;
  MERCED_COUNT(obs::Counter::kFuzzMinimizerAttempts, 1);
  try {
    const Netlist candidate = soft.to_netlist();
    const std::optional<OracleFailure> failure = run_oracles(candidate, opt);
    return failure.has_value() && failure->signature == signature;
  } catch (const std::exception&) {
    return false;
  }
}

/// Removes gate `index`, rewiring every reader to `replacement` (a net
/// name; empty = drop the reading pin instead, where arity allows).
SoftNetlist bypass_gate(const SoftNetlist& soft, std::size_t index,
                        const std::string& replacement) {
  SoftNetlist reduced = soft;
  const std::string victim = reduced.gates[index].name;
  reduced.gates.erase(reduced.gates.begin() + static_cast<std::ptrdiff_t>(index));
  for (SoftGate& g : reduced.gates) {
    for (std::size_t p = 0; p < g.fanins.size();) {
      if (g.fanins[p] != victim) {
        ++p;
      } else if (!replacement.empty()) {
        g.fanins[p] = replacement;
        ++p;
      } else {
        g.fanins.erase(g.fanins.begin() + static_cast<std::ptrdiff_t>(p));
      }
    }
  }
  for (std::size_t o = 0; o < reduced.outputs.size();) {
    if (reduced.outputs[o] != victim) {
      ++o;
    } else if (!replacement.empty()) {
      reduced.outputs[o] = replacement;
      ++o;
    } else {
      reduced.outputs.erase(reduced.outputs.begin() + static_cast<std::ptrdiff_t>(o));
    }
  }
  return reduced;
}

}  // namespace

MinimizeResult minimize_failure(const Netlist& failing, const OracleOptions& opt,
                                const std::string& signature,
                                std::size_t max_attempts) {
  SoftNetlist best = SoftNetlist::from_netlist(failing);
  MinimizeResult out;
  out.gates_before = best.gates.size();

  {
    std::size_t check = 0;
    if (!reproduces(best, opt, signature, check)) {
      throw std::invalid_argument(
          "minimize_failure: input does not fail with signature '" + signature + "'");
    }
  }

  bool changed = true;
  while (changed && out.attempts < max_attempts) {
    changed = false;
    ++out.rounds;

    // Pass 1: drop primary outputs (cheapest reduction, biggest dead-logic
    // cascade via pass 3).
    while (best.outputs.size() > 1 && out.attempts < max_attempts) {
      SoftNetlist reduced = best;
      reduced.outputs.pop_back();
      if (reproduces(reduced, opt, signature, out.attempts)) {
        best = std::move(reduced);
        changed = true;
      } else {
        break;
      }
    }

    // Pass 2: bypass-delete gates, highest index first so erase() never
    // shifts indices we still plan to visit this pass.
    for (std::size_t i = best.gates.size(); i-- > 0 && out.attempts < max_attempts;) {
      const SoftGate& g = best.gates[i];
      const std::string replacement =
          g.fanins.empty() ? std::string() : g.fanins.front();
      if (g.type == GateType::kInput && best.gates.size() <= 2) continue;
      SoftNetlist reduced = bypass_gate(best, i, replacement);
      if (reduced.gates.empty() || reduced.outputs.empty()) continue;
      if (reproduces(reduced, opt, signature, out.attempts)) {
        best = std::move(reduced);
        changed = true;
      }
    }

    // Pass 3: dead-logic sweep — unreferenced non-output gates go in one
    // candidate (all together, then the oracle decides).
    {
      SoftNetlist reduced = best;
      const std::vector<std::size_t> refs = reduced.reference_counts();
      bool any = false;
      for (std::size_t i = reduced.gates.size(); i-- > 0;) {
        if (refs[i] == 0) {
          reduced.gates.erase(reduced.gates.begin() + static_cast<std::ptrdiff_t>(i));
          any = true;
        }
      }
      if (any && !reduced.gates.empty() &&
          reproduces(reduced, opt, signature, out.attempts)) {
        best = std::move(reduced);
        changed = true;
      }
    }

    // Pass 4: prune fanin pins down to the type's minimum arity.
    for (std::size_t i = 0; i < best.gates.size() && out.attempts < max_attempts; ++i) {
      while (best.gates[i].fanins.size() > min_fanin(best.gates[i].type) &&
             out.attempts < max_attempts) {
        SoftNetlist reduced = best;
        reduced.gates[i].fanins.pop_back();
        if (reproduces(reduced, opt, signature, out.attempts)) {
          best = std::move(reduced);
          changed = true;
        } else {
          break;
        }
      }
    }
  }

  out.netlist = best.to_netlist();
  out.gates_after = best.gates.size();
  return out;
}

}  // namespace merced::fuzz
