// The fuzz driver: structured input generation, parallel oracle runs,
// minimization, and corpus persistence under one deterministic loop.
//
// Input construction alternates two strategies over the run index r:
//  * even r — pure generation: a small random SyntheticSpec (4–8 PIs, 2–8
//    DFFs, 15–60 gates) built by circuits::generate_circuit;
//  * odd r — semantic mutation: the generated circuit for r-1's spec is
//    further mutated by fuzz::mutate (gate retypes, fanin swaps/rewires,
//    DFF inserts/removes, cone duplication), always yielding a parseable,
//    finalized netlist.
//
// Determinism contract (mirrors the parallel runtime's): run r's seed is
// derive_seed(cfg.seed, r) — a pure function of (base seed, run index) —
// and results are aggregated in run order via parallel_map, so the report
// is bit-identical for any --jobs value. The only escape hatch is
// --time-budget, which stops scheduling new chunks when the wall clock
// expires; budget-limited campaigns are reproducible in content but not in
// length (documented in EXPERIMENTS.md).
//
// Each failure is (optionally) shrunk by minimize_failure and persisted to
// the corpus, deduplicated by signature. The campaign summary serializes as
// merced-fuzz-v1 (fuzz_json.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/generator.h"
#include "fuzz/oracle.h"

namespace merced::fuzz {

/// One fuzz campaign's knobs (the merced_fuzz CLI maps onto this 1:1).
struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t runs = 100;             ///< inputs to generate and check
  double time_budget_seconds = 0;     ///< 0 = unlimited (determinism mode)
  std::size_t jobs = 1;               ///< 0 = all hardware threads
  bool minimize = true;               ///< shrink failures before storing
  std::string corpus_dir;             ///< empty = don't persist failures
  OracleOptions oracle;               ///< per-input oracle stack knobs
};

/// One oracle failure found by the campaign.
struct FuzzFailureRecord {
  std::size_t run = 0;          ///< run index within the campaign
  std::uint64_t seed = 0;       ///< derive_seed(cfg.seed, run)
  std::string oracle;
  std::string signature;
  std::string detail;
  std::size_t gates_before = 0; ///< input size when the oracle fired
  std::size_t gates_after = 0;  ///< size after minimization (== before if off)
  bool minimized = false;
  std::string corpus_path;      ///< where it was stored ("" if deduped/off)
};

/// Campaign results, serializable as merced-fuzz-v1.
struct FuzzReport {
  FuzzConfig config;
  std::size_t runs_executed = 0;
  std::vector<FuzzFailureRecord> failures;  ///< in run order
  std::size_t unique_signatures = 0;
  std::size_t minimized = 0;     ///< failures that went through the minimizer
  std::size_t corpus_new = 0;    ///< new corpus entries written
  std::size_t corpus_dupes = 0;  ///< failures deduplicated away
  double elapsed_seconds = 0;

  bool clean() const noexcept { return failures.empty(); }
};

/// The spec fuzz run `seed` generates from: small circuits (4–8 PIs, 2–8
/// DFFs, 15–60 gates) keep one oracle-stack evaluation fast enough for
/// hundreds of runs per campaign. Pure function of `seed`.
SyntheticSpec random_fuzz_spec(std::uint64_t seed);

/// The exact netlist fuzz run `r` of a campaign with base seed `base_seed`
/// feeds to the oracles (generation for even r, mutation for odd r). Pure
/// function of its arguments — tests use it to rebuild any failing input.
Netlist fuzz_input(std::uint64_t base_seed, std::size_t r);

/// Runs the campaign described by `cfg`. Deterministic in cfg when
/// time_budget_seconds == 0 (see file comment).
FuzzReport run_fuzz(const FuzzConfig& cfg);

}  // namespace merced::fuzz
