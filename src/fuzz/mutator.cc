#include "fuzz/mutator.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace merced::fuzz {

namespace {

/// splitmix64 step — the same decorrelation primitive the multi-start and
/// fuzz-run seed derivations use. Self-contained so the mutator's draw
/// sequence is stable across standard libraries (no std::distribution).
struct Rng {
  std::uint64_t state;

  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform-enough draw in [0, n); n must be > 0.
  std::size_t below(std::size_t n) noexcept {
    return static_cast<std::size_t>(next() % n);
  }
};

/// The retype partner within the same arity class, or the type itself when
/// no same-arity sibling exists (MUX, constants, DFF, INPUT).
GateType retype_of(GateType t, Rng& rng) {
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor: {
      constexpr GateType kQuad[4] = {GateType::kAnd, GateType::kNand, GateType::kOr,
                                     GateType::kNor};
      return kQuad[rng.below(4)];
    }
    case GateType::kXor:
      return GateType::kXnor;
    case GateType::kXnor:
      return GateType::kXor;
    case GateType::kNot:
      return GateType::kBuf;
    case GateType::kBuf:
      return GateType::kNot;
    default:
      return t;
  }
}

/// A fresh net name not colliding with any existing gate.
std::string fresh_name(const SoftNetlist& soft, std::uint64_t& counter) {
  for (;;) {
    std::string candidate = "fz" + std::to_string(counter++);
    if (soft.find(candidate) == SoftNetlist::npos) return candidate;
  }
}

// Each mutator edits `soft` in place and returns true when it changed
// something. Structural legality is NOT their job — the caller validates
// the edited circuit wholesale and rolls back on failure.

bool mutate_retype(SoftNetlist& soft, Rng& rng) {
  const std::size_t i = rng.below(soft.gates.size());
  SoftGate& g = soft.gates[i];
  const GateType next = retype_of(g.type, rng);
  if (next == g.type) return false;
  g.type = next;
  return true;
}

bool mutate_fanin_swap(SoftNetlist& soft, Rng& rng) {
  const std::size_t i = rng.below(soft.gates.size());
  SoftGate& g = soft.gates[i];
  if (g.fanins.size() < 2) return false;
  const std::size_t a = rng.below(g.fanins.size());
  const std::size_t b = rng.below(g.fanins.size());
  if (a == b || g.fanins[a] == g.fanins[b]) return false;
  std::swap(g.fanins[a], g.fanins[b]);
  return true;
}

bool mutate_fanin_rewire(SoftNetlist& soft, Rng& rng) {
  const std::size_t i = rng.below(soft.gates.size());
  SoftGate& g = soft.gates[i];
  if (g.fanins.empty() || g.type == GateType::kDff) return false;
  const std::size_t pin = rng.below(g.fanins.size());
  const SoftGate& src = soft.gates[rng.below(soft.gates.size())];
  if (src.name == g.name || src.name == g.fanins[pin]) return false;
  g.fanins[pin] = src.name;
  return true;
}

bool mutate_dff_insert(SoftNetlist& soft, Rng& rng, std::uint64_t& name_counter) {
  const std::size_t i = rng.below(soft.gates.size());
  if (soft.gates[i].fanins.empty()) return false;
  const std::size_t pin = rng.below(soft.gates[i].fanins.size());
  SoftGate reg;
  reg.type = GateType::kDff;
  reg.name = fresh_name(soft, name_counter);
  reg.fanins = {soft.gates[i].fanins[pin]};
  soft.gates[i].fanins[pin] = reg.name;
  soft.gates.push_back(std::move(reg));
  return true;
}

bool mutate_dff_remove(SoftNetlist& soft, Rng& rng) {
  std::vector<std::size_t> dffs;
  for (std::size_t i = 0; i < soft.gates.size(); ++i) {
    if (soft.gates[i].type == GateType::kDff) dffs.push_back(i);
  }
  if (dffs.empty()) return false;
  const std::size_t victim = dffs[rng.below(dffs.size())];
  const std::string name = soft.gates[victim].name;
  const std::string feed = soft.gates[victim].fanins.empty()
                               ? std::string()
                               : soft.gates[victim].fanins.front();
  if (feed.empty() || feed == name) return false;
  for (SoftGate& g : soft.gates) {
    for (std::string& fn : g.fanins) {
      if (fn == name) fn = feed;
    }
  }
  for (std::string& out : soft.outputs) {
    if (out == name) out = feed;
  }
  soft.gates.erase(soft.gates.begin() + static_cast<std::ptrdiff_t>(victim));
  return true;
}

bool mutate_cone_duplicate(SoftNetlist& soft, Rng& rng, std::uint64_t& name_counter) {
  // Clone the depth-<=2 fanin cone of a random root gate under fresh names
  // (cone leaves keep reading the original nets), then splice the clone
  // into a random pin elsewhere. Cycles introduced by splicing upstream of
  // the root are caught by validation and rolled back.
  const std::size_t root = rng.below(soft.gates.size());
  if (!is_combinational(soft.gates[root].type)) return false;

  std::vector<std::pair<std::size_t, int>> cone{{root, 0}};  // (index, depth)
  std::vector<std::size_t> members{root};
  for (std::size_t at = 0; at < cone.size(); ++at) {
    const auto [idx, depth] = cone[at];
    if (depth >= 2) continue;
    for (const std::string& fn : soft.gates[idx].fanins) {
      const std::size_t f = soft.find(fn);
      if (f == SoftNetlist::npos || !is_combinational(soft.gates[f].type)) continue;
      if (std::find(members.begin(), members.end(), f) != members.end()) continue;
      members.push_back(f);
      cone.emplace_back(f, depth + 1);
    }
  }

  // Clone members; remap intra-cone references to the clones.
  std::vector<std::pair<std::string, std::string>> rename;  // original -> clone
  std::vector<SoftGate> clones;
  rename.reserve(members.size());
  clones.reserve(members.size());
  for (std::size_t m : members) {
    SoftGate copy = soft.gates[m];
    std::string clone_name = fresh_name(soft, name_counter) + "_" + copy.name;
    rename.emplace_back(copy.name, clone_name);
    copy.name = std::move(clone_name);
    clones.push_back(std::move(copy));
  }
  for (SoftGate& c : clones) {
    for (std::string& fn : c.fanins) {
      for (const auto& [from, to] : rename) {
        if (fn == from) {
          fn = to;
          break;
        }
      }
    }
  }
  const std::string clone_root = clones.front().name;

  // Splice: one random fanin pin somewhere now reads the cloned cone.
  const std::size_t target = rng.below(soft.gates.size());
  if (soft.gates[target].fanins.empty()) return false;
  soft.gates[target].fanins[rng.below(soft.gates[target].fanins.size())] = clone_root;
  for (SoftGate& c : clones) soft.gates.push_back(std::move(c));
  return true;
}

}  // namespace

std::string_view to_string(MutationKind kind) noexcept {
  switch (kind) {
    case MutationKind::kGateRetype: return "gate-retype";
    case MutationKind::kFaninSwap: return "fanin-swap";
    case MutationKind::kFaninRewire: return "fanin-rewire";
    case MutationKind::kDffInsert: return "dff-insert";
    case MutationKind::kDffRemove: return "dff-remove";
    case MutationKind::kConeDuplicate: return "cone-duplicate";
    case MutationKind::kCount: break;
  }
  return "unknown";
}

std::uint64_t MutationStats::total_applied() const noexcept {
  std::uint64_t sum = 0;
  for (std::uint64_t n : applied) sum += n;
  return sum;
}

Netlist mutate(const Netlist& base, std::uint64_t seed, std::size_t count,
               MutationStats* stats) {
  SoftNetlist soft = SoftNetlist::from_netlist(base);
  Rng rng{seed ^ 0xf00dfeedcafeULL};
  std::uint64_t name_counter = 0;

  std::size_t applied = 0;
  // Each requested mutation gets a bounded number of redraws; a draw that
  // edits nothing or breaks validation burns one attempt.
  std::size_t attempts = count * 8 + 16;
  while (applied < count && attempts-- > 0) {
    const auto kind = static_cast<MutationKind>(
        rng.below(static_cast<std::size_t>(MutationKind::kCount)));
    SoftNetlist backup = soft;
    bool changed = false;
    switch (kind) {
      case MutationKind::kGateRetype: changed = mutate_retype(soft, rng); break;
      case MutationKind::kFaninSwap: changed = mutate_fanin_swap(soft, rng); break;
      case MutationKind::kFaninRewire: changed = mutate_fanin_rewire(soft, rng); break;
      case MutationKind::kDffInsert:
        changed = mutate_dff_insert(soft, rng, name_counter);
        break;
      case MutationKind::kDffRemove: changed = mutate_dff_remove(soft, rng); break;
      case MutationKind::kConeDuplicate:
        changed = mutate_cone_duplicate(soft, rng, name_counter);
        break;
      case MutationKind::kCount: break;
    }
    if (!changed) {
      soft = std::move(backup);
      continue;
    }
    try {
      (void)soft.to_netlist();
    } catch (const std::exception&) {
      soft = std::move(backup);
      if (stats != nullptr) ++stats->rolled_back;
      continue;
    }
    ++applied;
    if (stats != nullptr) ++stats->applied[static_cast<std::size_t>(kind)];
  }
  return soft.to_netlist();
}

}  // namespace merced::fuzz
