#include "fuzz/corpus.h"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "netlist/bench_io.h"
#include "obs/obs.h"

namespace merced::fuzz {

namespace fs = std::filesystem;

namespace {

/// Strips one "# key: value" metadata line; returns false on mismatch.
bool metadata_line(std::string_view line, std::string_view key, std::string_view& value) {
  const std::string prefix = "# " + std::string(key) + ": ";
  if (line.substr(0, prefix.size()) != prefix) return false;
  value = line.substr(prefix.size());
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("corpus: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Corpus::Corpus(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
}

std::string Corpus::file_name_for(const std::string& signature) {
  std::string stem = signature.empty() ? std::string("clean") : signature;
  for (char& c : stem) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!keep) c = '_';
  }
  return stem + ".bench";
}

std::optional<std::string> Corpus::add(const Netlist& netlist,
                                       const std::string& signature,
                                       const std::string& oracle, FuzzDefect defect,
                                       std::uint64_t seed, bool expect_fail) {
  const fs::path path = fs::path(dir_) / file_name_for(signature);
  if (fs::exists(path)) return std::nullopt;  // same failure class already stored

  std::ostringstream out;
  out << "# " << kCorpusSchema << "\n";
  out << "# signature: " << signature << "\n";
  out << "# oracle: " << oracle << "\n";
  out << "# defect: " << to_string(defect) << "\n";
  out << "# seed: " << seed << "\n";
  out << "# expect: " << (expect_fail ? "fail" : "clean") << "\n";
  out << write_bench(netlist);

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("corpus: cannot write " + path.string());
  file << out.str();
  file.close();
  MERCED_COUNT(obs::Counter::kFuzzCorpusEntries, 1);
  return path.string();
}

std::optional<CorpusEntry> parse_corpus_entry(const std::string& path,
                                              const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "# " + std::string(kCorpusSchema)) {
    return std::nullopt;
  }

  CorpusEntry entry;
  entry.path = path;
  entry.bench_text = text;

  std::string_view value;
  if (!std::getline(in, line) || !metadata_line(line, "signature", value)) {
    return std::nullopt;
  }
  entry.signature = std::string(value);
  if (!std::getline(in, line) || !metadata_line(line, "oracle", value)) {
    return std::nullopt;
  }
  entry.oracle = std::string(value);
  if (!std::getline(in, line) || !metadata_line(line, "defect", value) ||
      !defect_from_string(value, entry.defect)) {
    return std::nullopt;
  }
  if (!std::getline(in, line) || !metadata_line(line, "seed", value)) {
    return std::nullopt;
  }
  if (auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(),
                                     entry.seed);
      ec != std::errc{} || p != value.data() + value.size()) {
    return std::nullopt;
  }
  if (!std::getline(in, line) || !metadata_line(line, "expect", value) ||
      (value != "fail" && value != "clean")) {
    return std::nullopt;
  }
  entry.expect_fail = value == "fail";
  return entry;
}

std::vector<CorpusEntry> Corpus::load() const {
  std::vector<std::string> paths;
  if (fs::exists(dir_)) {
    for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
      if (e.is_regular_file() && e.path().extension() == ".bench") {
        paths.push_back(e.path().string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<CorpusEntry> entries;
  for (const std::string& path : paths) {
    if (std::optional<CorpusEntry> entry = parse_corpus_entry(path, read_file(path))) {
      entries.push_back(std::move(*entry));
    }
  }
  return entries;
}

std::vector<ReplayOutcome> replay_corpus(const std::vector<CorpusEntry>& entries,
                                         const OracleOptions& base) {
  std::vector<ReplayOutcome> outcomes;
  outcomes.reserve(entries.size());
  for (const CorpusEntry& entry : entries) {
    ReplayOutcome outcome;
    outcome.entry = entry;
    try {
      const Netlist netlist =
          parse_bench(entry.bench_text, fs::path(entry.path).stem().string());
      OracleOptions opt = base;
      opt.defect = entry.defect;
      const std::optional<OracleFailure> failure = run_oracles(netlist, opt);
      if (entry.expect_fail) {
        if (!failure) {
          outcome.detail = "expected failure '" + entry.signature +
                           "' but every oracle passed";
        } else if (failure->signature != entry.signature) {
          outcome.ok = false;
          outcome.detail = "expected signature '" + entry.signature + "' but got '" +
                           failure->signature + "'";
        } else {
          outcome.ok = true;
          outcome.detail = failure->detail;
        }
      } else {
        outcome.ok = !failure.has_value();
        outcome.detail = failure ? "regressed: " + failure->signature + " (" +
                                       failure->detail + ")"
                                 : "clean, as expected";
      }
    } catch (const std::exception& e) {
      outcome.ok = false;
      outcome.detail = std::string("replay error: ") + e.what();
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace merced::fuzz
