// Semantic netlist mutators — the "structured" half of the fuzzer.
//
// Random byte flipping on `.bench` text almost always produces a parse
// error, which exercises the parser's error paths and nothing else. These
// mutators instead edit a parsed circuit at the gate level — retype a gate,
// swap or rewire fanin pins, insert or remove a DFF, duplicate a fanin cone
// and splice it elsewhere — so every emitted netlist parses and finalizes,
// and the downstream compile/retime/kernel layers see structurally diverse
// but *legal* inputs. A mutation that would break a structural invariant
// (combinational cycle, arity violation) is detected by the
// SoftNetlist::to_netlist() round-trip and rolled back; mutate() therefore
// always returns a finalized netlist.
//
// Determinism contract: the result is a pure function of (input netlist,
// seed, count). The fuzz driver derives each run's seed from the master
// seed and the run index (circuits/generator.h derive_seed), never from
// shared state, so fuzzing is bit-reproducible for every --jobs value.
#pragma once

#include <cstdint>
#include <string_view>

#include "fuzz/soft_netlist.h"
#include "netlist/netlist.h"

namespace merced::fuzz {

/// The mutation operators, applied with roughly equal probability.
enum class MutationKind : std::uint8_t {
  kGateRetype,     ///< AND<->NAND<->OR<->NOR, XOR<->XNOR, NOT<->BUF
  kFaninSwap,      ///< swap two fanin pins of one gate
  kFaninRewire,    ///< point one fanin pin at a different existing net
  kDffInsert,      ///< register one fanin edge (new DFF gate)
  kDffRemove,      ///< bypass a DFF (sinks read its fanin directly)
  kConeDuplicate,  ///< clone a small fanin cone, splice the clone elsewhere
  kCount           ///< sentinel
};

std::string_view to_string(MutationKind kind) noexcept;

/// Per-kind application counts of one mutate() call (applied, not merely
/// attempted: rolled-back mutations are not counted).
struct MutationStats {
  std::uint64_t applied[static_cast<std::size_t>(MutationKind::kCount)] = {};
  std::uint64_t rolled_back = 0;  ///< attempts rejected by validation

  std::uint64_t total_applied() const noexcept;
};

/// Applies up to `count` random mutations to a copy of `base`. Mutations
/// that fail structural validation are rolled back and retried with a
/// different draw (bounded), so fewer than `count` may be applied on
/// pathological inputs. Always returns a finalized netlist; deterministic
/// in (base, seed, count).
Netlist mutate(const Netlist& base, std::uint64_t seed, std::size_t count,
               MutationStats* stats = nullptr);

}  // namespace merced::fuzz
