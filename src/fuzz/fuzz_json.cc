#include "fuzz/fuzz_json.h"

#include <ostream>
#include <unordered_set>

namespace merced::fuzz {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

bool is_uint(const obs::JsonValue& v) {
  return v.is_number() && v.as_number() >= 0 &&
         v.as_number() == static_cast<double>(static_cast<std::uint64_t>(v.as_number()));
}

std::string check_member(const obs::JsonValue& obj, const char* key,
                         obs::JsonValue::Kind kind, const char* where) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return std::string(where) + ": missing member \"" + key + "\"";
  if (v->kind() != kind) {
    return std::string(where) + ": member \"" + key + "\" has wrong type";
  }
  return "";
}

}  // namespace

void write_fuzz_json(std::ostream& os, const FuzzReport& report) {
  const FuzzConfig& cfg = report.config;
  os << "{\n  \"schema\": \"" << kFuzzSchema
     << "\",\n  \"run\": {\"tool\": \"merced_fuzz\", \"seed\": " << cfg.seed
     << ", \"runs\": " << cfg.runs << ", \"jobs\": " << cfg.jobs << ", \"defect\": \""
     << to_string(cfg.oracle.defect) << "\", \"minimize\": "
     << (cfg.minimize ? "true" : "false") << ", \"corpus\": \"";
  json_escape(os, cfg.corpus_dir);
  os << "\"},\n  \"summary\": {\"runs_executed\": " << report.runs_executed
     << ", \"failures\": " << report.failures.size()
     << ", \"unique_signatures\": " << report.unique_signatures
     << ", \"minimized\": " << report.minimized
     << ", \"corpus_new\": " << report.corpus_new
     << ", \"corpus_dupes\": " << report.corpus_dupes
     << ", \"clean\": " << (report.clean() ? "true" : "false")
     << ", \"elapsed_seconds\": " << report.elapsed_seconds
     << "},\n  \"failures\": [";
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    const FuzzFailureRecord& f = report.failures[i];
    if (i) os << ",";
    os << "\n    {\"run\": " << f.run << ", \"seed\": " << f.seed << ", \"oracle\": \"";
    json_escape(os, f.oracle);
    os << "\", \"signature\": \"";
    json_escape(os, f.signature);
    os << "\", \"detail\": \"";
    json_escape(os, f.detail);
    os << "\", \"gates_before\": " << f.gates_before
       << ", \"gates_after\": " << f.gates_after
       << ", \"minimized\": " << (f.minimized ? "true" : "false")
       << ", \"corpus_path\": \"";
    json_escape(os, f.corpus_path);
    os << "\"}";
  }
  os << "\n  ]\n}\n";
}

std::string validate_fuzz_json(const obs::JsonValue& doc) {
  using Kind = obs::JsonValue::Kind;
  if (!doc.is_object()) return "document is not an object";
  if (std::string err = check_member(doc, "schema", Kind::kString, "root"); !err.empty()) {
    return err;
  }
  if (doc.find("schema")->as_string() != kFuzzSchema) {
    return "unknown schema \"" + doc.find("schema")->as_string() + "\"";
  }

  if (std::string err = check_member(doc, "run", Kind::kObject, "root"); !err.empty()) {
    return err;
  }
  const obs::JsonValue& run = *doc.find("run");
  for (const char* key : {"tool", "defect", "corpus"}) {
    if (std::string err = check_member(run, key, Kind::kString, "run"); !err.empty()) {
      return err;
    }
  }
  for (const char* key : {"seed", "runs", "jobs"}) {
    if (std::string err = check_member(run, key, Kind::kNumber, "run"); !err.empty()) {
      return err;
    }
    if (!is_uint(*run.find(key))) {
      return std::string("run: member \"") + key + "\" is not a non-negative integer";
    }
  }
  if (std::string err = check_member(run, "minimize", Kind::kBool, "run"); !err.empty()) {
    return err;
  }
  {
    FuzzDefect parsed;
    if (!defect_from_string(run.find("defect")->as_string(), parsed)) {
      return "run: unknown defect \"" + run.find("defect")->as_string() + "\"";
    }
  }

  if (std::string err = check_member(doc, "summary", Kind::kObject, "root"); !err.empty()) {
    return err;
  }
  const obs::JsonValue& summary = *doc.find("summary");
  for (const char* key : {"runs_executed", "failures", "unique_signatures", "minimized",
                          "corpus_new", "corpus_dupes"}) {
    if (std::string err = check_member(summary, key, Kind::kNumber, "summary");
        !err.empty()) {
      return err;
    }
    if (!is_uint(*summary.find(key))) {
      return std::string("summary: member \"") + key + "\" is not a non-negative integer";
    }
  }
  if (std::string err = check_member(summary, "clean", Kind::kBool, "summary");
      !err.empty()) {
    return err;
  }
  if (std::string err = check_member(summary, "elapsed_seconds", Kind::kNumber, "summary");
      !err.empty()) {
    return err;
  }
  if (summary.find("elapsed_seconds")->as_number() < 0) {
    return "summary: member \"elapsed_seconds\" is negative";
  }

  if (std::string err = check_member(doc, "failures", Kind::kArray, "root"); !err.empty()) {
    return err;
  }
  const auto& failures = doc.find("failures")->as_array();
  std::unordered_set<std::string> signatures;
  std::uint64_t minimized = 0;
  for (const obs::JsonValue& f : failures) {
    if (!f.is_object()) return "failures: entry is not an object";
    for (const char* key : {"oracle", "signature", "detail", "corpus_path"}) {
      if (std::string err = check_member(f, key, Kind::kString, "failure"); !err.empty()) {
        return err;
      }
    }
    for (const char* key : {"run", "seed", "gates_before", "gates_after"}) {
      if (std::string err = check_member(f, key, Kind::kNumber, "failure"); !err.empty()) {
        return err;
      }
      if (!is_uint(*f.find(key))) {
        return std::string("failure: member \"") + key +
               "\" is not a non-negative integer";
      }
    }
    if (std::string err = check_member(f, "minimized", Kind::kBool, "failure");
        !err.empty()) {
      return err;
    }
    if (f.find("signature")->as_string().empty()) return "failure: empty signature";
    signatures.insert(f.find("signature")->as_string());
    if (f.find("minimized")->as_bool()) ++minimized;
  }

  // Cross-check the summary against the failures array — a drifted summary
  // is exactly the artifact class this validator exists to reject.
  auto num = [&](const char* key) {
    return static_cast<std::uint64_t>(summary.find(key)->as_number());
  };
  if (num("failures") != failures.size() ||
      num("unique_signatures") != signatures.size() || num("minimized") != minimized) {
    return "summary: counts disagree with the failures array";
  }
  if (summary.find("clean")->as_bool() != failures.empty()) {
    return "summary: \"clean\" disagrees with the failure count";
  }
  if (num("runs_executed") > static_cast<std::uint64_t>(run.find("runs")->as_number())) {
    return "summary: more runs executed than requested";
  }
  return "";
}

}  // namespace merced::fuzz
