// SoftNetlist — the fuzzer's mutable netlist IR.
//
// merced::Netlist is append-only by design (gates can be added, never
// removed), which is exactly wrong for a mutator and a delta-debugging
// minimizer: both need to delete gates, rewire pins and drop outputs, then
// ask "is this still a legal circuit?". SoftNetlist is the editable shadow:
// a flat list of (type, name, fanin-names) records plus an output-name
// list, convertible losslessly to and from Netlist. Conversion back
// (to_netlist) runs the full finalize() validation, so every structural
// rule — arity, combinational acyclicity, unique names — is enforced at the
// boundary and a mutation that breaks one simply throws and gets rolled
// back by the caller. Nothing in this IR is ever handed to the pipeline
// directly; only finalized Netlists leave the fuzz layer.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/gate.h"
#include "netlist/netlist.h"

namespace merced::fuzz {

/// One editable gate record. `fanins` are net names (the .bench view), so
/// deleting or renaming a gate never invalidates ids held elsewhere.
struct SoftGate {
  GateType type = GateType::kBuf;
  std::string name;
  std::vector<std::string> fanins;
};

/// An editable circuit. Invariants are NOT maintained while editing; they
/// are checked wholesale by to_netlist().
struct SoftNetlist {
  std::string name;
  std::vector<SoftGate> gates;        ///< declaration order (kInput included)
  std::vector<std::string> outputs;   ///< primary-output net names, in order

  /// Snapshot of a finalized netlist (id order preserved).
  static SoftNetlist from_netlist(const Netlist& netlist);

  /// Rebuilds a finalized Netlist. Throws (std::runtime_error or
  /// std::invalid_argument) when the edited circuit violates any structural
  /// rule; callers treat that as "mutation invalid, roll back".
  Netlist to_netlist() const;

  /// `.bench` text of the rebuilt netlist (validates via to_netlist()).
  std::string to_bench() const;

  /// Index of the gate driving `net_name`, or npos.
  std::size_t find(std::string_view net_name) const;

  /// Number of gates whose output net is referenced by some fanin pin or
  /// marked as a primary output, per gate index (for dead-code sweeps).
  std::vector<std::size_t> reference_counts() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace merced::fuzz
