#include "fuzz/soft_netlist.h"

#include <stdexcept>
#include <unordered_map>

#include "netlist/bench_io.h"

namespace merced::fuzz {

SoftNetlist SoftNetlist::from_netlist(const Netlist& netlist) {
  SoftNetlist soft;
  soft.name = netlist.name();
  soft.gates.reserve(netlist.size());
  for (GateId id = 0; id < netlist.size(); ++id) {
    const Gate& g = netlist.gate(id);
    SoftGate sg;
    sg.type = g.type;
    sg.name = g.name;
    sg.fanins.reserve(g.fanins.size());
    for (GateId f : g.fanins) sg.fanins.push_back(netlist.gate(f).name);
    soft.gates.push_back(std::move(sg));
  }
  for (GateId id : netlist.outputs()) soft.outputs.push_back(netlist.gate(id).name);
  return soft;
}

Netlist SoftNetlist::to_netlist() const {
  Netlist nl(name);
  // Two passes, like the .bench parser: create every gate first so fanin
  // name resolution tolerates forward references.
  for (const SoftGate& g : gates) nl.add_gate(g.type, g.name);
  for (const SoftGate& g : gates) {
    std::vector<GateId> fanins;
    fanins.reserve(g.fanins.size());
    for (const std::string& fn : g.fanins) {
      const GateId f = nl.find(fn);
      if (f == kNoGate) {
        throw std::runtime_error("SoftNetlist: gate '" + g.name +
                                 "' references undefined net '" + fn + "'");
      }
      fanins.push_back(f);
    }
    nl.set_fanins(nl.find(g.name), std::move(fanins));
  }
  for (const std::string& out : outputs) {
    const GateId id = nl.find(out);
    if (id == kNoGate) {
      throw std::runtime_error("SoftNetlist: OUTPUT references undefined net '" + out +
                               "'");
    }
    nl.mark_output(id);
  }
  nl.finalize();
  return nl;
}

std::string SoftNetlist::to_bench() const { return write_bench(to_netlist()); }

std::size_t SoftNetlist::find(std::string_view net_name) const {
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (gates[i].name == net_name) return i;
  }
  return npos;
}

std::vector<std::size_t> SoftNetlist::reference_counts() const {
  std::unordered_map<std::string_view, std::size_t> index;
  index.reserve(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) index.emplace(gates[i].name, i);
  std::vector<std::size_t> refs(gates.size(), 0);
  auto bump = [&](const std::string& net) {
    if (auto it = index.find(net); it != index.end()) ++refs[it->second];
  };
  for (const SoftGate& g : gates) {
    for (const std::string& fn : g.fanins) bump(fn);
  }
  for (const std::string& out : outputs) bump(out);
  return refs;
}

}  // namespace merced::fuzz
