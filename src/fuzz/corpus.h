// On-disk regression corpus for the differential fuzzer.
//
// Every failure the fuzzer finds (after minimization) is persisted as one
// self-contained `.bench` file whose leading comment block records the
// metadata needed to replay it:
//
//   # merced-fuzz-corpus-v1
//   # signature: verify:PART-CUT-MISSING
//   # oracle: verify
//   # defect: drop-cut
//   # seed: 17
//   # expect: fail
//   <ordinary .bench text>
//
// parse_bench() ignores comments, so a corpus entry IS a valid netlist
// file — it loads in any tool that reads `.bench`, not just the fuzzer.
//
// Deduplication is by failure signature: the signature (sanitized) is the
// file name, so a failure class is stored exactly once no matter how many
// fuzz runs hit it. `expect: clean` entries are fixed regressions — inputs
// that once failed; replay asserts they now pass every oracle, guarding
// against the bug's return.
//
// replay_corpus() re-runs the oracle stack on every entry with the entry's
// recorded defect and compares outcomes: an expect-fail entry must fail
// with its exact recorded signature (not merely any failure), an
// expect-clean entry must pass clean. This is what CI runs on every PR.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "netlist/netlist.h"

namespace merced::fuzz {

inline constexpr const char* kCorpusSchema = "merced-fuzz-corpus-v1";

/// One parsed corpus entry (metadata header + netlist text).
struct CorpusEntry {
  std::string path;        ///< absolute or corpus-relative file path
  std::string signature;   ///< recorded failure signature ("" if clean)
  std::string oracle;      ///< recorded failing oracle ("" if clean)
  FuzzDefect defect = FuzzDefect::kNone;  ///< defect to inject on replay
  std::uint64_t seed = 0;  ///< fuzz seed that produced the input
  bool expect_fail = true; ///< fail with `signature` vs pass clean
  std::string bench_text;  ///< full file text (metadata + netlist)
};

/// Result of replaying one entry against the current tree.
struct ReplayOutcome {
  CorpusEntry entry;
  bool ok = false;        ///< outcome matched the entry's expectation
  std::string detail;     ///< what actually happened (for reports/logs)
};

/// Directory-backed corpus with signature-keyed deduplication.
class Corpus {
 public:
  /// Opens (creating if needed) the corpus at `dir`.
  explicit Corpus(std::string dir);

  const std::string& dir() const noexcept { return dir_; }

  /// Persists a failing (or fixed-clean) input. Returns the path of the new
  /// entry, or nullopt when an entry with the same signature already exists
  /// (the corpus keeps the first minimized witness of each failure class).
  std::optional<std::string> add(const Netlist& netlist, const std::string& signature,
                                 const std::string& oracle, FuzzDefect defect,
                                 std::uint64_t seed, bool expect_fail = true);

  /// Loads every `.bench` entry in the directory, sorted by file name.
  /// Files without the merced-fuzz-corpus-v1 header line are skipped.
  std::vector<CorpusEntry> load() const;

  /// File name an entry with `signature` would be stored under.
  static std::string file_name_for(const std::string& signature);

 private:
  std::string dir_;
};

/// Parses one corpus file's text; nullopt when the schema header is absent
/// or a metadata line is malformed.
std::optional<CorpusEntry> parse_corpus_entry(const std::string& path,
                                              const std::string& text);

/// Replays every entry through run_oracles with `base` options (the entry's
/// recorded defect overrides base.defect). Outcomes come back in entry
/// order; `ok` is true when the current tree matches the expectation.
std::vector<ReplayOutcome> replay_corpus(const std::vector<CorpusEntry>& entries,
                                         const OracleOptions& base);

}  // namespace merced::fuzz
