#include "fuzz/oracle.h"

#include <algorithm>
#include <span>
#include <vector>

#include "analyze/analyze.h"
#include "bench_read.h"  // examples/certcheck — the independent checker
#include "check.h"       // examples/certcheck
#include "core/certificate.h"
#include "core/merced.h"
#include "core/ppet_session.h"
#include "exact/exact_solver.h"
#include "graph/circuit_graph.h"
#include "netlist/bench_io.h"
#include "obs/obs.h"
#include "retiming/retime_graph.h"
#include "sat/equivalence.h"
#include "sat/redundancy.h"
#include "sim/cone.h"
#include "sim/fault.h"
#include "verify/diagnostic.h"

namespace merced::fuzz {

namespace {

MercedConfig make_config(const OracleOptions& opt, std::size_t jobs) {
  MercedConfig config;
  config.lk = opt.lk;
  config.beta = opt.beta;
  config.multi_start = opt.multi_start;
  config.jobs = jobs;
  config.flow.seed = opt.flow_seed;
  return config;
}

/// The corrupted lane mask of the canned lane-mask defect: the classic
/// off-by-one in lane_mask()'s exponent, i.e. the mask of a CUT one input
/// narrower. For n >= 6 that clears lanes 32..63 of every batch; for n < 6
/// it halves the distinct-pattern set.
std::uint64_t off_by_one_mask(std::size_t n) noexcept {
  return n >= 6 ? 0x00000000FFFFFFFFULL : lane_mask(n == 0 ? 0 : n - 1);
}

/// From-scratch masked exhaustive sweep: one verdict per fault, computed
/// with the public ConeSimulator API only (eval + fault_observable), no
/// fault dropping, no sharding — an independent reimplementation of what
/// exhaustive_detect_range must produce.
std::vector<std::uint8_t> masked_sweep_verdicts(const ConeSimulator& cone,
                                                std::span<const Fault> faults,
                                                std::uint64_t mask) {
  const std::size_t n = cone.cut_inputs().size();
  const std::uint64_t patterns = std::uint64_t{1} << n;
  const std::uint64_t batches = n < 6 ? 1 : patterns / 64;
  ConeSimulator::Workspace ws;
  std::vector<std::uint64_t> words(n);
  std::vector<std::uint8_t> verdicts(faults.size(), 0);
  std::size_t remaining = faults.size();
  for (std::uint64_t b = 0; b < batches && remaining > 0; ++b) {
    fill_batch_inputs(n, b, words);
    (void)cone.eval(words, ws);  // fault-free state for the probes below
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (verdicts[i] != 0) continue;
      if (cone.fault_observable(ws, faults[i], mask)) {
        verdicts[i] = 1;
        --remaining;
      }
    }
  }
  return verdicts;
}

bool same_coverage(const CoverageResult& a, const CoverageResult& b) {
  return a.total_faults == b.total_faults && a.detected == b.detected &&
         a.undetected == b.undetected;
}

std::string cluster_tag(std::size_t index) { return "cluster " + std::to_string(index); }

/// Bumps the first `"key": N` in the certificate text by one — a purely
/// textual corruption: the in-memory artifact all other oracles see stays
/// pristine, so only the independent checker can catch it. Returns false
/// when the key is absent (nothing to corrupt).
bool bump_json_uint(std::string& text, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\": ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  std::size_t digits = at + needle.size();
  std::size_t end = digits;
  while (end < text.size() && text[end] >= '0' && text[end] <= '9') ++end;
  if (end == digits) return false;
  const unsigned long long value = std::stoull(text.substr(digits, end - digits));
  text.replace(digits, end - digits, std::to_string(value + 1));
  return true;
}

}  // namespace

std::string_view to_string(FuzzDefect defect) noexcept {
  switch (defect) {
    case FuzzDefect::kNone: return "none";
    case FuzzDefect::kDropCut: return "drop-cut";
    case FuzzDefect::kSkewRho: return "skew-rho";
    case FuzzDefect::kLaneMask: return "lane-mask";
    case FuzzDefect::kSkewTap: return "skew-tap";
    case FuzzDefect::kCertIota: return "cert-iota";
    case FuzzDefect::kCertArea: return "cert-area";
  }
  return "unknown";
}

bool defect_from_string(std::string_view name, FuzzDefect& out) noexcept {
  for (FuzzDefect d : {FuzzDefect::kNone, FuzzDefect::kDropCut, FuzzDefect::kSkewRho,
                       FuzzDefect::kLaneMask, FuzzDefect::kSkewTap,
                       FuzzDefect::kCertIota, FuzzDefect::kCertArea}) {
    if (name == to_string(d)) {
      out = d;
      return true;
    }
  }
  return false;
}

std::optional<OracleFailure> run_oracles(const Netlist& netlist,
                                         const OracleOptions& opt) {
  // ---- oracle 1: serial vs parallel compile parity -----------------------
  const MercedConfig serial_config = make_config(opt, /*jobs=*/1);
  MercedResult result = compile(netlist, serial_config);
  {
    MERCED_SPAN("oracle_compile_parity");
    const MercedResult parallel = compile(netlist, make_config(opt, opt.parallel_jobs));
    auto fail = [&](const char* field, std::string detail) -> OracleFailure {
      return {"compile-parity", std::string("compile-parity:") + field,
              "serial and parallel compile disagree on " + std::move(detail)};
    };
    if (parallel.feasible != result.feasible) {
      return fail("feasible", "feasibility");
    }
    if (parallel.chosen_start != result.chosen_start) {
      return fail("chosen-start", "the winning multi-start candidate");
    }
    if (parallel.partition_inputs != result.partition_inputs) {
      return fail("partition-inputs", "the per-partition input counts");
    }
    if (parallel.cut_net_ids != result.cut_net_ids) {
      return fail("cut-set", "the cut set");
    }
    if (parallel.retiming.retimable != result.retiming.retimable ||
        parallel.retiming.multiplexed != result.retiming.multiplexed ||
        parallel.retiming.rho != result.retiming.rho) {
      return fail("retiming", "the retiming plan");
    }
  }

  // ---- canned artifact corruption (between compile and verification) ----
  if (opt.defect == FuzzDefect::kDropCut && !result.cut_net_ids.empty()) {
    result.cut_net_ids.pop_back();
  } else if (opt.defect == FuzzDefect::kSkewRho && !result.retiming.rho.empty()) {
    result.retiming.rho.front() += 1000;
  }

  // ---- oracle 2: independent static verification ------------------------
  {
    MERCED_SPAN("oracle_verify");
    const verify::Report report = verify_result(netlist, result, serial_config);
    for (const verify::Diagnostic& d : report.findings) {
      if (d.severity != verify::Severity::kError) continue;
      return OracleFailure{"verify", "verify:" + d.rule, verify::format_diagnostic(d)};
    }
  }

  // ---- oracle 3 + 6 need per-CUT cones ----------------------------------
  const CircuitGraph graph(netlist);
  bool all_sweepable = result.partitions.count() > 0;

  for (std::size_t ci = 0; ci < result.partitions.count(); ++ci) {
    if (ci < result.partition_inputs.size() &&
        result.partition_inputs[ci] > opt.coverage_max_inputs) {
      all_sweepable = false;
      continue;  // too wide to sweep; sibling CUTs are still checked
    }
    const ConeSimulator cone(graph, result.partitions, ci);
    if (cone.cut_inputs().empty()) continue;  // constant cluster, nothing to drive

    CoverageOptions kernel_opt;
    kernel_opt.max_inputs = opt.coverage_max_inputs;
    CoverageOptions naive_opt = kernel_opt;
    naive_opt.naive = true;

    // The naive verdicts are the shared reference of oracles 3 and 6.
    const std::vector<Fault> faults = cone.cluster_faults();
    CoverageResult naive;
    {
      MERCED_SPAN("oracle_kernel_conformance", ci);

      // 3a: the production event-driven kernel vs the naive oracle.
      const CoverageResult kernel = exhaustive_coverage(cone, kernel_opt);
      naive = exhaustive_coverage(cone, naive_opt);
      if (!same_coverage(kernel, naive)) {
        return OracleFailure{
            "kernel-conformance", "kernel-conformance:coverage",
            "event-driven kernel and naive oracle disagree on " + cluster_tag(ci) +
                " (" + std::to_string(kernel.detected) + " vs " +
                std::to_string(naive.detected) + " of " +
                std::to_string(naive.total_faults) + " faults detected)"};
      }

      // 3b: a from-scratch masked sweep vs the naive verdicts. The lane-mask
      // defect corrupts exactly this sweep's mask.
      const std::size_t n = cone.cut_inputs().size();
      const std::uint64_t mask =
          opt.defect == FuzzDefect::kLaneMask ? off_by_one_mask(n) : lane_mask(n);
      const std::vector<std::uint8_t> sweep = masked_sweep_verdicts(cone, faults, mask);
      for (std::size_t i = 0; i < faults.size(); ++i) {
        const bool naive_detected =
            std::find(naive.undetected.begin(), naive.undetected.end(), faults[i]) ==
            naive.undetected.end();
        if ((sweep[i] != 0) != naive_detected) {
          return OracleFailure{
              "kernel-conformance", "kernel-conformance:mask",
              "masked sweep and naive oracle disagree on fault " + std::to_string(i) +
                  " of " + cluster_tag(ci) + " (sweep says " +
                  (sweep[i] != 0 ? "detected" : "undetected") + ", naive says " +
                  (naive_detected ? "detected" : "undetected") + ")"};
        }
      }

      // 3c: every SIMD backend this host supports vs the naive oracle. The
      // production run in 3a already exercised the auto-resolved width; this
      // sweep pins each backend explicitly, so a lane-contract break in one
      // instantiation (say the AVX2 word masks) cannot hide behind the
      // widest backend being the one auto picks.
      for (SimdWidth w : {SimdWidth::k64, SimdWidth::k256, SimdWidth::k512}) {
        if (!simd_width_supported(w)) continue;
        CoverageOptions width_opt = kernel_opt;
        width_opt.simd = w;
        const CoverageResult wide = exhaustive_coverage(cone, width_opt);
        if (!same_coverage(wide, naive)) {
          return OracleFailure{
              "kernel-conformance", "kernel-conformance:width",
              "SIMD kernel at width " + std::to_string(simd_lanes(w)) +
                  " and naive oracle disagree on " + cluster_tag(ci) + " (" +
                  std::to_string(wide.detected) + " vs " +
                  std::to_string(naive.detected) + " of " +
                  std::to_string(naive.total_faults) + " faults detected)"};
        }
      }
    }

    // ---- oracle 6: static analyzer vs naive sweep vs SAT prover ----------
    // Three independent judgments of the same fault universe must agree:
    // the static analyzer's plan (pure structural reasoning), the naive
    // sweep (pure simulation), and the SAT prover (pure deduction).
    if (opt.static_analysis) {
      MERCED_SPAN("oracle_static_analysis", ci);
      const analyze::CutAnalysis an = analyze::analyze_cut(cone, ci);

      // 6a: a statically-untestable fault the naive sweep detects is an
      // unsound proof — the crispest possible signature, checked first.
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (an.untestable_fault[i] == 0) continue;
        const bool naive_detected =
            std::find(naive.undetected.begin(), naive.undetected.end(), faults[i]) ==
            naive.undetected.end();
        if (naive_detected) {
          return OracleFailure{
              "static-analysis", "static-analysis:untestable-detected",
              "static analysis proved fault " + std::to_string(i) + " of " +
                  cluster_tag(ci) + " untestable, but the naive sweep detects it"};
        }
      }

      // 6b: the collapsed planned sweep must expand back to the naive
      // verdicts bit-for-bit.
      CoverageOptions planned_opt = kernel_opt;
      planned_opt.plan = &an.plan;
      const CoverageResult planned = exhaustive_coverage(cone, planned_opt);
      if (!same_coverage(planned, naive)) {
        return OracleFailure{
            "static-analysis", "static-analysis:collapse",
            "collapsed planned sweep and naive oracle disagree on " + cluster_tag(ci) +
                " (" + std::to_string(planned.detected) + " vs " +
                std::to_string(naive.detected) + " of " +
                std::to_string(naive.total_faults) + " faults detected)"};
      }

      // 6c: every untestability claim is cross-examined by the SAT
      // redundancy prover. A refutation means the implication engine is
      // unsound; an unknown means the proof cannot be independently
      // confirmed — both are hard failures.
      const sat::UntestableCrossCheck cc =
          sat::cross_check_untestable(cone, faults, an.untestable_fault);
      if (!cc.disagreements.empty()) {
        return OracleFailure{
            "static-analysis", "static-analysis:sat-refuted",
            "SAT prover refuted " + std::to_string(cc.disagreements.size()) + " of " +
                std::to_string(cc.checked) + " static untestability proofs on " +
                cluster_tag(ci) + " (first at fault " +
                std::to_string(cc.disagreements.front()) + ")"};
      }
      if (cc.unknown != 0) {
        return OracleFailure{
            "static-analysis", "static-analysis:sat-unknown",
            "SAT prover exhausted its conflict budget on " + std::to_string(cc.unknown) +
                " of " + std::to_string(cc.checked) + " static untestability proofs on " +
                cluster_tag(ci)};
      }
    }
  }

  // ---- oracle 4: session coverage vs direct per-CUT fault sim -----------
  if (result.feasible && all_sweepable) {
    MERCED_SPAN("oracle_session_coverage");
    PpetSession session(graph, result, /*psa_width=*/16, /*jobs=*/1);
    const std::vector<CoverageResult> coverage =
        session.measure_coverage(opt.coverage_max_inputs);
    for (std::size_t s = 0; s < coverage.size(); ++s) {
      const std::size_t ci = session.station(s).partition_index;
      const ConeSimulator cone(graph, result.partitions, ci);
      CoverageOptions naive_opt;
      naive_opt.max_inputs = opt.coverage_max_inputs;
      naive_opt.naive = true;
      const CoverageResult direct = exhaustive_coverage(cone, naive_opt);
      if (!same_coverage(coverage[s], direct)) {
        return OracleFailure{
            "session-coverage", "session-coverage:station",
            "PpetSession coverage and direct fault simulation disagree on station " +
                std::to_string(s) + " (" + cluster_tag(ci) + ": " +
                std::to_string(coverage[s].detected) + " vs " +
                std::to_string(direct.detected) + " of " +
                std::to_string(direct.total_faults) + " faults detected)"};
      }
    }
  }

  // ---- oracle 5: SAT equivalence of the retiming plan --------------------
  // An engine that shares no code with the retiming pipeline: the plan is
  // applied and mitered against the original machine. The skew-tap defect
  // corrupts exactly this oracle's warm-up tap formula — the plan stays
  // legal, so only the miter can notice.
  {
    MERCED_SPAN("oracle_sat_equivalence");
    sat::EquivalenceOptions eq_opt;
    if (opt.defect == FuzzDefect::kSkewTap) eq_opt.tap_skew = 1;
    Retiming rho = result.retiming.rho;
    if (rho.empty()) rho.assign(RetimeGraph(graph).num_vertices(), 0);  // no plan = identity
    const sat::EquivalenceResult eq = sat::check_retiming_equivalence(graph, rho, eq_opt);
    switch (eq.status) {
      case sat::EquivStatus::kProved:
        break;
      case sat::EquivStatus::kRefuted: {
        std::string detail = "retimed machine is not cycle-exact equivalent (" +
                             std::to_string(eq.retimed_registers) + " retimed registers, " +
                             std::to_string(eq.warmup_frames) + " warm-up frames";
        if (eq.counterexample) {
          detail += eq.counterexample->confirmed
                        ? "; counterexample confirmed by replay"
                        : "; counterexample NOT confirmed by replay — miter corrupted";
        }
        return OracleFailure{"sat-equivalence", "sat-equivalence:refuted", detail + ")"};
      }
      case sat::EquivStatus::kUnknown:
        return OracleFailure{"sat-equivalence", "sat-equivalence:unknown",
                             "equivalence miter exhausted its conflict budget"};
      case sat::EquivStatus::kBuildFailed:
        return OracleFailure{"sat-equivalence", "sat-equivalence:build",
                             "retimed machine failed to build: " + eq.error};
    }
  }

  // ---- oracle 7: exact-solver bound check + certificate round-trip -------
  // The exact solver is a *cold-start* run — no incumbent, so its search is
  // fully independent of the heuristic whose cost it bounds. Any budget is
  // sound: kBudgetExhausted still carries a proven lower bound.
  if (opt.exact_certificate) {
    MERCED_SPAN("oracle_exact_certificate");
    exact::ExactOptions ex_opt;
    ex_opt.lk = opt.lk;
    ex_opt.max_nodes = opt.exact_nodes;
    const exact::ExactResult ex = exact::solve_exact(graph, ex_opt);
    const std::size_t heuristic_cuts = result.cut_net_ids.size();
    if (result.feasible) {
      if (ex.status == exact::ExactStatus::kInfeasible) {
        return OracleFailure{
            "exact-certificate", "exact-certificate:infeasible",
            "exact solver proved the instance infeasible at lk=" +
                std::to_string(opt.lk) + ", but the heuristic compiled it with " +
                std::to_string(heuristic_cuts) + " cuts"};
      }
      if (heuristic_cuts < ex.lower_bound) {
        return OracleFailure{
            "exact-certificate", "exact-certificate:lower-bound",
            "heuristic cut count " + std::to_string(heuristic_cuts) +
                " undercuts the exact solver's proven lower bound " +
                std::to_string(ex.lower_bound)};
      }
      if (ex.optimal() && ex.found_solution && heuristic_cuts < ex.best_cost) {
        return OracleFailure{
            "exact-certificate", "exact-certificate:optimum",
            "heuristic cut count " + std::to_string(heuristic_cuts) +
                " beats the claimed optimum " + std::to_string(ex.best_cost)};
      }
    }

    // Certify the (clean) compile and validate via the independent checker.
    // The cert-iota / cert-area defects corrupt only this JSON text.
    if (result.feasible) {
      CertificateInfo info;
      info.tool = "merced_fuzz";
      info.circuit = netlist.name();
      info.lk = opt.lk;
      info.beta = opt.beta;
      const SccInfo sccs = find_sccs(graph);
      std::string cert = make_certificate(netlist, graph, sccs, result, info);
      if (opt.defect == FuzzDefect::kCertIota) {
        (void)bump_json_uint(cert, "iota");
      } else if (opt.defect == FuzzDefect::kCertArea) {
        (void)bump_json_uint(cert, "cbit_area_with_retiming");
      }
      try {
        const certcheck::BNetlist bn = certcheck::parse_bench(write_bench(netlist));
        const certcheck::CheckResult cr = certcheck::check_certificate(bn, cert);
        if (!cr.ok) {
          return OracleFailure{"certificate", "certificate:" + cr.rule,
                               "independent certificate checker rejected the compile: " +
                                   cr.rule + ": " + cr.message};
        }
      } catch (const std::exception& e) {
        return OracleFailure{"certificate", "certificate:roundtrip",
                             std::string("certificate round-trip failed: ") + e.what()};
      }
    }
  }

  return std::nullopt;
}

}  // namespace merced::fuzz
