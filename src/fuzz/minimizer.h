// Delta-debugging netlist minimizer.
//
// A fuzzer-found failing netlist is typically 10x larger than the kernel of
// the failure; a corpus full of such blobs is useless to a human debugging
// the pipeline. The minimizer shrinks a failing input while preserving the
// *exact* failing oracle: a reduction is kept only when run_oracles() on
// the reduced circuit still fails with the same signature (not merely any
// failure — two different bugs must not alias during reduction).
//
// Reduction operators, applied to fixpoint under an attempt budget:
//   * drop primary outputs (down to one);
//   * bypass-delete gates — every reader of gate g is rewired to g's first
//     fanin, then g is removed (the structural analogue of ddmin's chunk
//     removal, safe for DFFs and inverter chains alike);
//   * prune fanin pins down to the gate type's minimum arity;
//   * sweep dead logic (gates feeding nothing observable);
//   * drop primary inputs that no longer feed anything.
// Every candidate is validated by SoftNetlist::to_netlist() before the
// oracle runs, so illegal intermediates are skipped, not scored.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fuzz/oracle.h"
#include "fuzz/soft_netlist.h"
#include "netlist/netlist.h"

namespace merced::fuzz {

struct MinimizeResult {
  Netlist netlist;              ///< smallest failing circuit found
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t rounds = 0;       ///< fixpoint iterations
  std::size_t attempts = 0;     ///< oracle evaluations spent
};

/// Shrinks `failing` while run_oracles(candidate, opt) keeps failing with
/// `signature`. `failing` must itself fail with that signature (checked;
/// throws std::invalid_argument otherwise). `max_attempts` bounds oracle
/// evaluations; the best-so-far circuit is returned when the budget runs
/// out. Deterministic: reduction order is structural, not randomized.
MinimizeResult minimize_failure(const Netlist& failing, const OracleOptions& opt,
                                const std::string& signature,
                                std::size_t max_attempts = 600);

}  // namespace merced::fuzz
