#include "fuzz/fuzzer.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_set>
#include <utility>

#include "fuzz/corpus.h"
#include "fuzz/minimizer.h"
#include "fuzz/mutator.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace merced::fuzz {

namespace {

/// What one parallel run hands back to the serial aggregator. The failing
/// netlist itself is NOT carried — fuzz_input() is pure, so the aggregator
/// rebuilds it only for the (rare) runs that need minimizing.
struct RunOutcome {
  bool failed = false;
  OracleFailure failure;
  std::size_t gates = 0;
  std::uint64_t mutations = 0;
};

RunOutcome execute_run(const FuzzConfig& cfg, std::size_t r) {
  RunOutcome out;
  const std::uint64_t seed = derive_seed(cfg.seed, r);
  Netlist input = fuzz_input(cfg.seed, r);
  if (r % 2 == 1) {
    // Mutation runs: recount for the counter (fuzz_input discards stats).
    MutationStats stats;
    const Netlist base = generate_circuit(random_fuzz_spec(derive_seed(cfg.seed, r - 1)));
    input = mutate(base, seed, /*count=*/2 + seed % 5, &stats);
    out.mutations = stats.total_applied();
  }
  out.gates = input.size();
  if (std::optional<OracleFailure> failure = run_oracles(input, cfg.oracle)) {
    out.failed = true;
    out.failure = std::move(*failure);
  }
  MERCED_COUNT(obs::Counter::kFuzzRuns, 1);
  MERCED_COUNT(obs::Counter::kFuzzMutations, out.mutations);
  if (out.failed) MERCED_COUNT(obs::Counter::kFuzzOracleFailures, 1);
  return out;
}

}  // namespace

SyntheticSpec random_fuzz_spec(std::uint64_t seed) {
  // Cheap independent draws via the same splitmix64 chain derive_seed uses;
  // each field gets its own decorrelated stream index.
  auto draw = [&](std::uint64_t salt, std::uint64_t lo, std::uint64_t hi) {
    return lo + derive_seed(seed, salt + 1) % (hi - lo + 1);
  };
  SyntheticSpec spec;
  spec.name = "fuzz_" + std::to_string(seed);
  spec.num_pis = draw(1, 4, 8);
  spec.num_dffs = draw(2, 2, 8);
  spec.num_gates = draw(3, 15, 60);
  spec.num_invs = draw(4, 3, 12);
  spec.target_area = static_cast<AreaUnits>(10 * spec.num_dffs + spec.num_invs +
                                            2 * spec.num_gates + draw(5, 0, 30));
  spec.scc_dff_fraction = static_cast<double>(draw(6, 30, 100)) / 100.0;
  spec.scc_gate_coverage = static_cast<double>(draw(7, 20, 60)) / 100.0;
  spec.locality = static_cast<double>(draw(8, 60, 95)) / 100.0;
  spec.seed = seed;
  return spec;
}

Netlist fuzz_input(std::uint64_t base_seed, std::size_t r) {
  const std::uint64_t seed = derive_seed(base_seed, r);
  if (r % 2 == 0) return generate_circuit(random_fuzz_spec(seed));
  const Netlist base = generate_circuit(random_fuzz_spec(derive_seed(base_seed, r - 1)));
  return mutate(base, seed, /*count=*/2 + seed % 5);
}

FuzzReport run_fuzz(const FuzzConfig& cfg) {
  MERCED_SPAN("fuzz.campaign");
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  FuzzReport report;
  report.config = cfg;

  ThreadPool pool(cfg.jobs);
  std::unordered_set<std::string> signatures;
  std::optional<Corpus> corpus;
  if (!cfg.corpus_dir.empty()) corpus.emplace(cfg.corpus_dir);

  // Chunked schedule: the budget check sits between chunks, so a campaign
  // with --time-budget stops at a chunk boundary (content-reproducible; the
  // number of completed runs depends on the clock).
  const std::size_t chunk = std::max<std::size_t>(pool.size() * 4, 8);
  for (std::size_t begin = 0; begin < cfg.runs; begin += chunk) {
    if (cfg.time_budget_seconds > 0 && elapsed() >= cfg.time_budget_seconds &&
        begin > 0) {
      break;
    }
    const std::size_t end = std::min(cfg.runs, begin + chunk);
    const std::vector<RunOutcome> outcomes = parallel_map<RunOutcome>(
        pool, end - begin, [&](std::size_t i) { return execute_run(cfg, begin + i); });

    // Serial, run-order aggregation: minimization and corpus writes happen
    // here, so reports and the corpus are jobs-independent.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      ++report.runs_executed;
      const RunOutcome& out = outcomes[i];
      if (!out.failed) continue;
      const std::size_t r = begin + i;

      FuzzFailureRecord record;
      record.run = r;
      record.seed = derive_seed(cfg.seed, r);
      record.oracle = out.failure.oracle;
      record.signature = out.failure.signature;
      record.detail = out.failure.detail;
      record.gates_before = out.gates;
      record.gates_after = out.gates;

      const bool fresh = signatures.insert(record.signature).second;
      if (fresh) {
        Netlist failing = fuzz_input(cfg.seed, r);
        if (cfg.minimize) {
          const MinimizeResult shrunk =
              minimize_failure(failing, cfg.oracle, record.signature);
          failing = shrunk.netlist;
          record.gates_after = shrunk.gates_after;
          record.minimized = true;
          ++report.minimized;
        }
        if (corpus) {
          if (std::optional<std::string> path =
                  corpus->add(failing, record.signature, record.oracle,
                              cfg.oracle.defect, record.seed)) {
            record.corpus_path = *path;
            ++report.corpus_new;
          } else {
            ++report.corpus_dupes;  // left over from an earlier campaign
          }
        }
      } else {
        ++report.corpus_dupes;
      }
      report.failures.push_back(std::move(record));
    }
  }

  report.unique_signatures = signatures.size();
  report.elapsed_seconds = elapsed();
  return report;
}

}  // namespace merced::fuzz
