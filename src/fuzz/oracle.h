// The differential oracle stack — every independent cross-check one fuzz
// input is run through.
//
// PET's guarantee is only as strong as the weakest layer between the
// netlist and the signature register, and each of PRs 1–4 found its real
// bug only when a *new independent oracle* was pointed at the pipeline
// (most recently the unsealed-cut retiming regression caught by the static
// verifier). This module makes that a standing battery. For one input
// netlist it checks, in order:
//
//   1. compile-parity     — compile(jobs=1) and compile(jobs=N) pick the
//                           bit-identical artifact (cut set, ι counts,
//                           retiming plan, chosen start);
//   2. verify             — the artifact passes the independent static
//                           checker (merced_verify) with zero errors;
//   3. kernel-conformance — the event-driven coverage kernel agrees with
//                           the naive re-evaluate-everything oracle
//                           fault-for-fault, a from-scratch masked
//                           sweep built here (not in src/sim) agrees with
//                           both, and every SIMD backend this host
//                           supports (64/256/512-bit lanes) reproduces
//                           the same verdicts bit-for-bit;
//   4. session-coverage   — PpetSession::measure_coverage equals a direct
//                           per-CUT fault simulation done outside the
//                           session machinery;
//   5. sat-equivalence    — the compile's retiming plan is proved
//                           cycle-exact equivalent to the original machine
//                           by the SAT miter (sat/equivalence.h), an
//                           engine that shares no code with the retiming
//                           pipeline it judges;
//   6. static-analysis    — per cluster, the static analyzer
//                           (analyze/analyze.h) produces a FaultPlan and
//                           untestability verdicts; the oracle checks
//                           three-way agreement: no statically-untestable
//                           fault may be detected by the naive sweep, the
//                           collapsed planned sweep must reproduce the
//                           naive coverage bit-for-bit, and every
//                           untestability claim must be confirmed by the
//                           SAT redundancy prover (sat/redundancy.h) —
//                           a refutation or an out-of-budget unknown is a
//                           hard failure either way;
//   7. exact-certificate  — the branch-and-bound exact PIC solver
//                           (exact/exact_solver.h) runs cold-start (no
//                           incumbent, node-budgeted) and its verdict must
//                           cohere with the heuristic: a feasible compile
//                           can never undercut the proven lower bound, a
//                           proven optimum can never exceed the heuristic
//                           cost, and the exact solver may never declare a
//                           feasibly-compiled instance infeasible. The
//                           compile is then *certified*: the merced-cert-v1
//                           artifact is emitted (core/certificate.h) and
//                           validated in-process by the independent checker
//                           (examples/certcheck — its own .bench parser,
//                           JSON reader, SCC and retime-graph code), which
//                           must accept every clean compile.
//
// Each oracle runs under its own trace span ("oracle_compile_parity",
// "oracle_verify", "oracle_kernel_conformance", "oracle_session_coverage",
// "oracle_sat_equivalence", "oracle_static_analysis",
// "oracle_exact_certificate") so a campaign traced
// with merced_fuzz --trace attributes wall time per oracle.
//
// A failure carries a stable *signature* (oracle name + the most specific
// stable detail, e.g. the verify rule ID) used for corpus deduplication
// and as the minimizer's preservation predicate.
//
// Canned defects: to prove the stack actually rejects broken pipelines
// (instead of rubber-stamping), a defect can be injected between compile
// and the oracles — drop-cut and skew-rho corrupt the artifact the verify
// oracle sees (mirroring merced_cli --inject-defect), lane-mask corrupts
// the lane mask of the masked sweep in oracle 3 (simulating the classic
// off-by-one in lane_mask()'s exponent), and skew-tap shifts the
// equivalence miter's warm-up tap frames by one cycle (the off-by-one in
// the RegisterOrigin correspondence that only oracle 5 can see — the plan
// itself stays legal, so verify waves it through), and cert-iota /
// cert-area corrupt only the emitted certificate *text* (a drifted ι
// claim, a miscounted CBIT area) so only oracle 7's independent checker
// can notice — the in-memory artifact every other oracle sees stays
// pristine. CI and fuzz_driver_test
// assert each defect yields a failure whose minimized corpus entry replays.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace merced::fuzz {

/// Canned pipeline defects (see file comment).
enum class FuzzDefect : std::uint8_t {
  kNone,
  kDropCut,
  kSkewRho,
  kLaneMask,
  kSkewTap,
  kCertIota,
  kCertArea,
};

std::string_view to_string(FuzzDefect defect) noexcept;

/// Parses "none" / "drop-cut" / "skew-rho" / "lane-mask" / "skew-tap" /
/// "cert-iota" / "cert-area". Returns false on unknown names.
bool defect_from_string(std::string_view name, FuzzDefect& out) noexcept;

/// One oracle failure. `signature` is stable across runs and across
/// minimization of the same root cause.
struct OracleFailure {
  std::string oracle;     ///< "compile-parity" | "verify" | ...
  std::string signature;  ///< oracle + ":" + stable detail key
  std::string detail;     ///< human-readable description
};

/// Knobs of one oracle-stack evaluation. Defaults favour small fuzz
/// circuits: lk = 5 keeps every feasible CUT below 6 inputs (one kernel
/// batch), and the coverage cap bounds sweep time on infeasible partitions.
struct OracleOptions {
  std::size_t lk = 5;                    ///< input constraint for compile
  int beta = 50;                         ///< SCC cut-budget multiplier
  std::size_t multi_start = 2;           ///< saturation candidates per compile
  std::size_t parallel_jobs = 4;         ///< jobs of the parallel leg of oracle 1
  std::size_t coverage_max_inputs = 10;  ///< skip coverage of wider CUTs
  std::uint64_t flow_seed = 0x9e3779b97f4a7c15ULL;
  FuzzDefect defect = FuzzDefect::kNone;
  /// Oracle 6: static analyzer vs naive sweep vs SAT prover agreement.
  bool static_analysis = true;
  /// Oracle 7: cold-start exact-solver bound check + certificate round-trip.
  bool exact_certificate = true;
  /// Node budget of oracle 7's cold-start B&B (small circuits; honest
  /// kBudgetExhausted verdicts keep the bound check sound at any budget).
  std::uint64_t exact_nodes = 50'000;
};

/// Runs the full stack; returns the first failure, or nullopt when the
/// input passes every oracle. Deterministic in (netlist, opt).
std::optional<OracleFailure> run_oracles(const Netlist& netlist, const OracleOptions& opt);

}  // namespace merced::fuzz
