// metrics_check — schema validator for the observability artifacts.
//
// Usage:
//   metrics_check [--metrics FILE]... [--trace FILE]... [--verify FILE]...
//                 [--fuzz FILE]... [--prove FILE]... [--analyze FILE]...
//                 [--diff FILE]...
//
// Parses each file with the obs JSON reader and validates it against the
// corresponding schema (merced-metrics-v1 or -v2 for --metrics, the Chrome
// trace event shape for --trace, merced-verify-v1 for --verify,
// merced-fuzz-v1 for --fuzz, merced-prove-v1 for --prove,
// merced-analyze-v1 for --analyze, merced-diff-v1
// for --diff). Prints one line per file;
// exits non-zero on the first unreadable or invalid artifact. CI runs this against freshly produced
// merced_cli and merced_fuzz output so a schema drift fails the build
// instead of silently breaking downstream diff tooling.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analyze/analyze_json.h"
#include "fuzz/fuzz_json.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_diff.h"
#include "sat/prove_json.h"
#include "verify/verify_json.h"

namespace {

int check(const std::string& kind, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  merced::obs::JsonValue doc;
  try {
    doc = merced::obs::JsonValue::parse(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "error: " << path << ": " << e.what() << "\n";
    return 1;
  }
  const std::string err = kind == "--metrics" ? merced::obs::validate_metrics_json(doc)
                          : kind == "--trace" ? merced::obs::validate_trace_json(doc)
                          : kind == "--diff"  ? merced::obs::validate_diff_json(doc)
                          : kind == "--fuzz"  ? merced::fuzz::validate_fuzz_json(doc)
                          : kind == "--prove" ? merced::sat::validate_prove_json(doc)
                          : kind == "--analyze"
                              ? merced::analyze::validate_analyze_json(doc)
                              : merced::verify::validate_verify_json(doc);
  if (!err.empty()) {
    std::cerr << "error: " << path << ": " << err << "\n";
    return 1;
  }
  std::cout << path << ": valid " << kind.substr(2) << " artifact\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: metrics_check [--metrics FILE]... [--trace FILE]... [--verify FILE]... "
      "[--fuzz FILE]... [--prove FILE]... [--analyze FILE]... [--diff FILE]...\n";
  if (argc < 3) {
    std::cerr << kUsage;
    return 2;
  }
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string kind = argv[i];
    if (kind != "--metrics" && kind != "--trace" && kind != "--verify" &&
        kind != "--fuzz" && kind != "--prove" && kind != "--analyze" &&
        kind != "--diff") {
      std::cerr << kUsage;
      return 2;
    }
    if (const int rc = check(kind, argv[i + 1]); rc != 0) return rc;
  }
  return 0;
}
