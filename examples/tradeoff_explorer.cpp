// tradeoff_explorer — the paper's central design-space trade-off on one
// circuit: CBIT length l_k sets the testing time (2^l_k cycles) and the
// number of cut nets (hence test hardware); β caps how many cuts legal
// retiming must cover on each feedback structure.
//
// Usage: tradeoff_explorer [circuit] (default s5378)
#include <iostream>
#include <string>

#include "bist/cbit_area.h"
#include "circuits/registry.h"
#include "core/merced.h"
#include "core/table_printer.h"

int main(int argc, char** argv) {
  using namespace merced;
  const std::string name = argc > 1 ? argv[1] : "s5378";
  const Netlist nl = load_benchmark(name);

  std::cout << "Testing-time / area trade-off for " << name << "\n\n";
  MercedConfig config;
  const PreparedCircuit prepared(nl, config.flow);

  TablePrinter t({"l_k", "test cycles", "partitions", "nets cut", "A_CBIT w/ ret",
                  "A_CBIT w/o ret", "saving pts", "Sigma (DFFs)"});
  for (std::size_t lk : {8u, 12u, 16u, 24u, 32u}) {
    config.lk = lk;
    const MercedResult r = compile(prepared, config);
    t.add_row({std::to_string(lk), std::to_string(testing_time_cycles(static_cast<unsigned>(lk))),
               std::to_string(r.partitions.count()), std::to_string(r.cuts.nets_cut),
               TablePrinter::num(r.area.pct_with_retiming(), 1) + "%",
               TablePrinter::num(r.area.pct_without_retiming(), 1) + "%",
               TablePrinter::num(r.area.saving_points(), 1),
               TablePrinter::num(r.cbit_cost.total_area_dff, 0)});
  }
  t.print(std::cout);

  std::cout << "\nbeta sweep at l_k = 16 (Eq. 6: cuts per SCC <= beta * registers):\n\n";
  TablePrinter b({"beta", "nets cut", "cuts on SCC", "multiplexed (aggregate)",
                  "A_CBIT w/ ret"});
  for (int beta : {1, 2, 5, 50}) {
    config.lk = 16;
    config.beta = beta;
    const MercedResult r = compile(prepared, config);
    b.add_row({std::to_string(beta), std::to_string(r.cuts.nets_cut),
               std::to_string(r.cuts.cut_nets_on_scc),
               std::to_string(r.area.multiplexed_cuts),
               TablePrinter::num(r.area.pct_with_retiming(), 1) + "%"});
  }
  b.print(std::cout);
  std::cout << "\nSmall beta forbids cutting feedback beyond the register supply:\n"
               "fewer multiplexed A_CELLs, at the price of different (often larger)\n"
               "clusters. beta = 50 reproduces the paper's unrestricted setting.\n";
  return 0;
}
