#include "check.h"

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "json_read.h"

namespace certcheck {

namespace {

constexpr const char* kSchema = "merced-cert-v1";
constexpr std::uint64_t kACellFromDffArea = 9;
constexpr std::uint64_t kACellWithMuxArea = 23;
constexpr std::int32_t kNoCluster = -1;
constexpr std::int32_t kNoScc = -1;

/// Thrown inside the schema walk; caught and turned into CERT-SCHEMA.
struct SchemaError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void schema_fail(const std::string& msg) { throw SchemaError(msg); }

const JValue& need(const JValue& obj, const std::string& key, JValue::Kind kind,
                   const char* what) {
  const JValue* v = obj.find(key);
  if (v == nullptr) schema_fail(std::string("missing \"") + key + "\" in " + what);
  if (v->kind != kind) schema_fail(std::string("\"") + key + "\" in " + what +
                                   " has the wrong type");
  return *v;
}

std::uint64_t need_uint(const JValue& obj, const std::string& key, const char* what) {
  const JValue& v = need(obj, key, JValue::Kind::kNumber, what);
  if (!v.is_uint()) schema_fail(std::string("\"") + key + "\" in " + what +
                                " is not a non-negative integer");
  return v.as_uint();
}

std::vector<std::string> need_names(const JValue& obj, const std::string& key,
                                    const char* what) {
  const JValue& arr = need(obj, key, JValue::Kind::kArray, what);
  std::vector<std::string> out;
  out.reserve(arr.array.size());
  for (const JValue& e : arr.array) {
    if (!e.is_string()) schema_fail(std::string("\"") + key + "\" in " + what +
                                    " contains a non-string entry");
    out.push_back(e.string);
  }
  return out;
}

/// Everything the checker needs out of the document, schema-validated.
struct Cert {
  std::uint64_t lk = 0;
  std::uint64_t pis = 0, dffs = 0, gates = 0;
  std::string hash;  ///< full "fnv1a:<16 hex>" string
  std::vector<std::pair<std::uint64_t, std::vector<std::string>>> clusters;
  std::vector<std::string> cuts;
  std::vector<std::pair<std::string, std::int64_t>> rho;
  std::vector<std::string> retimable;
  std::vector<std::string> multiplexed;
  struct Eq2Row {
    std::string scc;
    std::uint64_t dffs = 0;
    std::uint64_t cuts = 0;
  };
  std::vector<Eq2Row> eq2;
  std::uint64_t area_retimable = 0, area_multiplexed = 0;
  std::uint64_t area_with = 0, area_without = 0;
};

Cert read_schema(const JValue& doc) {
  Cert c;
  if (!doc.is_object()) schema_fail("top level is not an object");
  const JValue& schema = need(doc, "schema", JValue::Kind::kString, "document");
  if (schema.string != kSchema) {
    schema_fail("unknown schema \"" + schema.string + "\" (expected " + kSchema + ")");
  }
  const JValue& run = need(doc, "run", JValue::Kind::kObject, "document");
  c.lk = need_uint(run, "lk", "run");

  const JValue& nl = need(doc, "netlist", JValue::Kind::kObject, "document");
  c.pis = need_uint(nl, "pis", "netlist");
  c.dffs = need_uint(nl, "dffs", "netlist");
  c.gates = need_uint(nl, "gates", "netlist");
  c.hash = need(nl, "hash", JValue::Kind::kString, "netlist").string;

  const JValue& clusters = need(doc, "clusters", JValue::Kind::kArray, "document");
  for (const JValue& cl : clusters.array) {
    if (!cl.is_object()) schema_fail("\"clusters\" contains a non-object entry");
    c.clusters.emplace_back(need_uint(cl, "iota", "cluster"),
                            need_names(cl, "members", "cluster"));
  }

  c.cuts = need_names(doc, "cuts", "document");

  const JValue& ret = need(doc, "retiming", JValue::Kind::kObject, "document");
  const JValue& rho = need(ret, "rho", JValue::Kind::kObject, "retiming");
  for (const auto& [name, value] : rho.object) {
    if (!value.is_int()) schema_fail("\"rho\" entry \"" + name + "\" is not an integer");
    c.rho.emplace_back(name, value.as_int());
  }
  c.retimable = need_names(ret, "retimable", "retiming");
  c.multiplexed = need_names(ret, "multiplexed", "retiming");

  const JValue& eq2 = need(doc, "eq2", JValue::Kind::kArray, "document");
  for (const JValue& row : eq2.array) {
    if (!row.is_object()) schema_fail("\"eq2\" contains a non-object entry");
    Cert::Eq2Row r;
    r.scc = need(row, "scc", JValue::Kind::kString, "eq2 row").string;
    r.dffs = need_uint(row, "dffs", "eq2 row");
    r.cuts = need_uint(row, "cuts_on_scc", "eq2 row");
    c.eq2.push_back(std::move(r));
  }

  const JValue& area = need(doc, "area", JValue::Kind::kObject, "document");
  c.area_retimable = need_uint(area, "retimable_cuts", "area");
  c.area_multiplexed = need_uint(area, "multiplexed_cuts", "area");
  c.area_with = need_uint(area, "cbit_area_with_retiming", "area");
  c.area_without = need_uint(area, "cbit_area_without_retiming", "area");
  return c;
}

/// A connection of the Leiserson–Saxe view: DFF chains collapsed to a
/// weight, endpoints are non-DFF gates (combinational gates and PIs).
struct REdge {
  std::uint32_t from = 0;  ///< source gate id (drives the edge's net)
  std::uint32_t to = 0;    ///< sink gate id
  std::int32_t weight = 0;
};

/// Mirrors RetimeGraph's construction: per (non-DFF sink, fanin pin), walk
/// the register chain back to its non-DFF source. Throws BenchError on a
/// pure DFF ring (the netlist itself is broken, not the certificate).
std::vector<REdge> build_retime_edges(const BNetlist& nl) {
  std::vector<REdge> edges;
  for (std::uint32_t sink = 0; sink < nl.gates.size(); ++sink) {
    if (nl.is_dff(sink)) continue;
    for (std::uint32_t src : nl.gates[sink].fanins) {
      std::int32_t weight = 0;
      std::size_t guard = nl.gates.size() + 1;
      while (nl.is_dff(src)) {
        ++weight;
        src = nl.gates[src].fanins.at(0);
        if (guard-- == 0) {
          throw BenchError("pure DFF ring feeding gate '" + nl.gates[sink].name + "'");
        }
      }
      edges.push_back(REdge{src, sink, weight});
    }
  }
  return edges;
}

/// Iterative Tarjan over the full gate graph (edges fanin -> gate), keeping
/// only non-trivial SCCs (size >= 2 or a self-loop), numbered as found.
struct Sccs {
  std::vector<std::int32_t> component_of;  ///< per gate; kNoScc when trivial
  std::vector<std::vector<std::uint32_t>> components;
  std::vector<std::uint64_t> dff_count;
};

Sccs find_sccs(const BNetlist& nl) {
  const std::size_t n = nl.gates.size();
  constexpr std::uint32_t kUnvisited = UINT32_MAX;
  Sccs info;
  info.component_of.assign(n, kNoScc);
  std::vector<std::uint32_t> index(n, kUnvisited), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;

  struct Frame {
    std::uint32_t node;
    std::size_t edge_pos;
  };
  std::vector<Frame> frames;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& out = nl.fanouts[f.node];
      if (f.edge_pos < out.size()) {
        const std::uint32_t w = out[f.edge_pos++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
        continue;
      }
      const std::uint32_t v = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] = std::min(lowlink[frames.back().node], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        std::vector<std::uint32_t> comp;
        std::uint32_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp.push_back(w);
        } while (w != v);
        bool nontrivial = comp.size() >= 2;
        if (!nontrivial) {
          const auto& sinks = nl.fanouts[comp[0]];
          nontrivial = std::find(sinks.begin(), sinks.end(), comp[0]) != sinks.end();
        }
        if (nontrivial) {
          const auto cid = static_cast<std::int32_t>(info.components.size());
          std::uint64_t dffs = 0;
          for (std::uint32_t m : comp) {
            info.component_of[m] = cid;
            if (nl.is_dff(m)) ++dffs;
          }
          info.components.push_back(std::move(comp));
          info.dff_count.push_back(dffs);
        }
      }
    }
  }
  return info;
}

CheckResult fail(const char* rule, std::string msg) {
  return CheckResult{false, rule, std::move(msg)};
}

}  // namespace

CheckResult check_certificate(const BNetlist& nl, const std::string& cert_text) {
  // -- CERT-PARSE ----------------------------------------------------------
  JValue doc;
  try {
    doc = json_parse(cert_text);
  } catch (const JsonError& e) {
    return fail("CERT-PARSE", e.what());
  }

  // -- CERT-SCHEMA ---------------------------------------------------------
  Cert cert;
  try {
    cert = read_schema(doc);
  } catch (const SchemaError& e) {
    return fail("CERT-SCHEMA", e.what());
  }

  // -- CERT-NETLIST --------------------------------------------------------
  const std::uint64_t n_pis = nl.inputs.size();
  const std::uint64_t n_dffs = nl.dffs.size();
  const std::uint64_t n_gates = nl.gates.size() - n_pis - n_dffs;
  if (cert.pis != n_pis || cert.dffs != n_dffs || cert.gates != n_gates) {
    return fail("CERT-NETLIST",
                "certificate claims pis=" + std::to_string(cert.pis) +
                    " dffs=" + std::to_string(cert.dffs) +
                    " gates=" + std::to_string(cert.gates) + ", netlist has pis=" +
                    std::to_string(n_pis) + " dffs=" + std::to_string(n_dffs) +
                    " gates=" + std::to_string(n_gates));
  }
  char hash_hex[24];
  std::snprintf(hash_hex, sizeof hash_hex, "fnv1a:%016llx",
                static_cast<unsigned long long>(structural_hash(nl)));
  if (cert.hash != hash_hex) {
    return fail("CERT-NETLIST", "certificate hash " + cert.hash +
                                    " does not match netlist hash " + hash_hex);
  }

  // -- CERT-COVERAGE -------------------------------------------------------
  const std::size_t num_clusters = cert.clusters.size();
  std::vector<std::int32_t> cluster_of(nl.gates.size(), kNoCluster);
  std::vector<std::vector<std::uint32_t>> members(num_clusters);
  for (std::size_t ci = 0; ci < num_clusters; ++ci) {
    for (const std::string& name : cert.clusters[ci].second) {
      const std::uint32_t id = nl.find(name);
      if (id == UINT32_MAX) {
        return fail("CERT-COVERAGE", "cluster " + std::to_string(ci) +
                                         " member '" + name +
                                         "' is not a net of the circuit");
      }
      if (nl.is_pi(id)) {
        return fail("CERT-COVERAGE",
                    "primary input '" + name + "' listed as a cluster member");
      }
      if (cluster_of[id] != kNoCluster) {
        return fail("CERT-COVERAGE", "'" + name + "' appears in cluster " +
                                         std::to_string(cluster_of[id]) +
                                         " and again in cluster " + std::to_string(ci));
      }
      cluster_of[id] = static_cast<std::int32_t>(ci);
      members[ci].push_back(id);
    }
  }
  for (std::uint32_t g = 0; g < nl.gates.size(); ++g) {
    if (!nl.is_pi(g) && cluster_of[g] == kNoCluster) {
      return fail("CERT-COVERAGE",
                  "'" + nl.gates[g].name + "' is not covered by any cluster");
    }
  }

  // -- CERT-IOTA -----------------------------------------------------------
  // ι(cluster) = distinct nets feeding its combinational members from PIs,
  // DFFs, or gates of other clusters (a net is its driver gate).
  for (std::size_t ci = 0; ci < num_clusters; ++ci) {
    std::vector<std::uint32_t> sources;
    for (std::uint32_t g : members[ci]) {
      if (!nl.is_comb(g)) continue;
      for (std::uint32_t src : nl.gates[g].fanins) {
        if (nl.is_pi(src) || nl.is_dff(src) ||
            cluster_of[src] != static_cast<std::int32_t>(ci)) {
          sources.push_back(src);
        }
      }
    }
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
    if (sources.size() != cert.clusters[ci].first) {
      return fail("CERT-IOTA", "cluster " + std::to_string(ci) + " claims iota=" +
                                   std::to_string(cert.clusters[ci].first) +
                                   ", recomputation gives " +
                                   std::to_string(sources.size()));
    }
  }

  // -- CERT-IOTA-BOUND -----------------------------------------------------
  for (std::size_t ci = 0; ci < num_clusters; ++ci) {
    if (cert.clusters[ci].first > cert.lk) {
      return fail("CERT-IOTA-BOUND", "cluster " + std::to_string(ci) + " has iota=" +
                                         std::to_string(cert.clusters[ci].first) +
                                         " > lk=" + std::to_string(cert.lk));
    }
  }

  // -- CERT-CUT ------------------------------------------------------------
  // A net is cut when its combinational driver has a combinational fanout
  // sink in another cluster (one A_CELL per net).
  std::vector<std::uint32_t> actual_cuts;
  for (std::uint32_t d = 0; d < nl.gates.size(); ++d) {
    if (!nl.is_comb(d)) continue;
    for (std::uint32_t s : nl.fanouts[d]) {
      if (nl.is_comb(s) && cluster_of[s] != cluster_of[d]) {
        actual_cuts.push_back(d);
        break;
      }
    }
  }
  std::vector<std::uint32_t> claimed_cuts;
  claimed_cuts.reserve(cert.cuts.size());
  for (const std::string& name : cert.cuts) {
    const std::uint32_t id = nl.find(name);
    if (id == UINT32_MAX) {
      return fail("CERT-CUT", "cut net '" + name + "' is not a net of the circuit");
    }
    claimed_cuts.push_back(id);
  }
  std::sort(claimed_cuts.begin(), claimed_cuts.end());
  if (std::adjacent_find(claimed_cuts.begin(), claimed_cuts.end()) !=
      claimed_cuts.end()) {
    return fail("CERT-CUT", "certificate lists a cut net twice");
  }
  if (claimed_cuts != actual_cuts) {  // actual_cuts is built in id order
    for (std::uint32_t id : actual_cuts) {
      if (!std::binary_search(claimed_cuts.begin(), claimed_cuts.end(), id)) {
        return fail("CERT-CUT", "net '" + nl.gates[id].name +
                                    "' is cut by the partition but missing "
                                    "from the certificate");
      }
    }
    for (std::uint32_t id : claimed_cuts) {
      if (!std::binary_search(actual_cuts.begin(), actual_cuts.end(), id)) {
        return fail("CERT-CUT", "certificate claims net '" + nl.gates[id].name +
                                    "' is cut, but it never crosses clusters");
      }
    }
  }

  // -- CERT-RET-PARTITION --------------------------------------------------
  std::vector<std::uint32_t> ret_ids, mux_ids;
  for (const std::string& name : cert.retimable) {
    const std::uint32_t id = nl.find(name);
    if (id == UINT32_MAX) {
      return fail("CERT-RET-PARTITION",
                  "retimable net '" + name + "' is not a net of the circuit");
    }
    ret_ids.push_back(id);
  }
  for (const std::string& name : cert.multiplexed) {
    const std::uint32_t id = nl.find(name);
    if (id == UINT32_MAX) {
      return fail("CERT-RET-PARTITION",
                  "multiplexed net '" + name + "' is not a net of the circuit");
    }
    mux_ids.push_back(id);
  }
  std::vector<std::uint32_t> split = ret_ids;
  split.insert(split.end(), mux_ids.begin(), mux_ids.end());
  std::sort(split.begin(), split.end());
  if (std::adjacent_find(split.begin(), split.end()) != split.end()) {
    return fail("CERT-RET-PARTITION",
                "retimable and multiplexed sets overlap or repeat a net");
  }
  if (split != actual_cuts) {
    return fail("CERT-RET-PARTITION",
                "retimable (" + std::to_string(ret_ids.size()) + ") + multiplexed (" +
                    std::to_string(mux_ids.size()) +
                    ") does not partition the cut set (" +
                    std::to_string(actual_cuts.size()) + " nets)");
  }

  // -- CERT-RET-LEGAL ------------------------------------------------------
  std::vector<REdge> edges = build_retime_edges(nl);
  std::vector<std::int64_t> rho(nl.gates.size(), 0);
  for (const auto& [name, lag] : cert.rho) {
    const std::uint32_t id = nl.find(name);
    if (id == UINT32_MAX || nl.is_dff(id)) {
      return fail("CERT-RET-LEGAL",
                  "rho key '" + name + "' is not a retime-graph vertex");
    }
    rho[id] = lag;
  }
  for (const REdge& e : edges) {
    const std::int64_t w = e.weight + rho[e.to] - rho[e.from];
    if (w < 0) {
      return fail("CERT-RET-LEGAL", "connection " + nl.gates[e.from].name + " -> " +
                                        nl.gates[e.to].name +
                                        " has retimed register count " +
                                        std::to_string(w));
    }
  }

  // -- CERT-RET-SEALED -----------------------------------------------------
  // Every cluster-crossing connection of a retimable cut net must carry a
  // register after retiming; multiplexed nets are sealed by hardware
  // (A_CELL + MUX) instead.
  std::unordered_set<std::uint32_t> retimable_set(ret_ids.begin(), ret_ids.end());
  for (const REdge& e : edges) {
    if (!retimable_set.count(e.from)) continue;
    if (cluster_of[e.from] == kNoCluster || cluster_of[e.to] == kNoCluster) continue;
    if (cluster_of[e.from] == cluster_of[e.to]) continue;
    const std::int64_t w = e.weight + rho[e.to] - rho[e.from];
    if (w < 1) {
      return fail("CERT-RET-SEALED",
                  "retimable cut '" + nl.gates[e.from].name + "' crossing to '" +
                      nl.gates[e.to].name + "' carries " + std::to_string(w) +
                      " registers after retiming");
    }
  }

  // -- CERT-EQ2 ------------------------------------------------------------
  const Sccs sccs = find_sccs(nl);
  // χ(λ): cut nets whose driver is in λ with a combinational crossing sink
  // also in λ — the paper's Eq. 2 demand against the f(λ) register supply.
  std::vector<std::uint64_t> chi(sccs.components.size(), 0);
  for (std::uint32_t d : actual_cuts) {
    const std::int32_t scc = sccs.component_of[d];
    if (scc == kNoScc) continue;
    for (std::uint32_t s : nl.fanouts[d]) {
      if (nl.is_comb(s) && cluster_of[s] != cluster_of[d] &&
          sccs.component_of[s] == scc) {
        ++chi[static_cast<std::size_t>(scc)];
        break;
      }
    }
  }
  struct Row {
    std::string rep;
    std::uint64_t dffs;
    std::uint64_t cuts;
  };
  std::vector<Row> expected(sccs.components.size());
  for (std::size_t s = 0; s < sccs.components.size(); ++s) {
    for (std::uint32_t m : sccs.components[s]) {
      const std::string& name = nl.gates[m].name;
      if (expected[s].rep.empty() || name < expected[s].rep) expected[s].rep = name;
    }
    expected[s].dffs = sccs.dff_count[s];
    expected[s].cuts = chi[s];
  }
  std::sort(expected.begin(), expected.end(),
            [](const Row& a, const Row& b) { return a.rep < b.rep; });
  std::vector<Cert::Eq2Row> claimed = cert.eq2;
  std::sort(claimed.begin(), claimed.end(),
            [](const Cert::Eq2Row& a, const Cert::Eq2Row& b) { return a.scc < b.scc; });
  if (claimed.size() != expected.size()) {
    return fail("CERT-EQ2", "certificate has " + std::to_string(claimed.size()) +
                                " eq2 rows, netlist has " +
                                std::to_string(expected.size()) + " non-trivial SCCs");
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (claimed[i].scc != expected[i].rep) {
      return fail("CERT-EQ2", "eq2 row names scc '" + claimed[i].scc +
                                  "', expected '" + expected[i].rep + "'");
    }
    if (claimed[i].dffs != expected[i].dffs || claimed[i].cuts != expected[i].cuts) {
      return fail("CERT-EQ2", "scc '" + expected[i].rep + "': certificate claims dffs=" +
                                  std::to_string(claimed[i].dffs) + " cuts_on_scc=" +
                                  std::to_string(claimed[i].cuts) +
                                  ", recomputation gives dffs=" +
                                  std::to_string(expected[i].dffs) + " cuts_on_scc=" +
                                  std::to_string(expected[i].cuts));
    }
  }

  // -- CERT-AREA -----------------------------------------------------------
  // Paper aggregate (Table 12): Σ_λ max(0, χ(λ) − f(λ)) cuts need the
  // multiplexed A_CELL; the rest convert existing DFFs.
  const std::uint64_t total_cuts = actual_cuts.size();
  std::uint64_t demand = 0;
  for (std::size_t s = 0; s < sccs.components.size(); ++s) {
    if (chi[s] > sccs.dff_count[s]) demand += chi[s] - sccs.dff_count[s];
  }
  const std::uint64_t exp_mux = std::min(total_cuts, demand);
  const std::uint64_t exp_ret = total_cuts - exp_mux;
  if (cert.area_retimable + cert.area_multiplexed != total_cuts) {
    return fail("CERT-AREA", "retimable_cuts + multiplexed_cuts = " +
                                 std::to_string(cert.area_retimable +
                                                cert.area_multiplexed) +
                                 " but the cut set has " + std::to_string(total_cuts) +
                                 " nets");
  }
  if (cert.area_retimable != exp_ret || cert.area_multiplexed != exp_mux) {
    return fail("CERT-AREA",
                "certificate claims retimable_cuts=" +
                    std::to_string(cert.area_retimable) + " multiplexed_cuts=" +
                    std::to_string(cert.area_multiplexed) +
                    ", Eq. 2 aggregate gives retimable_cuts=" + std::to_string(exp_ret) +
                    " multiplexed_cuts=" + std::to_string(exp_mux));
  }
  const std::uint64_t exp_with =
      exp_ret * kACellFromDffArea + exp_mux * kACellWithMuxArea;
  const std::uint64_t exp_without = total_cuts * kACellWithMuxArea;
  if (cert.area_with != exp_with) {
    return fail("CERT-AREA", "cbit_area_with_retiming=" +
                                 std::to_string(cert.area_with) + ", arithmetic gives " +
                                 std::to_string(exp_with));
  }
  if (cert.area_without != exp_without) {
    return fail("CERT-AREA", "cbit_area_without_retiming=" +
                                 std::to_string(cert.area_without) +
                                 ", arithmetic gives " + std::to_string(exp_without));
  }

  CheckResult ok;
  ok.ok = true;
  ok.message = std::to_string(num_clusters) + " clusters, " +
               std::to_string(total_cuts) + " cuts, " +
               std::to_string(expected.size()) + " sccs verified";
  return ok;
}

}  // namespace certcheck
