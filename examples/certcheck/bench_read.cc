#include "bench_read.h"

#include <algorithm>
#include <cctype>

namespace certcheck {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw BenchError("bench line " + std::to_string(line_no) + ": " + msg);
}

}  // namespace

std::uint32_t BNetlist::find(const std::string& name) const {
  const auto it = by_name.find(name);
  return it == by_name.end() ? UINT32_MAX : it->second;
}

BNetlist parse_bench(const std::string& text) {
  BNetlist nl;
  struct Pending {
    std::uint32_t gate;
    std::vector<std::string> fanins;
    std::size_t line_no;
  };
  std::vector<Pending> pending;
  std::vector<std::pair<std::string, std::size_t>> output_names;

  auto add_gate = [&](const std::string& name, std::string type, std::size_t line_no) {
    if (nl.by_name.count(name) != 0) fail(line_no, "duplicate net '" + name + "'");
    const auto id = static_cast<std::uint32_t>(nl.gates.size());
    nl.by_name.emplace(name, id);
    nl.gates.push_back(BGate{name, std::move(type), {}});
    return id;
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl_pos = text.find('\n', pos);
    std::string line = text.substr(pos, nl_pos == std::string::npos ? std::string::npos
                                                                    : nl_pos - pos);
    pos = nl_pos == std::string::npos ? text.size() + 1 : nl_pos + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t open = line.find('(');
      const std::size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        fail(line_no, "expected INPUT(...), OUTPUT(...) or an assignment");
      }
      const std::string kw = upper(trim(line.substr(0, open)));
      const std::string arg = trim(line.substr(open + 1, close - open - 1));
      if (arg.empty()) fail(line_no, kw + " with empty name");
      if (kw == "INPUT") {
        add_gate(arg, "INPUT", line_no);
      } else if (kw == "OUTPUT") {
        output_names.emplace_back(arg, line_no);
      } else {
        fail(line_no, "unknown declaration '" + kw + "'");
      }
      continue;
    }

    const std::string name = trim(line.substr(0, eq));
    if (name.empty()) fail(line_no, "assignment with empty net name");
    const std::string rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      fail(line_no, "malformed gate expression '" + rhs + "'");
    }
    const std::string type = upper(trim(rhs.substr(0, open)));
    if (type.empty() || type == "INPUT" || type == "OUTPUT") {
      fail(line_no, "invalid gate type '" + type + "'");
    }
    const std::uint32_t id = add_gate(name, type, line_no);
    Pending p{id, {}, line_no};
    std::string args = rhs.substr(open + 1, close - open - 1);
    std::size_t start = 0;
    while (start <= args.size()) {
      const std::size_t comma = args.find(',', start);
      const std::string tok = trim(args.substr(
          start, comma == std::string::npos ? std::string::npos : comma - start));
      if (!tok.empty()) p.fanins.push_back(tok);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    pending.push_back(std::move(p));
  }

  for (const Pending& p : pending) {
    for (const std::string& fi : p.fanins) {
      const std::uint32_t src = nl.find(fi);
      if (src == UINT32_MAX) fail(p.line_no, "undefined fanin '" + fi + "'");
      nl.gates[p.gate].fanins.push_back(src);
    }
    if (nl.gates[p.gate].fanins.empty() && nl.gates[p.gate].type != "CONST0" &&
        nl.gates[p.gate].type != "CONST1") {
      fail(p.line_no, "gate '" + nl.gates[p.gate].name + "' has no fanins");
    }
  }
  for (const auto& [name, out_line] : output_names) {
    const std::uint32_t id = nl.find(name);
    if (id == UINT32_MAX) fail(out_line, "undefined output '" + name + "'");
    if (std::find(nl.outputs.begin(), nl.outputs.end(), id) == nl.outputs.end()) {
      nl.outputs.push_back(id);
    }
  }
  for (std::uint32_t g = 0; g < nl.gates.size(); ++g) {
    if (nl.is_pi(g)) nl.inputs.push_back(g);
    if (nl.is_dff(g)) nl.dffs.push_back(g);
  }
  nl.fanouts.assign(nl.gates.size(), {});
  for (std::uint32_t g = 0; g < nl.gates.size(); ++g) {
    for (std::uint32_t src : nl.gates[g].fanins) {
      auto& sinks = nl.fanouts[src];
      if (std::find(sinks.begin(), sinks.end(), g) == sinks.end()) sinks.push_back(g);
    }
  }
  return nl;
}

std::uint64_t structural_hash(const BNetlist& nl) {
  std::vector<std::string> lines;
  lines.reserve(nl.gates.size() + nl.outputs.size());
  for (const BGate& gate : nl.gates) {
    if (gate.type == "INPUT") {
      lines.push_back("INPUT(" + gate.name + ")");
      continue;
    }
    std::string line = gate.name + " = " + gate.type + "(";
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i) line += ',';
      line += nl.gates[gate.fanins[i]].name;
    }
    line += ')';
    lines.push_back(std::move(line));
  }
  for (std::uint32_t id : nl.outputs) {
    lines.push_back("OUTPUT(" + nl.gates[id].name + ")");
  }
  std::sort(lines.begin(), lines.end());
  std::uint64_t h = 14695981039346656037ULL;
  bool first = true;
  for (const std::string& line : lines) {
    if (!first) {
      h ^= static_cast<unsigned char>('\n');
      h *= 1099511628211ULL;
    }
    first = false;
    for (char c : line) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace certcheck
