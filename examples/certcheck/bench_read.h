// Self-contained .bench reader for the certificate checker.
//
// merced_certcheck must not trust — or link — any compiler library, so this
// is an independent implementation of the ISCAS89 grammar the toolchain
// uses (INPUT(x) / OUTPUT(x) / name = TYPE(a, b) / # comments, forward
// references allowed). Shared with the emitter only through the documented
// canonical-line structural hash (see src/core/certificate.h).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace certcheck {

struct BenchError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct BGate {
  std::string name;
  std::string type;  ///< canonical upper-case token, e.g. "NAND", "DFF", "INPUT"
  std::vector<std::uint32_t> fanins;
};

struct BNetlist {
  std::vector<BGate> gates;
  std::vector<std::uint32_t> inputs;   ///< ids of INPUT gates, in id order
  std::vector<std::uint32_t> dffs;     ///< ids of DFF gates, in id order
  std::vector<std::uint32_t> outputs;  ///< ids of OUTPUT-marked gates, deduplicated
  std::unordered_map<std::string, std::uint32_t> by_name;
  /// Per gate: sinks of the net it drives (distinct (sink,pin) collapsed to
  /// one entry per sink gate), built after parsing.
  std::vector<std::vector<std::uint32_t>> fanouts;

  bool is_pi(std::uint32_t g) const { return gates[g].type == "INPUT"; }
  bool is_dff(std::uint32_t g) const { return gates[g].type == "DFF"; }
  /// The predicate all ι/cut accounting shares: partitionable and able to
  /// consume test inputs / anchor cuts (includes CONST0/CONST1).
  bool is_comb(std::uint32_t g) const { return !is_pi(g) && !is_dff(g); }

  /// Gate id by name, or UINT32_MAX.
  std::uint32_t find(const std::string& name) const;
};

/// Parses .bench text. Throws BenchError with a line diagnostic.
BNetlist parse_bench(const std::string& text);

/// FNV-1a over the sorted canonical line set — the checker's half of the
/// structural-hash contract in src/core/certificate.h.
std::uint64_t structural_hash(const BNetlist& nl);

}  // namespace certcheck
