// The merced-cert-v1 rule engine. check_certificate() re-derives every
// claim in the certificate from the netlist alone and stops at the first
// violated rule. Rules run in a fixed order so a given defect always pins
// the same diagnostic:
//
//   CERT-PARSE          certificate is well-formed JSON
//   CERT-SCHEMA         document structure and types match merced-cert-v1
//   CERT-NETLIST        PI/DFF/gate counts and the structural hash match
//   CERT-COVERAGE       clusters partition exactly the non-PI nodes
//   CERT-IOTA           each claimed per-cluster ι equals the recomputed ι
//   CERT-IOTA-BOUND     every ι is within run.lk
//   CERT-CUT            claimed cut set equals the recomputed cut set
//   CERT-RET-PARTITION  retimable ⊎ multiplexed is exactly the cut set
//   CERT-RET-LEGAL      ρ keeps every connection's register count >= 0
//   CERT-RET-SEALED     every crossing of a retimable cut carries >= 1 DFF
//   CERT-EQ2            per-SCC (f, χ) witnesses match recomputation
//   CERT-AREA           retimable/multiplexed split and CBIT areas add up
#pragma once

#include <string>

#include "bench_read.h"

namespace certcheck {

struct CheckResult {
  bool ok = false;
  std::string rule;     ///< violated rule id, empty when ok
  std::string message;  ///< human diagnostic
};

/// Validates `cert_text` (merced-cert-v1 JSON) against the parsed netlist.
/// Never throws on certificate problems — those become CheckResults; throws
/// BenchError only if the *netlist* itself is malformed (register ring).
CheckResult check_certificate(const BNetlist& nl, const std::string& cert_text);

}  // namespace certcheck
