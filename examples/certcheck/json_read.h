// Self-contained JSON reader for the certificate checker (strict RFC 8259
// subset: no comments, no trailing commas). Deliberately independent of the
// compiler's obs/json.h — the checker trusts nothing it verifies.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace certcheck {

struct JsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;  ///< document order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// True when the value is a non-negative integral number.
  bool is_uint() const;
  std::uint64_t as_uint() const { return static_cast<std::uint64_t>(number); }
  /// True when the value is an integral number (possibly negative).
  bool is_int() const;
  std::int64_t as_int() const { return static_cast<std::int64_t>(number); }

  /// Member by key (first match), or nullptr.
  const JValue* find(const std::string& key) const;
};

/// Parses a complete document; trailing non-space input throws JsonError.
JValue json_parse(const std::string& text);

}  // namespace certcheck
