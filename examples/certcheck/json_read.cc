#include "json_read.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace certcheck {

bool JValue::is_uint() const {
  return is_number() && number >= 0 && std::floor(number) == number &&
         number <= 18446744073709549568.0;
}

bool JValue::is_int() const {
  return is_number() && std::floor(number) == number &&
         number >= -9223372036854774784.0 && number <= 9223372036854774784.0;
}

const JValue* JValue::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JValue parse_document() {
    JValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing input");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonError("json at byte " + std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JValue v;
        v.kind = JValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!literal("null")) fail("bad literal");
        return JValue{};
      default: return parse_number();
    }
  }

  static JValue make_bool(bool b) {
    JValue v;
    v.kind = JValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JValue parse_object() {
    expect('{');
    JValue v;
    v.kind = JValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JValue parse_array() {
    expect('[');
    JValue v;
    v.kind = JValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Basic-plane UTF-8 encoding (surrogate pairs unsupported; the
          // toolchain never emits them in gate names).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + tok + "'");
    JValue v;
    v.kind = JValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JValue json_parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace certcheck
