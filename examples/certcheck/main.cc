// merced_certcheck — independent validator for merced-cert-v1 artifacts.
//
// Usage: merced_certcheck <netlist.bench> <certificate.json>
// Exit:  0 certificate verified, 1 certificate rejected (rule on stderr),
//        2 usage / IO / netlist error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_read.h"
#include "check.h"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: merced_certcheck <netlist.bench> <certificate.json>\n";
    return 2;
  }
  std::string bench_text, cert_text;
  if (!read_file(argv[1], bench_text)) {
    std::cerr << "merced_certcheck: cannot read netlist '" << argv[1] << "'\n";
    return 2;
  }
  if (!read_file(argv[2], cert_text)) {
    std::cerr << "merced_certcheck: cannot read certificate '" << argv[2] << "'\n";
    return 2;
  }
  try {
    const certcheck::BNetlist nl = certcheck::parse_bench(bench_text);
    const certcheck::CheckResult r = certcheck::check_certificate(nl, cert_text);
    if (!r.ok) {
      std::cerr << r.rule << ": " << r.message << "\n";
      return 1;
    }
    std::cout << "OK: " << r.message << "\n";
    return 0;
  } catch (const certcheck::BenchError& e) {
    std::cerr << "merced_certcheck: " << e.what() << "\n";
    return 2;
  }
}
