// Quickstart: the paper's s27 walk-through (Figures 2, 5, 6, 7).
//
// Builds the graph of s27, saturates the network with random multicommodity
// flow, clusters under an input constraint of lk = 3 (the paper's toy
// setting), merges clusters with Assign_CBIT, and plans retiming for the
// cuts — printing each intermediate the paper illustrates.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <vector>

#include "circuits/s27.h"
#include "core/merced.h"
#include "flow/saturate_network.h"
#include "graph/circuit_graph.h"
#include "graph/scc.h"
#include "partition/assign_cbit.h"
#include "partition/make_group.h"

int main() {
  using namespace merced;

  // --- Figure 2: circuit and graph representation -----------------------
  const Netlist s27 = make_s27();
  const CircuitGraph graph(s27);
  std::cout << "s27: " << s27.inputs().size() << " PIs, " << s27.dffs().size()
            << " DFFs, " << graph.num_nodes() << " graph nodes, "
            << graph.num_branches() << " branches\n";

  const SccInfo sccs = find_sccs(graph);
  std::cout << "\nStrongly connected components (the feedback structure):\n";
  for (std::size_t i = 0; i < sccs.count(); ++i) {
    std::cout << "  SCC " << i << " (" << sccs.dff_count[i] << " DFFs):";
    for (NodeId v : sccs.components[i]) std::cout << " " << s27.gate(v).name;
    std::cout << "\n";
  }

  // --- Figure 5: Saturate_Network --------------------------------------
  SaturateParams flow;   // b=1, min_visit=20, alpha=4, delta=0.01 (paper §4.1)
  flow.seed = 27;
  const SaturationResult sat = saturate_network(graph, flow);
  std::cout << "\nMost congested nets after Saturate_Network ("
            << sat.iterations << " flow trees):\n";
  std::vector<NetId> by_flow;
  for (NetId n = 0; n < graph.num_nets(); ++n) {
    if (sat.flow[n] > 0) by_flow.push_back(n);
  }
  std::sort(by_flow.begin(), by_flow.end(),
            [&](NetId a, NetId b) { return sat.flow[a] > sat.flow[b]; });
  for (std::size_t i = 0; i < std::min<std::size_t>(6, by_flow.size()); ++i) {
    const NetId n = by_flow[i];
    std::cout << "  net " << s27.gate(graph.driver(n)).name << ": flow=" << sat.flow[n]
              << " d=" << sat.distance[n] << "\n";
  }

  // --- Figure 6: Make_Group with lk = 3 ---------------------------------
  MakeGroupParams mg;
  mg.lk = 3;
  const MakeGroupResult groups = make_group(graph, sccs, sat, mg);
  std::cout << "\nClusters after Make_Group (lk=3"
            << (groups.feasible ? "" : ", infeasible") << "):\n";
  for (std::size_t i = 0; i < groups.clustering.count(); ++i) {
    std::cout << "  {";
    for (std::size_t j = 0; j < groups.clustering.clusters[i].size(); ++j) {
      std::cout << (j ? ", " : " ")
                << s27.gate(groups.clustering.clusters[i][j]).name;
    }
    std::cout << " }  iota=" << input_count(graph, groups.clustering, i) << "\n";
  }

  // --- Figure 7: Assign_CBIT merge --------------------------------------
  const AssignCbitResult merged = assign_cbit(graph, groups.clustering, mg.lk);
  std::cout << "\nPartitions after Assign_CBIT (" << merged.merges_performed
            << " merges):\n";
  for (std::size_t i = 0; i < merged.partitions.count(); ++i) {
    std::cout << "  P" << i << " (iota=" << merged.input_counts[i] << "): {";
    for (std::size_t j = 0; j < merged.partitions.clusters[i].size(); ++j) {
      std::cout << (j ? ", " : " ") << s27.gate(merged.partitions.clusters[i][j]).name;
    }
    std::cout << " }\n";
  }

  // --- Full pipeline via the compiler API --------------------------------
  MercedConfig config;
  config.lk = 3;
  config.flow.seed = 27;
  const MercedResult result = compile(s27, config);
  std::cout << "\n";
  print_report(std::cout, result);
  return 0;
}
