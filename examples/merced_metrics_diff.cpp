// merced_metrics_diff — the performance-regression sentinel CLI.
//
// Usage:
//   merced_metrics_diff BASELINE CURRENT [--json FILE] [--rel F]
//                       [--abs-ms F] [--ignore-host]
//
// BASELINE and CURRENT are two artifacts of the same kind: either two
// metrics documents (merced-metrics-v1/v2, as written by merced_cli
// --metrics or bench_exhaustive_kernel --metrics) or two BENCH_simkernel
// documents. The tool pairs up their measurements, applies noise-aware
// thresholds (per metric: rel * baseline + absolute floor; see
// obs/metrics_diff.h for the timing/ratio/info gating classes), prints a
// human table, and optionally writes the machine-readable merced-diff-v1
// document for CI to archive (validated by metrics_check --diff).
//
// Exit codes:
//   0  artifacts comparable, every gated metric within thresholds
//   1  regression (or drift beyond thresholds in either direction —
//      a faster-than-baseline run means the committed baseline is stale;
//      refresh it, see EXPERIMENTS.md)
//   2  usage error, unreadable input, or incomparable artifacts (kind,
//      config, or host mismatch — pass --ignore-host to compare ratios
//      across hosts)
//
// Flags:
//   --json FILE     also write the merced-diff-v1 JSON document
//   --rel F         relative threshold fraction   (default 0.35)
//   --abs-ms F      absolute timing floor in ms   (default 5.0)
//   --ignore-host   on host mismatch, demote timing metrics to
//                   informational instead of refusing; dimensionless
//                   ratios keep gating
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/metrics_diff.h"

namespace {

constexpr const char* kUsage =
    "usage: merced_metrics_diff BASELINE CURRENT [--json FILE] [--rel F] "
    "[--abs-ms F] [--ignore-host]\n";

bool read_doc(const std::string& path, merced::obs::JsonValue& doc) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    doc = merced::obs::JsonValue::parse(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "error: " << path << ": " << e.what() << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string json_path;
  merced::obs::DiffThresholds thresholds;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (flag == "--rel" && i + 1 < argc) {
      try {
        thresholds.rel = std::stod(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "error: --rel expects a number\n" << kUsage;
        return 2;
      }
    } else if (flag == "--abs-ms" && i + 1 < argc) {
      try {
        thresholds.abs_seconds = std::stod(argv[++i]) / 1000.0;
      } catch (const std::exception&) {
        std::cerr << "error: --abs-ms expects a number\n" << kUsage;
        return 2;
      }
    } else if (flag == "--ignore-host") {
      thresholds.ignore_host = true;
    } else if (!flag.empty() && flag[0] == '-') {
      std::cerr << kUsage;
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = flag;
    } else if (current_path.empty()) {
      current_path = flag;
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty() || thresholds.rel < 0 ||
      thresholds.abs_seconds < 0) {
    std::cerr << kUsage;
    return 2;
  }

  merced::obs::JsonValue baseline, current;
  if (!read_doc(baseline_path, baseline) || !read_doc(current_path, current)) {
    return 2;
  }

  merced::obs::DiffResult result =
      merced::obs::diff_artifacts(baseline, current, thresholds);
  result.baseline_label = baseline_path;
  result.current_label = current_path;

  merced::obs::write_diff_table(std::cout, result);
  if (!result.error.empty()) return 2;

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 2;
    }
    merced::obs::write_diff_json(out, result);
    std::cout << "wrote " << json_path << "\n";
  }
  return result.ok() ? 0 : 1;
}
