// retiming_demo — legal retiming on a small pipelined loop, showing the
// Leiserson–Saxe invariants (Eqs. 1–3) and initial-state recomputation.
#include <iostream>
#include <random>
#include <vector>

#include "netlist/bench_io.h"
#include "retiming/retime_graph.h"
#include "retiming/retimed_netlist.h"
#include "graph/circuit_graph.h"
#include "sim/simulator.h"

int main() {
  using namespace merced;
  const Netlist nl = parse_bench(
      "INPUT(a)\nOUTPUT(y)\n"
      "g1 = AND(a, qf)\n"
      "q1 = DFF(g1)\n"
      "g2 = NOT(q1)\n"
      "q2 = DFF(g2)\n"
      "g3 = NAND(q2, a)\n"
      "qf = DFF(g3)\n"
      "y = BUF(g3)\n",
      "loop3");
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);

  std::cout << "Retiming graph: " << rg.num_vertices() << " vertices, "
            << rg.edges().size() << " edges, " << rg.total_registers()
            << " registers\n";
  for (const REdge& e : rg.edges()) {
    std::cout << "  " << nl.gate(rg.node_of(e.from)).name << " -> "
              << nl.gate(rg.node_of(e.to)).name << "  w=" << e.weight << "\n";
  }

  // Move the register q1 forward through gate g2 (rho(g2) = -1).
  Retiming rho(rg.num_vertices(), 0);
  rho[rg.vertex_of(nl.find("g2"))] = -1;
  std::cout << "\nretiming rho(g2) = -1 is "
            << (rg.is_legal(rho) ? "legal" : "ILLEGAL") << " (Eq. 3)\n";

  const RetimedCircuit rt = apply_retiming(g, rg, rho);
  std::cout << "retimed netlist '" << rt.netlist.name() << "': "
            << rt.netlist.dffs().size() << " DFFs (was " << nl.dffs().size()
            << "; cycle register count is invariant, Eq. 2)\n";

  // Initial-state recomputation (the [16] step) + equivalence check.
  std::mt19937_64 rng(5);
  std::vector<std::vector<bool>> warmup(6, std::vector<bool>(1));
  for (auto& v : warmup) v[0] = rng() & 1;
  const std::vector<bool> init(nl.dffs().size(), false);
  const auto rt_state = compute_retimed_initial_state(nl, rt, init, warmup);

  Simulator orig(nl), retimed(rt.netlist);
  orig.set_state(init);
  for (const auto& v : warmup) orig.step(v);
  retimed.set_state(rt_state);

  int mismatches = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    const std::vector<bool> in{static_cast<bool>(rng() & 1)};
    orig.step(in);
    retimed.step(in);
    if (orig.output_values() != retimed.output_values()) ++mismatches;
  }
  std::cout << "200 post-warm-up cycles compared: " << mismatches
            << " output mismatches "
            << (mismatches == 0 ? "(functionally equivalent)\n" : "(BUG!)\n");
  return mismatches == 0 ? 0 : 1;
}
