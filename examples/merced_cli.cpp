// merced_cli — the "Merced BIST compiler" as a command-line tool.
//
// Usage:
//   merced_cli <circuit|path.bench> [--lk N] [--beta N] [--seed N]
//              [--alpha F] [--delta F] [--min-visit N]
//              [--jobs N] [--starts K] [--simd auto|64|256|512]
//              [--trace FILE] [--metrics FILE]
//              [--verify] [--verify-json FILE] [--inject-defect KIND]
//              [--prove-coverage] [--prove-json FILE]
//              [--analyze] [--analyze-json FILE] [--no-collapse]
//              [--exact] [--exact-nodes N] [--cert FILE] [--write-bench FILE]
//
// <circuit> is either a bundled benchmark name (s27, s510, ... s38584.1)
// or a path to an ISCAS89 .bench file. Every flag accepts both
// "--flag value" and "--flag=value"; numeric values are parsed strictly
// (the whole token must be a number of the right sign — "8x", "-3" or ""
// for --jobs is a usage error, not a silent prefix parse).
//
// --starts K runs K independent flow saturations (multi-start) and keeps
// the best Make_Group outcome; --jobs N fans the starts out over N worker
// threads (0 = all hardware threads). Output is identical for any --jobs.
//
// --simd picks the coverage-kernel lane width (default auto = MERCED_SIMD
// override, then the widest backend this CPU supports). A width the host
// cannot run — or a malformed value — is a usage error (exit 2), exactly
// like a malformed --jobs. Coverage results are identical for every width;
// the resolved width is surfaced in the metrics artifact's run.simd.
//
// --trace FILE enables the observability layer and writes a
// Chrome/Perfetto trace (open in chrome://tracing or ui.perfetto.dev) with
// nested spans for every compile phase and — when every CUT is narrow
// enough to sweep — the per-CUT pseudo-exhaustive coverage sweeps.
// --metrics FILE writes the versioned merced-metrics-v2 JSON artifact
// (counters, phase timings, per-phase latency histograms, scheduler health,
// peak RSS + allocation high-water, and the host identity that lets
// merced_metrics_diff refuse cross-host comparisons; see EXPERIMENTS.md
// "Metrics artifacts"). This binary opts into the allocation channel by
// including obs/alloc_hook.h below, so memory numbers are real, not zeros.
//
// --verify re-checks the compile artifact with the independent static
// verifier (DESIGN.md "Static verification") and exits 1 if any
// error-severity finding fires. --verify-json FILE additionally writes the
// merced-verify-v1 report artifact (implies --verify). --inject-defect KIND
// corrupts the artifact *after* compile and *before* verification — it
// exists so CI can prove the verifier actually rejects a broken artifact
// instead of rubber-stamping everything. Kinds: drop-cut (remove a claimed
// cut net), skew-rho (perturb one retiming lag).
//
// --prove-coverage runs the SAT oracles (DESIGN.md "SAT oracle") after the
// compile: the retiming plan is proved cycle-exact equivalent to the
// original machine, and every CUT's coverage gap is closed — each fault the
// exhaustive sweep leaves undetected gets an UNSAT redundancy certificate,
// each SAT verdict's detecting vector is replayed on the event-driven
// kernel. Any refutation, unknown, or engine disagreement exits 1.
// --prove-json FILE writes the merced-prove-v1 artifact (implies
// --prove-coverage); metrics_check --prove validates it. The proofs run on
// the *post-injection* artifact, so --inject-defect skew-rho is flagged by
// the equivalence checker as well as the structural verifier.
//
// --exact chases the heuristic with the branch-and-bound exact PIC solver
// (DESIGN.md "Exact solver and certifying compilation"): the multi-start
// result seeds the incumbent, and the run either *proves* the cut count
// optimal, finds a strictly better partition (which then replaces the
// artifact), or reports an honest bounded gap — never a silent "good
// enough". --exact-nodes N caps the decision-node budget (wall-clock is
// deliberately not a default throttle so outcomes are machine-independent).
//
// --cert FILE writes the merced-cert-v1 certificate (DESIGN.md, same
// section): a self-contained restatement of every claim of the compile —
// partition, per-cluster ι, cut set, retiming ρ, Eq. 2 witnesses, area
// arithmetic — validated by the independent merced_certcheck binary from
// the netlist alone. The certificate is emitted *after* --inject-defect
// corrupts the artifact, so CI can prove the checker rejects a defective
// certificate rather than rubber-stamping it. --write-bench FILE dumps the
// netlist in .bench form (the checker's input for generated circuits).
//
// --analyze runs the static netlist analyzer (DESIGN.md "Static analysis
// layer") over every CUT: constant propagation, fault equivalence/
// dominance collapsing, and implication-based untestability proofs — no
// simulation involved. Every untestability claim is then cross-examined by
// the SAT redundancy prover; a refutation or an out-of-budget unknown
// exits 1 (an unsound static proof is a bug, never a warning). When a
// traced/metered run sweeps coverage, the analysis plans are installed
// into the session so the sweep only simulates each plan's kSweep faults
// (verdicts stay bit-identical — the plan resolution expands copies,
// inferences, and untestable skips back over the full universe).
// --analyze-json FILE writes the merced-analyze-v1 artifact (implies
// --analyze); metrics_check --analyze validates it. --no-collapse keeps
// the untestability proofs but disables equivalence/dominance collapsing
// (every testable fault is swept) — the A/B knob for the collapse engine.
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "analyze/analyze.h"
#include "analyze/analyze_json.h"
#include "circuits/registry.h"
#include "core/certificate.h"
#include "core/merced.h"
#include "exact/exact_solver.h"
#include "core/ppet_session.h"
#include "graph/circuit_graph.h"
#include "netlist/bench_io.h"
#include "obs/alloc_hook.h"  // single-TU opt-in: real allocation telemetry
#include "obs/metrics.h"
#include "obs/obs.h"
#include "sat/equivalence.h"
#include "sat/prove_json.h"
#include "sat/redundancy.h"
#include "sim/simd.h"
#include "verify/verify_json.h"

namespace {

void usage() {
  std::cerr << "usage: merced_cli <circuit|file.bench> [--lk N] [--beta N] [--seed N]\n"
               "                  [--alpha F] [--delta F] [--min-visit N]\n"
               "                  [--jobs N] [--starts K] [--simd auto|64|256|512]\n"
               "                  [--trace FILE] [--metrics FILE]\n"
               "                  [--verify] [--verify-json FILE] [--inject-defect KIND]\n"
               "                  [--prove-coverage] [--prove-json FILE]\n"
               "                  [--analyze] [--analyze-json FILE] [--no-collapse]\n"
               "                  [--exact] [--exact-nodes N] [--cert FILE]\n"
               "                  [--write-bench FILE]\n"
               "defect kinds (for --inject-defect): drop-cut, skew-rho\n"
               "bundled circuits:";
  for (const auto& e : merced::benchmark_suite()) std::cerr << " " << e.spec.name;
  std::cerr << "\n";
}

/// A flag value that failed strict parsing; caught in main → usage error.
struct BadFlag {
  std::string message;
};

/// Strict from_chars wrapper: the entire token must parse, no leading
/// whitespace, no trailing garbage. `what` names the expected shape in the
/// error ("non-negative integer", "number", ...).
template <typename T>
T parse_strict(std::string_view flag, std::string_view value, const char* what) {
  T out{};
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [end, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || end != last || value.empty()) {
    throw BadFlag{std::string(flag) + " expects a " + what + ", got '" +
                  std::string(value) + "'"};
  }
  return out;
}

std::size_t parse_size(std::string_view flag, std::string_view value) {
  // from_chars on an unsigned type rejects '-' but accepts nothing weirder;
  // check the sign explicitly so "-3" reports the real problem.
  if (!value.empty() && value.front() == '-') {
    throw BadFlag{std::string(flag) + " expects a non-negative integer, got '" +
                  std::string(value) + "'"};
  }
  return parse_strict<std::size_t>(flag, value, "non-negative integer");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace merced;
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string target = argv[1];
  MercedConfig config;
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  bool run_verify = false;
  std::optional<std::string> verify_json_path;
  std::optional<std::string> inject_defect;
  bool run_prove = false;
  std::optional<std::string> prove_json_path;
  bool run_analyze = false;
  std::optional<std::string> analyze_json_path;
  bool no_collapse = false;
  bool run_exact = false;
  exact::ExactOptions exact_opt;
  std::optional<std::string> cert_path;
  std::optional<std::string> write_bench_path;
  SimdWidth simd = SimdWidth::kAuto;
  SimdWidth simd_resolved = SimdWidth::k64;
  try {
    for (int i = 2; i < argc; ++i) {
      std::string_view flag = argv[i];
      std::string_view value;
      // Boolean flags never consume a value.
      if (flag == "--verify") {
        run_verify = true;
        continue;
      }
      if (flag == "--prove-coverage") {
        run_prove = true;
        continue;
      }
      if (flag == "--analyze") {
        run_analyze = true;
        continue;
      }
      if (flag == "--no-collapse") {
        no_collapse = true;
        run_analyze = true;
        continue;
      }
      if (flag == "--exact") {
        run_exact = true;
        continue;
      }
      // Accept "--flag=value" and "--flag value".
      if (const auto eq = flag.find('='); eq != std::string_view::npos) {
        value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw BadFlag{std::string(flag) + " expects a value"};
      }
      if (flag == "--lk") {
        config.lk = parse_size(flag, value);
      } else if (flag == "--beta") {
        config.beta = parse_strict<int>(flag, value, "integer");
      } else if (flag == "--seed") {
        config.flow.seed = parse_strict<std::uint64_t>(flag, value, "non-negative integer");
      } else if (flag == "--alpha") {
        config.flow.alpha = parse_strict<double>(flag, value, "number");
      } else if (flag == "--delta") {
        config.flow.delta = parse_strict<double>(flag, value, "number");
      } else if (flag == "--min-visit") {
        config.flow.min_visit = parse_strict<int>(flag, value, "integer");
      } else if (flag == "--jobs") {
        config.jobs = parse_size(flag, value);
      } else if (flag == "--starts") {
        config.multi_start = parse_size(flag, value);
        if (config.multi_start == 0) throw BadFlag{"--starts must be >= 1"};
      } else if (flag == "--simd") {
        if (!simd_width_from_string(value, simd)) {
          throw BadFlag{"--simd expects auto, 64, 256 or 512, got '" +
                        std::string(value) + "'"};
        }
      } else if (flag == "--trace") {
        trace_path = std::string(value);
      } else if (flag == "--metrics") {
        metrics_path = std::string(value);
      } else if (flag == "--verify-json") {
        verify_json_path = std::string(value);
        run_verify = true;
      } else if (flag == "--prove-json") {
        prove_json_path = std::string(value);
        run_prove = true;
      } else if (flag == "--analyze-json") {
        analyze_json_path = std::string(value);
        run_analyze = true;
      } else if (flag == "--exact-nodes") {
        exact_opt.max_nodes = parse_strict<std::uint64_t>(flag, value,
                                                          "non-negative integer");
        run_exact = true;
      } else if (flag == "--cert") {
        cert_path = std::string(value);
      } else if (flag == "--write-bench") {
        write_bench_path = std::string(value);
      } else if (flag == "--inject-defect") {
        if (value != "drop-cut" && value != "skew-rho") {
          throw BadFlag{"--inject-defect expects drop-cut or skew-rho, got '" +
                        std::string(value) + "'"};
        }
        inject_defect = std::string(value);
        run_verify = true;
      } else {
        usage();
        return 2;
      }
    }
    // Resolve the kernel width up front: an unsupported --simd (or a
    // malformed MERCED_SIMD override) is a usage error like any other.
    try {
      simd_resolved = resolve_simd_width(simd);
    } catch (const std::invalid_argument& e) {
      throw BadFlag{e.what()};
    }
  } catch (const BadFlag& bad) {
    std::cerr << "error: " << bad.message << "\n";
    usage();
    return 2;
  }

  const bool observing = trace_path.has_value() || metrics_path.has_value();
  if (observing) obs::enable();

  try {
    const Netlist netlist = target.ends_with(".bench") ? parse_bench_file(target)
                                                       : load_benchmark(target);
    if (write_bench_path) {
      std::ofstream out(*write_bench_path);
      if (!out) throw std::runtime_error("cannot write bench file " + *write_bench_path);
      out << write_bench(netlist);
      std::cout << "wrote netlist: " << *write_bench_path << "\n";
    }

    MercedResult result;
    std::string cert_source = "heuristic";
    if (run_exact) {
      exact_opt.lk = config.lk;
      const exact::ExactCompileResult ec = exact_compile(netlist, config, exact_opt);
      result = ec.result;
      if (ec.proof.improved_incumbent) cert_source = "exact";
      std::cout << "exact: status=" << exact::to_string(ec.proof.status);
      if (ec.proof.found_solution) {
        std::cout << " best=" << ec.proof.best_cost;
      }
      std::cout << " lower-bound=" << ec.proof.lower_bound;
      if (ec.heuristic_feasible) {
        std::cout << " heuristic=" << ec.heuristic_cost << " gap=" << ec.heuristic_gap();
      } else {
        std::cout << " heuristic=infeasible";
      }
      std::cout << " nodes=" << ec.proof.nodes << " components=" << ec.proof.components;
      if (ec.proof.improved_incumbent) std::cout << " (exact partition adopted)";
      std::cout << "\n";
    } else {
      result = compile(netlist, config);
    }
    print_report(std::cout, result);

    // Verification runs before the observability teardown so a traced run
    // captures the verify_result span. Defect injection corrupts only the
    // verify view (cut list / rho), never the partitions the sweep uses.
    bool verify_clean = true;
    if (run_verify) {
      if (inject_defect == "drop-cut") {
        if (result.cut_net_ids.empty()) {
          std::cerr << "error: --inject-defect drop-cut needs a non-empty cut set\n";
          return 2;
        }
        result.cut_net_ids.pop_back();
      } else if (inject_defect == "skew-rho") {
        if (result.retiming.rho.empty()) {
          std::cerr << "error: --inject-defect skew-rho needs a non-empty rho\n";
          return 2;
        }
        // A large lag on one vertex makes some retimed edge weight negative.
        result.retiming.rho.front() += 1000;
      }
      const verify::Report report = verify_result(netlist, result, config);
      std::cout << "  verify: " << report.errors() << " errors, " << report.warnings()
                << " warnings, " << report.infos() << " infos\n";
      for (const verify::Diagnostic& d : report.findings) {
        std::cerr << "  " << verify::format_diagnostic(d) << "\n";
      }
      if (verify_json_path) {
        verify::VerifyRunInfo run;
        run.tool = "merced_cli";
        run.circuit = target;
        run.lk = config.lk;
        std::ofstream out(*verify_json_path);
        if (!out) throw std::runtime_error("cannot write verify file " + *verify_json_path);
        verify::write_verify_json(out, report, run);
        std::cout << "  wrote verify report: " << *verify_json_path << "\n";
      }
      verify_clean = report.clean();
    }

    // Certificate emission sits *after* defect injection on purpose: a
    // corrupted artifact yields a corrupted certificate, and merced_certcheck
    // must reject it (CI pins the rule each defect trips).
    if (cert_path) {
      if (!result.feasible) {
        std::cerr << "error: --cert needs a feasible compile (no certifiable claims)\n";
        return 2;
      }
      const CircuitGraph cert_graph(netlist);
      const SccInfo cert_sccs = find_sccs(cert_graph);
      CertificateInfo info;
      info.circuit = target;
      info.source = cert_source;
      info.lk = config.lk;
      info.beta = config.beta;
      std::ofstream out(*cert_path);
      if (!out) throw std::runtime_error("cannot write certificate file " + *cert_path);
      write_certificate(out, netlist, cert_graph, cert_sccs, result, info);
      std::cout << "  wrote certificate: " << *cert_path << "\n";
    }

    // SAT oracles run on the post-injection artifact, so a skewed rho is
    // flagged here (kBuildFailed) as well as by the structural verifier.
    bool prove_clean = true;
    if (run_prove) {
      const CircuitGraph graph(netlist);

      const sat::EquivalenceResult eq =
          sat::check_retiming_equivalence(graph, result.retiming.rho);
      std::cout << "  equivalence: "
                << (eq.status == sat::EquivStatus::kProved     ? "proved"
                    : eq.status == sat::EquivStatus::kRefuted  ? "REFUTED"
                    : eq.status == sat::EquivStatus::kUnknown  ? "UNKNOWN"
                                                               : "BUILD FAILED")
                << " (" << eq.retimed_registers << " retimed registers, "
                << eq.solves << " solves, " << eq.stats.conflicts << " conflicts)\n";
      if (!eq.error.empty()) std::cerr << "  equivalence: " << eq.error << "\n";
      if (!eq.equivalent()) prove_clean = false;

      constexpr std::size_t kSweepCap = 22;
      std::size_t widest = 0;
      for (std::size_t iota : result.partition_inputs) widest = std::max(widest, iota);
      std::vector<sat::CutProof> proofs;
      if (result.feasible && widest <= kSweepCap) {
        sat::ProveOptions popt;
        popt.max_inputs = kSweepCap;
        popt.jobs = config.jobs;
        std::size_t total = 0, detected = 0, redundant = 0, unexplained = 0;
        for (std::size_t ci = 0; ci < result.partitions.clusters.size(); ++ci) {
          proofs.push_back(sat::prove_cut_coverage(graph, result.partitions, ci, popt));
          const sat::CutProof& p = proofs.back();
          total += p.total_faults;
          detected += p.detected;
          redundant += p.proved_redundant;
          unexplained += p.unknown + p.inconsistent;
          if (!p.fully_explained()) prove_clean = false;
        }
        std::cout << "  prove: " << detected << "/" << total << " faults detected, "
                  << redundant << " proved redundant, " << unexplained
                  << " unexplained across " << proofs.size() << " stations\n";
      } else {
        std::cout << "  prove: coverage proof skipped (widest CUT has " << widest
                  << " inputs, sweep cap is " << kSweepCap << ")\n";
      }

      if (prove_json_path) {
        sat::ProveRunInfo run;
        run.tool = "merced_cli";
        run.circuit = target;
        run.lk = config.lk;
        std::ofstream out(*prove_json_path);
        if (!out) throw std::runtime_error("cannot write prove file " + *prove_json_path);
        sat::write_prove_json(out, proofs, run);
        std::cout << "  wrote prove report: " << *prove_json_path << "\n";
      }
    }

    // Static analysis: the pre-simulation layer. Runs on the clean
    // partitions (never the injected-defect view — the analyzer feeds the
    // coverage sweep, not the verifier under test).
    bool analyze_clean = true;
    analyze::CircuitAnalysis analysis;
    if (run_analyze) {
      const CircuitGraph graph(netlist);
      analyze::AnalyzeOptions aopt;
      aopt.enable_collapse = !no_collapse;
      analysis = analyze::analyze_circuit(graph, result.partitions, aopt);
      std::cout << "  analyze: " << analysis.total_faults() << " faults -> "
                << analysis.swept() << " swept, " << analysis.copied() << " copied, "
                << analysis.inferred() << " inferred, " << analysis.untestable()
                << " proved untestable (collapse ratio " << analysis.collapse_ratio()
                << ", untestable share " << analysis.untestable_share() << ")\n";

      // Every untestability claim faces the SAT redundancy prover. A
      // refutation means the implication engine proved a detectable fault
      // untestable — unsound, exit 1. An unconfirmable claim (solver
      // budget exhausted) is equally fatal: an unverified proof is not a
      // proof.
      std::size_t checked = 0, confirmed = 0, unknown = 0, refuted = 0;
      for (std::size_t ci = 0; ci < result.partitions.count(); ++ci) {
        const analyze::CutAnalysis& cut = analysis.cuts[ci];
        if (cut.untestable == 0) continue;
        const ConeSimulator cone(graph, result.partitions, ci);
        const std::vector<Fault> faults = cone.cluster_faults();
        const sat::UntestableCrossCheck cc =
            sat::cross_check_untestable(cone, faults, cut.untestable_fault);
        checked += cc.checked;
        confirmed += cc.confirmed;
        unknown += cc.unknown;
        refuted += cc.disagreements.size();
        for (const std::size_t fi : cc.disagreements) {
          std::cerr << "  analyze: SAT prover REFUTED static untestability of fault "
                    << fi << " in cluster " << ci << "\n";
        }
      }
      std::cout << "  analyze cross-check: " << confirmed << "/" << checked
                << " untestable claims SAT-confirmed, " << unknown << " unknown, "
                << refuted << " refuted\n";
      if (refuted != 0 || unknown != 0) analyze_clean = false;

      if (analyze_json_path) {
        analyze::AnalyzeRunInfo run;
        run.tool = "merced_cli";
        run.circuit = target;
        run.lk = config.lk;
        std::ofstream out(*analyze_json_path);
        if (!out) throw std::runtime_error("cannot write analyze file " + *analyze_json_path);
        analyze::write_analyze_json(out, analysis, run);
        std::cout << "  wrote analyze report: " << *analyze_json_path << "\n";
      }
    }

    if (observing) {
      // Sweep every CUT pseudo-exhaustively so the trace shows the
      // per-CUT coverage phase, not just the compile. Skipped (with a
      // note) when a CUT is too wide to sweep in reasonable time.
      std::uint64_t simd_used = 0;  // run.simd: 0 until the sweep runs
      constexpr std::size_t kSweepCap = 22;
      std::size_t widest = 0;
      for (std::size_t iota : result.partition_inputs) widest = std::max(widest, iota);
      if (result.feasible && widest <= kSweepCap) {
        const CircuitGraph graph(netlist);
        PpetSession session(graph, result, /*psa_width=*/16, config.jobs);
        session.set_simd(simd_resolved);
        if (run_analyze) {
          // Collapsed sweep: only each plan's kSweep faults are simulated;
          // plan resolution expands the rest. Verdicts are bit-identical
          // to the plan-free sweep (fuzz oracle 6 enforces this).
          std::vector<FaultPlan> plans;
          plans.reserve(session.num_stations());
          for (std::size_t s = 0; s < session.num_stations(); ++s) {
            plans.push_back(analysis.cuts[session.station(s).partition_index].plan);
          }
          session.set_fault_plans(std::move(plans));
        }
        const auto coverage = session.measure_coverage(kSweepCap);
        std::size_t total = 0, detected = 0, swept = 0;
        for (const CoverageResult& c : coverage) {
          total += c.total_faults;
          detected += c.detected;
          swept += c.swept_faults;
        }
        std::cout << "  coverage sweep: " << detected << "/" << total
                  << " faults detected across " << coverage.size()
                  << " stations (simd " << to_string(simd_resolved);
        if (session.has_fault_plans()) std::cout << ", " << swept << " swept";
        std::cout << ")\n";
        simd_used = simd_lanes(simd_resolved);
      } else {
        std::cout << "  coverage sweep: skipped (widest CUT has " << widest
                  << " inputs, sweep cap is " << kSweepCap << ")\n";
      }

      obs::disable();
      if (trace_path) {
        std::ofstream out(*trace_path);
        if (!out) throw std::runtime_error("cannot write trace file " + *trace_path);
        obs::write_chrome_trace(out);
        std::cout << "  wrote trace: " << *trace_path << "\n";
      }
      if (metrics_path) {
        obs::RunInfo run;
        run.tool = "merced_cli";
        run.circuit = target;
        run.lk = config.lk;
        run.jobs = config.jobs;
        run.starts = config.multi_start;
        run.simd = simd_used;
        std::ofstream out(*metrics_path);
        if (!out) throw std::runtime_error("cannot write metrics file " + *metrics_path);
        obs::MetricsRegistry::capture(run).write_json(out);
        std::cout << "  wrote metrics: " << *metrics_path << "\n";
      }
    }
    if (!verify_clean || !prove_clean || !analyze_clean) return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
