// merced_cli — the "Merced BIST compiler" as a command-line tool.
//
// Usage:
//   merced_cli <circuit|path.bench> [--lk N] [--beta N] [--seed N]
//              [--alpha F] [--delta F] [--min-visit N]
//              [--jobs N] [--starts K]
//
// <circuit> is either a bundled benchmark name (s27, s510, ... s38584.1)
// or a path to an ISCAS89 .bench file.
//
// --starts K runs K independent flow saturations (multi-start) and keeps
// the best Make_Group outcome; --jobs N fans the starts out over N worker
// threads (0 = all hardware threads). Output is identical for any --jobs.
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "circuits/registry.h"
#include "core/merced.h"
#include "netlist/bench_io.h"

namespace {

void usage() {
  std::cerr << "usage: merced_cli <circuit|file.bench> [--lk N] [--beta N] [--seed N]\n"
               "                  [--alpha F] [--delta F] [--min-visit N]\n"
               "                  [--jobs N] [--starts K]\n"
               "bundled circuits:";
  for (const auto& e : merced::benchmark_suite()) std::cerr << " " << e.spec.name;
  std::cerr << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace merced;
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string target = argv[1];
  MercedConfig config;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--lk") {
      config.lk = std::stoul(value);
    } else if (flag == "--beta") {
      config.beta = std::stoi(value);
    } else if (flag == "--seed") {
      config.flow.seed = std::stoull(value);
    } else if (flag == "--alpha") {
      config.flow.alpha = std::stod(value);
    } else if (flag == "--delta") {
      config.flow.delta = std::stod(value);
    } else if (flag == "--min-visit") {
      config.flow.min_visit = std::stoi(value);
    } else if (flag == "--jobs") {
      config.jobs = std::stoul(value);
    } else if (flag == "--starts") {
      config.multi_start = std::stoul(value);
    } else {
      usage();
      return 2;
    }
  }

  try {
    const Netlist netlist = target.ends_with(".bench") ? parse_bench_file(target)
                                                       : load_benchmark(target);
    const MercedResult result = compile(netlist, config);
    print_report(std::cout, result);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
