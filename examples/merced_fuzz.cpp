// merced_fuzz — the differential fuzzing campaign driver.
//
// Usage:
//   merced_fuzz [--seed N] [--runs N] [--time-budget SECONDS] [--jobs N]
//               [--minimize on|off] [--corpus DIR] [--inject-defect KIND]
//               [--report FILE] [--metrics FILE] [--trace FILE]
//               [--static-analysis on|off] [--replay]
//
// Default mode generates --runs structured inputs (seeded synthetic
// circuits alternating with semantically mutated variants) and pushes each
// through the full oracle stack: serial-vs-parallel compile parity, the
// independent static verifier, event-driven-kernel vs naive coverage
// conformance, PpetSession coverage vs direct fault simulation, the SAT
// equivalence miter of the retiming plan, and the static-analysis
// three-way agreement check (static analyzer vs naive sweep vs SAT
// redundancy prover; --static-analysis off disables just that oracle).
// Failures are minimized (delta debugging preserving the exact failing
// oracle signature) and stored in --corpus DIR, deduplicated by signature.
// Exit is 0 when every run passed clean, 1 otherwise.
//
// Determinism: run r is seeded with derive_seed(--seed, r), and results
// aggregate in run order — the report is bit-identical for any --jobs.
// --time-budget caps wall time instead (content-reproducible but not
// length-reproducible; see EXPERIMENTS.md "Fuzzing").
//
// --inject-defect KIND (drop-cut, skew-rho, lane-mask, skew-tap,
// cert-iota, cert-area) corrupts one pipeline stage on purpose so CI can
// prove the oracle stack catches it — in this mode exit 1 (failures found)
// is the *expected* outcome. The cert-* kinds corrupt only the emitted
// certificate text, so only oracle 7's independent checker can object.
//
// --replay re-runs every entry of --corpus DIR against the current tree
// instead of fuzzing: expect-fail entries must fail with their recorded
// signature, expect-clean entries must pass. Exit 0 only when all match.
//
// --report FILE writes the merced-fuzz-v1 JSON campaign report
// (metrics_check --fuzz validates it); --metrics FILE writes the standard
// merced-metrics-v1 counters artifact of the campaign; --trace FILE writes
// the Chrome-tracing span document, with one span per oracle
// ("oracle_compile_parity" ... "oracle_static_analysis") so campaign wall
// time is attributable per oracle.
#include <charconv>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "fuzz/corpus.h"
#include "fuzz/fuzz_json.h"
#include "fuzz/fuzzer.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace {

void usage() {
  std::cerr
      << "usage: merced_fuzz [--seed N] [--runs N] [--time-budget SECONDS] [--jobs N]\n"
         "                   [--minimize on|off] [--corpus DIR] [--inject-defect KIND]\n"
         "                   [--report FILE] [--metrics FILE] [--trace FILE]\n"
         "                   [--static-analysis on|off] [--replay]\n"
         "defect kinds (for --inject-defect): drop-cut, skew-rho, lane-mask,\n"
         "                                    skew-tap, cert-iota, cert-area\n";
}

/// A flag value that failed strict parsing; caught in main → usage error.
struct BadFlag {
  std::string message;
};

/// Strict from_chars wrapper: the entire token must parse, no leading
/// whitespace, no trailing garbage.
template <typename T>
T parse_strict(std::string_view flag, std::string_view value, const char* what) {
  T out{};
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [end, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || end != last || value.empty()) {
    throw BadFlag{std::string(flag) + " expects a " + what + ", got '" +
                  std::string(value) + "'"};
  }
  return out;
}

std::size_t parse_size(std::string_view flag, std::string_view value) {
  if (!value.empty() && value.front() == '-') {
    throw BadFlag{std::string(flag) + " expects a non-negative integer, got '" +
                  std::string(value) + "'"};
  }
  return parse_strict<std::size_t>(flag, value, "non-negative integer");
}

int run_replay(const merced::fuzz::FuzzConfig& cfg) {
  using namespace merced::fuzz;
  if (cfg.corpus_dir.empty()) {
    std::cerr << "error: --replay needs --corpus DIR\n";
    return 2;
  }
  const Corpus corpus(cfg.corpus_dir);
  const std::vector<CorpusEntry> entries = corpus.load();
  if (entries.empty()) {
    std::cout << "corpus " << cfg.corpus_dir << ": no entries\n";
    return 0;
  }
  const std::vector<ReplayOutcome> outcomes = replay_corpus(entries, cfg.oracle);
  std::size_t failed = 0;
  for (const ReplayOutcome& o : outcomes) {
    std::cout << (o.ok ? "ok   " : "FAIL ") << o.entry.path << " ["
              << (o.entry.expect_fail ? o.entry.signature : std::string("clean"))
              << "]\n";
    if (!o.ok) {
      std::cerr << "  " << o.detail << "\n";
      ++failed;
    }
  }
  std::cout << outcomes.size() - failed << "/" << outcomes.size()
            << " corpus entries replayed as expected\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace merced;
  fuzz::FuzzConfig cfg;
  bool replay = false;
  std::optional<std::string> report_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> trace_path;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string_view flag = argv[i];
      std::string_view value;
      if (flag == "--replay") {
        replay = true;
        continue;
      }
      // Accept "--flag=value" and "--flag value".
      if (const auto eq = flag.find('='); eq != std::string_view::npos) {
        value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw BadFlag{std::string(flag) + " expects a value"};
      }
      if (flag == "--seed") {
        cfg.seed = parse_strict<std::uint64_t>(flag, value, "non-negative integer");
      } else if (flag == "--runs") {
        cfg.runs = parse_size(flag, value);
      } else if (flag == "--time-budget") {
        cfg.time_budget_seconds = parse_strict<double>(flag, value, "number");
        if (cfg.time_budget_seconds < 0) throw BadFlag{"--time-budget must be >= 0"};
      } else if (flag == "--jobs") {
        cfg.jobs = parse_size(flag, value);
      } else if (flag == "--minimize") {
        if (value == "on") {
          cfg.minimize = true;
        } else if (value == "off") {
          cfg.minimize = false;
        } else {
          throw BadFlag{"--minimize expects on or off, got '" + std::string(value) + "'"};
        }
      } else if (flag == "--corpus") {
        cfg.corpus_dir = std::string(value);
      } else if (flag == "--inject-defect") {
        if (!fuzz::defect_from_string(value, cfg.oracle.defect) ||
            cfg.oracle.defect == fuzz::FuzzDefect::kNone) {
          throw BadFlag{"--inject-defect expects drop-cut, skew-rho, lane-mask, "
                        "skew-tap, cert-iota or cert-area, got '" +
                        std::string(value) + "'"};
        }
      } else if (flag == "--report") {
        report_path = std::string(value);
      } else if (flag == "--metrics") {
        metrics_path = std::string(value);
      } else if (flag == "--trace") {
        trace_path = std::string(value);
      } else if (flag == "--static-analysis") {
        if (value == "on") {
          cfg.oracle.static_analysis = true;
        } else if (value == "off") {
          cfg.oracle.static_analysis = false;
        } else {
          throw BadFlag{"--static-analysis expects on or off, got '" +
                        std::string(value) + "'"};
        }
      } else {
        usage();
        return 2;
      }
    }
  } catch (const BadFlag& bad) {
    std::cerr << "error: " << bad.message << "\n";
    usage();
    return 2;
  }

  try {
    if (replay) return run_replay(cfg);

    if (metrics_path || trace_path) obs::enable();
    const fuzz::FuzzReport report = fuzz::run_fuzz(cfg);

    std::cout << "merced_fuzz: seed " << cfg.seed << ", " << report.runs_executed << "/"
              << cfg.runs << " runs, " << report.failures.size() << " failures ("
              << report.unique_signatures << " unique), " << report.minimized
              << " minimized, " << report.corpus_new << " new corpus entries, "
              << report.corpus_dupes << " deduped, " << report.elapsed_seconds
              << " s\n";
    for (const fuzz::FuzzFailureRecord& f : report.failures) {
      std::cerr << "  run " << f.run << " [" << f.signature << "] " << f.detail;
      if (f.minimized) {
        std::cerr << " (minimized " << f.gates_before << " -> " << f.gates_after
                  << " gates)";
      }
      if (!f.corpus_path.empty()) std::cerr << " -> " << f.corpus_path;
      std::cerr << "\n";
    }

    if (report_path) {
      std::ofstream out(*report_path);
      if (!out) throw std::runtime_error("cannot write report file " + *report_path);
      fuzz::write_fuzz_json(out, report);
      std::cout << "  wrote fuzz report: " << *report_path << "\n";
    }
    if (metrics_path || trace_path) obs::disable();
    if (trace_path) {
      std::ofstream out(*trace_path);
      if (!out) throw std::runtime_error("cannot write trace file " + *trace_path);
      obs::write_chrome_trace(out);
      std::cout << "  wrote trace: " << *trace_path << "\n";
    }
    if (metrics_path) {
      obs::RunInfo run;
      run.tool = "merced_fuzz";
      run.circuit = "fuzz-campaign";
      run.lk = cfg.oracle.lk;
      run.jobs = cfg.jobs;
      run.starts = cfg.oracle.multi_start;
      std::ofstream out(*metrics_path);
      if (!out) throw std::runtime_error("cannot write metrics file " + *metrics_path);
      obs::MetricsRegistry::capture(run).write_json(out);
      std::cout << "  wrote metrics: " << *metrics_path << "\n";
    }
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
