// fault_coverage — the paper's testing story, end to end on s27.
//
// 1. Random sequential BIST at the primary output gets poor stuck-at
//    coverage (s27 even has an absorbing state that locks one loop).
// 2. Merced partitions the circuit into CUTs; each CUT driven exhaustively
//    by a TPG-mode CBIT and observed by a PSA-mode CBIT detects every
//    non-redundant fault — the pseudo-exhaustive guarantee.
// 3. The MISR signature of a faulty CUT differs from the good signature.
#include <iostream>
#include <random>
#include <vector>

#include "bist/cbit.h"
#include "bist/misr.h"
#include "circuits/s27.h"
#include "core/merced.h"
#include "graph/circuit_graph.h"
#include "sim/cone.h"
#include "sim/fault_sim.h"

int main() {
  using namespace merced;
  const Netlist s27 = make_s27();

  // --- 1. random sequential BIST baseline -------------------------------
  const auto faults = collapse_faults(s27, enumerate_faults(s27));
  std::mt19937_64 rng(99);
  std::vector<std::vector<bool>> stream(2000, std::vector<bool>(4));
  for (auto& v : stream) {
    for (int i = 0; i < 4; ++i) v[static_cast<std::size_t>(i)] = rng() & 1;
  }
  const auto random_bist =
      simulate_faults(s27, faults, stream, std::vector<bool>(3, false));
  std::cout << "Random sequential BIST (2000 cycles, observe PO only): "
            << random_bist.num_detected << "/" << faults.size()
            << " stuck-at faults detected\n";

  // --- 2. PPET: pseudo-exhaustive per partition --------------------------
  MercedConfig config;
  config.lk = 3;
  config.flow.seed = 27;
  const MercedResult plan = compile(s27, config);
  const CircuitGraph graph(s27);

  std::size_t pe_total = 0, pe_detected = 0;
  for (std::size_t ci = 0; ci < plan.partitions.count(); ++ci) {
    const ConeSimulator cone(graph, plan.partitions, ci);
    if (cone.gates().empty()) continue;
    const CoverageResult cov = exhaustive_coverage(cone);
    pe_total += cov.total_faults;
    pe_detected += cov.detected;
    std::cout << "  CUT " << ci << ": iota=" << cone.cut_inputs().size() << ", 2^"
              << cone.cut_inputs().size() << " patterns, " << cov.detected << "/"
              << cov.total_faults << " faults detected";
    if (!cov.undetected.empty()) {
      std::cout << " (" << cov.undetected.size() << " combinationally redundant)";
    }
    std::cout << "\n";
  }
  std::cout << "Pseudo-exhaustive testing: " << pe_detected << "/" << pe_total
            << " detected; every miss is provably redundant.\n";

  // --- 3. signature analysis ---------------------------------------------
  for (std::size_t ci = 0; ci < plan.partitions.count(); ++ci) {
    const ConeSimulator cone(graph, plan.partitions, ci);
    const std::size_t n = cone.cut_inputs().size();
    if (cone.gates().empty() || n < 2) continue;
    const auto cut_faults = cone.cluster_faults();
    const Fault& fault = cut_faults.front();

    auto signature = [&](const Fault* f) {
      Cbit tpg(static_cast<unsigned>(n));
      tpg.set_mode(CbitMode::kTpg);
      tpg.set_state(0);
      Misr psa(16);
      for (std::uint64_t c = 0; c < tpg.tpg_cycles(); ++c) {
        std::vector<std::uint64_t> in(n);
        for (std::size_t i = 0; i < n; ++i) {
          in[i] = (tpg.state() >> i) & 1 ? ~std::uint64_t{0} : 0;
        }
        const auto out = cone.eval(in, f);
        std::uint64_t word = 0;
        for (std::size_t o = 0; o < out.size(); ++o) word |= (out[o] & 1) << o;
        psa.step(word);
        tpg.step(0);
      }
      return psa.signature();
    };
    const std::uint64_t good = signature(nullptr);
    const std::uint64_t bad = signature(&fault);
    std::cout << "CUT " << ci << " MISR signature: good=0x" << std::hex << good
              << " faulty=0x" << bad << std::dec
              << (good != bad ? "  -> fault caught by signature\n"
                              : "  (aliased)\n");
    break;
  }
  return 0;
}
