// Reproduces Figure 4: "Bit-wise Area vs. Testing Time for Various CBIT
// Types" — per-bit CBIT cost σ_k against the exhaustive test length 2^l_k.
//
// The paper's point: σ falls slowly with l while testing time explodes
// exponentially, so d4 (l=16) and d5 (l=24) are the sweet spots.
#include <iostream>

#include "bist/cbit_area.h"
#include "core/table_printer.h"

int main() {
  using namespace merced;
  std::cout << "Figure 4: bit-wise CBIT area vs testing time\n\n";
  TablePrinter t({"l_k", "testing time (cycles)", "sigma (paper)", "sigma (model)"});
  for (const CbitAreaRow& row : published_cbit_areas()) {
    t.add_row({std::to_string(row.length), std::to_string(testing_time_cycles(row.length)),
               TablePrinter::num(row.area_per_bit, 2),
               TablePrinter::num(modeled_area_per_dff(row.length) / row.length, 2)});
  }
  t.print(std::cout);

  // ASCII rendition of the figure: log2(time) on x, sigma on y.
  std::cout << "\nsigma/bit (x = log2 testing time)\n";
  for (const CbitAreaRow& row : published_cbit_areas()) {
    const int stars = static_cast<int>((row.area_per_bit - 1.90) * 100);
    std::cout << "  2^" << (row.length < 10 ? " " : "") << row.length << " |";
    for (int i = 0; i < stars; ++i) std::cout << '#';
    std::cout << " " << row.area_per_bit << "\n";
  }
  std::cout << "\nFeasible testing time favours l=16 (65.5K cycles) and l=24 (16.8M);\n"
               "l=32 needs 4.3G cycles for only ~1% better per-bit area.\n";
  return 0;
}
