// Reproduces Figure 1(b): testing time of a PPET pipe is dominated by its
// widest CBIT — demonstrated by actually clocking CBIT hardware models.
//
// A pipe of CUTs separated by CBITs of mixed widths is driven until every
// TPG-mode CBIT has completed its exhaustive sweep; the cycle count equals
// 2^(max width), independent of the narrower CBITs.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bist/cbit.h"
#include "core/table_printer.h"

namespace {

/// Clocks a pipe of TPG-mode CBITs until all have completed >= one full
/// exhaustive sweep; returns the cycle count.
std::uint64_t run_pipe(const std::vector<unsigned>& widths) {
  using namespace merced;
  std::vector<Cbit> cbits;
  std::vector<std::uint64_t> start;
  for (unsigned w : widths) {
    Cbit c(w);
    c.set_mode(CbitMode::kTpg);
    c.set_state(0);
    start.push_back(c.state());
    cbits.push_back(c);
  }
  std::vector<bool> done(cbits.size(), false);
  std::uint64_t cycles = 0;
  std::size_t remaining = cbits.size();
  while (remaining > 0) {
    ++cycles;
    for (std::size_t i = 0; i < cbits.size(); ++i) {
      cbits[i].step(0);
      if (!done[i] && cbits[i].state() == start[i]) {
        done[i] = true;  // full 2^w sweep completed
        --remaining;
      }
    }
  }
  return cycles;
}

}  // namespace

int main() {
  using namespace merced;
  std::cout << "Figure 1(b): pipe testing time is dominated by the widest CBIT\n\n";
  TablePrinter t({"pipe CBIT widths", "measured cycles", "2^max width"});
  const std::vector<std::vector<unsigned>> pipes = {
      {4, 4, 4},
      {8, 4, 6},
      {12, 8, 8, 4},
      {16, 8, 12},
      {18, 16, 12, 8},
      {20, 12, 4},
  };
  for (const auto& pipe : pipes) {
    unsigned widest = 0;
    std::string label;
    for (unsigned w : pipe) {
      widest = std::max(widest, w);
      label += (label.empty() ? "" : "+") + std::to_string(w);
    }
    const std::uint64_t measured = run_pipe(pipe);
    t.add_row({label, std::to_string(measured),
               std::to_string(pipe_testing_time(widest))});
    if (measured != pipe_testing_time(widest)) {
      std::cerr << "MISMATCH for pipe " << label << "\n";
      return 1;
    }
  }
  t.print(std::cout);
  std::cout << "\nAll pipes complete in exactly 2^(widest CBIT) cycles: minimizing\n"
               "the maximum CBIT width (the PIC constraint l_k) sets the test time.\n";
  return 0;
}
