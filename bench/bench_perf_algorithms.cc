// Performance microbenchmarks (google-benchmark) for the §3.3 complexity
// analysis: Saturate_Network dominates (O(([visit]+Var)·V log V)),
// Make_Group is near-linear in V+E, Assign_CBIT is O(w log w)-ish in the
// cluster count.
#include <benchmark/benchmark.h>

#include "circuits/registry.h"
#include "core/merced.h"
#include "flow/saturate_network.h"
#include "graph/circuit_graph.h"
#include "graph/scc.h"
#include "partition/assign_cbit.h"
#include "partition/make_group.h"

namespace merced {
namespace {

const Netlist& circuit(const std::string& name) {
  static std::map<std::string, Netlist> cache;
  auto it = cache.find(name);
  if (it == cache.end()) it = cache.emplace(name, load_benchmark(name)).first;
  return it->second;
}

// Small-to-mid circuits keep the full suite of microbenches fast; the big
// table benches exercise the large circuits.
const char* kCircuits[] = {"s27", "s510", "s820", "s1423", "s5378"};

void BM_GraphAndScc(benchmark::State& state) {
  const Netlist& nl = circuit(kCircuits[state.range(0)]);
  for (auto _ : state) {
    CircuitGraph g(nl);
    benchmark::DoNotOptimize(find_sccs(g));
  }
  state.SetLabel(nl.name());
}
BENCHMARK(BM_GraphAndScc)->DenseRange(0, 4);

void BM_SaturateNetwork(benchmark::State& state) {
  const Netlist& nl = circuit(kCircuits[state.range(0)]);
  const CircuitGraph g(nl);
  SaturateParams p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(saturate_network(g, p));
  }
  state.SetLabel(nl.name());
}
BENCHMARK(BM_SaturateNetwork)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_MakeGroup(benchmark::State& state) {
  const Netlist& nl = circuit(kCircuits[state.range(0)]);
  const CircuitGraph g(nl);
  const SccInfo sccs = find_sccs(g);
  SaturateParams p;
  const SaturationResult sat = saturate_network(g, p);
  MakeGroupParams mg;
  mg.lk = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_group(g, sccs, sat, mg));
  }
  state.SetLabel(nl.name());
}
BENCHMARK(BM_MakeGroup)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_AssignCbit(benchmark::State& state) {
  const Netlist& nl = circuit(kCircuits[state.range(0)]);
  const CircuitGraph g(nl);
  const SccInfo sccs = find_sccs(g);
  SaturateParams p;
  const SaturationResult sat = saturate_network(g, p);
  MakeGroupParams mg;
  mg.lk = 16;
  const MakeGroupResult groups = make_group(g, sccs, sat, mg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_cbit(g, groups.clustering, mg.lk));
  }
  state.SetLabel(nl.name());
}
BENCHMARK(BM_AssignCbit)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_FullCompile(benchmark::State& state) {
  const Netlist& nl = circuit(kCircuits[state.range(0)]);
  MercedConfig config;
  config.lk = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile(nl, config));
  }
  state.SetLabel(nl.name());
}
BENCHMARK(BM_FullCompile)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace merced

BENCHMARK_MAIN();
