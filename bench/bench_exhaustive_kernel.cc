// Event-driven coverage kernel bench — emits BENCH_simkernel.json.
//
// Times the pre-kernel naive coverage path (re-evaluate the whole cone for
// every live fault on every 64-pattern batch) against the event-driven
// fault-dropping kernel (sim/cone.cc) on two workloads:
//
//  * a generated single-CUT cone: random combinational netlist whose gates
//    include periodic wide AND/OR gates (fanin 8..12). Wide gates create
//    hard pin faults that stay live for many batches, which is exactly
//    where naive re-evaluation hurts and event suppression shines;
//  * an ISCAS-style compiled circuit: every CUT of a Merced compile
//    (load_benchmark + compile), timed across the whole partition set.
//
// Conformance is checked while timing, not trusted: every kernel
// CoverageResult must be bit-identical to the naive oracle's (same
// total/detected counts, same undetected fault list in the same order), and
// the kernel must return the identical result at --jobs 1/2/4/8. Any
// mismatch fails the bench with exit code 1. JSON schema:
//
//   { "hardware_concurrency": N,
//     "generated": { "inputs": N, "gates": N, "collapsed_faults": N,
//                    "naive_seconds": s, "kernel_seconds": s, "speedup": x,
//                    "jobs_runs": [ {"jobs":1,"seconds":s,"speedup":x}, ...],
//                    "kernel_counters": { "ranges_run": N, "batches": N,
//                        "events_popped": N, "events_suppressed": N,
//                        "early_exits": N, "faults_dropped": N,
//                        "faults_dropped_per_batch": x } },
//     "iscas": { "circuit": ..., "lk": N, "cuts": N, "collapsed_faults": N,
//                "naive_seconds": s, "kernel_seconds": s, "speedup": x },
//     "obs_overhead": { "disabled_seconds": s, "enabled_seconds": s,
//                       "ratio": x, "budget_ratio": 1.02 },
//     "conformance": "ok" }
//
// The obs_overhead section is the observability guardrail: the kernel sweep
// is timed (min of several repetitions) with the obs layer disabled — the
// null-sink path, whose only compiled-in cost vs the pre-obs kernel is
// plain Workspace field increments and one relaxed-atomic branch per range
// — and again with a collector enabled. The bench FAILS (exit 1) unless
// enabled <= disabled * 1.02 + 2 ms, so instrumentation cost can never
// silently creep into the hot path this bench exists to protect.
//
// Usage: bench_exhaustive_kernel [--inputs N] [--gates N] [--circuit name]
//                                [--lk N] [--seed N] [--smoke]
//                                [--trace FILE] [--metrics FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.h"
#include "core/merced.h"
#include "graph/circuit_graph.h"
#include "netlist/netlist.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "partition/clustering.h"
#include "sim/cone.h"
#include "sim/fault.h"

namespace {

using Clock = std::chrono::steady_clock;

double time_seconds(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Run {
  std::size_t jobs;
  double seconds;
  double speedup;
};

void json_runs(std::ostream& os, const std::vector<Run>& runs) {
  os << "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) os << ", ";
    os << "{\"jobs\": " << runs[i].jobs << ", \"seconds\": " << runs[i].seconds
       << ", \"speedup\": " << runs[i].speedup << "}";
  }
  os << "]";
}

}  // namespace

namespace merced {
namespace {

/// Random combinational cone: `num_inputs` PIs, `num_gates` gates where
/// every `wide_every`-th gate is a wide AND/OR (fanin 8..12) and the rest
/// are a 2-input mix plus inverters and MUXes. Fanins prefer recent nets
/// (locality) so the cone is deep rather than flat. Sink gates become POs.
Netlist make_wide_cone(std::size_t num_inputs, std::size_t num_gates,
                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Netlist nl("widecone");
  std::vector<GateId> nets;
  for (std::size_t i = 0; i < num_inputs; ++i) {
    nets.push_back(nl.add_gate(GateType::kInput, "pi" + std::to_string(i)));
  }
  auto pick_net = [&]() -> GateId {
    // 70% of fanins come from the most recent quarter of the net list.
    if (nets.size() > 8 && rng() % 10 < 7) {
      const std::size_t quarter = nets.size() / 4;
      return nets[nets.size() - 1 - rng() % quarter];
    }
    return nets[rng() % nets.size()];
  };
  static constexpr GateType kTwoInput[] = {GateType::kAnd, GateType::kNand,
                                           GateType::kOr,  GateType::kNor,
                                           GateType::kXor, GateType::kXnor};
  const std::size_t wide_every = 25;
  for (std::size_t g = 0; g < num_gates; ++g) {
    const std::string name = "g" + std::to_string(g);
    GateType type;
    std::size_t fanin_count;
    if (g > 0 && g % wide_every == 0) {
      type = (rng() & 1) ? GateType::kAnd : GateType::kOr;
      fanin_count = 8 + rng() % 5;  // 8..12: hard late-dropping pin faults
    } else if (rng() % 10 == 0) {
      type = GateType::kNot;
      fanin_count = 1;
    } else if (rng() % 12 == 0) {
      type = GateType::kMux;
      fanin_count = 3;
    } else {
      type = kTwoInput[rng() % 6];
      fanin_count = 2;
    }
    std::vector<GateId> fanins;
    for (std::size_t k = 0; k < fanin_count; ++k) fanins.push_back(pick_net());
    // The first `num_inputs` gates each consume one PI directly, so every
    // PI reaches the cone and the CUT has exactly `num_inputs` cut inputs.
    if (g < num_inputs) fanins[0] = nets[g];
    nets.push_back(nl.add_gate(type, name, std::move(fanins)));
  }
  nl.finalize();
  // Observe every sink net so no logic is vacuously untestable. Collect
  // first: mark_output invalidates the fanout cache.
  std::vector<GateId> sinks;
  for (GateId id = 0; id < nl.size(); ++id) {
    if (nl.gate(id).type != GateType::kInput && nl.fanouts(id).empty()) {
      sinks.push_back(id);
    }
  }
  for (GateId id : sinks) nl.mark_output(id);
  nl.finalize();
  return nl;
}

/// All non-PI nodes as one cluster — the whole circuit as a single CUT.
Clustering whole_circuit_cluster(const CircuitGraph& g) {
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters.emplace_back();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.is_pi(v)) {
      c.cluster_of[v] = 0;
      c.clusters[0].push_back(v);
    }
  }
  return c;
}

bool same_coverage(const CoverageResult& a, const CoverageResult& b) {
  return a.total_faults == b.total_faults && a.detected == b.detected &&
         a.undetected == b.undetected;
}

}  // namespace
}  // namespace merced

int main(int argc, char** argv) {
  using namespace merced;

  std::size_t num_inputs = 16;
  std::size_t num_gates = 600;
  std::string circuit = "s510";
  std::size_t lk = 12;
  std::uint64_t seed = 20260805;
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--smoke") {
      num_inputs = 12;
      num_gates = 250;
      circuit = "s420.1";
      lk = 8;
    } else if (flag == "--inputs" && i + 1 < argc) {
      num_inputs = std::stoul(argv[++i]);
    } else if (flag == "--gates" && i + 1 < argc) {
      num_gates = std::stoul(argv[++i]);
    } else if (flag == "--circuit" && i + 1 < argc) {
      circuit = argv[++i];
    } else if (flag == "--lk" && i + 1 < argc) {
      lk = std::stoul(argv[++i]);
    } else if (flag == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (flag == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (flag == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "usage: bench_exhaustive_kernel [--inputs N] [--gates N] "
                   "[--circuit name] [--lk N] [--seed N] [--smoke] "
                   "[--trace FILE] [--metrics FILE]\n";
      return 2;
    }
  }

  // When exporting artifacts, collect for the whole run. The timed
  // naive-vs-kernel comparisons stay fair (both sides instrumented) and the
  // overhead guardrail below toggles the collector explicitly around its
  // own measurements.
  const bool exporting = !trace_path.empty() || !metrics_path.empty();
  if (exporting) obs::enable();

  std::cout << "Exhaustive coverage kernel bench (hardware_concurrency = "
            << std::thread::hardware_concurrency() << ")\n\n";

  // --------------------------------------------- generated wide cone ---
  const Netlist gen_nl = make_wide_cone(num_inputs, num_gates, seed);
  const CircuitGraph gen_graph(gen_nl);
  const Clustering gen_cluster = whole_circuit_cluster(gen_graph);
  const ConeSimulator gen_cone(gen_graph, gen_cluster, 0);
  const std::size_t gen_faults = gen_cone.cluster_faults().size();
  std::cout << "generated cone: " << gen_cone.cut_inputs().size() << " inputs, "
            << gen_cone.gates().size() << " gates, " << gen_faults
            << " collapsed faults\n";

  CoverageOptions opt;
  opt.max_inputs = gen_cone.cut_inputs().size();

  CoverageResult naive_result;
  CoverageOptions naive_opt = opt;
  naive_opt.naive = true;
  const double naive_s =
      time_seconds([&] { naive_result = exhaustive_coverage(gen_cone, naive_opt); });

  CoverageResult kernel_result;
  const double kernel_s =
      time_seconds([&] { kernel_result = exhaustive_coverage(gen_cone, opt); });

  if (!same_coverage(kernel_result, naive_result)) {
    std::cerr << "FATAL: kernel CoverageResult differs from naive oracle on the "
                 "generated cone\n";
    return 1;
  }
  const double speedup = naive_s / kernel_s;
  std::cout << "  naive:  " << naive_s << " s\n"
            << "  kernel: " << kernel_s << " s  (speedup " << speedup << "x)\n"
            << "  coverage: " << kernel_result.detected << "/"
            << kernel_result.total_faults << "\n";

  // Sharded kernel at 1/2/4/8 jobs: identical result required at each.
  std::vector<Run> jobs_runs;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{8}}) {
    CoverageOptions jopt = opt;
    jopt.jobs = jobs;
    CoverageResult r;
    const double s = time_seconds([&] { r = exhaustive_coverage(gen_cone, jopt); });
    if (!same_coverage(r, kernel_result)) {
      std::cerr << "FATAL: kernel CoverageResult differs at jobs=" << jobs << "\n";
      return 1;
    }
    jobs_runs.push_back({jobs, s, jobs_runs.empty() ? 1.0 : jobs_runs[0].seconds / s});
    std::cout << "  jobs=" << jobs << ": " << s << " s  (speedup "
              << jobs_runs.back().speedup << "x)\n";
  }

  // Kernel work profile of one sweep over the generated cone, read from the
  // obs counters as a before/after delta so an active --trace collection is
  // not clobbered by a reset.
  const bool was_enabled = obs::enabled();
  if (!was_enabled) obs::enable();
  const std::vector<std::uint64_t> counters_before = obs::counter_values();
  (void)exhaustive_coverage(gen_cone, opt);
  const std::vector<std::uint64_t> counters_after = obs::counter_values();
  if (!was_enabled) obs::disable();
  const auto counter_delta = [&](obs::Counter c) {
    const auto idx = static_cast<std::size_t>(c);
    return counters_after[idx] - counters_before[idx];
  };
  const std::uint64_t kc_ranges = counter_delta(obs::Counter::kKernelRangesRun);
  const std::uint64_t kc_batches = counter_delta(obs::Counter::kKernelBatches);
  const std::uint64_t kc_popped = counter_delta(obs::Counter::kKernelEventsPopped);
  const std::uint64_t kc_suppressed =
      counter_delta(obs::Counter::kKernelEventsSuppressed);
  const std::uint64_t kc_early = counter_delta(obs::Counter::kKernelEarlyExits);
  const std::uint64_t kc_dropped = counter_delta(obs::Counter::kKernelFaultsDropped);
  const double kc_dropped_per_batch =
      kc_batches ? static_cast<double>(kc_dropped) / static_cast<double>(kc_batches)
                 : 0.0;
  std::cout << "  kernel counters: " << kc_batches << " batches, " << kc_popped
            << " events popped (" << kc_suppressed << " suppressed), "
            << kc_dropped << " faults dropped (" << kc_dropped_per_batch
            << "/batch)\n";

  // ------------------------------------------- ISCAS-style compile ---
  const Netlist iscas_nl = load_benchmark(circuit);
  MercedConfig config;
  config.lk = lk;
  const MercedResult plan = compile(iscas_nl, config);
  const CircuitGraph iscas_graph(iscas_nl);

  std::vector<ConeSimulator> cones;
  std::size_t iscas_faults = 0;
  for (std::size_t ci = 0; ci < plan.partitions.count(); ++ci) {
    ConeSimulator cone(iscas_graph, plan.partitions, ci);
    if (cone.gates().empty() || cone.cut_inputs().empty()) continue;
    iscas_faults += cone.cluster_faults().size();
    cones.push_back(std::move(cone));
  }
  std::cout << "\niscas: " << circuit << " (lk=" << lk << "), " << cones.size()
            << " CUTs, " << iscas_faults << " collapsed faults\n";

  std::vector<CoverageResult> iscas_naive;
  const double iscas_naive_s = time_seconds([&] {
    for (const ConeSimulator& cone : cones) {
      CoverageOptions o;
      o.max_inputs = lk;
      o.naive = true;
      iscas_naive.push_back(exhaustive_coverage(cone, o));
    }
  });
  std::vector<CoverageResult> iscas_kernel;
  const double iscas_kernel_s = time_seconds([&] {
    for (const ConeSimulator& cone : cones) {
      CoverageOptions o;
      o.max_inputs = lk;
      iscas_kernel.push_back(exhaustive_coverage(cone, o));
    }
  });
  for (std::size_t i = 0; i < cones.size(); ++i) {
    if (!same_coverage(iscas_kernel[i], iscas_naive[i])) {
      std::cerr << "FATAL: kernel CoverageResult differs from naive oracle on "
                << circuit << " CUT " << i << "\n";
      return 1;
    }
  }
  const double iscas_speedup = iscas_naive_s / iscas_kernel_s;
  std::cout << "  naive:  " << iscas_naive_s << " s\n"
            << "  kernel: " << iscas_kernel_s << " s  (speedup " << iscas_speedup
            << "x)\n";

  // ---------------------------------------- observability guardrail ---
  // Times the generated-cone kernel sweep with the collector disabled (the
  // null-sink path a production run pays) and enabled (worst case). Min of
  // several repetitions on each side; the 2 ms absolute slack keeps the 2%
  // budget meaningful on sub-millisecond --smoke sweeps without masking a
  // real regression on the full workload.
  constexpr int kOverheadReps = 5;
  constexpr double kBudgetRatio = 1.02;
  constexpr double kSlackSeconds = 0.002;
  const bool keep_enabled = obs::enabled();
  const auto min_sweep_seconds = [&] {
    double best = 0;
    for (int rep = 0; rep < kOverheadReps; ++rep) {
      const double s =
          time_seconds([&] { (void)exhaustive_coverage(gen_cone, opt); });
      if (rep == 0 || s < best) best = s;
    }
    return best;
  };
  obs::disable();
  const double obs_off_s = min_sweep_seconds();
  obs::enable();
  const double obs_on_s = min_sweep_seconds();
  if (!keep_enabled) obs::disable();
  const double obs_ratio = obs_on_s / obs_off_s;
  std::cout << "\nobs overhead: disabled " << obs_off_s << " s, enabled "
            << obs_on_s << " s (ratio " << obs_ratio << ", budget "
            << kBudgetRatio << ")\n";
  if (obs_on_s > obs_off_s * kBudgetRatio + kSlackSeconds) {
    std::cerr << "FATAL: observability overhead " << obs_on_s << " s exceeds "
              << obs_off_s << " s * " << kBudgetRatio << " + " << kSlackSeconds
              << " s\n";
    return 1;
  }

  // --------------------------------------------------------- JSON out ---
  std::ofstream json("BENCH_simkernel.json");
  json << "{\n  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n  \"generated\": {\"inputs\": " << gen_cone.cut_inputs().size()
       << ", \"gates\": " << gen_cone.gates().size()
       << ", \"collapsed_faults\": " << gen_faults
       << ", \"naive_seconds\": " << naive_s << ", \"kernel_seconds\": " << kernel_s
       << ", \"speedup\": " << speedup << ", \"jobs_runs\": ";
  json_runs(json, jobs_runs);
  json << ",\n    \"kernel_counters\": {\"ranges_run\": " << kc_ranges
       << ", \"batches\": " << kc_batches << ", \"events_popped\": " << kc_popped
       << ", \"events_suppressed\": " << kc_suppressed
       << ", \"early_exits\": " << kc_early
       << ", \"faults_dropped\": " << kc_dropped
       << ", \"faults_dropped_per_batch\": " << kc_dropped_per_batch << "}"
       << "},\n  \"iscas\": {\"circuit\": \"" << circuit << "\", \"lk\": " << lk
       << ", \"cuts\": " << cones.size()
       << ", \"collapsed_faults\": " << iscas_faults
       << ", \"naive_seconds\": " << iscas_naive_s
       << ", \"kernel_seconds\": " << iscas_kernel_s
       << ", \"speedup\": " << iscas_speedup
       << "},\n  \"obs_overhead\": {\"disabled_seconds\": " << obs_off_s
       << ", \"enabled_seconds\": " << obs_on_s << ", \"ratio\": " << obs_ratio
       << ", \"budget_ratio\": " << kBudgetRatio
       << "},\n  \"conformance\": \"ok\"\n}\n";
  std::cout << "\nwrote BENCH_simkernel.json\n";

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "error: cannot write " << trace_path << "\n";
      return 1;
    }
    obs::write_chrome_trace(out);
    std::cout << "wrote " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      return 1;
    }
    obs::RunInfo run;
    run.tool = "bench_exhaustive_kernel";
    run.circuit = circuit;
    run.lk = lk;
    run.jobs = 1;
    run.starts = 1;
    obs::MetricsRegistry::capture(run).write_json(out);
    std::cout << "wrote " << metrics_path << "\n";
  }
  return 0;
}
