// Event-driven coverage kernel bench — emits BENCH_simkernel.json.
//
// Times the pre-kernel naive coverage path (re-evaluate the whole cone for
// every live fault on every 64-pattern batch) against the event-driven
// fault-dropping kernel (sim/cone.cc) on two workloads:
//
//  * a generated single-CUT cone: random combinational netlist whose gates
//    include periodic wide AND/OR gates (fanin 8..12). Wide gates create
//    hard pin faults that stay live for many batches, which is exactly
//    where naive re-evaluation hurts and event suppression shines;
//  * an ISCAS-style compiled circuit: every CUT of a Merced compile
//    (load_benchmark + compile), timed across the whole partition set.
//
// Three kernels are measured against each other: the naive oracle, the
// legacy 64-lane one-fault-at-a-time event kernel ("u64", CoverageOptions
// u64_oracle), and the production SIMD fault-group kernel at every lane
// width this host supports (64/256/512 via sim/simd.h). Conformance is
// checked while timing, not trusted: every CoverageResult must be
// bit-identical to the naive oracle's (same total/detected counts, same
// undetected fault list in the same order) at every width and every
// --jobs 1/2/4/8. Any mismatch fails the bench with exit code 1.
// JSON schema:
//
//   { "hardware_concurrency": N,
//     "cpu": "model name",
//     "generated": { "inputs": N, "gates": N, "collapsed_faults": N,
//                    "naive_seconds": s, "kernel_seconds": s, "speedup": x,
//                    "simd": { "widths_supported": [64, ...],
//                              "best_width": N,
//                              "width_runs": [ {"width": N, "seconds": s,
//                                  "speedup_vs_u64": x}, ...],
//                              "min_widest_speedup_vs_u64": x },
//                    "jobs_runs": [ {"jobs":1,"seconds":s,"speedup":x,
//                                    "efficiency":x,"within_cores":b}, ...],
//                    "kernel_counters": { "ranges_run": N, "batches": N,
//                        "lanes_swept": N, "fault_groups": N,
//                        "events_popped": N, "events_suppressed": N,
//                        "early_exits": N, "faults_dropped": N,
//                        "faults_dropped_per_batch": x },
//                    "analyzed": { "analyze_seconds": s, "planned_seconds": s,
//                        "swept": N, "copied": N, "inferred": N,
//                        "untestable": N, "collapse_ratio": x,
//                        "untestable_share": x, "collapsed_faults": N,
//                        "proved_untestable": N, "residue_resims": N,
//                        "sweep_speedup": x, "min_sweep_speedup": x,
//                        "with_analysis_speedup": x,
//                        "break_even_sweeps": x } },
//     "iscas": { "circuit": ..., "lk": N, "cuts": N, "collapsed_faults": N,
//                "naive_seconds": s, "kernel_seconds": s, "speedup": x,
//                "simd_seconds": s, "simd_width": N, "simd_speedup_vs_u64": x },
//     "obs_overhead": { "disabled_seconds": s, "enabled_seconds": s,
//                       "ratio": x, "budget_ratio": 1.02 },
//     "conformance": "ok" }
//
// "kernel_seconds"/"speedup" keep their historic meaning — the legacy u64
// kernel vs naive — so the artifact stays comparable across commits; the
// SIMD gains are reported relative to that same u64 baseline.
//
// Four guardrails fail the bench (exit 1):
//  * obs_overhead: the production sweep is timed (min of several reps) with
//    the obs layer disabled — the null-sink path — and enabled; enabled
//    must stay <= disabled * 1.02 + 2 ms, so instrumentation cost can
//    never silently creep into the hot path this bench exists to protect.
//  * simd width: when a backend wider than 64 is supported, the widest
//    backend must beat the u64 kernel by min_widest_speedup_vs_u64 — the
//    lanes have to actually pay for themselves.
//  * collapsed sweep: the planned sweep over the analyzer's FaultPlan —
//    end-to-end, i.e. compacted kernel plus representative expansion plus
//    residue re-simulation, producing the full per-fault verdict set —
//    must beat the plain production sweep by min_sweep_speedup, and the
//    planned verdicts must stay bit-identical to the naive oracle's. The
//    one-time analyze_cut cost is reported alongside (analyze_seconds,
//    with_analysis_speedup, break_even_sweeps — how many sweeps of the
//    same CUT amortize the analysis) but is not part of the floor: the
//    plan is computed once per CUT and reused across every session sweep,
//    while this floor protects the per-sweep win (collapse x skip ratio).
//  * jobs scaling: jobs_runs rows with jobs > hardware_concurrency are
//    recorded but marked "within_cores": false and assert nothing (a
//    1-core CI box cannot "speed up" at jobs=8 and pretending otherwise
//    made the old artifact dishonest); within-core rows must keep parallel
//    efficiency (speedup/jobs) above a conservative floor.
//
// Regression-sentinel plumbing: every run appends one compact JSON line to
// BENCH_history.jsonl (--history overrides the path) — an append-only
// trajectory of the headline numbers, uploaded by CI so the bench record
// stops being a single overwritten file. --baseline FILE names the
// committed baseline snapshot: with MERCED_UPDATE_BASELINE=1 in the
// environment the run's full artifact is also written there (the same
// refresh idiom the golden-table tests use); without it the flag only
// reminds where the baseline lives — comparing against it is
// merced_metrics_diff's job (the CI perf-sentinel runs it).
//
// Usage: bench_exhaustive_kernel [--inputs N] [--gates N] [--circuit name]
//                                [--lk N] [--seed N] [--smoke]
//                                [--trace FILE] [--metrics FILE]
//                                [--history FILE] [--baseline FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analyze/analyze.h"
#include "circuits/registry.h"
#include "core/merced.h"
#include "graph/circuit_graph.h"
#include "netlist/netlist.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/resource.h"
#include "partition/clustering.h"
#include "sim/cone.h"
#include "sim/fault.h"
#include "sim/simd.h"

namespace {

using Clock = std::chrono::steady_clock;

double time_seconds(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Min of `reps` timed runs — the standard de-noising for sub-100ms
/// kernels on a shared box (AVX warm-up and frequency ramping make the
/// first wide run unrepresentative).
double min_time_seconds(int reps, const std::function<void()>& fn) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const double s = time_seconds(fn);
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

struct Run {
  std::size_t jobs;
  double seconds;
  double speedup;
  double efficiency;
  bool within_cores;
};

void json_runs(std::ostream& os, const std::vector<Run>& runs) {
  os << "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) os << ", ";
    os << "{\"jobs\": " << runs[i].jobs << ", \"seconds\": " << runs[i].seconds
       << ", \"speedup\": " << runs[i].speedup
       << ", \"efficiency\": " << runs[i].efficiency
       << ", \"within_cores\": " << (runs[i].within_cores ? "true" : "false") << "}";
  }
  os << "]";
}

struct WidthRun {
  std::size_t width;
  double seconds;
  double speedup_vs_u64;
};

void json_width_runs(std::ostream& os, const std::vector<WidthRun>& runs) {
  os << "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) os << ", ";
    os << "{\"width\": " << runs[i].width << ", \"seconds\": " << runs[i].seconds
       << ", \"speedup_vs_u64\": " << runs[i].speedup_vs_u64 << "}";
  }
  os << "]";
}

std::string json_escaped(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

namespace merced {
namespace {

/// Random combinational cone: `num_inputs` PIs, `num_gates` gates where
/// every `wide_every`-th gate is a wide AND/OR (fanin 8..12) and the rest
/// are a 2-input mix plus inverters and MUXes. Fanins prefer recent nets
/// (locality) so the cone is deep rather than flat. Sink gates become POs.
Netlist make_wide_cone(std::size_t num_inputs, std::size_t num_gates,
                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Netlist nl("widecone");
  std::vector<GateId> nets;
  for (std::size_t i = 0; i < num_inputs; ++i) {
    nets.push_back(nl.add_gate(GateType::kInput, "pi" + std::to_string(i)));
  }
  auto pick_net = [&]() -> GateId {
    // 70% of fanins come from the most recent quarter of the net list.
    if (nets.size() > 8 && rng() % 10 < 7) {
      const std::size_t quarter = nets.size() / 4;
      return nets[nets.size() - 1 - rng() % quarter];
    }
    return nets[rng() % nets.size()];
  };
  static constexpr GateType kTwoInput[] = {GateType::kAnd, GateType::kNand,
                                           GateType::kOr,  GateType::kNor,
                                           GateType::kXor, GateType::kXnor};
  const std::size_t wide_every = 25;
  for (std::size_t g = 0; g < num_gates; ++g) {
    const std::string name = "g" + std::to_string(g);
    GateType type;
    std::size_t fanin_count;
    if (g > 0 && g % wide_every == 0) {
      type = (rng() & 1) ? GateType::kAnd : GateType::kOr;
      fanin_count = 8 + rng() % 5;  // 8..12: hard late-dropping pin faults
    } else if (rng() % 10 == 0) {
      type = GateType::kNot;
      fanin_count = 1;
    } else if (rng() % 12 == 0) {
      type = GateType::kMux;
      fanin_count = 3;
    } else {
      type = kTwoInput[rng() % 6];
      fanin_count = 2;
    }
    std::vector<GateId> fanins;
    for (std::size_t k = 0; k < fanin_count; ++k) fanins.push_back(pick_net());
    // The first `num_inputs` gates each consume one PI directly, so every
    // PI reaches the cone and the CUT has exactly `num_inputs` cut inputs.
    if (g < num_inputs) fanins[0] = nets[g];
    nets.push_back(nl.add_gate(type, name, std::move(fanins)));
  }
  nl.finalize();
  // Observe every sink net so no logic is vacuously untestable. Collect
  // first: mark_output invalidates the fanout cache.
  std::vector<GateId> sinks;
  for (GateId id = 0; id < nl.size(); ++id) {
    if (nl.gate(id).type != GateType::kInput && nl.fanouts(id).empty()) {
      sinks.push_back(id);
    }
  }
  for (GateId id : sinks) nl.mark_output(id);
  nl.finalize();
  return nl;
}

/// All non-PI nodes as one cluster — the whole circuit as a single CUT.
Clustering whole_circuit_cluster(const CircuitGraph& g) {
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters.emplace_back();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.is_pi(v)) {
      c.cluster_of[v] = 0;
      c.clusters[0].push_back(v);
    }
  }
  return c;
}

bool same_coverage(const CoverageResult& a, const CoverageResult& b) {
  return a.total_faults == b.total_faults && a.detected == b.detected &&
         a.undetected == b.undetected;
}

}  // namespace
}  // namespace merced

int main(int argc, char** argv) {
  using namespace merced;

  std::size_t num_inputs = 16;
  std::size_t num_gates = 600;
  bool smoke = false;
  std::string circuit = "s510";
  std::size_t lk = 12;
  std::uint64_t seed = 20260805;
  std::string trace_path;
  std::string metrics_path;
  std::string history_path = "BENCH_history.jsonl";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--smoke") {
      smoke = true;
      num_inputs = 12;
      num_gates = 250;
      circuit = "s420.1";
      lk = 8;
    } else if (flag == "--inputs" && i + 1 < argc) {
      num_inputs = std::stoul(argv[++i]);
    } else if (flag == "--gates" && i + 1 < argc) {
      num_gates = std::stoul(argv[++i]);
    } else if (flag == "--circuit" && i + 1 < argc) {
      circuit = argv[++i];
    } else if (flag == "--lk" && i + 1 < argc) {
      lk = std::stoul(argv[++i]);
    } else if (flag == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (flag == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (flag == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (flag == "--history" && i + 1 < argc) {
      history_path = argv[++i];
    } else if (flag == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::cerr << "usage: bench_exhaustive_kernel [--inputs N] [--gates N] "
                   "[--circuit name] [--lk N] [--seed N] [--smoke] "
                   "[--trace FILE] [--metrics FILE] [--history FILE] "
                   "[--baseline FILE]\n";
      return 2;
    }
  }

  // When exporting artifacts, collect for the whole run. The timed
  // naive-vs-kernel comparisons stay fair (both sides instrumented) and the
  // overhead guardrail below toggles the collector explicitly around its
  // own measurements.
  const bool exporting = !trace_path.empty() || !metrics_path.empty();
  if (exporting) obs::enable();

  std::cout << "Exhaustive coverage kernel bench (hardware_concurrency = "
            << std::thread::hardware_concurrency() << ")\n\n";

  // --------------------------------------------- generated wide cone ---
  const Netlist gen_nl = make_wide_cone(num_inputs, num_gates, seed);
  const CircuitGraph gen_graph(gen_nl);
  const Clustering gen_cluster = whole_circuit_cluster(gen_graph);
  const ConeSimulator gen_cone(gen_graph, gen_cluster, 0);
  const std::size_t gen_faults = gen_cone.cluster_faults().size();
  std::cout << "generated cone: " << gen_cone.cut_inputs().size() << " inputs, "
            << gen_cone.gates().size() << " gates, " << gen_faults
            << " collapsed faults\n";

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  CoverageOptions opt;
  opt.max_inputs = gen_cone.cut_inputs().size();

  CoverageResult naive_result;
  CoverageOptions naive_opt = opt;
  naive_opt.naive = true;
  const double naive_s =
      time_seconds([&] { naive_result = exhaustive_coverage(gen_cone, naive_opt); });

  // "kernel" keeps its historic meaning: the legacy 64-lane
  // one-fault-at-a-time event kernel, the u64 baseline all SIMD runs are
  // judged against.
  constexpr int kKernelReps = 5;
  CoverageOptions u64_opt = opt;
  u64_opt.u64_oracle = true;
  CoverageResult kernel_result;
  const double kernel_s = min_time_seconds(
      kKernelReps, [&] { kernel_result = exhaustive_coverage(gen_cone, u64_opt); });

  if (!same_coverage(kernel_result, naive_result)) {
    std::cerr << "FATAL: kernel CoverageResult differs from naive oracle on the "
                 "generated cone\n";
    return 1;
  }
  const double speedup = naive_s / kernel_s;
  std::cout << "  naive:  " << naive_s << " s\n"
            << "  u64 kernel: " << kernel_s << " s  (speedup " << speedup << "x)\n"
            << "  coverage: " << kernel_result.detected << "/"
            << kernel_result.total_faults << "\n";

  // SIMD fault-group kernel at every supported width, single-threaded.
  // Identical verdicts required at each; speedups are vs the u64 baseline.
  std::vector<WidthRun> width_runs;
  std::vector<std::size_t> widths_supported;
  for (SimdWidth w : {SimdWidth::k64, SimdWidth::k256, SimdWidth::k512}) {
    if (!simd_width_supported(w)) continue;
    widths_supported.push_back(simd_lanes(w));
    CoverageOptions wopt = opt;
    wopt.simd = w;
    CoverageResult r;
    const double s =
        min_time_seconds(kKernelReps, [&] { r = exhaustive_coverage(gen_cone, wopt); });
    if (!same_coverage(r, naive_result)) {
      std::cerr << "FATAL: SIMD kernel CoverageResult differs from naive oracle at "
                   "width " << simd_lanes(w) << "\n";
      return 1;
    }
    width_runs.push_back({simd_lanes(w), s, kernel_s / s});
    std::cout << "  simd " << simd_lanes(w) << ": " << s << " s  ("
              << width_runs.back().speedup_vs_u64 << "x vs u64)\n";
  }
  const std::size_t best_width = simd_lanes(best_simd_width());

  // Collapsed sweep: static analysis (analyze/analyze.h) shrinks the fault
  // list before the kernel runs — equivalence classes copy their
  // representative's verdict, dominance-skipped faults infer theirs from
  // witnesses, statically-untestable faults are skipped outright. The
  // planned sweep timed here is *end-to-end*: fault compaction, the
  // kernel over the swept subset, representative expansion, witness
  // inference and residue re-simulation, finishing with the full
  // per-fault verdict set — which must stay bit-identical to the naive
  // oracle. That end-to-end sweep must beat the plain production sweep by
  // the floor below: the untestable faults the plan skips are exactly the
  // ones the event kernel can never drop (no detection event ever fires),
  // which is where the savings live. analyze_cut itself is timed and
  // reported but sits outside the floor — the plan is computed once per
  // CUT and reused across every subsequent sweep of it, so its cost
  // amortizes (break_even_sweeps records how fast) while the per-sweep
  // win is what the guardrail protects.
  const double plain_s = width_runs.back().seconds;
  analyze::CutAnalysis gen_analysis;
  const double analyze_s = min_time_seconds(
      kKernelReps, [&] { gen_analysis = analyze::analyze_cut(gen_cone, 0); });
  CoverageOptions planned_opt = opt;
  planned_opt.plan = &gen_analysis.plan;
  CoverageResult planned_result;
  const double planned_s = min_time_seconds(
      kKernelReps, [&] { planned_result = exhaustive_coverage(gen_cone, planned_opt); });
  if (!same_coverage(planned_result, naive_result)) {
    std::cerr << "FATAL: collapsed planned CoverageResult differs from naive "
                 "oracle on the generated cone\n";
    return 1;
  }
  const double planned_speedup = plain_s / planned_s;
  const double with_analysis_speedup = plain_s / (analyze_s + planned_s);
  // Sweeps of the same CUT needed before analysis has paid for itself:
  // analyze_s / (per-sweep saving). Infinite when the plan saves nothing.
  const double sweep_saving = plain_s - planned_s;
  const double break_even_sweeps =
      sweep_saving > 0 ? analyze_s / sweep_saving : -1.0;
  const double kMinSweepSpeedup = smoke ? 1.05 : 1.2;
  std::cout << "  analyzed: " << analyze_s << " s analysis + " << planned_s
            << " s planned sweep (" << gen_analysis.swept << " swept, "
            << gen_analysis.copied << " copied, " << gen_analysis.inferred
            << " inferred, " << gen_analysis.untestable
            << " untestable; end-to-end sweep speedup " << planned_speedup
            << "x, with analysis " << with_analysis_speedup
            << "x, break-even " << break_even_sweeps << " sweeps)\n";
  if (planned_speedup < kMinSweepSpeedup) {
    std::cerr << "FATAL: collapsed-sweep end-to-end speedup " << planned_speedup
              << "x is below the " << kMinSweepSpeedup
              << "x floor vs the plain production sweep\n";
    return 1;
  }

  // Work-stealing sweep at 1/2/4/8 jobs on the production (widest) kernel:
  // identical result required at each.
  std::vector<Run> jobs_runs;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{8}}) {
    CoverageOptions jopt = opt;
    jopt.jobs = jobs;
    CoverageResult r;
    const double s =
        min_time_seconds(3, [&] { r = exhaustive_coverage(gen_cone, jopt); });
    if (!same_coverage(r, kernel_result)) {
      std::cerr << "FATAL: kernel CoverageResult differs at jobs=" << jobs << "\n";
      return 1;
    }
    const double sp = jobs_runs.empty() ? 1.0 : jobs_runs[0].seconds / s;
    const bool within = jobs <= cores;
    jobs_runs.push_back({jobs, s, sp, sp / static_cast<double>(jobs), within});
    std::cout << "  jobs=" << jobs << ": " << s << " s  (speedup " << sp
              << "x, efficiency " << jobs_runs.back().efficiency
              << (within ? ")" : ", beyond hardware_concurrency — not asserted)")
              << "\n";
  }

  // Kernel work profile of one sweep over the generated cone, read from the
  // obs counters as a before/after delta so an active --trace collection is
  // not clobbered by a reset.
  const bool was_enabled = obs::enabled();
  if (!was_enabled) obs::enable();
  const std::vector<std::uint64_t> counters_before = obs::counter_values();
  (void)exhaustive_coverage(gen_cone, opt);
  const std::vector<std::uint64_t> counters_after = obs::counter_values();
  // Same delta idiom for the planned sweep, whose plan-resolution counters
  // (analyze.*) land in the artifact's "analyzed" block.
  (void)exhaustive_coverage(gen_cone, planned_opt);
  const std::vector<std::uint64_t> counters_planned = obs::counter_values();
  if (!was_enabled) obs::disable();
  const auto counter_delta = [&](obs::Counter c) {
    const auto idx = static_cast<std::size_t>(c);
    return counters_after[idx] - counters_before[idx];
  };
  const auto planned_delta = [&](obs::Counter c) {
    const auto idx = static_cast<std::size_t>(c);
    return counters_planned[idx] - counters_after[idx];
  };
  const std::uint64_t ac_collapsed =
      planned_delta(obs::Counter::kAnalyzeCollapsedFaults);
  const std::uint64_t ac_untestable =
      planned_delta(obs::Counter::kAnalyzeProvedUntestable);
  const std::uint64_t ac_residue = planned_delta(obs::Counter::kAnalyzeResidueResims);
  const std::uint64_t kc_ranges = counter_delta(obs::Counter::kKernelRangesRun);
  const std::uint64_t kc_batches = counter_delta(obs::Counter::kKernelBatches);
  const std::uint64_t kc_lanes = counter_delta(obs::Counter::kKernelLanesSwept);
  const std::uint64_t kc_groups = counter_delta(obs::Counter::kKernelFaultGroups);
  const std::uint64_t kc_popped = counter_delta(obs::Counter::kKernelEventsPopped);
  const std::uint64_t kc_suppressed =
      counter_delta(obs::Counter::kKernelEventsSuppressed);
  const std::uint64_t kc_early = counter_delta(obs::Counter::kKernelEarlyExits);
  const std::uint64_t kc_dropped = counter_delta(obs::Counter::kKernelFaultsDropped);
  const double kc_dropped_per_batch =
      kc_batches ? static_cast<double>(kc_dropped) / static_cast<double>(kc_batches)
                 : 0.0;
  std::cout << "  kernel counters: " << kc_batches << " batches (" << kc_lanes
            << " lanes), " << kc_groups << " fault groups, " << kc_popped
            << " events popped (" << kc_suppressed << " suppressed), "
            << kc_dropped << " faults dropped (" << kc_dropped_per_batch
            << "/batch)\n";

  // ------------------------------------------- ISCAS-style compile ---
  const Netlist iscas_nl = load_benchmark(circuit);
  MercedConfig config;
  config.lk = lk;
  const MercedResult plan = compile(iscas_nl, config);
  const CircuitGraph iscas_graph(iscas_nl);

  std::vector<ConeSimulator> cones;
  std::size_t iscas_faults = 0;
  for (std::size_t ci = 0; ci < plan.partitions.count(); ++ci) {
    ConeSimulator cone(iscas_graph, plan.partitions, ci);
    if (cone.gates().empty() || cone.cut_inputs().empty()) continue;
    iscas_faults += cone.cluster_faults().size();
    cones.push_back(std::move(cone));
  }
  std::cout << "\niscas: " << circuit << " (lk=" << lk << "), " << cones.size()
            << " CUTs, " << iscas_faults << " collapsed faults\n";

  std::vector<CoverageResult> iscas_naive;
  const double iscas_naive_s = time_seconds([&] {
    for (const ConeSimulator& cone : cones) {
      CoverageOptions o;
      o.max_inputs = lk;
      o.naive = true;
      iscas_naive.push_back(exhaustive_coverage(cone, o));
    }
  });
  std::vector<CoverageResult> iscas_kernel;
  const double iscas_kernel_s = time_seconds([&] {
    for (const ConeSimulator& cone : cones) {
      CoverageOptions o;
      o.max_inputs = lk;
      o.u64_oracle = true;
      iscas_kernel.push_back(exhaustive_coverage(cone, o));
    }
  });
  std::vector<CoverageResult> iscas_simd;
  const double iscas_simd_s = time_seconds([&] {
    for (const ConeSimulator& cone : cones) {
      CoverageOptions o;
      o.max_inputs = lk;
      iscas_simd.push_back(exhaustive_coverage(cone, o));
    }
  });
  for (std::size_t i = 0; i < cones.size(); ++i) {
    if (!same_coverage(iscas_kernel[i], iscas_naive[i])) {
      std::cerr << "FATAL: kernel CoverageResult differs from naive oracle on "
                << circuit << " CUT " << i << "\n";
      return 1;
    }
    if (!same_coverage(iscas_simd[i], iscas_naive[i])) {
      std::cerr << "FATAL: SIMD CoverageResult differs from naive oracle on "
                << circuit << " CUT " << i << "\n";
      return 1;
    }
  }
  const double iscas_speedup = iscas_naive_s / iscas_kernel_s;
  std::cout << "  naive:  " << iscas_naive_s << " s\n"
            << "  u64 kernel: " << iscas_kernel_s << " s  (speedup " << iscas_speedup
            << "x)\n"
            << "  simd " << best_width << ": " << iscas_simd_s << " s  ("
            << iscas_kernel_s / iscas_simd_s << "x vs u64)\n";

  // ---------------------------------------- observability guardrail ---
  // Times the generated-cone kernel sweep with the collector disabled (the
  // null-sink path a production run pays) and enabled (worst case). Min of
  // several repetitions on each side; the 2 ms absolute slack keeps the 2%
  // budget meaningful on sub-millisecond --smoke sweeps without masking a
  // real regression on the full workload.
  constexpr int kOverheadReps = 5;
  constexpr double kBudgetRatio = 1.02;
  constexpr double kSlackSeconds = 0.002;
  const bool keep_enabled = obs::enabled();
  const auto min_sweep_seconds = [&] {
    double best = 0;
    for (int rep = 0; rep < kOverheadReps; ++rep) {
      const double s =
          time_seconds([&] { (void)exhaustive_coverage(gen_cone, opt); });
      if (rep == 0 || s < best) best = s;
    }
    return best;
  };
  obs::disable();
  const double obs_off_s = min_sweep_seconds();
  obs::enable();
  const double obs_on_s = min_sweep_seconds();
  if (!keep_enabled) obs::disable();
  const double obs_ratio = obs_on_s / obs_off_s;
  std::cout << "\nobs overhead: disabled " << obs_off_s << " s, enabled "
            << obs_on_s << " s (ratio " << obs_ratio << ", budget "
            << kBudgetRatio << ")\n";
  if (obs_on_s > obs_off_s * kBudgetRatio + kSlackSeconds) {
    std::cerr << "FATAL: observability overhead " << obs_on_s << " s exceeds "
              << obs_off_s << " s * " << kBudgetRatio << " + " << kSlackSeconds
              << " s\n";
    return 1;
  }

  // --------------------------------------------- SIMD width guardrail ---
  // When a backend wider than 64 exists, the widest one must actually beat
  // the u64 baseline: lanes that don't pay for themselves are a regression
  // even if every conformance check passes. The full-run floor sits well
  // under the ~4x a 512-bit sweep measures on the full generated cone so
  // jittery CI boxes don't flake while a backend that silently degrades to
  // scalar (speedup ~1x) still fails. The --smoke cone is only 8 batches —
  // too few to amortize per-sweep scalar setup (measured ~1.7x) — so smoke
  // asserts the looser floor and the JSON records whichever was applied.
  const double kMinWidestSpeedupVsU64 = smoke ? 1.25 : 2.0;
  if (best_width > 64) {
    const double widest_speedup = width_runs.back().speedup_vs_u64;
    std::cout << "simd guardrail: widest (" << best_width << ") speedup "
              << widest_speedup << "x vs u64 (floor " << kMinWidestSpeedupVsU64
              << "x)\n";
    if (widest_speedup < kMinWidestSpeedupVsU64) {
      std::cerr << "FATAL: widest SIMD backend (" << best_width << ") speedup "
                << widest_speedup << "x is below the " << kMinWidestSpeedupVsU64
                << "x floor vs the u64 kernel\n";
      return 1;
    }
  } else {
    std::cout << "simd guardrail: skipped (only width 64 supported)\n";
  }

  // -------------------------------------------- jobs scaling guardrail ---
  // Within-core rows must keep parallel efficiency (speedup / jobs) above a
  // conservative floor; beyond-core rows are recorded in the artifact but
  // assert nothing — a 1-core box cannot speed up at jobs=8 and failing it
  // for that would be asserting a fiction.
  constexpr double kMinParallelEfficiency = 0.35;
  for (const Run& r : jobs_runs) {
    if (r.jobs <= 1 || !r.within_cores) continue;
    if (r.efficiency < kMinParallelEfficiency) {
      std::cerr << "FATAL: jobs=" << r.jobs << " parallel efficiency "
                << r.efficiency << " is below the " << kMinParallelEfficiency
                << " floor (speedup " << r.speedup << "x on " << cores
                << " cores)\n";
      return 1;
    }
  }

  // --------------------------------------------------------- JSON out ---
  // The artifact body is built once and written to BENCH_simkernel.json and
  // (on MERCED_UPDATE_BASELINE=1 with --baseline) the baseline snapshot.
  std::ostringstream json;
  json << "{\n  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n  \"cpu\": \"" << json_escaped(obs::cpu_model_string()) << "\""
       << ",\n  \"generated\": {\"inputs\": " << gen_cone.cut_inputs().size()
       << ", \"gates\": " << gen_cone.gates().size()
       << ", \"collapsed_faults\": " << gen_faults
       << ", \"naive_seconds\": " << naive_s << ", \"kernel_seconds\": " << kernel_s
       << ", \"speedup\": " << speedup << ",\n    \"simd\": {\"widths_supported\": [";
  for (std::size_t i = 0; i < widths_supported.size(); ++i) {
    if (i) json << ", ";
    json << widths_supported[i];
  }
  json << "], \"best_width\": " << best_width << ", \"width_runs\": ";
  json_width_runs(json, width_runs);
  json << ", \"min_widest_speedup_vs_u64\": " << kMinWidestSpeedupVsU64
       << "},\n    \"jobs_runs\": ";
  json_runs(json, jobs_runs);
  json << ",\n    \"kernel_counters\": {\"ranges_run\": " << kc_ranges
       << ", \"batches\": " << kc_batches << ", \"lanes_swept\": " << kc_lanes
       << ", \"fault_groups\": " << kc_groups
       << ", \"events_popped\": " << kc_popped
       << ", \"events_suppressed\": " << kc_suppressed
       << ", \"early_exits\": " << kc_early
       << ", \"faults_dropped\": " << kc_dropped
       << ", \"faults_dropped_per_batch\": " << kc_dropped_per_batch << "},\n"
       << "    \"analyzed\": {\"analyze_seconds\": " << analyze_s
       << ", \"planned_seconds\": " << planned_s
       << ", \"swept\": " << gen_analysis.swept
       << ", \"copied\": " << gen_analysis.copied
       << ", \"inferred\": " << gen_analysis.inferred
       << ", \"untestable\": " << gen_analysis.untestable
       << ", \"collapse_ratio\": " << gen_analysis.collapse_ratio()
       << ", \"untestable_share\": " << gen_analysis.untestable_share()
       << ", \"collapsed_faults\": " << ac_collapsed
       << ", \"proved_untestable\": " << ac_untestable
       << ", \"residue_resims\": " << ac_residue
       << ", \"sweep_speedup\": " << planned_speedup
       << ", \"min_sweep_speedup\": " << kMinSweepSpeedup
       << ", \"with_analysis_speedup\": " << with_analysis_speedup
       << ", \"break_even_sweeps\": " << break_even_sweeps << "}"
       << "},\n  \"iscas\": {\"circuit\": \"" << circuit << "\", \"lk\": " << lk
       << ", \"cuts\": " << cones.size()
       << ", \"collapsed_faults\": " << iscas_faults
       << ", \"naive_seconds\": " << iscas_naive_s
       << ", \"kernel_seconds\": " << iscas_kernel_s
       << ", \"speedup\": " << iscas_speedup
       << ", \"simd_seconds\": " << iscas_simd_s
       << ", \"simd_width\": " << best_width
       << ", \"simd_speedup_vs_u64\": " << iscas_kernel_s / iscas_simd_s
       << "},\n  \"obs_overhead\": {\"disabled_seconds\": " << obs_off_s
       << ", \"enabled_seconds\": " << obs_on_s << ", \"ratio\": " << obs_ratio
       << ", \"budget_ratio\": " << kBudgetRatio
       << "},\n  \"conformance\": \"ok\"\n}\n";
  std::ofstream("BENCH_simkernel.json") << json.str();
  std::cout << "\nwrote BENCH_simkernel.json\n";

  // One-line trajectory record, append-only: the headline numbers of this
  // run plus enough identity (host, workload) to group the series later.
  if (!history_path.empty()) {
    std::ofstream history(history_path, std::ios::app);
    if (!history) {
      std::cerr << "error: cannot append to " << history_path << "\n";
      return 1;
    }
    history << "{\"utc\": \"" << utc_timestamp() << "\", \"smoke\": "
            << (smoke ? "true" : "false") << ", \"cpu\": \""
            << json_escaped(obs::cpu_model_string()) << "\", \"hardware_concurrency\": "
            << std::thread::hardware_concurrency() << ", \"circuit\": \""
            << json_escaped(circuit) << "\", \"lk\": " << lk
            << ", \"gen_inputs\": " << num_inputs << ", \"gen_gates\": " << num_gates
            << ", \"kernel_seconds\": " << kernel_s << ", \"speedup\": " << speedup
            << ", \"best_width\": " << best_width << ", \"widest_speedup_vs_u64\": "
            << (width_runs.empty() ? 0.0 : width_runs.back().speedup_vs_u64)
            << ", \"sweep_speedup_planned\": " << planned_speedup
            << ", \"iscas_kernel_seconds\": " << iscas_kernel_s
            << ", \"iscas_speedup\": " << iscas_speedup
            << ", \"obs_ratio\": " << obs_ratio
            << ", \"peak_rss_bytes\": " << obs::peak_rss_bytes() << "}\n";
    std::cout << "appended " << history_path << "\n";
  }

  // Baseline refresh: same env-gated idiom as the golden tables. Without
  // MERCED_UPDATE_BASELINE=1 the committed snapshot is read-only here;
  // merced_metrics_diff compares against it (CI perf-sentinel).
  if (!baseline_path.empty()) {
    const char* update = std::getenv("MERCED_UPDATE_BASELINE");
    if (update != nullptr && std::string(update) == "1") {
      std::ofstream out(baseline_path);
      if (!out) {
        std::cerr << "error: cannot write " << baseline_path << "\n";
        return 1;
      }
      out << json.str();
      std::cout << "refreshed baseline " << baseline_path << "\n";
    } else {
      std::cout << "baseline " << baseline_path
                << " untouched (set MERCED_UPDATE_BASELINE=1 to refresh)\n";
    }
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "error: cannot write " << trace_path << "\n";
      return 1;
    }
    obs::write_chrome_trace(out);
    std::cout << "wrote " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      return 1;
    }
    obs::RunInfo run;
    run.tool = "bench_exhaustive_kernel";
    run.circuit = circuit;
    run.lk = lk;
    run.jobs = 1;
    run.starts = 1;
    run.simd = best_width;
    obs::MetricsRegistry::capture(run).write_json(out);
    std::cout << "wrote " << metrics_path << "\n";
  }
  return 0;
}
