// Shared runner for the Table 10/11/12 partition benches.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "circuits/registry.h"
#include "core/merced.h"
#include "core/paper_data.h"
#include "core/table_printer.h"

namespace merced::benchrun {

/// Runs the compiler on every named circuit at one lk and prints the
/// Table 10/11 columns (measured | paper).
inline std::vector<MercedResult> run_partition_table(
    const std::vector<std::string>& names, std::size_t lk,
    std::span<const paper::PartitionRow> paper_rows) {
  TablePrinter t({"circuit", "DFFs", "DFFs on SCC", "(paper)", "cuts on SCC", "(paper)",
                  "nets cut", "(paper)", "CPU s", "(Sparc10 s)"});
  std::vector<MercedResult> results;
  for (const std::string& name : names) {
    const Netlist nl = load_benchmark(name);
    MercedConfig config;
    config.lk = lk;
    const MercedResult r = compile(nl, config);
    std::optional<paper::PartitionRow> row;
    for (const auto& pr : paper_rows) {
      if (pr.name == name) row = pr;
    }
    auto paper_num = [&](auto get) {
      return row ? std::to_string(get(*row)) : std::string("-");
    };
    t.add_row({name, std::to_string(r.stats.num_dffs), std::to_string(r.dffs_on_scc),
               paper_num([](const auto& x) { return x.dffs_on_scc; }),
               std::to_string(r.cuts.cut_nets_on_scc),
               paper_num([](const auto& x) { return x.cut_nets_on_scc; }),
               std::to_string(r.cuts.nets_cut),
               paper_num([](const auto& x) { return x.nets_cut; }),
               TablePrinter::num(r.total_seconds, 2),
               row ? TablePrinter::num(row->cpu_seconds, 2) : std::string("-")});
    results.push_back(std::move(r));
    std::cerr << "  [" << name << " done]\n";
  }
  t.print(std::cout);
  return results;
}

}  // namespace merced::benchrun
