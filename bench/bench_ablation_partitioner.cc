// Ablation: flow-based clustering (this paper) vs the authors' earlier
// simulated-annealing PIC partitioner (CICC 1994, reference [4]).
//
// DESIGN.md calls this design choice out: the probabilistic
// multicommodity-flow saturation replaced SA because it reaches comparable
// cut quality at a fraction of the runtime. Both partitioners run under the
// same model (ι ≤ l_k = 16) on the small/mid circuits.
#include <chrono>
#include <iostream>

#include "circuits/registry.h"
#include "core/merced.h"
#include "core/table_printer.h"
#include "graph/circuit_graph.h"
#include "partition/assign_cbit.h"
#include "partition/sa_partition.h"

int main() {
  using namespace merced;
  std::cout << "Ablation: flow-based clustering (Merced) vs simulated annealing [4]\n"
            << "l_k = 16; SA runs from a singleton seed.\n\n";
  TablePrinter t({"circuit", "flow cuts", "flow s", "SA cuts", "SA s", "SA feasible"});
  for (const char* name : {"s27", "s510", "s420.1", "s641", "s820", "s1423"}) {
    const Netlist nl = load_benchmark(name);
    const CircuitGraph g(nl);

    const auto t0 = std::chrono::steady_clock::now();
    MercedConfig config;
    config.lk = 16;
    const MercedResult flow = compile(nl, config);
    const double flow_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    const auto t1 = std::chrono::steady_clock::now();
    SaParams sp;
    sp.lk = 16;
    sp.seed = 42;
    const SaResult sa = sa_partition(g, singleton_clustering(g), sp);
    const double sa_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

    t.add_row({name, std::to_string(flow.cuts.nets_cut), TablePrinter::num(flow_s, 2),
               std::to_string(sa.nets_cut), TablePrinter::num(sa_s, 2),
               sa.feasible ? "yes" : "NO"});
    std::cerr << "  [" << name << " done]\n";
  }
  t.print(std::cout);
  std::cout << "\nSA optimizes the cut count directly and wins on quality for small\n"
               "circuits — at ~5-6x the runtime even here, with move counts that\n"
               "scale superlinearly. The flow heuristic is what lets Merced finish\n"
               "the 20k-cell circuits in seconds-to-minutes (Tables 10/11), which is\n"
               "exactly the trade the paper made over its own earlier SA tool [4].\n";
  return 0;
}
