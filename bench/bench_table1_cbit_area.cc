// Reproduces Table 1: "Area Cost for Various CBIT Sizes".
//
// Columns: CBIT type d_k, length l_k, area per DFF p_k, per-bit cost σ_k.
// We print the paper's published values next to the first-principles model
// (l_k A_CELLs + primitive-polynomial feedback XORs + fitted per-bit
// steering overhead; see src/bist/cbit_area.h).
#include <iostream>

#include "bist/cbit_area.h"
#include "bist/polynomials.h"
#include "core/table_printer.h"

int main() {
  using namespace merced;
  std::cout << "Table 1: Area cost for various CBIT sizes\n"
            << "(p_k = CBIT area / DFF area; paper values vs first-principles model)\n\n";
  TablePrinter t({"d_k", "l_k", "taps", "p_k (paper)", "p_k (model)", "sigma_k (paper)",
                  "sigma_k (model)", "model err %"});
  for (const CbitAreaRow& row : published_cbit_areas()) {
    const double model = modeled_area_per_dff(row.length);
    t.add_row({"d" + std::to_string(row.type_index), std::to_string(row.length),
               std::to_string(primitive_taps(row.length).size()),
               TablePrinter::num(row.area_per_dff, 2), TablePrinter::num(model, 2),
               TablePrinter::num(row.area_per_bit, 2),
               TablePrinter::num(model / row.length, 2),
               TablePrinter::num(100.0 * (model - row.area_per_dff) / row.area_per_dff,
                                 2)});
  }
  t.print(std::cout);
  std::cout << "\nA_CELL = 1.9 DFF (19 units); retimed conversion = 0.9 DFF; "
               "A_CELL + MUX = 2.3 DFF.\n";
  return 0;
}
