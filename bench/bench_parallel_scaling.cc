// Parallel-runtime scaling bench — emits BENCH_parallel.json.
//
// Measures wall-clock speedup of the two threaded hot paths at 1/2/4/8
// worker threads:
//  * sharded parallel-fault simulation (63 faults per machine word, one
//    group per work item) on the largest generated ISCAS-like circuit;
//  * multi-start Saturate_Network (8 independent seeds fanned out).
//
// Both paths are checked for thread-count independence while timing: the
// detected-fault signature and the per-start flow vectors must be identical
// at every jobs value, so a scheduling bug fails the bench rather than
// skewing a table. JSON schema:
//
//   { "hardware_concurrency": N,
//     "fault_sim": { "circuit": ..., "faults": N, "cycles": N,
//                    "runs": [ {"jobs":1,"seconds":s,"speedup":x}, ... ] },
//     "multi_start_saturate": { "circuit": ..., "starts": K, "runs": [...] } }
//
// With --trace / --metrics the obs collector records the whole run and the
// observability artifacts are written next to BENCH_parallel.json.
//
// Usage: bench_parallel_scaling [--fault-circuit name] [--flow-circuit name]
//                               [--cycles N] [--max-faults N] [--quick]
//                               [--trace FILE] [--metrics FILE]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.h"
#include "flow/saturate_network.h"
#include "graph/circuit_graph.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "sim/fault.h"
#include "sim/fault_sim.h"

namespace {

using Clock = std::chrono::steady_clock;

double time_seconds(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Run {
  std::size_t jobs;
  double seconds;
  double speedup;
};

void print_runs(std::ostream& os, const std::vector<Run>& runs) {
  for (const Run& r : runs) {
    os << "  jobs=" << r.jobs << ": " << r.seconds << " s  (speedup " << r.speedup
       << "x)\n";
  }
}

void json_runs(std::ostream& os, const std::vector<Run>& runs) {
  os << "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) os << ", ";
    os << "{\"jobs\": " << runs[i].jobs << ", \"seconds\": " << runs[i].seconds
       << ", \"speedup\": " << runs[i].speedup << "}";
  }
  os << "]";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace merced;

  // The two largest suite circuits by cell count; the flow circuit is
  // smaller because one saturation of a 20k-cell graph is minutes of
  // Dijkstra, which would make the bench unusable in CI.
  std::string fault_circuit = "s38584.1";
  std::string flow_circuit = "s1423";
  std::size_t cycles = 64;
  std::size_t max_faults = 63 * 64;  // 64 machine-word groups
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quick") {
      fault_circuit = "s5378";
      flow_circuit = "s838.1";
      cycles = 32;
      max_faults = 63 * 16;
    } else if (flag == "--fault-circuit" && i + 1 < argc) {
      fault_circuit = argv[++i];
    } else if (flag == "--flow-circuit" && i + 1 < argc) {
      flow_circuit = argv[++i];
    } else if (flag == "--cycles" && i + 1 < argc) {
      cycles = std::stoul(argv[++i]);
    } else if (flag == "--max-faults" && i + 1 < argc) {
      max_faults = std::stoul(argv[++i]);
    } else if (flag == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (flag == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "usage: bench_parallel_scaling [--fault-circuit name] "
                   "[--flow-circuit name] [--cycles N] [--max-faults N] [--quick] "
                   "[--trace FILE] [--metrics FILE]\n";
      return 2;
    }
  }
  if (!trace_path.empty() || !metrics_path.empty()) merced::obs::enable();

  const std::vector<std::size_t> jobs_sweep = {1, 2, 4, 8};
  std::cout << "Parallel scaling bench (hardware_concurrency = "
            << std::thread::hardware_concurrency() << ")\n\n";

  // ------------------------------------------------ sharded fault sim ---
  const Netlist fault_nl = load_benchmark(fault_circuit);
  std::vector<Fault> faults = collapse_faults(fault_nl, enumerate_faults(fault_nl));
  if (faults.size() > max_faults) faults.resize(max_faults);

  std::mt19937_64 rng(20260805);
  std::vector<std::vector<bool>> stream(cycles,
                                        std::vector<bool>(fault_nl.inputs().size()));
  for (auto& v : stream) {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng() & 1;
  }
  const std::vector<bool> init(fault_nl.dffs().size(), false);

  std::cout << "fault_sim: " << fault_circuit << ", " << faults.size() << " faults, "
            << cycles << " cycles\n";
  std::vector<Run> fault_runs;
  FaultSimResult reference;
  for (std::size_t jobs : jobs_sweep) {
    FaultSimResult r;
    const double s =
        time_seconds([&] { r = simulate_faults(fault_nl, faults, stream, init, jobs); });
    if (jobs == jobs_sweep.front()) {
      reference = r;
    } else if (r.detected != reference.detected ||
               r.detect_cycle != reference.detect_cycle) {
      std::cerr << "FATAL: fault_sim output differs at jobs=" << jobs << "\n";
      return 1;
    }
    fault_runs.push_back({jobs, s, fault_runs.empty() ? 1.0 : fault_runs[0].seconds / s});
  }
  print_runs(std::cout, fault_runs);

  // ---------------------------------------- multi-start saturation ---
  const std::size_t starts = 8;
  const Netlist flow_nl = load_benchmark(flow_circuit);
  const CircuitGraph graph(flow_nl);
  SaturateParams params;
  std::cout << "\nmulti_start_saturate: " << flow_circuit << ", " << starts
            << " starts\n";
  std::vector<Run> flow_runs;
  std::vector<SaturationResult> flow_reference;
  for (std::size_t jobs : jobs_sweep) {
    std::vector<SaturationResult> r;
    const double s = time_seconds([&] {
      ThreadPool pool(jobs);
      r = saturate_network_multistart(graph, params, starts, pool);
    });
    if (jobs == jobs_sweep.front()) {
      flow_reference = std::move(r);
    } else {
      for (std::size_t k = 0; k < starts; ++k) {
        if (r[k].flow != flow_reference[k].flow) {
          std::cerr << "FATAL: saturation start " << k << " differs at jobs=" << jobs
                    << "\n";
          return 1;
        }
      }
    }
    flow_runs.push_back({jobs, s, flow_runs.empty() ? 1.0 : flow_runs[0].seconds / s});
  }
  print_runs(std::cout, flow_runs);

  // --------------------------------------------------------- JSON out ---
  std::ofstream json("BENCH_parallel.json");
  json << "{\n  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n  \"fault_sim\": {\"circuit\": \"" << fault_circuit
       << "\", \"faults\": " << faults.size() << ", \"cycles\": " << cycles
       << ", \"runs\": ";
  json_runs(json, fault_runs);
  json << "},\n  \"multi_start_saturate\": {\"circuit\": \"" << flow_circuit
       << "\", \"starts\": " << starts << ", \"runs\": ";
  json_runs(json, flow_runs);
  json << "}\n}\n";
  std::cout << "\nwrote BENCH_parallel.json\n";

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "error: cannot write " << trace_path << "\n";
      return 1;
    }
    obs::write_chrome_trace(out);
    std::cout << "wrote " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      return 1;
    }
    obs::RunInfo run;
    run.tool = "bench_parallel_scaling";
    run.circuit = fault_circuit;
    run.lk = 0;
    run.jobs = jobs_sweep.back();
    run.starts = starts;
    obs::MetricsRegistry::capture(run).write_json(out);
    std::cout << "wrote " << metrics_path << "\n";
  }
  return 0;
}
