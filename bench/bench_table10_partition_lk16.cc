// Reproduces Table 10: "Partition Results for l_k = 16" over the 17-circuit
// suite — DFFs on SCC, cut nets on SCC, nets cut, CPU time; measured
// next to the published values.
//
// Absolute cut counts differ from the paper (the netlists are synthesized
// to the published statistics, not the MCNC originals); the qualitative
// shapes to check: cut counts grow with circuit size, and circuits with
// high DFF-on-SCC fractions put most of their cuts on SCCs.
#include <iostream>
#include <string>
#include <vector>

#include "partition_bench_common.h"

int main() {
  using namespace merced;
  std::cout << "Table 10: partition results for l_k = 16 (measured | paper)\n\n";
  std::vector<std::string> names;
  for (const auto& row : paper::table10_lk16()) names.emplace_back(row.name);
  benchrun::run_partition_table(names, 16, paper::table10_lk16());
  std::cout << "\nCPU seconds: this machine vs the paper's SUN Sparc10.\n";
  return 0;
}
