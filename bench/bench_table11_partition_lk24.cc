// Reproduces Table 11: "Partition Results for l_k = 24" — the ten circuits
// the paper lists (the ones with internal cuts at l_k = 24).
//
// Key shape vs Table 10: the wider CBIT accommodates more nets, so every
// circuit cuts fewer nets at l_k = 24 than at l_k = 16.
#include <iostream>
#include <string>
#include <vector>

#include "partition_bench_common.h"

int main() {
  using namespace merced;
  std::cout << "Table 11: partition results for l_k = 24 (measured | paper)\n\n";
  std::vector<std::string> names;
  for (const auto& row : paper::table11_lk24()) names.emplace_back(row.name);
  benchrun::run_partition_table(names, 24, paper::table11_lk24());
  std::cout << "\nCompare the 'nets cut' column with Table 10: larger CBITs cut fewer"
               " nets.\n";
  return 0;
}
