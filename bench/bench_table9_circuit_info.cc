// Reproduces Table 9: "Circuit Information of Selected ISCAS89 Benchmark
// Circuits" — the statistics of our benchmark suite against the published
// values. s27 is the exact MCNC netlist; the other 16 circuits are
// synthesized to match their published statistics (see DESIGN.md).
#include <cstdlib>
#include <iostream>

#include "circuits/registry.h"
#include "core/table_printer.h"
#include "netlist/stats.h"

int main() {
  using namespace merced;
  std::cout << "Table 9: circuit statistics (measured | published)\n\n";
  TablePrinter t({"circuit", "PIs", "DFFs", "gates", "INVs", "area", "area (paper)",
                  "area err %"});
  bool ok = true;
  for (const BenchmarkEntry& e : benchmark_suite()) {
    if (e.spec.name == "s27") continue;  // not part of Table 9
    const Netlist nl = load_benchmark(e.spec.name);
    const CircuitStats s = compute_stats(nl);
    const double err = 100.0 *
                       (static_cast<double>(s.estimated_area) -
                        static_cast<double>(e.spec.target_area)) /
                       static_cast<double>(e.spec.target_area);
    t.add_row({s.name, std::to_string(s.num_inputs), std::to_string(s.num_dffs),
               std::to_string(s.num_gates), std::to_string(s.num_invs),
               std::to_string(s.estimated_area), std::to_string(e.spec.target_area),
               TablePrinter::num(err, 2)});
    ok = ok && s.num_inputs == e.spec.num_pis && s.num_dffs == e.spec.num_dffs &&
         s.num_gates == e.spec.num_gates && s.num_invs == e.spec.num_invs &&
         std::abs(err) < 2.0;
  }
  t.print(std::cout);
  std::cout << (ok ? "\nAll counts exact; areas within 2% of Table 9.\n"
                   : "\nWARNING: some statistics deviate from Table 9.\n");
  return ok ? 0 : 1;
}
