// Reproduces Table 12 and Figure 8: "CBIT Area Comparison for l_k = 16 and
// l_k = 24" — A_CBIT / A_Total with and without retiming.
//
// Accounting (paper §4.2): with retiming, each retimable cut costs 0.9 DFF
// (three added gates, Fig. 3b); cuts exceeding an SCC's register supply
// cost 2.3 DFF (A_CELL + MUX, Fig. 3c). Without retiming every internal cut
// costs 2.3 DFF. The flow saturation is reused across the two l_k runs.
#include <iostream>
#include <string>
#include <vector>

#include "circuits/registry.h"
#include "core/merced.h"
#include "core/paper_data.h"
#include "core/table_printer.h"

int main() {
  using namespace merced;
  std::cout << "Table 12: A_CBIT / A_Total (%) with and without retiming\n"
            << "          (measured | paper)\n\n";
  TablePrinter t({"circuit", "w/ ret 16", "(paper)", "w/o ret 16", "(paper)",
                  "w/ ret 24", "(paper)", "w/o ret 24", "(paper)"});

  struct Saving {
    std::string name;
    double points16, points24, relative16;
  };
  std::vector<Saving> savings;
  double sum_rel = 0, sum_pts = 0;
  std::size_t n_nonzero = 0;

  for (const auto& row : paper::table12()) {
    const Netlist nl = load_benchmark(row.name);
    MercedConfig config;
    const PreparedCircuit prepared(nl, config.flow);

    config.lk = 16;
    const MercedResult r16 = compile(prepared, config);
    config.lk = 24;
    const MercedResult r24 = compile(prepared, config);

    t.add_row({std::string(row.name), TablePrinter::num(r16.area.pct_with_retiming(), 1),
               TablePrinter::num(row.with_retiming_16, 1),
               TablePrinter::num(r16.area.pct_without_retiming(), 1),
               TablePrinter::num(row.without_retiming_16, 1),
               TablePrinter::num(r24.area.pct_with_retiming(), 1),
               TablePrinter::num(row.with_retiming_24, 1),
               TablePrinter::num(r24.area.pct_without_retiming(), 1),
               TablePrinter::num(row.without_retiming_24, 1)});

    const double pts16 =
        r16.area.pct_without_retiming() - r16.area.pct_with_retiming();
    const double pts24 =
        r24.area.pct_without_retiming() - r24.area.pct_with_retiming();
    savings.push_back({std::string(row.name), pts16, pts24, r16.area.saving_relative()});
    if (r16.cuts.nets_cut > 0) {
      sum_rel += r16.area.saving_relative();
      sum_pts += pts16;
      ++n_nonzero;
    }
    std::cerr << "  [" << row.name << " done]\n";
  }
  t.print(std::cout);

  std::cout << "\nFigure 8: retiming saving per circuit, l_k = 16 "
               "(percentage points of A_CBIT/A_Total)\n";
  for (const Saving& s : savings) {
    std::cout << "  " << s.name;
    for (std::size_t pad = s.name.size(); pad < 10; ++pad) std::cout << ' ';
    std::cout << "|";
    for (int i = 0; i < static_cast<int>(s.points16 * 2); ++i) std::cout << '#';
    std::cout << " " << TablePrinter::num(s.points16, 1) << " pts\n";
  }
  if (n_nonzero > 0) {
    std::cout << "\nAverages over circuits with internal cuts (l_k = 16): "
              << TablePrinter::num(sum_pts / static_cast<double>(n_nonzero), 1)
              << " percentage points; CBIT-area reduction "
              << TablePrinter::num(sum_rel / static_cast<double>(n_nonzero), 1)
              << "% (paper: average ~20% area reduction, 2%..32% per circuit).\n";
  }
  return 0;
}
