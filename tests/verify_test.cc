// Mutation tests for the static verification pass (src/verify).
//
// Strategy: every rule in the catalog gets at least one test that injects
// exactly that violation into an otherwise-healthy artifact and asserts the
// rule — and only where stated, that rule — fires. A checker that merely
// rubber-stamps (returns clean for everything) or over-fires (flags healthy
// artifacts) fails this suite symmetrically: pristine registry circuits
// must produce zero errors, each mutation must produce the named rule ID.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/registry.h"
#include "core/merced.h"
#include "graph/circuit_graph.h"
#include "graph/scc.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "obs/json.h"
#include "partition/clustering.h"
#include "retiming/cut_retiming.h"
#include "retiming/retime_graph.h"
#include "verify/diagnostic.h"
#include "verify/verify.h"
#include "verify/verify_json.h"

namespace merced {
namespace {

using verify::CompiledView;
using verify::Report;
using verify::Severity;

// ------------------------------------------------------- netlist DRC ---

TEST(VerifyNetlistTest, CombinationalCycleFires) {
  // x = AND(a, y), y = BUF(x): a register-free loop. finalize() would
  // reject this, which is exactly why the checker must not require it.
  Netlist nl("cycle");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId x = nl.add_gate(GateType::kAnd, "x");
  const GateId y = nl.add_gate(GateType::kBuf, "y");
  nl.set_fanins(x, {a, y});
  nl.set_fanins(y, {x});
  const Report rep = verify::verify_netlist(nl);
  EXPECT_EQ(rep.count_rule(verify::kNetCombCycle), 1u);
  EXPECT_GE(rep.errors(), 1u);
}

TEST(VerifyNetlistTest, UndrivenGateFires) {
  Netlist nl("undriven");
  nl.add_gate(GateType::kInput, "a");
  nl.add_gate(GateType::kAnd, "orphan");  // fanins never set
  const Report rep = verify::verify_netlist(nl);
  EXPECT_EQ(rep.count_rule(verify::kNetUndriven), 1u);
}

TEST(VerifyNetlistTest, ArityViolationFires) {
  Netlist nl("arity");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId y = nl.add_gate(GateType::kNot, "y");
  nl.set_fanins(y, {a, b});  // NOT takes exactly one fanin
  nl.mark_output(y);
  const Report rep = verify::verify_netlist(nl);
  EXPECT_EQ(rep.count_rule(verify::kNetArity), 1u);
  EXPECT_EQ(rep.count_rule(verify::kNetUndriven), 0u);
}

TEST(VerifyNetlistTest, DanglingNetWarns) {
  Netlist nl("dangling");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId y = nl.add_gate(GateType::kNot, "y");
  const GateId z = nl.add_gate(GateType::kNot, "z");  // nobody reads z
  nl.set_fanins(y, {a});
  nl.set_fanins(z, {a});
  nl.mark_output(y);
  const Report rep = verify::verify_netlist(nl);
  EXPECT_EQ(rep.count_rule(verify::kNetDangling), 1u);
  EXPECT_EQ(rep.errors(), 0u) << "dangling is a warning, not an error";
}

TEST(VerifyNetlistTest, UnreachableGateWarns) {
  // u drives v (so u is not dangling) but the u→v island never reaches an
  // output: u must be flagged unreachable.
  Netlist nl("unreachable");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId u = nl.add_gate(GateType::kNot, "u");
  const GateId v = nl.add_gate(GateType::kNot, "v");
  const GateId y = nl.add_gate(GateType::kNot, "y");
  nl.set_fanins(u, {a});
  nl.set_fanins(v, {u});
  nl.set_fanins(y, {a});
  nl.mark_output(y);
  const Report rep = verify::verify_netlist(nl);
  EXPECT_EQ(rep.count_rule(verify::kNetUnreachable), 1u);
}

TEST(VerifyNetlistTest, MultiDrivenFiresFromParserWithNameAndLine) {
  try {
    parse_bench("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n");
    FAIL() << "expected DiagnosticError";
  } catch (const verify::DiagnosticError& e) {
    EXPECT_EQ(e.diagnostic().rule, verify::kNetMultiDriven);
    EXPECT_EQ(e.diagnostic().object, "y");
    EXPECT_EQ(e.diagnostic().line, 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(VerifyNetlistTest, ParserUndrivenCarriesNameAndLine) {
  try {
    parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n");
    FAIL() << "expected DiagnosticError";
  } catch (const verify::DiagnosticError& e) {
    EXPECT_EQ(e.diagnostic().rule, verify::kNetUndriven);
    EXPECT_EQ(e.diagnostic().object, "ghost");
    EXPECT_EQ(e.diagnostic().line, 3u);
  }
}

// -------------------------------------------- mutation fixture (s510) ---

/// Compiles one registry circuit and exposes the pieces a CompiledView
/// needs. Each test copies `result`, injects one defect, and re-verifies.
class VerifyMutationTest : public ::testing::Test {
 protected:
  VerifyMutationTest()
      : nl_(load_benchmark("s510")),
        graph_(nl_),
        rgraph_(graph_),
        sccs_(find_sccs(graph_)),
        result_(compile(nl_, config_)) {}

  CompiledView view_of(const MercedResult& r) const {
    CompiledView v;
    v.partitions = &r.partitions;
    v.partition_inputs = r.partition_inputs;
    v.cut_net_ids = r.cut_net_ids;
    v.retiming = &r.retiming;
    v.feasible = r.feasible;
    v.lk = config_.lk;
    v.area_retimable_cuts = r.area.retimable_cuts;
    v.area_multiplexed_cuts = r.area.multiplexed_cuts;
    v.area_exact_retimable_cuts = r.area.exact_retimable_cuts;
    v.area_exact_multiplexed_cuts = r.area.exact_multiplexed_cuts;
    return v;
  }

  MercedConfig config_;
  Netlist nl_;
  CircuitGraph graph_;
  RetimeGraph rgraph_;
  SccInfo sccs_;
  MercedResult result_;
};

TEST_F(VerifyMutationTest, PristineArtifactIsClean) {
  const Report rep = verify::verify_artifact(graph_, rgraph_, sccs_, view_of(result_));
  EXPECT_EQ(rep.errors(), 0u) << "pristine s510 compile must verify clean";
}

TEST_F(VerifyMutationTest, PartCoverageFiresOnUnassignedNode) {
  MercedResult r = result_;
  // Unassign the first clustered node; the member list now disagrees too.
  for (std::size_t v = 0; v < r.partitions.cluster_of.size(); ++v) {
    if (r.partitions.cluster_of[v] != kNoCluster) {
      r.partitions.cluster_of[v] = kNoCluster;
      break;
    }
  }
  const Report rep = verify::verify_partition(graph_, view_of(r));
  EXPECT_GE(rep.count_rule(verify::kPartCoverage), 1u);
}

TEST_F(VerifyMutationTest, PartIotaFiresWhenConstraintTightens) {
  // Same partitions, but the view claims lk=2 while still claiming
  // feasibility: the Eq. 5 check must fire as an error.
  MercedResult r = result_;
  CompiledView v = view_of(r);
  ASSERT_TRUE(v.feasible);
  v.lk = 2;
  const Report rep = verify::verify_partition(graph_, v);
  EXPECT_GE(rep.count_rule(verify::kPartIota), 1u);
  EXPECT_EQ(rep.count_rule(verify::kPartIotaMismatch), 0u);
}

TEST_F(VerifyMutationTest, PartIotaIsInfoWhenArtifactAdmitsInfeasibility) {
  MercedResult r = result_;
  CompiledView v = view_of(r);
  v.lk = 2;
  v.feasible = false;  // honest self-report → property of the circuit
  const Report rep = verify::verify_partition(graph_, v);
  EXPECT_GE(rep.infos(), 1u);
  EXPECT_EQ(rep.errors(), 0u);
}

TEST_F(VerifyMutationTest, PartIotaMismatchFiresOnDriftedCount) {
  MercedResult r = result_;
  ASSERT_FALSE(r.partition_inputs.empty());
  r.partition_inputs[0] += 1;
  const Report rep = verify::verify_partition(graph_, view_of(r));
  EXPECT_EQ(rep.count_rule(verify::kPartIotaMismatch), 1u);
}

TEST_F(VerifyMutationTest, PartCutMissingFiresOnDroppedCut) {
  MercedResult r = result_;
  ASSERT_FALSE(r.cut_net_ids.empty());
  r.cut_net_ids.pop_back();
  const Report rep = verify::verify_partition(graph_, view_of(r));
  EXPECT_EQ(rep.count_rule(verify::kPartCutMissing), 1u);
}

TEST_F(VerifyMutationTest, PartCutExtraFiresOnBogusCut) {
  MercedResult r = result_;
  // A DFF-driven net can never be a cut net (cuts need a comb driver).
  ASSERT_FALSE(nl_.dffs().empty());
  r.cut_net_ids.push_back(graph_.net_of(nl_.dffs().front()));
  const Report rep = verify::verify_partition(graph_, view_of(r));
  EXPECT_EQ(rep.count_rule(verify::kPartCutExtra), 1u);
}

TEST_F(VerifyMutationTest, PartCutExtraFiresOnDuplicateCut) {
  MercedResult r = result_;
  ASSERT_FALSE(r.cut_net_ids.empty());
  r.cut_net_ids.push_back(r.cut_net_ids.front());
  const Report rep = verify::verify_partition(graph_, view_of(r));
  EXPECT_GE(rep.count_rule(verify::kPartCutExtra), 1u);
  EXPECT_EQ(rep.count_rule(verify::kPartCutMissing), 0u);
}

TEST_F(VerifyMutationTest, RetNegWeightFiresOnSkewedRho) {
  MercedResult r = result_;
  ASSERT_FALSE(r.retiming.rho.empty());
  ASSERT_FALSE(rgraph_.edges().empty());
  // A huge lag on one edge's tail makes that edge's retimed weight negative.
  r.retiming.rho[rgraph_.edges().front().from] += 1000;
  const Report rep = verify::verify_retiming(graph_, rgraph_, sccs_, view_of(r));
  EXPECT_GE(rep.count_rule(verify::kRetNegWeight), 1u);
}

TEST_F(VerifyMutationTest, RetCutUnregisteredFiresOnZeroedRho) {
  MercedResult r = result_;
  ASSERT_FALSE(r.retiming.retimable.empty())
      << "s510 must have retimable cuts for this mutation to bite";
  // The identity retiming leaves every comb→comb crossing with 0 registers,
  // so every claimed-retimable cut boundary is unsealed — but no edge goes
  // negative, isolating the rule.
  std::fill(r.retiming.rho.begin(), r.retiming.rho.end(), 0);
  const Report rep = verify::verify_retiming(graph_, rgraph_, sccs_, view_of(r));
  EXPECT_GE(rep.count_rule(verify::kRetCutUnregistered), 1u);
  EXPECT_EQ(rep.count_rule(verify::kRetNegWeight), 0u);
}

TEST_F(VerifyMutationTest, RetBookkeepingFiresOnDoubleListedNet) {
  MercedResult r = result_;
  ASSERT_FALSE(r.retiming.retimable.empty());
  r.retiming.retimable.push_back(r.retiming.retimable.front());
  const Report rep = verify::verify_retiming(graph_, rgraph_, sccs_, view_of(r));
  EXPECT_GE(rep.count_rule(verify::kRetBookkeeping), 1u);
}

TEST_F(VerifyMutationTest, RetBookkeepingFiresOnDriftedAreaCounts) {
  MercedResult r = result_;
  r.area.exact_retimable_cuts += 1;
  const Report rep = verify::verify_retiming(graph_, rgraph_, sccs_, view_of(r));
  EXPECT_GE(rep.count_rule(verify::kRetBookkeeping), 1u);
}

// ------------------------------------------- Eq. 2 cycle conservation ---

TEST(VerifyRetimingTest, CycleConservationFiresOnOverclaimedLoop) {
  // One DFF on the loop q → g1 → g2 → g3 → q, but TWO cut crossings are
  // claimed retimable (g1: c0→c1 and g2: c1→c0). Eq. 2 allows at most one
  // register on the cycle, so no legal ρ exists; the checker must prove it
  // without any ρ in hand (rho left empty → certificate rules skip).
  Netlist nl("loop");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId q = nl.add_gate(GateType::kDff, "q");
  const GateId g1 = nl.add_gate(GateType::kAnd, "g1");
  const GateId g2 = nl.add_gate(GateType::kNot, "g2");
  const GateId g3 = nl.add_gate(GateType::kNot, "g3");
  nl.set_fanins(g1, {a, q});
  nl.set_fanins(g2, {g1});
  nl.set_fanins(g3, {g2});
  nl.set_fanins(q, {g3});
  nl.mark_output(g3);
  nl.finalize();

  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  const SccInfo sccs = find_sccs(g);

  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters.resize(2);
  auto put = [&](NodeId v, std::int32_t ci) {
    c.cluster_of[v] = ci;
    c.clusters[static_cast<std::size_t>(ci)].push_back(v);
  };
  put(g1, 0);
  put(g3, 0);
  put(g2, 1);
  put(q, 1);

  CutRetimingPlan plan;
  plan.retimable = {g.net_of(g1), g.net_of(g2)};
  std::sort(plan.retimable.begin(), plan.retimable.end());

  CompiledView v;
  v.partitions = &c;
  std::vector<NetId> cuts = plan.retimable;
  v.cut_net_ids = cuts;
  v.retiming = &plan;
  v.lk = 16;
  v.area_retimable_cuts = 2;
  v.area_exact_retimable_cuts = 2;

  const Report rep = verify::verify_retiming(g, rg, sccs, v);
  EXPECT_EQ(rep.count_rule(verify::kRetCycleConserve), 1u);
  EXPECT_EQ(rep.count_rule(verify::kRetBookkeeping), 0u);

  // Demoting one of the two cuts to a multiplexed A_CELL restores Eq. 2
  // feasibility: the same loop with one claimed crossing must pass.
  plan.retimable = {g.net_of(g1)};
  plan.multiplexed = {g.net_of(g2)};
  v.area_retimable_cuts = 1;
  v.area_multiplexed_cuts = 1;
  v.area_exact_retimable_cuts = 1;
  v.area_exact_multiplexed_cuts = 1;
  const Report ok = verify::verify_retiming(g, rg, sccs, v);
  EXPECT_EQ(ok.count_rule(verify::kRetCycleConserve), 0u);
}

// --------------------------------------------------- registry hygiene ---

TEST(VerifyRegistryTest, AllRegistryNetlistsHaveNoDrcErrors) {
  for (const BenchmarkEntry& e : benchmark_suite()) {
    const Netlist nl = load_benchmark(e.spec.name);
    const Report rep = verify::verify_netlist(nl);
    EXPECT_EQ(rep.errors(), 0u) << e.spec.name << ": " << (rep.findings.empty()
        ? std::string()
        : verify::format_diagnostic(rep.findings.front()));
  }
}

TEST(VerifyRegistryTest, CompiledSmallCircuitsVerifyClean) {
  for (const char* name : {"s27", "s420.1", "s510", "s1423"}) {
    const Netlist nl = load_benchmark(name);
    MercedConfig config;
    const MercedResult r = compile(nl, config);
    const Report rep = verify_result(nl, r, config);
    EXPECT_EQ(rep.errors(), 0u) << name;
  }
}

// --------------------------------------------------------- JSON artifact ---

TEST(VerifyJsonTest, RoundTripValidates) {
  Report rep;
  verify::Diagnostic d;
  d.rule = verify::kPartIota;
  d.severity = Severity::kError;
  d.message = "partition 3 has iota = 18 > lk = 16";
  d.object = "pi#3";
  rep.add(d);
  d.rule = verify::kNetDangling;
  d.severity = Severity::kWarning;
  d.message = "net 'n9' has no fanout";
  d.object = "n9";
  rep.add(d);

  verify::VerifyRunInfo run;
  run.tool = "verify_test";
  run.circuit = "synthetic \"quoted\"";
  run.lk = 16;
  std::ostringstream os;
  verify::write_verify_json(os, rep, run);
  const obs::JsonValue doc = obs::JsonValue::parse(os.str());
  EXPECT_EQ(verify::validate_verify_json(doc), "");
}

TEST(VerifyJsonTest, ValidatorRejectsDriftedSummary) {
  // Summary says one error but the findings array holds none: exactly the
  // wrong-but-plausible artifact shape the validator exists to reject.
  const std::string doc_text = R"({
    "schema": "merced-verify-v1",
    "run": {"tool": "t", "circuit": "c", "lk": 16},
    "summary": {"errors": 1, "warnings": 0, "infos": 0, "findings": 0,
                "clean": false},
    "findings": []
  })";
  const obs::JsonValue doc = obs::JsonValue::parse(doc_text);
  EXPECT_NE(verify::validate_verify_json(doc), "");
}

TEST(VerifyJsonTest, ValidatorRejectsWrongSchema) {
  const obs::JsonValue doc = obs::JsonValue::parse(
      R"({"schema": "merced-metrics-v1", "run": {}, "summary": {}, "findings": []})");
  EXPECT_NE(verify::validate_verify_json(doc), "");
}

}  // namespace
}  // namespace merced
