#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generator.h"
#include "circuits/registry.h"
#include "circuits/s27.h"
#include "graph/circuit_graph.h"
#include "graph/scc.h"
#include "netlist/stats.h"
#include "sim/simulator.h"

namespace merced {
namespace {

TEST(RegistryTest, SuiteHasAllTable9Circuits) {
  const auto suite = benchmark_suite();
  EXPECT_EQ(suite.size(), 18u);  // s27 + 17 Table 9 rows
  EXPECT_TRUE(find_benchmark("s27") != nullptr);
  EXPECT_TRUE(find_benchmark("s38584.1") != nullptr);
  EXPECT_TRUE(find_benchmark("s420.1") != nullptr);
  EXPECT_EQ(find_benchmark("nope"), nullptr);
  EXPECT_THROW(load_benchmark("nope"), std::invalid_argument);
}

TEST(RegistryTest, S27IsEmbeddedExact) {
  const BenchmarkEntry* e = find_benchmark("s27");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->embedded);
  const Netlist nl = load_benchmark("s27");
  EXPECT_EQ(nl.size(), make_s27().size());
}

TEST(RegistryTest, LoadingIsDeterministic) {
  const Netlist a = load_benchmark("s641");
  const Netlist b = load_benchmark("s641");
  ASSERT_EQ(a.size(), b.size());
  for (GateId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.gate(i).type, b.gate(i).type);
    EXPECT_EQ(a.gate(i).fanins, b.gate(i).fanins);
  }
}

// Parameterized: every generated circuit matches its published Table 9 row.
class SuiteStats : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteStats, MatchesPublishedRow) {
  const BenchmarkEntry& e = benchmark_suite()[GetParam()];
  if (e.embedded) GTEST_SKIP() << "embedded circuit has no synthetic spec";
  const Netlist nl = load_benchmark(e.spec.name);
  const CircuitStats s = compute_stats(nl);
  EXPECT_EQ(s.num_inputs, e.spec.num_pis);
  EXPECT_EQ(s.num_dffs, e.spec.num_dffs);
  EXPECT_EQ(s.num_gates, e.spec.num_gates);
  EXPECT_EQ(s.num_invs, e.spec.num_invs);
  // Area within 2% (structural wiring may overflow the plan by a few pins).
  const double err = std::abs(static_cast<double>(s.estimated_area) -
                              static_cast<double>(e.spec.target_area)) /
                     static_cast<double>(e.spec.target_area);
  EXPECT_LT(err, 0.02) << s.estimated_area << " vs " << e.spec.target_area;
}

TEST_P(SuiteStats, StructurallySound) {
  const BenchmarkEntry& e = benchmark_suite()[GetParam()];
  const Netlist nl = load_benchmark(e.spec.name);
  EXPECT_TRUE(nl.finalized());  // implies acyclic combinational logic
  EXPECT_FALSE(nl.outputs().empty());
  // Every PO is on a combinational gate or PI (apply_retiming requirement).
  for (GateId id : nl.outputs()) {
    EXPECT_FALSE(is_sequential(nl.gate(id).type));
  }
  // Every DFF has exactly one fanin and it is a gate (no pure DFF rings).
  for (GateId id : nl.dffs()) {
    ASSERT_EQ(nl.gate(id).fanins.size(), 1u);
    EXPECT_FALSE(is_sequential(nl.gate(nl.gate(id).fanins[0]).type));
  }
}

TEST_P(SuiteStats, IsSimulatable) {
  const BenchmarkEntry& e = benchmark_suite()[GetParam()];
  const Netlist nl = load_benchmark(e.spec.name);
  if (nl.size() > 10000) GTEST_SKIP() << "keep unit tests fast";
  Simulator sim(nl);
  sim.set_state(std::vector<bool>(nl.dffs().size(), false));
  std::vector<bool> in(nl.inputs().size(), true);
  for (int c = 0; c < 3; ++c) sim.step(in);
  EXPECT_EQ(sim.output_values().size(), nl.outputs().size());
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, SuiteStats,
                         ::testing::Range<std::size_t>(0, 18),
                         [](const auto& info) {
                           std::string n(benchmark_suite()[info.param].spec.name);
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

TEST(GeneratorTest, SccDffFractionIsRespected) {
  for (const char* name : {"s641", "s5378", "s13207"}) {
    const BenchmarkEntry* e = find_benchmark(name);
    ASSERT_NE(e, nullptr);
    const Netlist nl = load_benchmark(name);
    const CircuitGraph g(nl);
    const SccInfo sccs = find_sccs(g);
    const double measured = static_cast<double>(sccs.total_dffs_on_scc()) /
                            static_cast<double>(nl.dffs().size());
    // Within 15% relative: opportunistic feedback through pipeline DFFs can
    // push the measured fraction slightly above the spec.
    EXPECT_NEAR(measured, e->spec.scc_dff_fraction,
                0.15 * e->spec.scc_dff_fraction + 0.02)
        << name;
  }
}

TEST(GeneratorTest, SccGateCoverageMaterializes) {
  const Netlist nl = load_benchmark("s1423");
  const CircuitGraph g(nl);
  const SccInfo sccs = find_sccs(g);
  std::size_t members = 0;
  for (const auto& c : sccs.components) members += c.size();
  // Spec default coverage is 0.4 of cells; allow a broad band.
  EXPECT_GT(members, g.num_nodes() / 5);
}

TEST(GeneratorTest, DistinctSeedsGiveDistinctCircuits) {
  SyntheticSpec spec;
  spec.name = "x";
  spec.num_pis = 8;
  spec.num_dffs = 12;
  spec.num_gates = 120;
  spec.num_invs = 40;
  spec.target_area = 520;
  spec.scc_dff_fraction = 0.8;
  spec.seed = 1;
  const Netlist a = generate_circuit(spec);
  spec.seed = 2;
  const Netlist b = generate_circuit(spec);
  bool differ = a.size() != b.size();
  for (GateId i = 0; !differ && i < a.size(); ++i) {
    differ = a.gate(i).type != b.gate(i).type || a.gate(i).fanins != b.gate(i).fanins;
  }
  EXPECT_TRUE(differ);
}

TEST(GeneratorTest, RejectsDegenerateSpecs) {
  SyntheticSpec spec;
  spec.name = "bad";
  spec.num_pis = 0;
  spec.num_gates = 10;
  EXPECT_THROW(generate_circuit(spec), std::invalid_argument);
  spec.num_pis = 2;
  spec.num_gates = 0;
  EXPECT_THROW(generate_circuit(spec), std::invalid_argument);
}

TEST(GeneratorTest, TinySpecWorks) {
  SyntheticSpec spec;
  spec.name = "tiny";
  spec.num_pis = 2;
  spec.num_dffs = 1;
  spec.num_gates = 4;
  spec.num_invs = 1;
  spec.target_area = 25;
  spec.scc_dff_fraction = 1.0;
  const Netlist nl = generate_circuit(spec);
  EXPECT_EQ(compute_stats(nl).num_gates, 4u);
  const CircuitGraph g(nl);
  EXPECT_GE(find_sccs(g).count(), 0u);
}

}  // namespace
}  // namespace merced
