#include <gtest/gtest.h>

#include "circuits/registry.h"
#include "circuits/s27.h"
#include "core/merced.h"
#include "core/ppet_session.h"
#include "graph/circuit_graph.h"
#include "partition/sa_partition.h"

namespace merced {
namespace {

// ------------------------------------------------------------ PPET session ---

struct SessionFixture : ::testing::Test {
  Netlist netlist = make_s27();
  CircuitGraph graph{netlist};
  MercedResult result = [] {
    MercedConfig config;
    config.lk = 3;
    config.flow.seed = 27;
    return compile(make_s27(), config);
  }();
};

TEST_F(SessionFixture, BuildsOneStationPerTestableCut) {
  const PpetSession session(graph, result);
  EXPECT_GT(session.num_stations(), 0u);
  for (std::size_t s = 0; s < session.num_stations(); ++s) {
    const CutStation& st = session.station(s);
    EXPECT_GE(st.tpg_width, 2u);
    EXPECT_EQ(st.cycles, std::uint64_t{1} << st.tpg_width);
  }
}

TEST_F(SessionFixture, SessionTimeIsWidestCut) {
  const PpetSession session(graph, result);
  std::uint64_t widest = 0;
  for (std::size_t s = 0; s < session.num_stations(); ++s) {
    widest = std::max(widest, session.station(s).cycles);
  }
  EXPECT_EQ(session.session_cycles(), widest);
}

TEST_F(SessionFixture, GoldenRunIsDeterministic) {
  const PpetSession session(graph, result);
  const SessionResult a = session.run();
  const SessionResult b = session.run();
  EXPECT_EQ(a.signatures, b.signatures);
  EXPECT_EQ(a.scan_stream, b.scan_stream);
  EXPECT_EQ(a.cycles_run, session.session_cycles());
}

TEST_F(SessionFixture, ScanStreamSerializesSignatures) {
  const PpetSession session(graph, result);
  const SessionResult r = session.run();
  // Stream length = sum of PSA widths; bits reconstruct the signatures.
  std::size_t total_bits = 0;
  for (std::size_t s = 0; s < session.num_stations(); ++s) {
    total_bits += session.station(s).psa_width;
  }
  ASSERT_EQ(r.scan_stream.size(), total_bits);
  std::size_t pos = 0;
  for (std::size_t s = 0; s < session.num_stations(); ++s) {
    std::uint64_t rebuilt = 0;
    for (unsigned b = 0; b < session.station(s).psa_width; ++b) {
      rebuilt = (rebuilt << 1) | (r.scan_stream[pos++] ? 1 : 0);
    }
    EXPECT_EQ(rebuilt, r.signatures[s]) << "station " << s;
  }
}

TEST_F(SessionFixture, DetectsInjectedFaults) {
  const PpetSession session(graph, result);
  // Every collapsed fault in every station's CUT that the exhaustive sweep
  // can distinguish must flip a signature; count the detections.
  std::size_t checked = 0, detected = 0;
  for (std::size_t s = 0; s < session.num_stations(); ++s) {
    const std::size_t ci = session.station(s).partition_index;
    const ConeSimulator cone(graph, result.partitions, ci);
    for (const Fault& f : cone.cluster_faults()) {
      ++checked;
      if (session.detects(f)) ++detected;
    }
  }
  ASSERT_GT(checked, 0u);
  // s27's CUTs at lk=3 have no redundant faults (verified by the sim
  // tests), so only MISR aliasing could hide one — none at 16 bits here.
  EXPECT_EQ(detected, checked);
}

TEST_F(SessionFixture, RejectsBadPsaWidth) {
  EXPECT_THROW(PpetSession(graph, result, 1), std::invalid_argument);
  EXPECT_THROW(PpetSession(graph, result, 33), std::invalid_argument);
}

// ----------------------------------------------------------- SA baseline ---

TEST(SaPartitionTest, SingletonSeedIsValid) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  const Clustering c = singleton_clustering(g);
  c.validate(g);
  EXPECT_EQ(c.count(), 13u);  // 17 nodes - 4 PIs
}

TEST(SaPartitionTest, ProducesFeasiblePartitionOnS27) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  SaParams p;
  p.lk = 3;
  p.seed = 7;
  const SaResult r = sa_partition(g, singleton_clustering(g), p);
  r.clustering.validate(g);
  EXPECT_TRUE(r.feasible);
  for (std::size_t i = 0; i < r.clustering.count(); ++i) {
    EXPECT_LE(input_count(g, r.clustering, i), 3u);
  }
  EXPECT_EQ(r.nets_cut, cut_nets(g, r.clustering).size());
  EXPECT_GT(r.moves_accepted, 0u);
}

TEST(SaPartitionTest, ReducesCutsVersusSingletons) {
  const Netlist nl = load_benchmark("s510");
  const CircuitGraph g(nl);
  const Clustering seed = singleton_clustering(g);
  const std::size_t initial_cuts = cut_nets(g, seed).size();
  SaParams p;
  p.lk = 16;
  p.seed = 3;
  const SaResult r = sa_partition(g, seed, p);
  EXPECT_LT(r.nets_cut, initial_cuts);
}

TEST(SaPartitionTest, DeterministicInSeed) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  SaParams p;
  p.lk = 3;
  p.seed = 11;
  const SaResult a = sa_partition(g, singleton_clustering(g), p);
  const SaResult b = sa_partition(g, singleton_clustering(g), p);
  EXPECT_EQ(a.nets_cut, b.nets_cut);
  EXPECT_EQ(a.clustering.cluster_of, b.clustering.cluster_of);
}

}  // namespace
}  // namespace merced
