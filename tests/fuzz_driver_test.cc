// End-to-end tests of the differential fuzzing subsystem: seed plumbing,
// mutator validity, oracle-stack behaviour on pristine and defective
// pipelines, the minimizer's signature-preservation contract, and corpus
// dedup + replay. The six canned defects (drop-cut, skew-rho, lane-mask,
// skew-tap, cert-iota, cert-area) are the standing proof that the oracle
// stack rejects a broken pipeline instead of rubber-stamping it — the two
// cert-* kinds corrupt only the emitted certificate text, so only the
// independent certificate checker (oracle 7) can object.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/generator.h"
#include "flow/saturate_network.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzz_json.h"
#include "fuzz/fuzzer.h"
#include "fuzz/minimizer.h"
#include "fuzz/mutator.h"
#include "netlist/bench_io.h"
#include "obs/json.h"
#include "runtime/thread_pool.h"

namespace merced {
namespace {

namespace fz = merced::fuzz;

/// A fresh, empty scratch directory under the test temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "merced_fuzz_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Equality of everything in a report except wall time.
void expect_same_report(const fz::FuzzReport& a, const fz::FuzzReport& b) {
  EXPECT_EQ(a.runs_executed, b.runs_executed);
  EXPECT_EQ(a.unique_signatures, b.unique_signatures);
  EXPECT_EQ(a.minimized, b.minimized);
  EXPECT_EQ(a.corpus_new, b.corpus_new);
  EXPECT_EQ(a.corpus_dupes, b.corpus_dupes);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    const fz::FuzzFailureRecord& fa = a.failures[i];
    const fz::FuzzFailureRecord& fb = b.failures[i];
    EXPECT_EQ(fa.run, fb.run) << "failure " << i;
    EXPECT_EQ(fa.seed, fb.seed) << "failure " << i;
    EXPECT_EQ(fa.oracle, fb.oracle) << "failure " << i;
    EXPECT_EQ(fa.signature, fb.signature) << "failure " << i;
    EXPECT_EQ(fa.detail, fb.detail) << "failure " << i;
    EXPECT_EQ(fa.gates_before, fb.gates_before) << "failure " << i;
    EXPECT_EQ(fa.gates_after, fb.gates_after) << "failure " << i;
    EXPECT_EQ(fa.minimized, fb.minimized) << "failure " << i;
  }
}

// ---- seed plumbing (satellite: reproducible across --jobs) --------------

TEST(DeriveSeedTest, IndexZeroKeepsBaseSeed) {
  EXPECT_EQ(derive_seed(0xdeadbeefULL, 0), 0xdeadbeefULL);
  EXPECT_EQ(derive_seed(1, 0), 1u);
}

TEST(DeriveSeedTest, SharesTheMultiStartConvention) {
  // derive_seed and flow::multi_start_seed implement the same decorrelation
  // (splitmix64 over base + index, index 0 = base) — a batch driver can mix
  // them without two seeds colliding in different ways.
  for (std::uint64_t base : {1ULL, 42ULL, 0x9e3779b97f4a7c15ULL}) {
    for (std::size_t k = 0; k < 8; ++k) {
      EXPECT_EQ(derive_seed(base, k), multi_start_seed(base, k));
    }
  }
}

TEST(DeriveSeedTest, NeighbouringIndicesDecorrelate) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) seeds.push_back(derive_seed(7, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
      << "derived seeds must be pairwise distinct";
}

TEST(GeneratorSeedTest, SameSeedBitReproducibleAcrossJobs) {
  // The same (base seed, run index) must yield the same circuit no matter
  // how many threads consume the batch: generate run i's input on 1 and on
  // 8 workers and compare the serialized netlists byte-for-byte.
  constexpr std::size_t kRuns = 12;
  auto generate_with = [&](std::size_t jobs) {
    ThreadPool pool(jobs);
    return parallel_map<std::string>(pool, kRuns, [&](std::size_t i) {
      return write_bench(fz::fuzz_input(/*base_seed=*/5, i));
    });
  };
  const std::vector<std::string> serial = generate_with(1);
  const std::vector<std::string> parallel = generate_with(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "run " << i << " depends on thread count";
  }
}

// ---- mutator -------------------------------------------------------------

TEST(MutatorTest, AlwaysEmitsParseableNetlists) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Netlist base = generate_circuit(fz::random_fuzz_spec(seed));
    fz::MutationStats stats;
    const Netlist mutated = fz::mutate(base, seed * 31, /*count=*/6, &stats);
    EXPECT_TRUE(mutated.finalized());
    const std::string text = write_bench(mutated);
    const Netlist reparsed = parse_bench(text, "mut");
    EXPECT_EQ(reparsed.size(), mutated.size()) << "seed " << seed;
    EXPECT_GT(stats.total_applied(), 0u) << "seed " << seed;
  }
}

TEST(MutatorTest, DeterministicInSeed) {
  const Netlist base = generate_circuit(fz::random_fuzz_spec(9));
  const std::string a = write_bench(fz::mutate(base, 1234, 5));
  const std::string b = write_bench(fz::mutate(base, 1234, 5));
  const std::string c = write_bench(fz::mutate(base, 1235, 5));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c) << "different mutation seeds should diverge";
}

// ---- oracle stack --------------------------------------------------------

TEST(OracleTest, PristinePipelinePassesEveryOracle) {
  const fz::OracleOptions opt;
  for (std::size_t r = 0; r < 6; ++r) {
    const auto failure = fz::run_oracles(fz::fuzz_input(/*base_seed=*/1, r), opt);
    EXPECT_FALSE(failure.has_value())
        << "run " << r << " failed: " << failure->signature << " — " << failure->detail;
  }
}

struct DefectCase {
  fz::FuzzDefect defect;
  const char* oracle;
  const char* signature;
};

class OracleDefectTest : public ::testing::TestWithParam<DefectCase> {};

TEST_P(OracleDefectTest, CannedDefectIsCaughtWithStableSignature) {
  const DefectCase& c = GetParam();
  fz::OracleOptions opt;
  opt.defect = c.defect;
  bool caught = false;
  for (std::size_t r = 0; r < 8 && !caught; ++r) {
    if (const auto failure = fz::run_oracles(fz::fuzz_input(1, r), opt)) {
      EXPECT_EQ(failure->oracle, c.oracle);
      EXPECT_EQ(failure->signature, c.signature);
      caught = true;
    }
  }
  EXPECT_TRUE(caught) << "defect " << fz::to_string(c.defect)
                      << " slipped past the oracle stack on 8 inputs";
}

INSTANTIATE_TEST_SUITE_P(
    AllDefects, OracleDefectTest,
    ::testing::Values(
        DefectCase{fz::FuzzDefect::kDropCut, "verify", "verify:PART-CUT-MISSING"},
        DefectCase{fz::FuzzDefect::kSkewRho, "verify", "verify:RET-NEG-WEIGHT"},
        DefectCase{fz::FuzzDefect::kLaneMask, "kernel-conformance",
                   "kernel-conformance:mask"},
        DefectCase{fz::FuzzDefect::kSkewTap, "sat-equivalence",
                   "sat-equivalence:refuted"},
        DefectCase{fz::FuzzDefect::kCertIota, "certificate", "certificate:CERT-IOTA"},
        DefectCase{fz::FuzzDefect::kCertArea, "certificate", "certificate:CERT-AREA"}),
    [](const ::testing::TestParamInfo<DefectCase>& info) {
      std::string name(fz::to_string(info.param.defect));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---- minimizer -----------------------------------------------------------

TEST(MinimizerTest, ShrinksWhilePreservingTheExactSignature) {
  fz::OracleOptions opt;
  opt.defect = fz::FuzzDefect::kDropCut;
  Netlist failing = fz::fuzz_input(1, 0);
  const auto failure = fz::run_oracles(failing, opt);
  ASSERT_TRUE(failure.has_value());

  const fz::MinimizeResult shrunk =
      fz::minimize_failure(failing, opt, failure->signature);
  EXPECT_EQ(shrunk.gates_before, failing.size());
  EXPECT_LT(shrunk.gates_after, shrunk.gates_before)
      << "minimizer made no progress on a " << failing.size() << "-gate input";
  EXPECT_GT(shrunk.rounds, 0u);

  // The shrunk witness still fails with the identical signature.
  const auto replay = fz::run_oracles(shrunk.netlist, opt);
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->signature, failure->signature);
}

TEST(MinimizerTest, RejectsInputsThatDontReproduce) {
  const fz::OracleOptions opt;  // pristine: nothing fails
  EXPECT_THROW(
      fz::minimize_failure(fz::fuzz_input(1, 0), opt, "verify:PART-CUT-MISSING"),
      std::invalid_argument);
}

// ---- corpus --------------------------------------------------------------

TEST(CorpusTest, DeduplicatesBySignatureAndRoundTrips) {
  const std::string dir = scratch_dir("dedup");
  fz::Corpus corpus(dir);
  const Netlist witness = fz::fuzz_input(1, 0);

  const auto first = corpus.add(witness, "verify:PART-CUT-MISSING", "verify",
                                fz::FuzzDefect::kDropCut, /*seed=*/1);
  ASSERT_TRUE(first.has_value());
  const auto dupe = corpus.add(witness, "verify:PART-CUT-MISSING", "verify",
                               fz::FuzzDefect::kDropCut, /*seed=*/2);
  EXPECT_FALSE(dupe.has_value()) << "same signature must deduplicate";

  const std::vector<fz::CorpusEntry> entries = corpus.load();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].signature, "verify:PART-CUT-MISSING");
  EXPECT_EQ(entries[0].oracle, "verify");
  EXPECT_EQ(entries[0].defect, fz::FuzzDefect::kDropCut);
  EXPECT_EQ(entries[0].seed, 1u);
  EXPECT_TRUE(entries[0].expect_fail);
  // The entry file itself is a plain parseable .bench netlist.
  EXPECT_NO_THROW(parse_bench(entries[0].bench_text, "entry"));
}

TEST(CorpusTest, ReplayChecksExpectations) {
  const std::string dir = scratch_dir("replay");
  fz::Corpus corpus(dir);
  const Netlist witness = fz::fuzz_input(1, 0);

  // Entry 1: fails with drop-cut injected — replay must reproduce it.
  ASSERT_TRUE(corpus.add(witness, "verify:PART-CUT-MISSING", "verify",
                         fz::FuzzDefect::kDropCut, 1));
  // Entry 2: a fixed-regression (expect clean) on the pristine pipeline.
  ASSERT_TRUE(corpus.add(witness, "", "", fz::FuzzDefect::kNone, 1,
                         /*expect_fail=*/false));

  const auto outcomes = fz::replay_corpus(corpus.load(), fz::OracleOptions{});
  ASSERT_EQ(outcomes.size(), 2u);
  for (const fz::ReplayOutcome& o : outcomes) {
    EXPECT_TRUE(o.ok) << o.entry.path << ": " << o.detail;
  }
}

TEST(CorpusTest, ReplayFlagsSignatureMismatch) {
  const std::string dir = scratch_dir("mismatch");
  fz::Corpus corpus(dir);
  // Claimed failing signature, but no defect recorded: on a healthy tree
  // the oracles pass and the replay must flag the stale expectation.
  ASSERT_TRUE(corpus.add(fz::fuzz_input(1, 0), "verify:PART-CUT-MISSING", "verify",
                         fz::FuzzDefect::kNone, 1));
  const auto outcomes = fz::replay_corpus(corpus.load(), fz::OracleOptions{});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
}

#ifdef MERCED_CORPUS_DIR
// The checked-in corpus (tests/corpus) is the standing regression set:
// expect-fail witnesses (one per canned defect) plus a fixed-clean guard.
// Each entry replays as its OWN ctest case — `ctest -R Replay` shows which
// witness broke, and independent cases shard across ctest -j workers
// instead of serializing inside one monolithic test body.
std::vector<fz::CorpusEntry> committed_corpus_entries() {
  return fz::Corpus(MERCED_CORPUS_DIR).load();
}

TEST(CorpusTest, CommittedRegressionCorpusIsComplete) {
  EXPECT_GE(committed_corpus_entries().size(), 5u) << "committed corpus lost entries";
}

class CommittedCorpusReplayTest : public ::testing::TestWithParam<fz::CorpusEntry> {};

TEST_P(CommittedCorpusReplayTest, EntryReplaysAsExpected) {
  const auto outcomes = fz::replay_corpus({GetParam()}, fz::OracleOptions{});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].entry.path << ": " << outcomes[0].detail;
}

INSTANTIATE_TEST_SUITE_P(
    Committed, CommittedCorpusReplayTest,
    ::testing::ValuesIn(committed_corpus_entries()),
    [](const ::testing::TestParamInfo<fz::CorpusEntry>& info) {
      std::string name = std::filesystem::path(info.param.path).stem().string();
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name.empty() ? "entry_" + std::to_string(info.index) : name;
    });
#endif

// ---- campaign driver -----------------------------------------------------

TEST(FuzzCampaignTest, ReportIsIdenticalForAnyJobsCount) {
  fz::FuzzConfig cfg;
  cfg.seed = 1;
  cfg.runs = 16;
  cfg.minimize = false;  // keep the defect campaign fast
  cfg.oracle.defect = fz::FuzzDefect::kDropCut;

  fz::FuzzConfig serial = cfg;
  serial.jobs = 1;
  fz::FuzzConfig parallel = cfg;
  parallel.jobs = 8;
  const fz::FuzzReport a = fz::run_fuzz(serial);
  const fz::FuzzReport b = fz::run_fuzz(parallel);
  EXPECT_FALSE(a.failures.empty()) << "drop-cut campaign found nothing";
  expect_same_report(a, b);
}

TEST(FuzzCampaignTest, EndToEndDefectYieldsReplayableMinimizedCorpusEntry) {
  const std::string dir = scratch_dir("e2e");
  fz::FuzzConfig cfg;
  cfg.seed = 1;
  cfg.runs = 6;
  cfg.jobs = 4;
  cfg.corpus_dir = dir;
  cfg.oracle.defect = fz::FuzzDefect::kSkewRho;

  const fz::FuzzReport report = fz::run_fuzz(cfg);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_EQ(report.corpus_new, report.unique_signatures);
  EXPECT_GT(report.minimized, 0u);
  const fz::FuzzFailureRecord& f = report.failures.front();
  EXPECT_LT(f.gates_after, f.gates_before);

  // The stored minimized entry replays to the exact failing oracle.
  const fz::Corpus corpus(dir);
  const auto outcomes = fz::replay_corpus(corpus.load(), fz::OracleOptions{});
  ASSERT_FALSE(outcomes.empty());
  for (const fz::ReplayOutcome& o : outcomes) {
    EXPECT_TRUE(o.ok) << o.entry.path << ": " << o.detail;
    EXPECT_EQ(o.entry.signature, f.signature);
  }
}

TEST(FuzzCampaignTest, PristineCampaignIsCleanAndSerializes) {
  fz::FuzzConfig cfg;
  cfg.seed = 3;
  cfg.runs = 12;
  cfg.jobs = 4;
  const fz::FuzzReport report = fz::run_fuzz(cfg);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.runs_executed, cfg.runs);

  std::ostringstream os;
  fz::write_fuzz_json(os, report);
  EXPECT_EQ(fz::validate_fuzz_json(obs::JsonValue::parse(os.str())), "")
      << os.str();
}

}  // namespace
}  // namespace merced
